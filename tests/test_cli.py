"""The command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_list_command():
    code, text = run_cli("list")
    assert code == 0
    for expected in ("sgfs-aes", "rc4-128-sha1", "postmark", "fig8"):
        assert expected in text


def test_info_command():
    code, text = run_cli("info")
    assert code == 0
    assert "cpu_hz" in text and "proxy_cost" in text


def test_run_iozone_lan():
    code, text = run_cli(
        "run", "--workload", "iozone", "--setup", "nfs-v3"
    )
    assert code == 0
    assert "iozone on nfs-v3 (LAN)" in text
    assert "read" in text and "total" in text


def test_run_with_disk_cache_and_cpu():
    code, text = run_cli(
        "run", "--workload", "iozone", "--setup", "sgfs-aes",
        "--rtt-ms", "10", "--disk-cache", "--cpu",
    )
    assert code == 0
    assert "(10ms RTT)" in text
    assert "cpu[client:proxy]" in text


def test_run_rejects_disk_cache_on_native_nfs():
    code, text = run_cli(
        "run", "--workload", "iozone", "--setup", "nfs-v3", "--disk-cache"
    )
    assert code == 2
    assert "proxied setups" in text


def test_run_rejects_unknown_setup():
    with pytest.raises(SystemExit):
        run_cli("run", "--workload", "iozone", "--setup", "zfs")


def test_sweep_command():
    code, text = run_cli(
        "sweep", "--workload", "iozone", "--baseline", "nfs-v3",
        "--setup", "sgfs", "--rtts-ms", "1,5",
    )
    assert code == 0
    assert "1.0ms" in text and "5.0ms" in text and "x" in text


def test_sweep_bad_rtt_list():
    code, text = run_cli("sweep", "--rtts-ms", "five,ten")
    assert code == 2
    assert "bad RTT" in text


def test_figure_fig4_smoke():
    code, text = run_cli("figure", "fig4")
    assert code == 0
    assert "Figure 4" in text
    for setup in ("nfs-v3", "gfs-ssh"):
        assert setup in text


def test_requires_a_command():
    with pytest.raises(SystemExit):
        run_cli()


def test_run_fleet_with_stats_json(tmp_path):
    import json

    stats_file = tmp_path / "fleet.json"
    code, text = run_cli(
        "run", "--workload", "iozone", "--setup", "nfs-v3",
        "--clients", "3", "--stagger-ms", "1",
        "--stats-json", str(stats_file),
    )
    assert code == 0
    assert "3-client fleet" in text
    assert "makespan" in text and "c2" in text
    stats = json.loads(stats_file.read_text())
    assert "rpc.server" in stats and "nfs.cache" in stats


def test_run_fleet_rejects_single_session_setup():
    code, text = run_cli(
        "run", "--workload", "iozone", "--setup", "sfs", "--clients", "2",
    )
    assert code == 2
    assert "single-session" in text
