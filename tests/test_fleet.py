"""Scale-out fleet harness: determinism, isolation, worker-pool server."""

import pytest

from repro.harness import run_fleet
from repro.workloads.iozone import IOzoneReadReread

FS = 64 * 1024


def _iozone():
    return IOzoneReadReread(file_size=FS)


def _fingerprint(result):
    return (
        result.makespan,
        [(c.name, c.start, c.end, sorted(c.phases.items())) for c in result.per_client],
        result.stats,
    )


def test_eight_client_fleet_bit_identical():
    a = run_fleet("sgfs-sha", _iozone, clients=8)
    b = run_fleet("sgfs-sha", _iozone, clients=8)
    assert _fingerprint(a) == _fingerprint(b)
    assert a.clients == 8 and len(a.per_client) == 8


def test_eight_client_fleet_bit_identical_under_lossy_faults():
    kw = dict(clients=8, rtt=0.04, faults="lossy-wan", fault_seed="fleet-ci")
    a = run_fleet("sgfs-sha", _iozone, **kw)
    b = run_fleet("sgfs-sha", _iozone, **kw)
    assert _fingerprint(a) == _fingerprint(b)
    assert a.stats["faults"]["dropped"] > 0


def test_fleet_makespan_and_stagger():
    sync = run_fleet("nfs-v3", _iozone, clients=4)
    assert all(c.start == 0.0 for c in sync.per_client)
    assert sync.makespan == max(c.end for c in sync.per_client)

    staggered = run_fleet("nfs-v3", _iozone, clients=4, stagger=0.5)
    starts = [c.start for c in staggered.per_client]
    assert starts == [0.0, 0.5, 1.0, 1.5]
    assert staggered.makespan > sync.makespan


def test_fleet_per_session_enforcement_and_metrics():
    r = run_fleet("sgfs-aes", _iozone, clients=3)
    ps = r.stats["proxy.server"]
    # One TLS session per client, all authorized through the gridmap.
    assert ps["sessions"] == 3
    assert ps["handshakes"] == 3
    assert ps.get("handshake_failures", 0) == 0
    assert ps["granted"] > 0 and ps["denied"] == 0
    # Worker-pool queueing is visible once multiple sessions contend.
    assert any(k.startswith("queue_depth") for k in r.stats["rpc.server"])


def test_fleet_merges_per_session_cache_stats():
    solo = run_fleet("nfs-v3", _iozone, clients=1)
    duo = run_fleet("nfs-v3", _iozone, clients=2)
    # Identical per-client workloads: merged per-session counters double.
    solo_hits = solo.stats["nfs.cache"]["page"]["hits"]
    duo_hits = duo.stats["nfs.cache"]["page"]["hits"]
    assert solo_hits > 0
    assert duo_hits == 2 * solo_hits


def test_fleet_throughput_scales_and_contends():
    one = run_fleet("nfs-v3", _iozone, clients=1)
    four = run_fleet("nfs-v3", _iozone, clients=4)
    # More clients move more aggregate bytes per virtual second...
    assert four.aggregate_throughput(2 * FS) > one.aggregate_throughput(2 * FS)
    # ...but each client individually slows down under contention.
    assert four.mean_client_seconds > one.mean_client_seconds


def test_fleet_rejects_single_session_designs():
    with pytest.raises(ValueError):
        run_fleet("sfs", _iozone, clients=2)
    with pytest.raises(ValueError):
        run_fleet("gfs-ssh", _iozone, clients=2)
    with pytest.raises(ValueError):
        run_fleet("nfs-v3", _iozone, clients=0)


def test_fleet_single_client_matches_spawn_per_call_dispatch():
    """The worker-pool discipline must not change single-session
    virtual-time results (queueing only matters under contention)."""
    pooled = run_fleet("nfs-v3", _iozone, clients=1, server_workers=8)
    legacy = run_fleet("nfs-v3", _iozone, clients=1, server_workers=None)
    assert pooled.makespan == legacy.makespan
    assert pooled.per_client[0].phases == legacy.per_client[0].phases


# -- multi-core server, session tickets, batched sealing ----------------------


def test_multicore_fleet_bit_identical():
    kw = dict(clients=8, server_cores=4)
    a = run_fleet("sgfs-aes", _iozone, **kw)
    b = run_fleet("sgfs-aes", _iozone, **kw)
    assert _fingerprint(a) == _fingerprint(b)


def test_multicore_fleet_faster_than_single_core():
    one = run_fleet("sgfs-aes", _iozone, clients=8)
    four = run_fleet("sgfs-aes", _iozone, clients=8, server_cores=4)
    assert four.makespan < one.makespan


def test_single_client_unchanged_by_core_count_knob():
    # cores=1 is the legacy semaphore path; a lone session also cannot
    # exploit parallelism, so its virtual-time results are identical.
    legacy = run_fleet("sgfs-aes", _iozone, clients=1)
    multi = run_fleet("sgfs-aes", _iozone, clients=1, server_cores=4)
    assert legacy.makespan == multi.makespan
    assert legacy.per_client[0].phases == multi.per_client[0].phases


def test_reconnecting_fleet_resumes_sessions():
    r = run_fleet(
        "sgfs-aes", _iozone, clients=4,
        session_tickets=True, reconnect_interval=0.005,
    )
    tls = r.stats["tls"]
    suite = "aes-256-cbc-sha1"
    resumed = tls.get(f"resumptions{{role=server,suite={suite}}}", 0)
    full = tls[f"full_handshakes{{role=server,suite={suite}}}"]
    assert resumed > 0
    # Only the initial connection per client pays the full RSA handshake.
    assert full == 4


def test_reconnecting_fleet_bit_identical_same_seed():
    kw = dict(clients=4, session_tickets=True, reconnect_interval=0.005)
    a = run_fleet("sgfs-aes", _iozone, **kw)
    b = run_fleet("sgfs-aes", _iozone, **kw)
    assert _fingerprint(a) == _fingerprint(b)


def test_tickets_with_lossy_faults_bit_identical():
    kw = dict(
        clients=4, rtt=0.04, faults="lossy-wan", fault_seed="fleet-ci",
        session_tickets=True, reconnect_interval=0.05,
    )
    a = run_fleet("sgfs-sha", _iozone, **kw)
    b = run_fleet("sgfs-sha", _iozone, **kw)
    assert _fingerprint(a) == _fingerprint(b)
    assert a.stats["faults"]["dropped"] > 0


def test_server_crash_flushes_tickets():
    # The server proxy dies and restarts mid-run.  The crash flushes the
    # in-memory ticket cache, so reconnecting clients pay full RSA
    # handshakes again -- more full handshakes than clients.
    from repro.faults import CrashEvent, FaultSpec

    spec = FaultSpec(
        crashes=(CrashEvent(at=0.03, target="server-proxy", down_for=0.005),),
        client_timeo=0.1,
        proxy_timeo=0.1,
        rto_base=0.05,
        rto_max=0.2,
    )
    r = run_fleet(
        "sgfs-aes", lambda: IOzoneReadReread(file_size=4 * FS), clients=4,
        faults=spec, fault_seed="fleet-ci",
        session_tickets=True, reconnect_interval=0.01,
    )
    tls = r.stats["tls"]
    suite = "aes-256-cbc-sha1"
    full = tls[f"full_handshakes{{role=server,suite={suite}}}"]
    # 4 initial + 4 post-crash re-handshakes (flushed cache), resumption
    # in between.
    assert full > 4
    assert tls[f"resumptions{{role=server,suite={suite}}}"] > 0


def test_batched_sealing_bit_identical_and_counted():
    kw = dict(clients=8, server_cores=2, batch_records=4)
    a = run_fleet("sgfs-aes", _iozone, **kw)
    b = run_fleet("sgfs-aes", _iozone, **kw)
    assert _fingerprint(a) == _fingerprint(b)


def test_ticketless_fleet_stats_unchanged():
    # The resumption counters only exist when tickets are on the wire.
    r = run_fleet("sgfs-aes", _iozone, clients=2)
    assert not any("resumptions" in k for k in r.stats.get("tls", {}))
    assert not any("full_handshakes" in k for k in r.stats.get("tls", {}))


# -- fleet accounting and teardown fixes --------------------------------------


def test_aggregate_throughput_measured_vs_estimate():
    from repro.workloads.iozone import IOzoneWriteRead

    r = run_fleet("sgfs-sha", lambda: IOzoneWriteRead(file_size=FS), clients=2)
    # Every client reports its actual byte total...
    assert all(c.bytes_moved == 3 * FS for c in r.per_client)
    # ...and the no-argument form measures from those totals, matching
    # the legacy per-client estimate only when the estimate is honest.
    assert r.aggregate_throughput() == (2 * 3 * FS) / r.makespan
    assert r.aggregate_throughput(3 * FS) == r.aggregate_throughput()
    # An inflated per-client guess over-reports; the measured form can't.
    assert r.aggregate_throughput(4 * FS) > r.aggregate_throughput()


def test_aggregate_throughput_measured_requires_byte_counts():
    # Workloads that don't report bytes_moved can't be silently scored
    # as zero throughput -- the measured form refuses instead.
    from repro.harness import FleetClientResult, FleetResult

    r = FleetResult(
        setup="nfs-v3", clients=2, makespan=2.0,
        per_client=[
            FleetClientResult(name="c0", start=0.0, end=2.0, bytes_moved=4096),
            FleetClientResult(name="c1", start=0.0, end=1.0),
        ],
    )
    with pytest.raises(ValueError, match="c1"):
        r.aggregate_throughput()
    assert r.aggregate_throughput(4096) == 2 * 4096 / 2.0


def test_reconnect_cyclers_stop_at_client_completion(monkeypatch):
    """Reconnect cyclers must be torn down when their client's workload
    finishes: a straggler client must not keep the finished clients'
    proxies churning through handshakes until the fleet drains."""
    from repro.proxy.client_proxy import SgfsClientProxy

    cycles = []
    real_cycle = SgfsClientProxy.cycle_upstream

    def recording_cycle(self):
        cycles.append((self.host.name, self.sim.now))
        return real_cycle(self)

    monkeypatch.setattr(SgfsClientProxy, "cycle_upstream", recording_cycle)

    def staggered(i):
        # client 0 moves 8x the bytes of the others -> finishes last
        return IOzoneReadReread(file_size=(8 * FS if i == 0 else FS))

    r = run_fleet(
        "sgfs-aes", staggered, clients=3,
        session_tickets=True, reconnect_interval=0.005,
    )
    ends = {c.name: c.end for c in r.per_client}
    assert max(ends.values()) == ends["c0"]
    assert cycles, "reconnect fleet never cycled"
    for host, when in cycles:
        assert when <= ends[host] + 1e-12, (
            f"{host} cycled at {when:.6f}s, after its workload "
            f"ended at {ends[host]:.6f}s"
        )
    # The short-lived clients really did stop early while c0 ran on.
    assert any(host != "c0" for host, _ in cycles)
    assert max(t for h, t in cycles if h != "c0") < ends["c0"]
