"""Scale-out fleet harness: determinism, isolation, worker-pool server."""

import pytest

from repro.harness import run_fleet
from repro.workloads.iozone import IOzoneReadReread

FS = 64 * 1024


def _iozone():
    return IOzoneReadReread(file_size=FS)


def _fingerprint(result):
    return (
        result.makespan,
        [(c.name, c.start, c.end, sorted(c.phases.items())) for c in result.per_client],
        result.stats,
    )


def test_eight_client_fleet_bit_identical():
    a = run_fleet("sgfs-sha", _iozone, clients=8)
    b = run_fleet("sgfs-sha", _iozone, clients=8)
    assert _fingerprint(a) == _fingerprint(b)
    assert a.clients == 8 and len(a.per_client) == 8


def test_eight_client_fleet_bit_identical_under_lossy_faults():
    kw = dict(clients=8, rtt=0.04, faults="lossy-wan", fault_seed="fleet-ci")
    a = run_fleet("sgfs-sha", _iozone, **kw)
    b = run_fleet("sgfs-sha", _iozone, **kw)
    assert _fingerprint(a) == _fingerprint(b)
    assert a.stats["faults"]["dropped"] > 0


def test_fleet_makespan_and_stagger():
    sync = run_fleet("nfs-v3", _iozone, clients=4)
    assert all(c.start == 0.0 for c in sync.per_client)
    assert sync.makespan == max(c.end for c in sync.per_client)

    staggered = run_fleet("nfs-v3", _iozone, clients=4, stagger=0.5)
    starts = [c.start for c in staggered.per_client]
    assert starts == [0.0, 0.5, 1.0, 1.5]
    assert staggered.makespan > sync.makespan


def test_fleet_per_session_enforcement_and_metrics():
    r = run_fleet("sgfs-aes", _iozone, clients=3)
    ps = r.stats["proxy.server"]
    # One TLS session per client, all authorized through the gridmap.
    assert ps["sessions"] == 3
    assert ps["handshakes"] == 3
    assert ps.get("handshake_failures", 0) == 0
    assert ps["granted"] > 0 and ps["denied"] == 0
    # Worker-pool queueing is visible once multiple sessions contend.
    assert any(k.startswith("queue_depth") for k in r.stats["rpc.server"])


def test_fleet_merges_per_session_cache_stats():
    solo = run_fleet("nfs-v3", _iozone, clients=1)
    duo = run_fleet("nfs-v3", _iozone, clients=2)
    # Identical per-client workloads: merged per-session counters double.
    solo_hits = solo.stats["nfs.cache"]["page"]["hits"]
    duo_hits = duo.stats["nfs.cache"]["page"]["hits"]
    assert solo_hits > 0
    assert duo_hits == 2 * solo_hits


def test_fleet_throughput_scales_and_contends():
    one = run_fleet("nfs-v3", _iozone, clients=1)
    four = run_fleet("nfs-v3", _iozone, clients=4)
    # More clients move more aggregate bytes per virtual second...
    assert four.aggregate_throughput(2 * FS) > one.aggregate_throughput(2 * FS)
    # ...but each client individually slows down under contention.
    assert four.mean_client_seconds > one.mean_client_seconds


def test_fleet_rejects_single_session_designs():
    with pytest.raises(ValueError):
        run_fleet("sfs", _iozone, clients=2)
    with pytest.raises(ValueError):
        run_fleet("gfs-ssh", _iozone, clients=2)
    with pytest.raises(ValueError):
        run_fleet("nfs-v3", _iozone, clients=0)


def test_fleet_single_client_matches_spawn_per_call_dispatch():
    """The worker-pool discipline must not change single-session
    virtual-time results (queueing only matters under contention)."""
    pooled = run_fleet("nfs-v3", _iozone, clients=1, server_workers=8)
    legacy = run_fleet("nfs-v3", _iozone, clients=1, server_workers=None)
    assert pooled.makespan == legacy.makespan
    assert pooled.per_client[0].phases == legacy.per_client[0].phases
