"""Workload generators: correctness of the I/O they drive."""

import pytest

from repro.core import Testbed, setup_nfs_v3
from repro.harness import run_iozone, run_postmark, speedup, format_table, format_series
from repro.vfs.fs import Credentials
from repro.workloads import (
    IOzoneReadReread,
    ModifiedAndrewBenchmark,
    PostMark,
    PostMarkConfig,
    Seismic,
    SeismicConfig,
    SourceTree,
)

ROOT = Credentials(0, 0)


def test_iozone_reads_exact_file_twice():
    tb = Testbed.build()
    wl = IOzoneReadReread(file_size=1 << 20)
    wl.prepare(tb)
    mount = setup_nfs_v3(tb)
    reads_before = tb.nfs_program.ops
    tb.run(wl.run(mount))
    assert wl.results["read"] > 0 and wl.results["reread"] > 0
    assert wl.results["total"] >= wl.results["read"] + wl.results["reread"]
    # with a default-sized cache the reread is served from client memory
    assert wl.results["reread"] < wl.results["read"]


def test_iozone_cache_too_small_defeats_reread():
    tb = Testbed.build()
    wl = IOzoneReadReread(file_size=1 << 20)
    wl.prepare(tb)
    mount = setup_nfs_v3(tb, cache_bytes=1 << 19)  # half the file
    tb.run(wl.run(mount))
    # LRU gives no reuse: reread costs about as much as the first read
    assert wl.results["reread"] > 0.7 * wl.results["read"]


def test_iozone_detects_bad_setup():
    tb = Testbed.build()
    wl = IOzoneReadReread(file_size=1 << 20)
    # no prepare(): file missing
    mount = setup_nfs_v3(tb)
    with pytest.raises(Exception):
        tb.run(wl.run(mount))


def test_postmark_phases_and_cleanup():
    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    wl = PostMark(PostMarkConfig(directories=5, files=20, transactions=40))
    tb.run(wl.run(mount))
    for phase in ("creation", "transaction", "deletion", "total"):
        assert wl.results[phase] > 0
    # deletion phase removed everything
    assert not tb.fs.root.entries


def test_postmark_deterministic_given_seed():
    def one():
        tb = Testbed.build()
        mount = setup_nfs_v3(tb)
        wl = PostMark(PostMarkConfig(directories=5, files=20, transactions=40, seed="fix"))
        tb.run(wl.run(mount))
        return wl.results

    assert one() == one()


def test_postmark_different_seed_changes_outcome():
    def one(seed):
        tb = Testbed.build()
        mount = setup_nfs_v3(tb)
        wl = PostMark(PostMarkConfig(directories=5, files=20, transactions=40, seed=seed))
        tb.run(wl.run(mount))
        return wl.results["total"]

    assert one("a") != one("b")


def test_source_tree_matches_paper_shape():
    tree = SourceTree.openssh_like()
    assert len(tree.directories) == 13
    assert len(tree.files) == 449
    assert sum(1 for _p, _s, src in tree.files if src) == 194
    assert tree.total_bytes > 1 << 20  # a real source tree, not stubs


def test_mab_phases_and_artifacts():
    tb = Testbed.build()
    wl = ModifiedAndrewBenchmark()
    # shrink the compile so the test is quick
    wl.config.compile_cpu_per_unit = 0.001
    wl.config.include_probes_per_unit = 2
    wl.config.headers_per_unit = 1
    wl.prepare(tb)
    mount = setup_nfs_v3(tb)
    tb.run(wl.run(mount))
    for phase in ("copy", "stat", "search", "compile"):
        assert wl.results[phase] > 0, phase
    # the working copy and build tree exist server-side
    assert tb.fs.resolve("/work/openssh-4.6p1", ROOT).is_dir
    build = tb.fs.resolve("/work/build", ROOT)
    objects = [n for n in build.entries if n.endswith(".o")]
    assert len(objects) == 194
    assert any(n.startswith("bin") for n in build.entries)


def test_seismic_phases_and_preserved_outputs():
    tb = Testbed.build()
    cfg = SeismicConfig(
        initial_file=1 << 20, stacked_file=1 << 18, time_mig_file=1 << 18,
        depth_mig_file=1 << 18, cpu_generate=0.1, cpu_stack=0.1,
        cpu_time_mig=0.05, cpu_depth_mig=0.2, stack_passes=2,
    )
    wl = Seismic(cfg)
    mount = setup_nfs_v3(tb)
    tb.run(wl.run(mount))
    for phase in ("phase1", "phase2", "phase3", "phase4"):
        assert wl.results[phase] > 0
    root = tb.fs.resolve("/seismic", ROOT)
    # intermediates removed; the last two results preserved (§6.3.2)
    assert set(root.entries) == {"time-mig.data", "depth-mig.data"}


def test_harness_run_collects_cpu_and_stats():
    r = run_iozone("sgfs-aes", rtt=0.0, file_size=1 << 20,
                   setup_kwargs={"cache_bytes": 1 << 19})
    assert r.total > 0
    assert r.cpu_mean("client", "proxy") > 0
    assert "nfs_client" in r.stats and "client_proxy" in r.stats
    assert r.stats["server_proxy"]["granted"] > 0


def test_harness_unknown_setup_rejected():
    with pytest.raises(KeyError):
        run_iozone("no-such-setup")


def test_harness_formatting_helpers():
    table = format_table(
        "T", [("nfs-v3", {"a": 1.0}), ("sgfs", {"a": 2.0, "b": 3.0})], ["a", "b"]
    )
    assert "nfs-v3" in table and "2.00s" in table and "-" in table
    series = format_series("S", {"gfs": [(5.0, 1.0), (10.0, 2.0)]})
    assert "gfs" in series and "5:1.0" in series
    assert speedup(10.0, 5.0) == 2.0
    assert speedup(1.0, 0.0) == float("inf")


def test_postmark_wan_rtt_increases_runtime_monotonically():
    cfg = PostMarkConfig(directories=3, files=10, transactions=20)
    totals = [
        run_postmark("nfs-v3", rtt=rtt, config=cfg).total
        for rtt in (0.0, 0.010, 0.040)
    ]
    assert totals[0] < totals[1] < totals[2]
