"""Cache-consistency overlays for shared data (the paper's [46] pointer).

Two sessions (one writer, one reader) mount the same exported
filesystem through independent client proxies with disk caching.  Under
"session" consistency the reader may serve stale data for the whole
session (the paper's single-user assumption); under "poll" consistency
staleness is bounded by the TTL.
"""

import pytest

from repro.core.setups import (
    CA_DN,
    FILE_ACCOUNT,
    JOB_ACCOUNT,
    SERVER_DN,
    USER_DN,
    _kernel_client,
    _session_gridmap,
)
from repro.core.topology import NFS_PORT, Testbed
from repro.crypto.drbg import Drbg
from repro.gsi import CertificateAuthority
from repro.proxy.client_proxy import ProxyCacheConfig, SgfsClientProxy
from repro.proxy.server_proxy import SgfsServerProxy
from repro.rpc.auth import AuthSys
from repro.tls import SecurityConfig
from repro.tls.channel import client_handshake


def build_shared(consistency: str, ttl: float = 2.0):
    """Two sessions for the same user/filesystem, separate proxies."""
    tb = Testbed.build(rtt=0.005)
    sim = tb.sim
    rng = Drbg(f"shared-{consistency}")
    ca = CertificateAuthority(CA_DN, rng=rng.fork("ca"), key_bits=768)
    anchors = [ca.certificate]
    user = ca.issue_identity(USER_DN, rng=rng.fork("user"), key_bits=768)
    host_id = ca.issue_identity(SERVER_DN, rng=rng.fork("host"), key_bits=768)

    mounts = []
    for i in range(2):
        server_cfg = SecurityConfig.for_session(
            host_id, anchors, "null-sha1", rng=rng.fork(f"s{i}")
        )
        client_cfg = SecurityConfig.for_session(
            user, anchors, "null-sha1", rng=rng.fork(f"c{i}")
        )
        sproxy = SgfsServerProxy(
            sim, tb.server, 4600 + i, NFS_PORT,
            accounts=tb.server_accounts, gridmap=_session_gridmap(), fs=tb.fs,
            security=server_cfg,
        )
        sproxy.start()

        def upstream_factory(port=4600 + i, cfg=client_cfg):
            sock = yield from tb.client.connect("server", port)
            return (yield from client_handshake(sim, sock, cfg))

        cproxy = SgfsClientProxy(
            sim, tb.client, 4900 + i, upstream_factory,
            cache=ProxyCacheConfig(
                enabled=True, consistency=consistency, consistency_ttl=ttl,
            ),
        )

        def build(cproxy=cproxy, port=4900 + i):
            yield from cproxy.start()
            return (yield from _kernel_client(
                tb, tb.client.name, port,
                AuthSys(uid=JOB_ACCOUNT.uid, gid=JOB_ACCOUNT.gid), None,
            ))

        client = tb.run(build())
        # bound the kernel's own caching so the proxy layer is what we test
        client.attrs.ac_reg_min = client.attrs.ac_reg_max = 0.1
        mounts.append((client, cproxy))
    return tb, mounts


def write_then_flush(tb, writer_client, writer_proxy, path, data):
    def go():
        yield from writer_client.write_file(path, data)
        yield from writer_proxy.writeback()

    tb.run(go())


def read_via(tb, client, path, drop_kernel_cache=True):
    def go():
        if drop_kernel_cache:
            client.pages.clear()
            client.attrs.clear()
        return (yield from client.read_file(path))

    return tb.run(go())


def test_session_consistency_serves_stale_data():
    tb, mounts = build_shared("session")
    (writer, wproxy), (reader, rproxy) = mounts
    write_then_flush(tb, writer, wproxy, "/shared.txt", b"version-1")
    assert read_via(tb, reader, "/shared.txt") == b"version-1"
    write_then_flush(tb, writer, wproxy, "/shared.txt", b"version-2")
    # far beyond any TTL — the session cache never revalidates
    tb.sim.run(until=tb.sim.now + 60.0)
    assert read_via(tb, reader, "/shared.txt") == b"version-1"  # stale!


def test_poll_consistency_bounds_staleness():
    tb, mounts = build_shared("poll", ttl=2.0)
    (writer, wproxy), (reader, rproxy) = mounts
    write_then_flush(tb, writer, wproxy, "/shared.txt", b"version-1")
    assert read_via(tb, reader, "/shared.txt") == b"version-1"
    write_then_flush(tb, writer, wproxy, "/shared.txt", b"version-2")
    # within the TTL the reader may still be stale
    stale = read_via(tb, reader, "/shared.txt")
    assert stale in (b"version-1", b"version-2")
    # beyond the TTL it must see the new version
    tb.sim.run(until=tb.sim.now + 2.5)
    assert read_via(tb, reader, "/shared.txt") == b"version-2"


def test_poll_consistency_cheap_when_unchanged():
    tb, mounts = build_shared("poll", ttl=1.0)
    (writer, wproxy), (reader, rproxy) = mounts
    write_then_flush(tb, writer, wproxy, "/static.txt", b"immutable")
    read_via(tb, reader, "/static.txt")
    misses_before = rproxy.stats["data_misses"]
    tb.sim.run(until=tb.sim.now + 1.5)
    assert read_via(tb, reader, "/static.txt") == b"immutable"
    # a revalidation GETATTR happened, but the data was NOT refetched
    assert rproxy.stats["revalidations"] >= 1
    assert rproxy.stats["revalidation_drops"] == 0
    assert rproxy.stats["data_misses"] == misses_before
    assert rproxy.stats["data_hits"] >= 1


def test_poll_keeps_own_dirty_files_authoritative():
    tb, mounts = build_shared("poll", ttl=0.5)
    (writer, wproxy), _ = mounts

    def go():
        yield from writer.write_file("/mine.txt", b"locally dirty")
        yield tb.sim.timeout(1.0)  # TTL expires while dirty
        writer.pages.clear()
        writer.attrs.clear()
        return (yield from writer.read_file("/mine.txt"))

    # the server copy is empty (not yet written back); the session must
    # keep serving its own dirty data
    assert tb.run(go()) == b"locally dirty"


def test_bad_consistency_mode_rejected():
    with pytest.raises(ValueError, match="consistency"):
        ProxyCacheConfig(consistency="psychic")
