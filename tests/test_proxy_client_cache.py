"""Client-side proxy disk cache: hits, write-back, discard semantics."""

import pytest

from repro.core import Testbed, setup_sgfs
from repro.core.topology import SERVER_PROXY_PORT
from repro.vfs.fs import Credentials

ROOT = Credentials(0, 0)


def cached_mount(rtt=0.040):
    tb = Testbed.build(rtt=rtt)
    mount = setup_sgfs(tb, disk_cache=True)
    return tb, mount


def test_writes_absorbed_locally():
    tb, mount = cached_mount()

    def job():
        yield from mount.client.write_file("/w.bin", b"d" * 65536)

    tb.run(job())
    stats = mount.client_proxy.stats
    assert stats["writes_absorbed"] > 0
    # the file exists on the server (CREATE forwarded) but carries no
    # data yet — write-back has not run
    node = tb.fs.resolve("/w.bin", ROOT)
    assert node.size == 0
    assert mount.client_proxy.dirty_bytes == 65536


def test_writeback_delivers_data_to_server():
    tb, mount = cached_mount()

    def job():
        yield from mount.client.write_file("/w.bin", b"e" * 65536)

    tb.run(job())
    wb_seconds, blocks, nbytes = tb.run(mount.finish())
    assert blocks == 2 and nbytes == 65536
    assert wb_seconds > 0
    node = tb.fs.resolve("/w.bin", ROOT)
    assert bytes(node.data) == b"e" * 65536


def test_read_after_local_write_hits_cache():
    tb, mount = cached_mount()

    def job():
        cl = mount.client
        yield from cl.write_file("/f.bin", b"f" * 65536)
        cl.pages.clear()  # defeat the kernel page cache
        data = yield from cl.read_file("/f.bin")
        return data

    assert tb.run(job()) == b"f" * 65536
    assert mount.client_proxy.stats["data_hits"] > 0
    # reads never crossed the WAN: server still has the empty file
    assert tb.fs.resolve("/f.bin", ROOT).size == 0


def test_removed_file_never_written_back():
    """The Seismic temporaries effect: deleted dirty data is discarded."""
    tb, mount = cached_mount()

    def job():
        cl = mount.client
        yield from cl.write_file("/temp.bin", b"t" * 65536)
        yield from cl.unlink("/temp.bin")

    tb.run(job())
    assert mount.client_proxy.dirty_bytes == 0
    _wb, blocks, nbytes = tb.run(mount.finish())
    assert (blocks, nbytes) == (0, 0)


def test_commit_answered_locally_under_write_back():
    tb, mount = cached_mount()
    forwarded_before = None

    def job():
        nonlocal forwarded_before
        cl = mount.client
        f = yield from cl.open("/c.bin", create=True)
        yield from cl.write(f, 0, b"c" * 32768)
        forwarded_before = mount.client_proxy.stats["forwarded"]
        yield from cl.fsync(f)  # WRITE flush + COMMIT — all absorbed
        yield from cl.close(f)

    tb.run(job())
    assert mount.client_proxy.stats["forwarded"] == forwarded_before


def test_metadata_cache_avoids_wan_round_trips():
    tb, mount = cached_mount()

    def job():
        cl = mount.client
        yield from cl.write_file("/m.bin", b"m")
        # defeat kernel caches so GETATTRs reach the proxy
        forwarded_before = mount.client_proxy.stats["forwarded"]
        for _ in range(5):
            cl.attrs.clear()
            yield from cl.stat("/m.bin")
        return mount.client_proxy.stats["forwarded"] - forwarded_before

    assert tb.run(job()) == 0
    assert mount.client_proxy.stats["attr_hits"] >= 5


def test_cache_disabled_forwards_everything():
    tb = Testbed.build()
    mount = setup_sgfs(tb, disk_cache=False)

    def job():
        cl = mount.client
        yield from cl.write_file("/n.bin", b"n" * 32768)
        data = yield from cl.read_file("/n.bin")
        return data

    assert tb.run(job()) == b"n" * 32768
    assert mount.client_proxy.stats["local_replies"] == 0
    # with no write-back, the data reached the server immediately
    assert tb.fs.resolve("/n.bin", ROOT).size == 32768


def test_setattr_truncate_drops_cached_blocks():
    tb, mount = cached_mount()

    def job():
        cl = mount.client
        yield from cl.write_file("/t.bin", b"t" * 32768)
        f = yield from cl.open("/t.bin", truncate=True)
        yield from cl.close(f)
        return mount.client_proxy.dirty_bytes

    assert tb.run(job()) == 0


def test_disk_cache_charges_disk_time():
    tb, mount = cached_mount()

    def job():
        cl = mount.client
        yield from cl.write_file("/d.bin", b"d" * 32768)
        yield from cl.read_file("/d.bin")  # prime ACCESS caches (1 WAN trip)
        cl.pages.clear()
        t0 = tb.sim.now
        yield from cl.read_file("/d.bin")
        return tb.sim.now - t0

    elapsed = tb.run(job())
    # a warm cache hit costs disk time (>1ms) but far less than the 40ms RTT
    assert 0.001 < elapsed < 0.040


def test_rename_invalidates_proxy_lookup_cache():
    tb, mount = cached_mount()

    def job():
        cl = mount.client
        yield from cl.write_file("/old.bin", b"o" * 100)
        yield from cl.rename("/old.bin", "/new.bin")
        cl.names.clear()
        cl.attrs.clear()
        data = yield from cl.read_file("/new.bin")
        exists = yield from cl.exists("/old.bin")
        return data, exists

    data, exists = tb.run(job())
    assert data == b"o" * 100 and not exists
