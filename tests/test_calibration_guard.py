"""Calibration regression guard.

The figure benchmarks assert *relative* shapes; these tests pin the
small set of absolute anchors the calibration promises, so an innocent
refactor that silently shifts the cost model fails here with a clear
message instead of surfacing as a mysterious benchmark drift.
"""

import pytest

from repro.core import Testbed, setup_nfs_v3
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.harness import run_iozone

MB = 1024 * 1024


def test_lan_rtt_anchor():
    """LAN RTT ≈ 0.3 ms, the paper's measured value (§6.2.2)."""
    tb = Testbed.build(rtt=0.0)
    assert tb.measured_rtt == pytest.approx(0.0003, rel=0.05)


def test_wan_rtt_configured_exactly():
    tb = Testbed.build(rtt=0.080)
    assert tb.measured_rtt == pytest.approx(0.0803, rel=0.01)


def test_nfs_bulk_throughput_anchor():
    """Kernel NFS sequential read ≈ 35–42 MB/s (the paper's ~38 MB/s
    VMware-era ceiling)."""
    r = run_iozone("nfs-v3", rtt=0.0, file_size=4 * MB,
                   setup_kwargs={"cache_bytes": 2 * MB})
    throughput = 8 * MB / r.total  # reads the file twice
    assert 33e6 < throughput < 45e6, f"{throughput / 1e6:.1f} MB/s"


def test_small_op_latency_anchor():
    """A cold metadata op in LAN lands in the high-hundreds of µs."""
    tb = Testbed.build(rtt=0.0)
    mount = setup_nfs_v3(tb)

    def job():
        t0 = tb.sim.now
        yield from mount.client.mkdir("/anchor")
        return tb.sim.now - t0

    latency = tb.run(job())
    assert 0.0005 < latency < 0.020, latency


def test_calibration_constants_sanity():
    cal = DEFAULT_CALIBRATION
    assert cal.cpu_hz == 3.2e9  # the paper's Xeons
    assert cal.block_size == 32768  # the paper's transfer size
    # proxy overhead must be latency-dominated (Figs. 4 vs 5 split)
    assert cal.proxy_cost.latency.per_byte > 5 * cal.proxy_cost.cpu.per_byte
    # ssh must dwarf the plain proxy per byte (the 6x penalty)
    assert cal.ssh_cost.latency.per_byte > 10 * cal.proxy_cost.latency.per_byte
    # cache-disk hits must be slower than LAN RTT but faster than WAN
    assert 0.0003 < cal.cache_disk_access < 0.005


def test_suite_cycle_ladder():
    from repro.crypto.suites import SUITE_AES_SHA, SUITE_NULL_SHA, SUITE_RC4_SHA

    sha = SUITE_NULL_SHA.cycles_per_byte
    rc = SUITE_RC4_SHA.cycles_per_byte
    aes = SUITE_AES_SHA.cycles_per_byte
    # the +9/+15/+50 ladder needs roughly rc ≈ 2×sha, aes ≈ 6×sha
    assert sha > 0
    assert 1.5 * sha < rc < 3.0 * sha
    assert 5.0 * sha < aes < 8.0 * sha
