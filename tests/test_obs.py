"""Telemetry subsystem (repro.obs): metrics, spans, determinism, CLI."""

import json

import pytest

from repro.cli import main, resolve_preset
from repro.core.topology import Testbed
from repro.harness import RpcTracer, run_iozone
from repro.nfs.cache import CacheStats
from repro.obs import (
    Histogram,
    LATENCY_BOUNDS,
    NULL_REGISTRY,
    NULL_TRACER,
    Registry,
    SpanTracer,
    percentile,
)
from repro.obs.metrics import NULL_INSTRUMENT


# -- percentile (the shared definition fixing trace.py's off-by-one) ----------


def test_percentile_even_length_median_is_midpoint():
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.50) == 2.5


def test_percentile_small_sample_p95_is_not_max():
    # the old int(len * 0.95) indexing returned the max for n < 20
    data = [1.0, 2.0, 3.0, 4.0, 100.0]
    p95 = percentile(data, 0.95)
    assert 4.0 < p95 < 100.0


def test_percentile_extremes_and_errors():
    data = [5.0, 1.0, 3.0]  # unsorted on purpose
    assert percentile(data, 0.0) == 1.0
    assert percentile(data, 1.0) == 5.0
    assert percentile([7.0], 0.5) == 7.0
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


# -- histograms ---------------------------------------------------------------


def test_histogram_bucket_edges_are_inclusive_upper():
    h = Histogram(bounds=(1.0, 2.0, 4.0))
    for v in (0.5, 1.0, 1.5, 2.0, 4.0, 9.0):
        h.observe(v)
    # v <= bound lands in that bucket; 9.0 overflows
    assert h.counts == [2, 2, 1, 1]
    assert h.count == 6
    assert h.min == 0.5 and h.max == 9.0


def test_histogram_single_value_quantiles_collapse():
    h = Histogram()
    h.observe(0.007)
    ex = h.export()
    assert ex["p50"] == ex["p95"] == ex["p99"] == 0.007
    assert ex["min"] == ex["max"] == 0.007


def test_histogram_quantiles_clamped_to_observed_range():
    h = Histogram()
    for v in (0.002, 0.0025, 0.003, 0.02, 0.021):
        h.observe(v)
    for q in (0.0, 0.5, 0.95, 1.0):
        assert 0.002 <= h.quantile(q) <= 0.021
    assert h.quantile(0.0) < h.quantile(1.0)


def test_percentile_q_zero_boundary_exact():
    # q=0 and q=1 must hit the extremes exactly even for n=1
    assert percentile([42.0], 0.0) == 42.0
    assert percentile([42.0], 1.0) == 42.0
    with pytest.raises(ValueError):
        percentile([1.0, 2.0], -0.01)


def test_histogram_quantile_empty_is_zero_not_error():
    # unlike percentile([], q), an empty histogram degrades to 0.0 so
    # report code can query unpopulated instruments unconditionally
    h = Histogram()
    assert h.quantile(0.0) == 0.0
    assert h.quantile(0.5) == 0.0
    assert h.quantile(1.0) == 0.0
    assert h.export() == {"count": 0, "sum": 0.0}


def test_histogram_quantile_single_sample_all_q():
    h = Histogram()
    h.observe(0.42)
    for q in (0.0, 0.25, 0.5, 0.75, 1.0):
        assert h.quantile(q) == pytest.approx(0.42)


def test_histogram_quantile_out_of_range_raises():
    h = Histogram()
    h.observe(1.0)
    with pytest.raises(ValueError):
        h.quantile(-0.1)
    with pytest.raises(ValueError):
        h.quantile(1.01)
    # out-of-range raises even on an empty histogram (validation first)
    with pytest.raises(ValueError):
        Histogram().quantile(2.0)


def test_histogram_quantile_extremes_pin_to_min_max():
    h = Histogram()
    for v in (0.002, 0.05, 0.4, 2.0, 80.0):
        h.observe(v)
    assert h.quantile(0.0) >= h.min
    assert h.quantile(1.0) <= h.max
    assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(bounds=())


def test_latency_bounds_strictly_increasing():
    assert all(a < b for a, b in zip(LATENCY_BOUNDS, LATENCY_BOUNDS[1:]))


# -- registry -----------------------------------------------------------------


def test_registry_get_or_create_and_labels():
    reg = Registry()
    c1 = reg.counter("rpc.client", "bytes", account="alice")
    c2 = reg.counter("rpc.client", "bytes", account="alice")
    c3 = reg.counter("rpc.client", "bytes", account="bob")
    assert c1 is c2 and c1 is not c3
    c1.inc(10)
    c3.inc(1)
    snap = reg.snapshot()
    assert snap["rpc.client"]["bytes{account=alice}"] == 10
    assert snap["rpc.client"]["bytes{account=bob}"] == 1


def test_registry_snapshot_nested_sorted_and_collectors():
    reg = Registry()
    reg.counter("b.comp", "z").inc()
    reg.counter("b.comp", "a").inc(2)
    reg.add_collector("a.comp", lambda: {"pulled": 7})
    snap = reg.snapshot()
    assert list(snap) == ["a.comp", "b.comp"]
    assert list(snap["b.comp"]) == ["a", "z"]
    assert snap["a.comp"]["pulled"] == 7
    # snapshot is json-serializable as-is
    json.dumps(snap)


def test_null_registry_is_inert():
    assert NULL_REGISTRY.enabled is False
    assert NULL_REGISTRY.counter("x", "y") is NULL_INSTRUMENT
    assert NULL_REGISTRY.histogram("x", "y") is NULL_INSTRUMENT
    NULL_REGISTRY.counter("x", "y").inc()
    NULL_REGISTRY.add_collector("x", lambda: {"boom": 1})
    assert NULL_REGISTRY.snapshot() == {}


# -- span tracer --------------------------------------------------------------


class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class _Owner:
    def __init__(self, name):
        self.name = name


def test_span_nesting_records_parent_child():
    clock = _FakeClock()
    tr = SpanTracer(clock=clock)
    with tr.span("outer", cat="rpc") as outer:
        clock.t = 1.0
        with tr.span("inner", cat="tls") as inner:
            clock.t = 2.0
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert inner.start == 1.0 and inner.end == 2.0
    assert outer.end == 2.0
    # inner closes first, so it lands in the buffer first
    assert [s.name for s in tr.spans] == ["inner", "outer"]


def test_spans_on_different_processes_do_not_nest():
    clock = _FakeClock()
    a, b = _Owner("proc-a"), _Owner("proc-b")
    current = {"owner": a}
    tr = SpanTracer(clock=clock, current_track=lambda: current["owner"])
    ctx_a = tr.span("a-work", cat="rpc")
    sa = ctx_a.__enter__()
    current["owner"] = b  # simulated context switch
    with tr.span("b-work", cat="rpc") as sb:
        clock.t = 1.0
    current["owner"] = a
    ctx_a.__exit__(None, None, None)
    assert sb.parent_id is None  # b is not a child of a's open span
    assert sa.tid != sb.tid


def test_chrome_trace_schema_and_determinism():
    def build():
        clock = _FakeClock()
        owner = _Owner("worker")
        tr = SpanTracer(clock=clock, current_track=lambda: owner)
        with tr.span("rpc.call", cat="rpc", proc="READ"):
            clock.t = 0.0015
        tr.instant("cache.hit", cat="nfs-cache")
        return tr

    tr = build()
    doc = tr.chrome_trace()
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert meta and meta[0]["args"]["name"] == "worker"
    assert len(xs) == 2
    ev = xs[0]
    assert ev["name"] == "rpc.call" and ev["cat"] == "rpc"
    assert ev["ts"] == 0.0 and ev["dur"] == 1500.0  # microseconds
    assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
    assert ev["args"]["proc"] == "READ" and "span_id" in ev["args"]
    # identical traces export byte-identically
    assert build().to_json() == tr.to_json()


def test_span_ring_buffer_drops_oldest():
    tr = SpanTracer(clock=_FakeClock(), capacity=2)
    for i in range(3):
        with tr.span(f"s{i}"):
            pass
    assert tr.dropped == 1
    assert [s.name for s in tr.spans] == ["s1", "s2"]


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    with NULL_TRACER.span("anything", cat="x", k=1) as s:
        assert s is None
    NULL_TRACER.instant("marker")
    assert NULL_TRACER.chrome_trace()["traceEvents"] == []


# -- CacheStats unification ---------------------------------------------------


def test_cache_stats_counts_and_rates():
    st = CacheStats()
    st.hit()
    st.hit()
    st.miss()
    st.evict()
    assert (st.hits, st.misses, st.evictions) == (2, 1, 1)
    assert st.lookups == 3
    assert st.hit_rate == pytest.approx(2 / 3)
    assert st.export() == {"hits": 2, "misses": 1, "evictions": 1}
    assert CacheStats().hit_rate == 0.0


def test_cache_stats_register_feeds_registry():
    reg = Registry()
    st = CacheStats()
    st.register(reg, "nfs.cache", "attr")
    st.hit()
    snap = reg.snapshot()
    assert snap["nfs.cache"]["attr"] == {"hits": 1, "misses": 0, "evictions": 0}


def test_nfs_client_cache_stats_keys_are_uniform():
    from repro.core import setup_nfs_v3

    tb = Testbed.build()
    mount = setup_nfs_v3(tb)

    def job():
        yield from mount.client.write_file("/f", b"x" * 5000)
        yield from mount.client.read_file("/f")

    tb.run(job())
    stats = mount.client.cache_stats()
    for cache in ("attr", "name", "access", "page"):
        assert set(stats[cache]) == {"hits", "misses", "evictions"}


# -- RpcTracer on the listener hook -------------------------------------------


def test_rpc_tracer_install_is_idempotent():
    from repro.core import setup_nfs_v3

    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    t1 = RpcTracer.install(mount.client)
    t2 = RpcTracer.install(mount.client)
    assert t1 is t2
    assert len(mount.client.rpc_listeners) == 1


def test_rpc_tracer_uninstall_detaches():
    from repro.core import setup_nfs_v3

    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    tracer = RpcTracer.install(mount.client)
    tb.run(mount.client.mkdir("/d"))
    n = len(tracer.records)
    assert n > 0
    tracer.uninstall()
    assert mount.client.rpc_listeners == []
    tb.run(mount.client.mkdir("/d2"))
    assert len(tracer.records) == n  # no new records after uninstall
    tracer.uninstall()  # second uninstall is a no-op
    # a fresh install after uninstall attaches a new tracer
    assert RpcTracer.install(mount.client) is not tracer


def test_rpc_tracer_survives_rpc_replacement():
    from repro.core import setup_nfs_v3

    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    tracer = RpcTracer.install(mount.client)
    # a hard-mount reconnect swaps client.rpc wholesale; the hook lives
    # on the NfsClient, so it must remain attached
    mount.client.rpc = mount.client.rpc
    assert tracer._on_rpc in mount.client.rpc_listeners


# -- end-to-end determinism + layer coverage ----------------------------------


def _traced_run():
    # disk_cache=True so the proxy's cache disk shows up in the trace
    # (the IOzone file is preloaded server-side, so the server disk
    # alone would stay idle on this read-only workload)
    return run_iozone(
        "sgfs", rtt=0.0, file_size=512 * 1024,
        setup_kwargs={"cache_bytes": 256 * 1024, "disk_cache": True},
        telemetry=True, tracing=True,
    )


def test_identical_runs_export_identically():
    r1, r2 = _traced_run(), _traced_run()
    assert r1.total == r2.total
    snap1 = json.dumps(r1.stats, sort_keys=True)
    snap2 = json.dumps(r2.stats, sort_keys=True)
    assert snap1 == snap2
    assert r1.trace_json() == r2.trace_json()


def test_traced_sgfs_run_covers_the_stack():
    r = _traced_run()
    cats = r.tracer.categories()
    assert {"rpc", "tls", "proxy", "nfs-cache", "disk"} <= cats
    components = set(r.stats)
    assert {"rpc.client", "rpc.server", "tls", "proxy.client",
            "proxy.server", "nfs.cache", "nfs.client", "sim", "net"} <= components
    doc = json.loads(r.trace_json())
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_telemetry_disabled_run_matches_enabled_virtual_time():
    base = run_iozone("nfs-v3", rtt=0.0, file_size=256 * 1024,
                      telemetry=False)
    obs = run_iozone("nfs-v3", rtt=0.0, file_size=256 * 1024,
                     telemetry=True, tracing=True)
    assert base.total == obs.total
    assert base.stats.get("sim") is None  # no registry when disabled
    assert "sim" in obs.stats


# -- CLI presets + commands ---------------------------------------------------


def test_resolve_preset():
    assert resolve_preset("wan-sgfs-cache") == ("sgfs", 0.040, {"disk_cache": True})
    assert resolve_preset("lan-nfs") == ("nfs-v3", 0.0, None)
    assert resolve_preset("sgfs") == ("sgfs", 0.0, None)
    assert resolve_preset("wan-nfs") == ("nfs-v3", 0.040, None)
    with pytest.raises(ValueError):
        resolve_preset("lan-bogus")
    with pytest.raises(ValueError):
        resolve_preset("lan-nfs-cache")  # disk cache needs a proxy


def test_cli_stats_json(capsys_out=None):
    import io

    out = io.StringIO()
    rc = main(["stats", "lan-nfs", "iozone", "--json"], out=out)
    assert rc == 0
    doc = json.loads(out.getvalue())
    assert "rpc.client" in doc and "sim" in doc


def test_cli_stats_rejects_unknown_preset():
    import io

    out = io.StringIO()
    rc = main(["stats", "lan-bogus", "iozone"], out=out)
    assert rc == 2
    assert "unknown setup" in out.getvalue()


def test_cli_trace_writes_chrome_json(tmp_path):
    import io

    out_file = tmp_path / "trace.json"
    out = io.StringIO()
    rc = main(["trace", "sgfs", "iozone", "--out", str(out_file)], out=out)
    assert rc == 0
    doc = json.loads(out_file.read_text())
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert xs and {"ts", "dur", "pid", "tid", "name", "cat"} <= set(xs[0])
    assert "perfetto" in out.getvalue()


def test_merge_metric_rules():
    from repro.obs import merge_metric

    assert merge_metric(2, 3) == 5
    assert merge_metric(1.5, 2) == 3.5
    # flags keep the newer value, never sum
    assert merge_metric(True, True) is True
    assert merge_metric(3, True) is True
    # dicts merge recursively
    assert merge_metric(
        {"hits": 1, "inner": {"a": 2}}, {"hits": 4, "inner": {"a": 3, "b": 1}}
    ) == {"hits": 5, "inner": {"a": 5, "b": 1}}
    # non-summable payloads keep the newer value
    assert merge_metric("x", "y") == "y"


def test_registry_snapshot_merges_colliding_collectors():
    """N per-session collectors reporting the same names must sum, not
    last-writer-win (the fleet regression this guards)."""
    reg = Registry()
    for hits in (3, 4):
        reg.add_collector("nfs.cache", lambda hits=hits: {"hits": hits})
    snap = reg.snapshot()
    assert snap["nfs.cache"]["hits"] == 7


def test_merge_metric_gauges_take_max_not_sum():
    """Level-style metrics (queue depths, cache entry counts) from N
    colliding collectors must merge by max: summing two snapshots of a
    6-deep queue does not make it 12 deep (the gauge regression this
    guards)."""
    from repro.obs import GAUGE_METRICS, merge_metric

    assert "queue_depth" in GAUGE_METRICS
    assert merge_metric(6, 4, name="queue_depth") == 6
    assert merge_metric(4, 6, name="queue_depth") == 6
    # labelled spellings strip to the base name
    assert merge_metric(6, 4, name="queue_depth{server=nfsd}") == 6
    # counters still sum, even with labels
    assert merge_metric(6, 4, name="queue_wait{server=nfsd}") == 10
    # the gauge rule applies through nested dict merges
    merged = merge_metric(
        {"queue_depth": 6, "calls": 10},
        {"queue_depth": 4, "calls": 7},
    )
    assert merged == {"queue_depth": 6, "calls": 17}


def test_registry_snapshot_merges_gauges_by_max():
    reg = Registry()
    for depth, calls in ((6, 10), (4, 7)):
        reg.add_collector(
            "rpc.server",
            lambda depth=depth, calls=calls: {
                "queue_depth{server=nfsd}": depth,
                "calls": calls,
            },
        )
    snap = reg.snapshot()
    assert snap["rpc.server"]["queue_depth{server=nfsd}"] == 6
    assert snap["rpc.server"]["calls"] == 17
