"""Golden virtual-runtime regression tests for every setup builder.

The event-kernel fast path (zero-delay lane, callback-chained packet
delivery) reorganises *how* events are dispatched but must not change
*what* happens: virtual-time results and telemetry snapshots are
required to be byte-identical to the single-heap kernel.  These goldens
were captured from the pre-fast-path tree with
``tests/_capture_goldens.py`` and pin:

- ``total`` / ``writeback`` virtual seconds as exact float bit patterns
  (``float.hex()`` — no tolerance),
- a sha256 over the full :class:`repro.obs.Registry` snapshot,
  **excluding** the ``sim`` component: the kernel's own dispatch
  counters (``events_dispatched``, ``heap_pushes``, ``process_wakeups``)
  are the quantity the fast path exists to reduce, and are tracked by
  ``benchmarks/perf_wallclock.py`` instead.

If one of these fails after a scheduler change, the change altered
event *ordering*, not just dispatch cost — that is a correctness bug.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core.setups import SETUP_BUILDERS
from repro.harness import run_iozone, run_mab, run_postmark
from repro.workloads.postmark import PostMarkConfig

FILE_SIZE = 256 * 1024
CACHE_BYTES = 128 * 1024
WAN_RTT = 0.080

#: label -> (total.hex(), writeback.hex(), snapshot sha256 sans "sim").
GOLDEN = {
    "lan-gfs": ("0x1.587f0540471d1p-5", "0x0.0p+0",
                "0eb98feed7bf20100b2669b13b5069bf61fedd6e273e3b21b47195075fddaadb"),
    "lan-gfs-ssh": ("0x1.ebf6972ae74dap-3", "0x0.0p+0",
                    "4daf30889a80b0b491e4a27b7406083f678c1bad49d065b16aab8b09f4217e3f"),
    "lan-nfs-v3": ("0x1.3b3084cf7f7c0p-6", "0x0.0p+0",
                   "72020243c19f6c9c3585bd61a12e1b9074a36ae4e827d95915b6fe70bb9fcb48"),
    "lan-nfs-v4": ("0x1.767a1650648d6p-6", "0x0.0p+0",
                   "bbe3c87782d8109a1c18c5574da9e6b28a904b3bd977e91e8a2134c912123a05"),
    "lan-sfs": ("0x1.d0d9137b33b14p-5", "0x0.0p+0",
                "b3b03ca2724df9c42ca13d87ffba83608b2a84d525129b22d2932fcd615468a7"),
    "lan-sgfs": ("0x1.ef9223b1f5828p-5", "0x0.0p+0",
                 "915da2382c36c9ddd332dc8ad3a36f5ac811dd975ab638d5dfafc0fd83d6d063"),
    "lan-sgfs-aes": ("0x1.ef9223b1f5828p-5", "0x0.0p+0",
                     "915da2382c36c9ddd332dc8ad3a36f5ac811dd975ab638d5dfafc0fd83d6d063"),
    "lan-sgfs-rc": ("0x1.85f7038585342p-5", "0x0.0p+0",
                    "d3af31af458652f7760a2b71fe3afcf1c079c69b1b04bcfaa2597d00c5c60bf0"),
    "lan-sgfs-sha": ("0x1.73028e2835f84p-5", "0x0.0p+0",
                     "0fee88c364c4394042dd7e3c28ca273d0096eae981cc3aad090e21bee9e42ffd"),
    "wan-gfs": ("0x1.a45d91c39bd36p+0", "0x0.0p+0",
                "08a89bcf27f9fec3fd49e22fbdfb8b9f4fe45da3191b5c962a055c438743e66b"),
    "wan-gfs-ssh": ("0x1.000717872956ep+1", "0x0.0p+0",
                    "ee42d7f56929db4f282ae11736ece69767b2cf280ef1e9271238f64b95c8b43f"),
    "wan-nfs-v3": ("0x1.f417d00c6496ap-1", "0x0.0p+0",
                   "7ecc6b4069b98453098a581cbf8fa7f641ef5c6151799f2db66dc5ec4ddc84b0"),
    "wan-nfs-v4": ("0x1.f5fde87e88beep-1", "0x0.0p+0",
                   "675730d2743b4ed99a98ffb9f22dce74017e87c3a4ec4e8447b2ebae339affb8"),
    "wan-sfs": ("0x1.044957f80294ap+0", "0x0.0p+0",
                "950cb9a92e775d5ee90a18a4d9f42295d68b33b18bccba62da0bd3bd7a432a91"),
    "wan-sgfs": ("0x1.a9162ab729484p+0", "0x0.0p+0",
                 "004d35865116f567d9832a6f36787a4c3e4470ffeb269b6aba5d987307ce167a"),
    "wan-sgfs-aes": ("0x1.a9162ab729484p+0", "0x0.0p+0",
                     "004d35865116f567d9832a6f36787a4c3e4470ffeb269b6aba5d987307ce167a"),
    "wan-sgfs-rc": ("0x1.a5c951b5c5c52p+0", "0x0.0p+0",
                    "4ab17bc26cea2fda544596fc011db83c6b8550eb926b7996f5a262e640cb9fe1"),
    "wan-sgfs-sha": ("0x1.a531ae0adb48cp+0", "0x0.0p+0",
                     "92fb88a4687203041662c6cce25501d82d3fed1517d124df977a84a8ead259e5"),
}


def _snapshot_sha256(result) -> str:
    stats = {k: v for k, v in result.stats.items() if k != "sim"}
    return hashlib.sha256(
        json.dumps(stats, sort_keys=True, default=repr).encode()
    ).hexdigest()


def test_golden_table_covers_every_setup():
    expected = {f"{env}-{s}" for s in SETUP_BUILDERS for env in ("lan", "wan")}
    assert set(GOLDEN) == expected


@pytest.mark.parametrize("label", sorted(GOLDEN))
def test_iozone_golden_runtime(label):
    env, _, setup = label.partition("-")
    rtt = WAN_RTT if env == "wan" else 0.0
    r = run_iozone(setup, rtt=rtt, file_size=FILE_SIZE,
                   setup_kwargs={"cache_bytes": CACHE_BYTES}, telemetry=True)
    total_hex, writeback_hex, snap = GOLDEN[label]
    assert r.total == float.fromhex(total_hex), (
        f"{label}: virtual runtime drifted: {r.total.hex()} != {total_hex}")
    assert r.writeback_seconds == float.fromhex(writeback_hex)
    assert _snapshot_sha256(r) == snap, (
        f"{label}: telemetry snapshot (sans 'sim') changed")


def test_golden_trace_export_identical():
    """The Chrome-trace export is part of the determinism contract: the
    span stream must not move when dispatch internals change."""
    r = run_iozone("sgfs", rtt=0.0, file_size=512 * 1024,
                   setup_kwargs={"cache_bytes": 256 * 1024, "disk_cache": True},
                   telemetry=True, tracing=True)
    assert r.total == float.fromhex("0x1.b697846f8c496p-4")
    trace_sha = hashlib.sha256(r.trace_json().encode()).hexdigest()
    assert trace_sha == ("882113c25629abe180f702b15a52a2fd2"
                         "fa5e231d828defefc810edbb817142b")


def test_golden_postmark_wan_cache():
    cfg = PostMarkConfig(directories=5, files=25, transactions=50)
    r = run_postmark("sgfs", rtt=0.040, config=cfg,
                     setup_kwargs={"disk_cache": True})
    assert r.total == float.fromhex("0x1.0badf8e1baf9fp+3")
    assert r.writeback_seconds == float.fromhex("0x0.0p+0")


def test_golden_mab_gfs_ssh():
    r = run_mab("gfs-ssh", rtt=0.020)
    assert r.total == float.fromhex("0x1.520ee11d04967p+8")
    assert r.writeback_seconds == float.fromhex("0x0.0p+0")
