"""Golden virtual-runtime regression tests for every setup builder.

The event-kernel fast path (zero-delay lane, callback-chained packet
delivery) reorganises *how* events are dispatched but must not change
*what* happens: virtual-time results and telemetry snapshots are
required to be byte-identical to the single-heap kernel.  These goldens
were captured from the pre-fast-path tree with
``tests/_capture_goldens.py`` and pin:

- ``total`` / ``writeback`` virtual seconds as exact float bit patterns
  (``float.hex()`` — no tolerance),
- a sha256 over the full :class:`repro.obs.Registry` snapshot,
  **excluding** the ``sim`` component: the kernel's own dispatch
  counters (``events_dispatched``, ``heap_pushes``, ``process_wakeups``)
  are the quantity the fast path exists to reduce, and are tracked by
  ``benchmarks/perf_wallclock.py`` instead.

If one of these fails after a scheduler change, the change altered
event *ordering*, not just dispatch cost — that is a correctness bug.

Snapshot hashes were last re-captured when the ``sync`` component
(lock-wait counters/histograms) joined the registry; the ``total`` /
``writeback`` bit patterns have never moved.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core.setups import SETUP_BUILDERS
from repro.harness import run_iozone, run_mab, run_postmark
from repro.workloads.postmark import PostMarkConfig

FILE_SIZE = 256 * 1024
CACHE_BYTES = 128 * 1024
WAN_RTT = 0.080

#: label -> (total.hex(), writeback.hex(), snapshot sha256 sans "sim").
GOLDEN = {
    "lan-gfs": ("0x1.587f0540471d1p-5", "0x0.0p+0",
                 "28415e07a090206b34f6a5bc455311e2bda03df70dfb65cc8175488873798366"),
    "lan-gfs-ssh": ("0x1.ebf6972ae74dap-3", "0x0.0p+0",
                     "874c66a114e63ad47ce4dca063fc27a7655904ac9a7d145a7324c9a7c8990521"),
    "lan-nfs-v3": ("0x1.3b3084cf7f7c0p-6", "0x0.0p+0",
                    "b671a8b011e50414fbcc65ae0f5138f42d460851a224212acea74f9f0815cbdb"),
    "lan-nfs-v4": ("0x1.767a1650648d6p-6", "0x0.0p+0",
                    "c74200bf791f2ddb5d12e97fdbe10b412b9318df067a63a59087157794a44782"),
    "lan-sfs": ("0x1.d0d9137b33b14p-5", "0x0.0p+0",
                 "a7f7c3c034bf4643c14fcf02842895bf19975c97ac4961a3b90acd1abe8421f1"),
    "lan-sgfs": ("0x1.ef9223b1f5828p-5", "0x0.0p+0",
                  "9834a4c0a574b93a5ff32a8dbe105daf75be08943244815e80eda6627f0df39a"),
    "lan-sgfs-aes": ("0x1.ef9223b1f5828p-5", "0x0.0p+0",
                      "9834a4c0a574b93a5ff32a8dbe105daf75be08943244815e80eda6627f0df39a"),
    "lan-sgfs-rc": ("0x1.85f7038585342p-5", "0x0.0p+0",
                     "77e0fe4767cac5b587343859349c042d46bd82f8ffbcff1b345aecf0390953e0"),
    "lan-sgfs-sha": ("0x1.73028e2835f84p-5", "0x0.0p+0",
                      "fd556e5c272f331650fba828f7148702674f2ce7a3a51db6b5d202dd282bf1e6"),
    "wan-gfs": ("0x1.a45d91c39bd36p+0", "0x0.0p+0",
                 "0f64de1056dbf058601558706cda58babf52cc6057199553a2f72e466726ec53"),
    "wan-gfs-ssh": ("0x1.000717872956ep+1", "0x0.0p+0",
                     "31d510f6023d21bbfb5cbd80652a210ed905149d76d64949d28211be3aa3be3c"),
    "wan-nfs-v3": ("0x1.f417d00c6496ap-1", "0x0.0p+0",
                    "977a1553d7f2fc9099f4956bffce13bd4a2bf1bf877980668b6873b44d1cc8ce"),
    "wan-nfs-v4": ("0x1.f5fde87e88beep-1", "0x0.0p+0",
                    "c317e19ca35373c40c99baed50aebc8a675cd54e5b15ddb4f453270ec79e3490"),
    "wan-sfs": ("0x1.044957f80294ap+0", "0x0.0p+0",
                 "c8599b424e330e61d273131e1ca7ded13ee4d7228f022bb32419db5dda790d0f"),
    "wan-sgfs": ("0x1.a9162ab729484p+0", "0x0.0p+0",
                  "07a3acd960bcb4a5a65e825dfa69cfe1b8e00da2940df2aead0573417ecb4cda"),
    "wan-sgfs-aes": ("0x1.a9162ab729484p+0", "0x0.0p+0",
                      "07a3acd960bcb4a5a65e825dfa69cfe1b8e00da2940df2aead0573417ecb4cda"),
    "wan-sgfs-rc": ("0x1.a5c951b5c5c52p+0", "0x0.0p+0",
                     "ecb97676b1e4accb14ba9e6ce2a7915207a5daa782e4b8c63b1cf5f6ff641e4b"),
    "wan-sgfs-sha": ("0x1.a531ae0adb48cp+0", "0x0.0p+0",
                      "caddfb7053653b1df6bc4c4f94b0852859a7f661c4b147e8eb2c1b14eb75b014"),
}


def _snapshot_sha256(result) -> str:
    stats = {k: v for k, v in result.stats.items() if k != "sim"}
    return hashlib.sha256(
        json.dumps(stats, sort_keys=True, default=repr).encode()
    ).hexdigest()


def test_golden_table_covers_every_setup():
    expected = {f"{env}-{s}" for s in SETUP_BUILDERS for env in ("lan", "wan")}
    assert set(GOLDEN) == expected


@pytest.mark.parametrize("label", sorted(GOLDEN))
def test_iozone_golden_runtime(label):
    env, _, setup = label.partition("-")
    rtt = WAN_RTT if env == "wan" else 0.0
    r = run_iozone(setup, rtt=rtt, file_size=FILE_SIZE,
                   setup_kwargs={"cache_bytes": CACHE_BYTES}, telemetry=True)
    total_hex, writeback_hex, snap = GOLDEN[label]
    assert r.total == float.fromhex(total_hex), (
        f"{label}: virtual runtime drifted: {r.total.hex()} != {total_hex}")
    assert r.writeback_seconds == float.fromhex(writeback_hex)
    assert _snapshot_sha256(r) == snap, (
        f"{label}: telemetry snapshot (sans 'sim') changed")


def test_golden_trace_export_identical():
    """The Chrome-trace export is part of the determinism contract: the
    span stream must not move when dispatch internals change."""
    r = run_iozone("sgfs", rtt=0.0, file_size=512 * 1024,
                   setup_kwargs={"cache_bytes": 256 * 1024, "disk_cache": True},
                   telemetry=True, tracing=True)
    assert r.total == float.fromhex("0x1.b697846f8c496p-4")
    trace_sha = hashlib.sha256(r.trace_json().encode()).hexdigest()
    assert trace_sha == ("882113c25629abe180f702b15a52a2fd2"
                         "fa5e231d828defefc810edbb817142b")


def test_golden_postmark_wan_cache():
    cfg = PostMarkConfig(directories=5, files=25, transactions=50)
    r = run_postmark("sgfs", rtt=0.040, config=cfg,
                     setup_kwargs={"disk_cache": True})
    assert r.total == float.fromhex("0x1.0badf8e1baf9fp+3")
    assert r.writeback_seconds == float.fromhex("0x0.0p+0")


def test_golden_mab_gfs_ssh():
    r = run_mab("gfs-ssh", rtt=0.020)
    assert r.total == float.fromhex("0x1.520ee11d04967p+8")
    assert r.writeback_seconds == float.fromhex("0x0.0p+0")
