"""Golden virtual-runtime regression tests for every setup builder.

The event-kernel fast path (zero-delay lane, callback-chained packet
delivery) reorganises *how* events are dispatched but must not change
*what* happens: virtual-time results and telemetry snapshots are
required to be byte-identical to the single-heap kernel.  These goldens
were captured from the pre-fast-path tree with
``tests/_capture_goldens.py`` and pin:

- ``total`` / ``writeback`` virtual seconds as exact float bit patterns
  (``float.hex()`` — no tolerance),
- a sha256 over the full :class:`repro.obs.Registry` snapshot,
  **excluding** the ``sim`` component: the kernel's own dispatch
  counters (``events_dispatched``, ``heap_pushes``, ``process_wakeups``)
  are the quantity the fast path exists to reduce, and are tracked by
  ``benchmarks/perf_wallclock.py`` instead.

If one of these fails after a scheduler change, the change altered
event *ordering*, not just dispatch cost — that is a correctness bug.

Snapshot hashes were last re-captured when the server proxy's versioned
authz cache added ``authz_cache_{hits,misses,stale}`` to the
``proxy.server`` collector (before that: when ``writeback_errors``
joined the client proxy's pre-seeded schema, and when the ``sync``
component joined the registry).  The ``total`` / ``writeback`` bit
patterns have never moved — the authz cache consumes no virtual time.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core.setups import SETUP_BUILDERS
from repro.harness import run_iozone, run_mab, run_postmark
from repro.workloads.postmark import PostMarkConfig

FILE_SIZE = 256 * 1024
CACHE_BYTES = 128 * 1024
WAN_RTT = 0.080

#: label -> (total.hex(), writeback.hex(), snapshot sha256 sans "sim").
GOLDEN = {
    "lan-gfs": ("0x1.587f0540471d1p-5", "0x0.0p+0",
                "26999b4f520d5cb51a76893d4aaa4a901bd1509d278e0758a7cd1363cd64a9a9"),
    "lan-gfs-ssh": ("0x1.ebf6972ae74dap-3", "0x0.0p+0",
                    "a610becfa66000a66a1b93ca9fbdc6eaf8846dcd60a7667b69ef12caf453e193"),
    "lan-nfs-v3": ("0x1.3b3084cf7f7c0p-6", "0x0.0p+0",
                   "b671a8b011e50414fbcc65ae0f5138f42d460851a224212acea74f9f0815cbdb"),
    "lan-nfs-v4": ("0x1.767a1650648d6p-6", "0x0.0p+0",
                   "c74200bf791f2ddb5d12e97fdbe10b412b9318df067a63a59087157794a44782"),
    "lan-sfs": ("0x1.d0d9137b33b14p-5", "0x0.0p+0",
                "71bcc5d0d48e402ff37151f9a909fca0b102c3098c7055ca8ec178f5a98862ec"),
    "lan-sgfs": ("0x1.ef9223b1f5828p-5", "0x0.0p+0",
                 "e012530435c15974f8b4a914b5ce52552f10e1a76c8bd13f2958ded9a81fead8"),
    "lan-sgfs-aes": ("0x1.ef9223b1f5828p-5", "0x0.0p+0",
                     "e012530435c15974f8b4a914b5ce52552f10e1a76c8bd13f2958ded9a81fead8"),
    "lan-sgfs-rc": ("0x1.85f7038585342p-5", "0x0.0p+0",
                    "203a16a575b56bb0cb6d592f2d4de6d3504b95a1ae88421d502eb441265abe98"),
    "lan-sgfs-sha": ("0x1.73028e2835f84p-5", "0x0.0p+0",
                     "6b6cb45e6eead15859d295faa1c1078c13bba85519c644d049db9f1f9e0b8b60"),
    "wan-gfs": ("0x1.a45d91c39bd36p+0", "0x0.0p+0",
                "695b3b18fbf0b473aea07b95a924fb7996fb5c3a8147d1718f4ba8f568ed9cfe"),
    "wan-gfs-ssh": ("0x1.000717872956ep+1", "0x0.0p+0",
                    "dbe3948e111144d7c27c529559b546a8f8c41f70b15f430d884c434b935d452c"),
    "wan-nfs-v3": ("0x1.f417d00c6496ap-1", "0x0.0p+0",
                   "977a1553d7f2fc9099f4956bffce13bd4a2bf1bf877980668b6873b44d1cc8ce"),
    "wan-nfs-v4": ("0x1.f5fde87e88beep-1", "0x0.0p+0",
                   "c317e19ca35373c40c99baed50aebc8a675cd54e5b15ddb4f453270ec79e3490"),
    "wan-sfs": ("0x1.044957f80294ap+0", "0x0.0p+0",
                "49c387cce4992b42a098c697ab7718387774af856221a2cb2353418f18861332"),
    "wan-sgfs": ("0x1.a9162ab729484p+0", "0x0.0p+0",
                 "ad223ad0d18c8259ed79a4ffb966372de3214331da519ef5a8b5333188a27287"),
    "wan-sgfs-aes": ("0x1.a9162ab729484p+0", "0x0.0p+0",
                     "ad223ad0d18c8259ed79a4ffb966372de3214331da519ef5a8b5333188a27287"),
    "wan-sgfs-rc": ("0x1.a5c951b5c5c52p+0", "0x0.0p+0",
                    "643f08c44315bc701812e258a54d8306b5a936812e1ea225d0e2cf61a65c06ce"),
    "wan-sgfs-sha": ("0x1.a531ae0adb48cp+0", "0x0.0p+0",
                     "39564c4c5121a21a51f63f9b4156153b0b301b8a700cc92bb02b947fed696ac2"),
}


def _snapshot_sha256(result) -> str:
    stats = {k: v for k, v in result.stats.items() if k != "sim"}
    return hashlib.sha256(
        json.dumps(stats, sort_keys=True, default=repr).encode()
    ).hexdigest()


def test_golden_table_covers_every_setup():
    expected = {f"{env}-{s}" for s in SETUP_BUILDERS for env in ("lan", "wan")}
    assert set(GOLDEN) == expected


@pytest.mark.parametrize("label", sorted(GOLDEN))
def test_iozone_golden_runtime(label):
    env, _, setup = label.partition("-")
    rtt = WAN_RTT if env == "wan" else 0.0
    r = run_iozone(setup, rtt=rtt, file_size=FILE_SIZE,
                   setup_kwargs={"cache_bytes": CACHE_BYTES}, telemetry=True)
    total_hex, writeback_hex, snap = GOLDEN[label]
    assert r.total == float.fromhex(total_hex), (
        f"{label}: virtual runtime drifted: {r.total.hex()} != {total_hex}")
    assert r.writeback_seconds == float.fromhex(writeback_hex)
    assert _snapshot_sha256(r) == snap, (
        f"{label}: telemetry snapshot (sans 'sim') changed")


def test_golden_trace_export_identical():
    """The Chrome-trace export is part of the determinism contract: the
    span stream must not move when dispatch internals change."""
    r = run_iozone("sgfs", rtt=0.0, file_size=512 * 1024,
                   setup_kwargs={"cache_bytes": 256 * 1024, "disk_cache": True},
                   telemetry=True, tracing=True)
    assert r.total == float.fromhex("0x1.b697846f8c496p-4")
    trace_sha = hashlib.sha256(r.trace_json().encode()).hexdigest()
    assert trace_sha == ("882113c25629abe180f702b15a52a2fd2"
                         "fa5e231d828defefc810edbb817142b")


def test_golden_postmark_wan_cache():
    cfg = PostMarkConfig(directories=5, files=25, transactions=50)
    r = run_postmark("sgfs", rtt=0.040, config=cfg,
                     setup_kwargs={"disk_cache": True})
    assert r.total == float.fromhex("0x1.0badf8e1baf9fp+3")
    assert r.writeback_seconds == float.fromhex("0x0.0p+0")


def test_golden_mab_gfs_ssh():
    r = run_mab("gfs-ssh", rtt=0.020)
    assert r.total == float.fromhex("0x1.520ee11d04967p+8")
    assert r.writeback_seconds == float.fromhex("0x0.0p+0")
