"""Golden virtual-runtime regression tests for every setup builder.

The event-kernel fast path (zero-delay lane, callback-chained packet
delivery) reorganises *how* events are dispatched but must not change
*what* happens: virtual-time results and telemetry snapshots are
required to be byte-identical to the single-heap kernel.  These goldens
were captured from the pre-fast-path tree with
``tests/_capture_goldens.py`` and pin:

- ``total`` / ``writeback`` virtual seconds as exact float bit patterns
  (``float.hex()`` — no tolerance),
- a sha256 over the full :class:`repro.obs.Registry` snapshot,
  **excluding** the ``sim`` component: the kernel's own dispatch
  counters (``events_dispatched``, ``heap_pushes``, ``process_wakeups``)
  are the quantity the fast path exists to reduce, and are tracked by
  ``benchmarks/perf_wallclock.py`` instead.

If one of these fails after a scheduler change, the change altered
event *ordering*, not just dispatch cost — that is a correctness bug.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core.setups import SETUP_BUILDERS
from repro.harness import run_iozone, run_mab, run_postmark
from repro.workloads.postmark import PostMarkConfig

FILE_SIZE = 256 * 1024
CACHE_BYTES = 128 * 1024
WAN_RTT = 0.080

#: label -> (total.hex(), writeback.hex(), snapshot sha256 sans "sim").
GOLDEN = {
    "lan-gfs": ("0x1.587f0540471d1p-5", "0x0.0p+0",
                "b68b266ebd7e2b274db27dcb7b92a394f478e66a093ec6656962106096eaef06"),
    "lan-gfs-ssh": ("0x1.ebf6972ae74dap-3", "0x0.0p+0",
                    "80d13afb5709ffa7acf33c92996395f8f02a8c082d9dc8c243d4f562884bb115"),
    "lan-nfs-v3": ("0x1.3b3084cf7f7c0p-6", "0x0.0p+0",
                   "72020243c19f6c9c3585bd61a12e1b9074a36ae4e827d95915b6fe70bb9fcb48"),
    "lan-nfs-v4": ("0x1.767a1650648d6p-6", "0x0.0p+0",
                   "bbe3c87782d8109a1c18c5574da9e6b28a904b3bd977e91e8a2134c912123a05"),
    "lan-sfs": ("0x1.d0d9137b33b14p-5", "0x0.0p+0",
                "b3b03ca2724df9c42ca13d87ffba83608b2a84d525129b22d2932fcd615468a7"),
    "lan-sgfs": ("0x1.ef9223b1f5828p-5", "0x0.0p+0",
                 "78f3e823bbbd9c08139e4f4f272793159e8bab1dd7cc24d439d51a0477c59dea"),
    "lan-sgfs-aes": ("0x1.ef9223b1f5828p-5", "0x0.0p+0",
                     "78f3e823bbbd9c08139e4f4f272793159e8bab1dd7cc24d439d51a0477c59dea"),
    "lan-sgfs-rc": ("0x1.85f7038585342p-5", "0x0.0p+0",
                    "6442ed7d535d19b4e3957632e4b9c9ad9b7c3ce4f866e190efd3879dc31fe8f7"),
    "lan-sgfs-sha": ("0x1.73028e2835f84p-5", "0x0.0p+0",
                     "b2b33710eb9cbef5492471290fe36db8b5ad5f32e70aeffe8f9591093e2fa2be"),
    "wan-gfs": ("0x1.a45d91c39bd36p+0", "0x0.0p+0",
                "dda382503bc66b092a60170f35891db47e4691a701a9aaabedbc86267737a4f6"),
    "wan-gfs-ssh": ("0x1.000717872956ep+1", "0x0.0p+0",
                    "1591593ed358eb6836f947b7ed9aafb8b1a9f67a7cc99778c66da25fe1d1f928"),
    "wan-nfs-v3": ("0x1.f417d00c6496ap-1", "0x0.0p+0",
                   "7ecc6b4069b98453098a581cbf8fa7f641ef5c6151799f2db66dc5ec4ddc84b0"),
    "wan-nfs-v4": ("0x1.f5fde87e88beep-1", "0x0.0p+0",
                   "675730d2743b4ed99a98ffb9f22dce74017e87c3a4ec4e8447b2ebae339affb8"),
    "wan-sfs": ("0x1.044957f80294ap+0", "0x0.0p+0",
                "950cb9a92e775d5ee90a18a4d9f42295d68b33b18bccba62da0bd3bd7a432a91"),
    "wan-sgfs": ("0x1.a9162ab729484p+0", "0x0.0p+0",
                 "845e51e9728e30f2773b41e44ed3889c988f232555ffe500bf2f3efa9be55dbb"),
    "wan-sgfs-aes": ("0x1.a9162ab729484p+0", "0x0.0p+0",
                     "845e51e9728e30f2773b41e44ed3889c988f232555ffe500bf2f3efa9be55dbb"),
    "wan-sgfs-rc": ("0x1.a5c951b5c5c52p+0", "0x0.0p+0",
                    "1302287a3f4273ee44ddb06542874e9778746c5abd0fe1664c06389603eb295c"),
    "wan-sgfs-sha": ("0x1.a531ae0adb48cp+0", "0x0.0p+0",
                     "a032d2ce17f33be0d39883835ebfcf537cc8afb04ef4d9d01f91ce687d077949"),
}


def _snapshot_sha256(result) -> str:
    stats = {k: v for k, v in result.stats.items() if k != "sim"}
    return hashlib.sha256(
        json.dumps(stats, sort_keys=True, default=repr).encode()
    ).hexdigest()


def test_golden_table_covers_every_setup():
    expected = {f"{env}-{s}" for s in SETUP_BUILDERS for env in ("lan", "wan")}
    assert set(GOLDEN) == expected


@pytest.mark.parametrize("label", sorted(GOLDEN))
def test_iozone_golden_runtime(label):
    env, _, setup = label.partition("-")
    rtt = WAN_RTT if env == "wan" else 0.0
    r = run_iozone(setup, rtt=rtt, file_size=FILE_SIZE,
                   setup_kwargs={"cache_bytes": CACHE_BYTES}, telemetry=True)
    total_hex, writeback_hex, snap = GOLDEN[label]
    assert r.total == float.fromhex(total_hex), (
        f"{label}: virtual runtime drifted: {r.total.hex()} != {total_hex}")
    assert r.writeback_seconds == float.fromhex(writeback_hex)
    assert _snapshot_sha256(r) == snap, (
        f"{label}: telemetry snapshot (sans 'sim') changed")


def test_golden_trace_export_identical():
    """The Chrome-trace export is part of the determinism contract: the
    span stream must not move when dispatch internals change."""
    r = run_iozone("sgfs", rtt=0.0, file_size=512 * 1024,
                   setup_kwargs={"cache_bytes": 256 * 1024, "disk_cache": True},
                   telemetry=True, tracing=True)
    assert r.total == float.fromhex("0x1.b697846f8c496p-4")
    trace_sha = hashlib.sha256(r.trace_json().encode()).hexdigest()
    assert trace_sha == ("882113c25629abe180f702b15a52a2fd2"
                         "fa5e231d828defefc810edbb817142b")


def test_golden_postmark_wan_cache():
    cfg = PostMarkConfig(directories=5, files=25, transactions=50)
    r = run_postmark("sgfs", rtt=0.040, config=cfg,
                     setup_kwargs={"disk_cache": True})
    assert r.total == float.fromhex("0x1.0badf8e1baf9fp+3")
    assert r.writeback_seconds == float.fromhex("0x0.0p+0")


def test_golden_mab_gfs_ssh():
    r = run_mab("gfs-ssh", rtt=0.020)
    assert r.total == float.fromhex("0x1.520ee11d04967p+8")
    assert r.writeback_seconds == float.fromhex("0x0.0p+0")
