"""Golden virtual-runtime regression tests for every setup builder.

The event-kernel fast path (zero-delay lane, callback-chained packet
delivery) reorganises *how* events are dispatched but must not change
*what* happens: virtual-time results and telemetry snapshots are
required to be byte-identical to the single-heap kernel.  These goldens
were captured from the pre-fast-path tree with
``tests/_capture_goldens.py`` and pin:

- ``total`` / ``writeback`` virtual seconds as exact float bit patterns
  (``float.hex()`` — no tolerance),
- a sha256 over the full :class:`repro.obs.Registry` snapshot,
  **excluding** the ``sim`` component: the kernel's own dispatch
  counters (``events_dispatched``, ``heap_pushes``, ``process_wakeups``)
  are the quantity the fast path exists to reduce, and are tracked by
  ``benchmarks/perf_wallclock.py`` instead.

If one of these fails after a scheduler change, the change altered
event *ordering*, not just dispatch cost — that is a correctness bug.

Snapshot hashes were last re-captured when ``writeback_errors`` joined
the client proxy's pre-seeded stats schema (previously it appeared
lazily on the first error; before that, when the ``sync`` component
joined the registry).  The ``total`` / ``writeback`` bit patterns have
never moved.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core.setups import SETUP_BUILDERS
from repro.harness import run_iozone, run_mab, run_postmark
from repro.workloads.postmark import PostMarkConfig

FILE_SIZE = 256 * 1024
CACHE_BYTES = 128 * 1024
WAN_RTT = 0.080

#: label -> (total.hex(), writeback.hex(), snapshot sha256 sans "sim").
GOLDEN = {
    "lan-gfs": ("0x1.587f0540471d1p-5", "0x0.0p+0",
                "2b73f13827b09d834b7e85e6cef6dffb39479b2cf20205b2e3e07b8cb9ba8530"),
    "lan-gfs-ssh": ("0x1.ebf6972ae74dap-3", "0x0.0p+0",
                    "0d6bc38df4143aa418dba2a630c173fcd366745d93b138fe0dd6b699b241b35d"),
    "lan-nfs-v3": ("0x1.3b3084cf7f7c0p-6", "0x0.0p+0",
                   "b671a8b011e50414fbcc65ae0f5138f42d460851a224212acea74f9f0815cbdb"),
    "lan-nfs-v4": ("0x1.767a1650648d6p-6", "0x0.0p+0",
                   "c74200bf791f2ddb5d12e97fdbe10b412b9318df067a63a59087157794a44782"),
    "lan-sfs": ("0x1.d0d9137b33b14p-5", "0x0.0p+0",
                "3f1ea3f636b68e3338b9f0d4b480718efe57785a69c9376ba907c11e3973e09d"),
    "lan-sgfs": ("0x1.ef9223b1f5828p-5", "0x0.0p+0",
                 "3c5ff2bf1ff16c741e6acab612719aebdd73ac62020ae92238dcb04a66fa5e5b"),
    "lan-sgfs-aes": ("0x1.ef9223b1f5828p-5", "0x0.0p+0",
                     "3c5ff2bf1ff16c741e6acab612719aebdd73ac62020ae92238dcb04a66fa5e5b"),
    "lan-sgfs-rc": ("0x1.85f7038585342p-5", "0x0.0p+0",
                    "dab96c0188bd673311b04c2a983b1467b87ce351f5a9603fe5745697f0a39c16"),
    "lan-sgfs-sha": ("0x1.73028e2835f84p-5", "0x0.0p+0",
                     "e179ea32db7623e885ca8e2f149567bebf54ad8b2642cf6fa5dbb7c0bdd242c7"),
    "wan-gfs": ("0x1.a45d91c39bd36p+0", "0x0.0p+0",
                "14acee826f920019c0b742e71072209c912d430dea8a9207e36f52ed2aba2db0"),
    "wan-gfs-ssh": ("0x1.000717872956ep+1", "0x0.0p+0",
                    "e21e162624c084578a1c1b739ec25ec0fcfb7788ea84ec9f5752f70b99555c37"),
    "wan-nfs-v3": ("0x1.f417d00c6496ap-1", "0x0.0p+0",
                   "977a1553d7f2fc9099f4956bffce13bd4a2bf1bf877980668b6873b44d1cc8ce"),
    "wan-nfs-v4": ("0x1.f5fde87e88beep-1", "0x0.0p+0",
                   "c317e19ca35373c40c99baed50aebc8a675cd54e5b15ddb4f453270ec79e3490"),
    "wan-sfs": ("0x1.044957f80294ap+0", "0x0.0p+0",
                "1657a35f493c65e5ba5b4e8996d504439ef6e9c8eacee38b19a7aeb86b0754a8"),
    "wan-sgfs": ("0x1.a9162ab729484p+0", "0x0.0p+0",
                 "224298f5aecda925bf68d96673bbb4a2559ce40e52d1ebe1a66b9ff29fc9030e"),
    "wan-sgfs-aes": ("0x1.a9162ab729484p+0", "0x0.0p+0",
                     "224298f5aecda925bf68d96673bbb4a2559ce40e52d1ebe1a66b9ff29fc9030e"),
    "wan-sgfs-rc": ("0x1.a5c951b5c5c52p+0", "0x0.0p+0",
                    "19ebc74e5be4d4aff71fa65f5ad97085cc7520360560043b2dcac1831e542408"),
    "wan-sgfs-sha": ("0x1.a531ae0adb48cp+0", "0x0.0p+0",
                     "ee66eafb3b0e93dbb72742facd30f02fbfd04002c701bbc01fd12c57c251a570"),
}


def _snapshot_sha256(result) -> str:
    stats = {k: v for k, v in result.stats.items() if k != "sim"}
    return hashlib.sha256(
        json.dumps(stats, sort_keys=True, default=repr).encode()
    ).hexdigest()


def test_golden_table_covers_every_setup():
    expected = {f"{env}-{s}" for s in SETUP_BUILDERS for env in ("lan", "wan")}
    assert set(GOLDEN) == expected


@pytest.mark.parametrize("label", sorted(GOLDEN))
def test_iozone_golden_runtime(label):
    env, _, setup = label.partition("-")
    rtt = WAN_RTT if env == "wan" else 0.0
    r = run_iozone(setup, rtt=rtt, file_size=FILE_SIZE,
                   setup_kwargs={"cache_bytes": CACHE_BYTES}, telemetry=True)
    total_hex, writeback_hex, snap = GOLDEN[label]
    assert r.total == float.fromhex(total_hex), (
        f"{label}: virtual runtime drifted: {r.total.hex()} != {total_hex}")
    assert r.writeback_seconds == float.fromhex(writeback_hex)
    assert _snapshot_sha256(r) == snap, (
        f"{label}: telemetry snapshot (sans 'sim') changed")


def test_golden_trace_export_identical():
    """The Chrome-trace export is part of the determinism contract: the
    span stream must not move when dispatch internals change."""
    r = run_iozone("sgfs", rtt=0.0, file_size=512 * 1024,
                   setup_kwargs={"cache_bytes": 256 * 1024, "disk_cache": True},
                   telemetry=True, tracing=True)
    assert r.total == float.fromhex("0x1.b697846f8c496p-4")
    trace_sha = hashlib.sha256(r.trace_json().encode()).hexdigest()
    assert trace_sha == ("882113c25629abe180f702b15a52a2fd2"
                         "fa5e231d828defefc810edbb817142b")


def test_golden_postmark_wan_cache():
    cfg = PostMarkConfig(directories=5, files=25, transactions=50)
    r = run_postmark("sgfs", rtt=0.040, config=cfg,
                     setup_kwargs={"disk_cache": True})
    assert r.total == float.fromhex("0x1.0badf8e1baf9fp+3")
    assert r.writeback_seconds == float.fromhex("0x0.0p+0")


def test_golden_mab_gfs_ssh():
    r = run_mab("gfs-ssh", rtt=0.020)
    assert r.total == float.fromhex("0x1.520ee11d04967p+8")
    assert r.writeback_seconds == float.fromhex("0x0.0p+0")
