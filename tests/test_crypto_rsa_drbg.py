"""RSA, DRBG, hybrid encryption, cipher suites."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import Drbg, CryptoError, generate_keypair
from repro.crypto.hybrid import open_sealed, seal
from repro.crypto.rsa import RsaPublicKey, generate_prime, is_probable_prime
from repro.crypto.suites import (
    SUITE_AES_SHA,
    SUITE_NULL_SHA,
    SUITE_PLAIN,
    SUITE_RC4_SHA,
    SUITES,
    derive_key_block,
)

KEYS = generate_keypair(768, Drbg("test-keys"))
OTHER = generate_keypair(768, Drbg("other-keys"))


# -- DRBG -----------------------------------------------------------------------


def test_drbg_deterministic():
    assert Drbg("seed").randbytes(64) == Drbg("seed").randbytes(64)
    assert Drbg("seed").randbytes(64) != Drbg("other").randbytes(64)


def test_drbg_fork_independent_streams():
    root = Drbg("root")
    a = root.fork("a")
    b = root.fork("b")
    assert a.randbytes(32) != b.randbytes(32)
    # fork labels are stable regardless of consumption order
    assert Drbg("root").fork("a").randbytes(32) == Drbg("root").fork("a").randbytes(32)


def test_drbg_accepts_int_and_bytes_seeds():
    assert Drbg(12345).randbytes(8) == Drbg(12345).randbytes(8)
    assert Drbg(b"raw").randbytes(8) == Drbg(b"raw").randbytes(8)


def test_drbg_randrange_bounds():
    rng = Drbg("ranges")
    values = [rng.randrange(5, 15) for _ in range(500)]
    assert min(values) >= 5 and max(values) < 15
    assert len(set(values)) == 10  # all values hit over 500 draws


def test_drbg_randint_inclusive():
    rng = Drbg("randint")
    values = {rng.randint(0, 3) for _ in range(200)}
    assert values == {0, 1, 2, 3}


def test_drbg_empty_range_rejected():
    with pytest.raises(ValueError):
        Drbg("x").randrange(5, 5)


def test_drbg_shuffle_is_permutation():
    rng = Drbg("shuffle")
    items = list(range(50))
    shuffled = items[:]
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
    assert shuffled != items


def test_drbg_choice():
    assert Drbg("c").choice([7]) == 7
    with pytest.raises(IndexError):
        Drbg("c").choice([])


def test_drbg_random_unit_interval():
    rng = Drbg("float")
    for _ in range(100):
        x = rng.random()
        assert 0.0 <= x < 1.0


# -- primality / keygen ------------------------------------------------------------


def test_small_primes_recognized():
    rng = Drbg("prime-test")
    for p in (2, 3, 5, 7, 97, 101):
        assert is_probable_prime(p, rng)
    for c in (0, 1, 4, 100, 561, 1105):  # includes Carmichael numbers
        assert not is_probable_prime(c, rng)


def test_generate_prime_has_top_bits_set():
    p = generate_prime(128, Drbg("p"))
    assert p.bit_length() == 128 and p % 2 == 1


def test_keypair_modulus_size():
    assert KEYS.public.n.bit_length() == 768
    assert KEYS.public.size_bytes == 96


def test_keygen_deterministic_from_seed():
    a = generate_keypair(512, Drbg("same"))
    b = generate_keypair(512, Drbg("same"))
    assert a.public.n == b.public.n


def test_keygen_rejects_tiny_modulus():
    with pytest.raises(CryptoError):
        generate_keypair(128, Drbg("tiny"))


# -- sign / verify --------------------------------------------------------------------


def test_sign_verify_roundtrip():
    sig = KEYS.sign(b"message")
    assert KEYS.public.verify(b"message", sig)


def test_verify_rejects_modified_message():
    sig = KEYS.sign(b"message")
    assert not KEYS.public.verify(b"messagX", sig)


def test_verify_rejects_modified_signature():
    sig = bytearray(KEYS.sign(b"message"))
    sig[0] ^= 1
    assert not KEYS.public.verify(b"message", bytes(sig))


def test_verify_rejects_wrong_key():
    sig = KEYS.sign(b"message")
    assert not OTHER.public.verify(b"message", sig)


def test_verify_rejects_wrong_length_signature():
    assert not KEYS.public.verify(b"m", b"\x00" * 10)


# -- encrypt / decrypt -------------------------------------------------------------------


def test_encrypt_decrypt_roundtrip():
    ct = KEYS.public.encrypt(b"secret", Drbg("e"))
    assert KEYS.decrypt(ct) == b"secret"


def test_decrypt_with_wrong_key_fails():
    ct = KEYS.public.encrypt(b"secret", Drbg("e"))
    with pytest.raises(CryptoError):
        OTHER.decrypt(ct)


def test_encrypt_too_long_rejected():
    with pytest.raises(CryptoError):
        KEYS.public.encrypt(b"x" * (KEYS.public.size_bytes - 10), Drbg("e"))


def test_public_key_serialization_roundtrip():
    data = KEYS.public.to_bytes()
    back = RsaPublicKey.from_bytes(data)
    assert back == KEYS.public
    with pytest.raises(CryptoError):
        RsaPublicKey.from_bytes(data[:-2])


# -- hybrid ---------------------------------------------------------------------------------


def test_hybrid_roundtrip():
    blob = seal(b"delegated credential bytes", KEYS.public, Drbg("h"))
    assert open_sealed(blob, KEYS) == b"delegated credential bytes"


def test_hybrid_hides_plaintext():
    blob = seal(b"VISIBLE-MARKER" * 5, KEYS.public, Drbg("h"))
    assert b"VISIBLE-MARKER" not in blob


def test_hybrid_tamper_detected():
    blob = bytearray(seal(b"payload", KEYS.public, Drbg("h")))
    blob[-1] ^= 1  # flip a MAC bit
    with pytest.raises(CryptoError):
        open_sealed(bytes(blob), KEYS)


def test_hybrid_wrong_recipient_fails():
    blob = seal(b"payload", KEYS.public, Drbg("h"))
    with pytest.raises(CryptoError):
        open_sealed(blob, OTHER)


def test_hybrid_truncated_rejected():
    with pytest.raises(CryptoError):
        open_sealed(b"\x00\x00", KEYS)


# -- cipher suites ------------------------------------------------------------------------------


@pytest.mark.parametrize("suite", [SUITE_NULL_SHA, SUITE_RC4_SHA, SUITE_AES_SHA])
@pytest.mark.parametrize("fast", [False, True])
def test_suite_cipher_roundtrip(suite, fast):
    key = bytes(range(suite.cipher.key_len))
    iv = bytes(suite.cipher.iv_len)
    enc = suite.cipher.new_state(key, iv, fast)
    dec = suite.cipher.new_state(key, iv, fast)
    for message in (b"first message", b"x" * 1000, b"third"):
        ct = enc.encrypt(message)
        if suite.cipher.name != "null":
            assert ct != message
        assert dec.decrypt(ct) == message


def test_suite_key_length_enforced():
    with pytest.raises(ValueError):
        SUITE_AES_SHA.cipher.new_state(b"short", b"\x00" * 16, False)


def test_suite_registry_contents():
    assert set(SUITES) == {
        "null-sha1", "rc4-128-sha1", "aes-256-cbc-sha1", "plaintext",
    }
    assert SUITE_PLAIN.cycles_per_byte == 0.0
    assert SUITE_AES_SHA.cycles_per_byte > SUITE_RC4_SHA.cycles_per_byte


def test_key_block_derivation_deterministic_and_labelled():
    a = derive_key_block(b"master", "label one", 100)
    assert len(a) == 100
    assert a == derive_key_block(b"master", "label one", 100)
    assert a != derive_key_block(b"master", "label two", 100)
    assert a != derive_key_block(b"other!", "label one", 100)


@settings(max_examples=20)
@given(st.binary(min_size=1, max_size=2048))
def test_fast_state_roundtrip_property(data):
    enc = SUITE_AES_SHA.cipher.new_state(b"k" * 32, b"i" * 16, True)
    dec = SUITE_AES_SHA.cipher.new_state(b"k" * 32, b"i" * 16, True)
    assert dec.decrypt(enc.encrypt(data)) == data
