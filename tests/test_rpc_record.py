"""RPC record marking: framing, fragmentation, incremental reassembly."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.rpc.errors import RpcError
from repro.rpc.record import (
    LAST_FRAGMENT,
    RecordReader,
    RecordWriter,
    frame_record,
)


def test_single_fragment_framing():
    framed = frame_record(b"hello")
    header = struct.unpack(">I", framed[:4])[0]
    assert header == (LAST_FRAGMENT | 5)
    assert framed[4:] == b"hello"


def test_empty_record_framing():
    framed = frame_record(b"")
    assert framed == struct.pack(">I", LAST_FRAGMENT)
    reader = RecordReader()
    reader.feed(framed)
    assert reader.next_record() == b""


def test_multi_fragment_framing_and_reassembly():
    record = bytes(range(256)) * 10  # 2560 bytes
    framed = frame_record(record, fragment_size=1000)
    # 3 fragments: 1000 + 1000 + 560
    assert len(framed) == len(record) + 3 * 4
    reader = RecordReader()
    reader.feed(framed)
    assert reader.next_record() == record
    assert reader.next_record() is None


def test_byte_at_a_time_reassembly():
    records = [b"first", b"second record", b""]
    stream = b"".join(frame_record(r, fragment_size=4) for r in records)
    reader = RecordReader()
    out = []
    for i in range(len(stream)):
        reader.feed(stream[i : i + 1])
        while True:
            rec = reader.next_record()
            if rec is None:
                break
            out.append(rec)
    assert out == records


def test_interleaved_feed_and_pop():
    reader = RecordReader()
    reader.feed(frame_record(b"aaa") + frame_record(b"bbb"))
    assert reader.pending == 2
    assert reader.next_record() == b"aaa"
    assert reader.next_record() == b"bbb"
    assert reader.next_record() is None


def test_oversized_record_rejected():
    reader = RecordReader(max_record=100)
    with pytest.raises(RpcError, match="exceeds"):
        reader.feed(frame_record(b"x" * 200))


def test_bad_fragment_size_rejected():
    with pytest.raises(RpcError):
        frame_record(b"x", fragment_size=0)


def test_writer_writes_through_sink():
    chunks = []

    class Sink:
        def send(self, data):
            chunks.append(data)

    RecordWriter(Sink()).write(b"payload")
    reader = RecordReader()
    for c in chunks:
        reader.feed(c)
    assert reader.next_record() == b"payload"


@given(
    st.lists(st.binary(max_size=400), min_size=1, max_size=10),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=97),
)
def test_property_stream_reassembly(records, fragment_size, chunk_size):
    """Any records, any fragmentation, any stream chunking: reassembles."""
    stream = b"".join(frame_record(r, fragment_size=fragment_size) for r in records)
    reader = RecordReader()
    out = []
    for off in range(0, len(stream), chunk_size):
        reader.feed(stream[off : off + chunk_size])
        while True:
            rec = reader.next_record()
            if rec is None:
                break
            out.append(rec)
    assert out == records
