"""Multi-stream WAN transfer engine: determinism, exactly-once, speedup.

The engine (``streams > 1`` or an explicit ``pipeline_depth``) adds
parallel proxy-to-proxy sub-channels, RTT-sized read-ahead/write-behind
windows, and compound RPC envelopes.  These tests pin:

- the compound envelope codec,
- byte-identity of ``streams=1`` with the engine absent (the default
  path must not move),
- same-seed bit-identity for streams in {1, 2, 4} on both the legacy
  single-server path and a 2-backend grid fleet,
- exactly-once server-side application when sub-channel traffic is
  dropped mid-READ / mid-WRITE (retry ladder + duplicate request cache),
- the WAN throughput win the engine exists for.
"""

import pytest

from repro.core import Testbed
from repro.core.setups import setup_sgfs
from repro.faults import FAULT_PRESETS, FaultPlan
from repro.harness import run_fleet
from repro.harness.runner import run_iozone
from repro.proxy.client_proxy import UpstreamSession
from repro.rpc.compound import MAX_MEMBERS, pack_members, unpack_members
from repro.sim import Simulator
from repro.vfs.fs import Credentials
from repro.workloads.iozone import IOzoneReadReread

ROOT = Credentials(0, 0)
KB = 1024
MB = 1024 * KB
BS = 32 * KB  # proxy cache block size (cal.block_size)
FS = 64 * KB


def _iozone():
    return IOzoneReadReread(file_size=FS)


def _fp(result):
    """Full single-run fingerprint: virtual times and every metric."""
    return (
        result.total,
        result.phases,
        result.writeback_seconds,
        result.writeback_bytes,
        result.stats,
    )


def _fleet_fp(result):
    return (
        result.makespan,
        [(c.name, c.start, c.end, sorted(c.phases.items()))
         for c in result.per_client],
        result.stats,
    )


def _seed_server_file(tb, name: str, payload: bytes):
    """Materialize a file in the exported VFS out of band, as the
    experiment setup scripts do — so reads must cross the wire."""
    cred = Credentials(tb.fs.root.uid, tb.fs.root.gid)
    node = tb.fs.create(tb.fs.root.fileid, name, cred)
    tb.fs.write(node.fileid, 0, payload, cred)
    tb.nfs_program.preload(node.fileid)
    return node


def _pattern(n: int) -> bytes:
    chunk = bytes(range(256)) * 16
    return (chunk * (n // len(chunk) + 1))[:n]


def _drc_settled(server_proxy) -> bool:
    """No in-progress or parked entries left behind in the server-side
    duplicate request cache — every retransmission was resolved."""
    return all(
        e.reply is not None and not e.waiters
        for e in server_proxy._drc._entries.values()
    )


# -- compound envelope codec -------------------------------------------------


def test_compound_members_roundtrip():
    records = [b"alpha", b"", b"x" * 1000, b"\x00\x01\x02"]
    assert unpack_members(pack_members(records)) == records
    assert unpack_members(pack_members([])) == []


def test_compound_member_cap():
    with pytest.raises(ValueError):
        pack_members([b"x"] * (MAX_MEMBERS + 1))
    # a corrupted count field must not allocate unbounded memory
    from repro.xdr import Packer

    p = Packer()
    p.pack_uint(MAX_MEMBERS + 1)
    with pytest.raises(ValueError):
        unpack_members(p.get_bytes())


# -- RTT estimator / window sizing -------------------------------------------


def test_window_is_one_until_both_estimators_sampled():
    up = UpstreamSession(Simulator(), None)
    assert up.window(64) == 1
    up._observe_rtt(bulk=False, sample=0.080)
    assert up.window(64) == 1
    up._observe_rtt(bulk=True, sample=0.085)
    # 0.080 / (0.085 - 0.080) = 16 in-flight blocks cover the RTT
    assert up.window(64) == 16
    assert up.window(8) == 8  # pipeline-depth cap applies
    assert up.window(1) == 1


def test_window_floor_when_bulk_equals_small():
    up = UpstreamSession(Simulator(), None)
    up._observe_rtt(bulk=False, sample=0.080)
    up._observe_rtt(bulk=True, sample=0.080)  # no measurable transfer cost
    assert up.window(64) == 64  # floored divisor -> capped


# -- satellite: writeback_errors is pre-seeded -------------------------------


def test_clean_run_reports_zero_writeback_errors():
    r = run_iozone("sgfs-aes", rtt=0.0, file_size=FS,
                   setup_kwargs={"disk_cache": True})
    # the key must exist (pre-seeded at init), not appear lazily on the
    # first error
    assert r.stats["proxy.client"]["writeback_errors"] == 0


# -- streams=1 is byte-identical to the legacy path --------------------------


def test_streams_one_matches_legacy_single_run():
    base = run_iozone("sgfs-aes", rtt=0.04, file_size=FS,
                      setup_kwargs={"disk_cache": True})
    s1 = run_iozone("sgfs-aes", rtt=0.04, file_size=FS,
                    setup_kwargs={"disk_cache": True, "streams": 1})
    assert _fp(base) == _fp(s1)


def test_streams_one_matches_legacy_fleet():
    base = run_fleet("sgfs-aes", _iozone, clients=2, rtt=0.04)
    s1 = run_fleet("sgfs-aes", _iozone, clients=2, rtt=0.04, streams=1)
    assert _fleet_fp(base) == _fleet_fp(s1)


# -- same-seed bit-identity across stream counts -----------------------------


@pytest.mark.parametrize("streams", [1, 2, 4])
def test_same_seed_bit_identical_single_server(streams):
    kw = dict(rtt=0.04, file_size=FS,
              setup_kwargs={"disk_cache": True, "streams": streams})
    assert _fp(run_iozone("sgfs-aes", **kw)) == _fp(run_iozone("sgfs-aes", **kw))


@pytest.mark.parametrize("streams", [1, 2, 4])
def test_same_seed_bit_identical_grid_fleet(streams):
    kw = dict(clients=2, rtt=0.04, servers=2, streams=streams)
    a = run_fleet("sgfs-aes", _iozone, **kw)
    b = run_fleet("sgfs-aes", _iozone, **kw)
    assert _fleet_fp(a) == _fleet_fp(b)


# -- exactly-once under sub-channel loss -------------------------------------


def test_drop_mid_read_exact_content_and_settled_drc():
    tb = Testbed.build(rtt=0.04)
    mount = setup_sgfs(tb, disk_cache=True, streams=4)
    payload = _pattern(8 * BS)
    _seed_server_file(tb, "r.bin", payload)
    # faults start after the mount so the handshakes are clean; every
    # drop hits session traffic, including engine read-ahead bursts
    plan = FaultPlan(tb.sim, FAULT_PRESETS["lossy-wan"],
                     seed="mid-read").install(tb.net)
    cl = mount.client

    def job():
        return (yield from cl.read_file("/r.bin"))

    assert tb.run(job()) == payload
    assert plan.stats["dropped"] > 0  # the adversary actually bit
    assert mount.client_proxy.stats["writeback_errors"] == 0
    assert _drc_settled(mount.server_proxy)


def test_drop_mid_write_exactly_once_server_side():
    tb = Testbed.build(rtt=0.04)
    mount = setup_sgfs(tb, disk_cache=True, streams=4)
    plan = FaultPlan(tb.sim, FAULT_PRESETS["lossy-wan"],
                     seed="mid-write").install(tb.net)
    cl = mount.client
    payload = _pattern(8 * BS)

    def job():
        yield from cl.write_file("/w.bin", payload)
        yield from mount.finish()  # flush the write-behind cache
        return True

    assert tb.run(job())
    assert bytes(tb.fs.resolve("/w.bin", ROOT).data) == payload
    stats = mount.client_proxy.stats
    # every dirty block flushed exactly once — a sub-channel dying
    # mid-WRITE must not double-count the retried block
    assert stats["writeback_blocks"] == len(payload) // BS
    assert stats["writeback_errors"] == 0
    assert plan.stats["dropped"] > 0
    assert _drc_settled(mount.server_proxy)


def test_drop_mid_read_same_seed_bit_identical():
    def run():
        return run_iozone(
            "sgfs-aes", rtt=0.04, file_size=256 * KB,
            setup_kwargs={"disk_cache": True, "streams": 4},
            faults="lossy-wan", fault_seed="ms-determinism",
        )

    a, b = run(), run()
    assert _fp(a) == _fp(b)
    assert a.stats["faults"]["dropped"] > 0


# -- the engine actually pays its way ----------------------------------------


def test_wan_read_throughput_gain():
    kw = dict(rtt=0.080, file_size=4 * MB)
    s1 = run_iozone("sgfs-aes", setup_kwargs={"disk_cache": True}, **kw)
    s4 = run_iozone("sgfs-aes",
                    setup_kwargs={"disk_cache": True, "streams": 4}, **kw)
    # RTT-sized windows across 4 sub-channels: at least 4x on the
    # serial one-block-per-RTT read phase
    assert s4.phases["read"] * 4 < s1.phases["read"]


def test_compound_batches_fire_on_windowed_flush():
    tb = Testbed.build(rtt=0.04)
    mount = setup_sgfs(tb, disk_cache=True, streams=4)
    cl = mount.client
    payload = _pattern(16 * BS)

    def job():
        yield from cl.write_file("/c.bin", payload)
        yield from mount.finish()
        return True

    assert tb.run(job())
    stats = mount.client_proxy.stats
    assert stats["writeback_blocks"] == 16
    assert stats["compound_envelopes"] >= 1
    assert stats["compound_members"] >= 2
    assert bytes(tb.fs.resolve("/c.bin", ROOT).data) == payload
