"""SSH tunnel substrate and SFS baseline components."""

import pytest

from repro.crypto.drbg import Drbg
from repro.crypto.rsa import generate_keypair
from repro.net import Host, Network
from repro.rpc.costs import CostProfile, EndpointCost
from repro.sfs import (
    SelfCertifyingPath,
    SfsAuthError,
    SfsPathError,
    host_id_for_key,
    sfs_client_channel,
    sfs_server_channel,
)
from repro.sim import Simulator
from repro.sshtun import SshTunnelClient, SshTunnelServer

KEY_A = generate_keypair(768, Drbg("sfs-a"))
KEY_B = generate_keypair(768, Drbg("sfs-b"))
USER = generate_keypair(768, Drbg("sfs-user"))


def make_net():
    sim = Simulator()
    net = Network(sim)
    c = Host(sim, net, "c")
    s = Host(sim, net, "s")
    net.connect("c", "s", latency=0.001)
    return sim, c, s


# -- SSH tunnel ------------------------------------------------------------------


def tunnel_pair(sim, c, s, client_key=None, server_key=None):
    key = Drbg("tunnel-key").randbytes(32)
    srv = SshTunnelServer(sim, s, 4422, 7000, server_key or key)
    srv.start()
    cli = SshTunnelClient(sim, c, 4423, "s", 4422, client_key or key)
    cli.start()
    return cli, srv


def test_tunnel_forwards_bytes_end_to_end():
    sim, c, s = make_net()
    cli, srv = tunnel_pair(sim, c, s)

    def target_service():
        lst = s.listen(7000)
        sock = yield lst.accept()
        data = yield from sock.recv_exactly(11)
        sock.send(b"echo:" + data)

    def client_app():
        sock = yield from c.connect("c", 4423)  # local tunnel entrance
        sock.send(b"tunnel-test")
        reply = yield from sock.recv_exactly(16)
        return reply

    sim.spawn(target_service())
    assert sim.run_until_complete(sim.spawn(client_app())) == b"echo:tunnel-test"
    assert cli.bytes_forwarded > 0 and srv.bytes_forwarded > 0


def test_tunnel_payload_encrypted_on_wan():
    """Wiretap every byte the tunnel client sends to the WAN: the
    application payload must not appear in the clear."""
    sim, c, s = make_net()
    tunnel_pair(sim, c, s)
    secret = b"CONFIDENTIAL-TUNNEL-DATA" * 3
    captured = bytearray()

    original_connect = c.connect

    def spying_connect(dest, port):
        sock = yield from original_connect(dest, port)
        if dest == "s":  # the WAN-facing tunnel connection
            original_send = sock.send

            def spy_send(data):
                captured.extend(data)
                original_send(data)

            sock.send = spy_send
        return sock

    c.connect = spying_connect

    def target_service():
        lst = s.listen(7000)
        sock = yield lst.accept()
        data = yield from sock.recv_exactly(len(secret))
        return data

    def client_app():
        sock = yield from c.connect("c", 4423)
        sock.send(secret)

    tp = sim.spawn(target_service())
    sim.spawn(client_app())
    assert sim.run_until_complete(tp) == secret
    assert len(captured) > len(secret)
    assert secret[:16] not in bytes(captured)


def test_tunnel_wrong_key_refused():
    sim, c, s = make_net()
    tunnel_pair(
        sim, c, s,
        client_key=Drbg("key-one").randbytes(32),
        server_key=Drbg("key-two").randbytes(32),
    )
    served = []

    def target_service():
        lst = s.listen(7000)
        sock = yield lst.accept()
        served.append(sock)

    def client_app():
        sock = yield from c.connect("c", 4423)
        sock.send(b"should never arrive")
        got = yield from sock.recv()
        return got

    sim.spawn(target_service())
    result = sim.run_until_complete(sim.spawn(client_app()))
    assert result == b""  # tunnel collapsed, no data came back
    assert not served or True


def test_tunnel_charges_forwarding_cost():
    sim, c, s = make_net()
    key = Drbg("k").randbytes(32)
    srv = SshTunnelServer(
        sim, s, 4422, 7000, key,
        cost=CostProfile(cpu=EndpointCost(per_msg=0.001)), account="sshd",
    )
    srv.start()
    cli = SshTunnelClient(
        sim, c, 4423, "s", 4422, key,
        cost=CostProfile(cpu=EndpointCost(per_msg=0.001)), account="ssh",
    )
    cli.start()

    def target_service():
        lst = s.listen(7000)
        sock = yield lst.accept()
        yield from sock.recv_exactly(4)
        sock.send(b"pong")

    def client_app():
        sock = yield from c.connect("c", 4423)
        sock.send(b"ping")
        yield from sock.recv_exactly(4)

    sim.spawn(target_service())
    sim.run_until_complete(sim.spawn(client_app()))
    assert c.cpu.busy_total("ssh") > 0
    assert s.cpu.busy_total("sshd") > 0


# -- self-certifying paths ------------------------------------------------------------


def test_path_parse_and_format():
    path = SelfCertifyingPath.for_server("server.lab.edu", KEY_A.public, "/data/x")
    text = str(path)
    assert text.startswith("/sfs/@server.lab.edu,")
    again = SelfCertifyingPath.parse(text)
    assert again == path


def test_path_verifies_matching_key_only():
    path = SelfCertifyingPath.for_server("srv", KEY_A.public)
    assert path.verify_key(KEY_A.public)
    assert not path.verify_key(KEY_B.public)


def test_host_id_binds_location():
    # the same key at a different location yields a different HostID
    assert host_id_for_key("a", KEY_A.public) != host_id_for_key("b", KEY_A.public)


@pytest.mark.parametrize(
    "bad",
    ["/not/sfs", "/sfs/@nolocation", "/sfs/@loc", "/sfs/@,id/x",
     "/sfs/@loc,UPPER/x"],
)
def test_path_malformed_rejected(bad):
    with pytest.raises(SfsPathError):
        SelfCertifyingPath.parse(bad)


# -- SFS channel --------------------------------------------------------------------------


def sfs_handshake(sim, c, s, path, server_key, authorized, user_key):
    result = {}

    def server_side():
        lst = s.listen(4446)
        sock = yield lst.accept()
        result["server"] = yield from sfs_server_channel(
            sim, sock, server_key, authorized
        )

    def client_side():
        sock = yield from c.connect("s", 4446)
        result["client"] = yield from sfs_client_channel(
            sim, sock, path, user_key, Drbg("hs")
        )

    sp = sim.spawn(server_side())
    cp = sim.spawn(client_side())
    sim.run_until_complete(cp)
    sim.run_until_complete(sp)
    return result["client"], result["server"]


def test_sfs_channel_exchange():
    sim, c, s = make_net()
    path = SelfCertifyingPath.for_server("s", KEY_A.public)
    cch, sch = sfs_handshake(
        sim, c, s, path, KEY_A, {USER.public.to_bytes()}, USER
    )

    def exchange():
        cch.send_record(b"sfs request")
        got = yield from sch.recv_record()
        sch.send_record(b"sfs reply")
        back = yield from cch.recv_record()
        return got, back

    assert sim.run_until_complete(sim.spawn(exchange())) == (
        b"sfs request", b"sfs reply",
    )


def test_sfs_client_rejects_wrong_server_key():
    """The self-certifying property: HostID mismatch aborts before data."""
    sim, c, s = make_net()
    path = SelfCertifyingPath.for_server("s", KEY_A.public)

    def server_side():
        lst = s.listen(4446)
        sock = yield lst.accept()
        try:
            yield from sfs_server_channel(sim, sock, KEY_B, {USER.public.to_bytes()})
        except Exception:
            pass

    def client_side():
        sock = yield from c.connect("s", 4446)
        with pytest.raises(SfsAuthError, match="HostID"):
            yield from sfs_client_channel(sim, sock, path, USER, Drbg("hs"))
        return "refused"

    sim.spawn(server_side())
    assert sim.run_until_complete(sim.spawn(client_side())) == "refused"


def test_sfs_server_rejects_unauthorized_user():
    sim, c, s = make_net()
    path = SelfCertifyingPath.for_server("s", KEY_A.public)
    stranger = generate_keypair(768, Drbg("stranger"))

    def server_side():
        lst = s.listen(4446)
        sock = yield lst.accept()
        with pytest.raises(SfsAuthError, match="not authorized"):
            yield from sfs_server_channel(
                sim, sock, KEY_A, {USER.public.to_bytes()}
            )
        return "rejected"

    def client_side():
        sock = yield from c.connect("s", 4446)
        try:
            yield from sfs_client_channel(sim, sock, path, stranger, Drbg("hs"))
        except Exception:
            pass

    sp = sim.spawn(server_side())
    sim.spawn(client_side())
    assert sim.run_until_complete(sp) == "rejected"


def test_sfs_end_to_end_mount():
    from repro.core import Testbed, setup_sfs

    tb = Testbed.build()
    mount = setup_sfs(tb)

    def job():
        cl = mount.client
        yield from cl.write_file("/sfs-file", b"self-certified" * 10)
        return (yield from cl.read_file("/sfs-file"))

    assert tb.run(job()) == b"self-certified" * 10
    assert str(mount.extras["path"]).startswith("/sfs/@server,")
