"""Event lifecycle tests for the scheduler's zero-delay lane.

The kernel dispatches from two lanes — a binary heap for positive
delays and a FIFO deque for entries firing "now".  These tests pin the
lane-selection rules and the Event semantics that the rest of the stack
leans on: callback registration after firing, interrupting a process
while its resume is already queued, and the ordering of failures
relative to successes triggered at the same instant.
"""

from __future__ import annotations

import pytest

from repro.sim.core import Event, Interrupt, SimError, Simulator


# -- lane selection and cross-lane ordering -----------------------------------


def test_zero_delay_entries_avoid_the_heap():
    sim = Simulator()
    sim.timeout(0.0)
    sim.event("e").succeed()
    sim.spawn((_ for _ in ()), name="p")  # start kick rides the zero-delay lane
    assert sim.heap_pushes == 0
    sim.timeout(0.5)
    assert sim.heap_pushes == 1


def test_cross_lane_ordering_is_seq_fifo():
    """At equal timestamps the earlier-scheduled entry fires first, even
    when one lives on the heap and the other on the zero-delay lane."""
    sim = Simulator()
    order = []
    t1 = sim.timeout(1.0)  # heap, seq 1
    t2 = sim.timeout(1.0)  # heap, seq 2

    def first(_e):
        order.append("t1")
        # Queued at t=1.0 with a seq *after* t2's: must fire after t2.
        sim.event("z").succeed().add_callback(lambda _e: order.append("zero"))

    t1.add_callback(first)
    t2.add_callback(lambda _e: order.append("t2"))
    sim.run()
    assert order == ["t1", "t2", "zero"]
    assert sim.now == 1.0


def test_peek_sees_both_lanes():
    sim = Simulator()
    sim.timeout(5.0)
    assert sim.peek() == 5.0
    sim.event("now").succeed()
    assert sim.peek() == 0.0


# -- callback-after-fire ------------------------------------------------------


def test_callback_added_between_trigger_and_fire_runs_at_fire():
    sim = Simulator()
    calls = []
    ev = sim.event("e").succeed(42)
    ev.add_callback(lambda e: calls.append(("pre", e.value)))
    assert calls == []  # queued, not yet fired
    sim.run()
    assert calls == [("pre", 42)]


def test_callback_added_after_fire_runs_immediately():
    sim = Simulator()
    calls = []
    ev = sim.event("e").succeed("v")
    sim.run()
    ev.add_callback(lambda e: calls.append(e.value))
    assert calls == ["v"]  # synchronous: no new queue entry
    assert not (sim._fifo or sim._heap)


def test_callback_store_upgrades_and_preserves_order():
    sim = Simulator()
    calls = []
    ev = sim.event("e")
    ev.add_callback(lambda e: calls.append(1))   # None -> single callable
    ev.add_callback(lambda e: calls.append(2))   # single -> list
    ev.add_callback(lambda e: calls.append(3))
    ev.succeed()
    sim.run()
    assert calls == [1, 2, 3]


def test_event_is_one_shot():
    sim = Simulator()
    ev = sim.event("e").succeed()
    with pytest.raises(SimError):
        ev.succeed()
    with pytest.raises(SimError):
        ev.fail(RuntimeError("nope"))


# -- interrupt-while-queued ---------------------------------------------------


def test_interrupt_process_queued_on_floor_yield():
    """A floor-yielded process sits directly on the zero-delay lane; an
    interrupt must queue *behind* the pending resume, not replace it."""
    sim = Simulator()
    log = []

    def proc():
        try:
            yield None
            log.append("resumed")
            yield sim.timeout(10.0)
            log.append("unreachable")
        except Interrupt as intr:
            log.append(("interrupted", intr.cause))

    p = sim.spawn(proc(), name="floor")
    sim.step()  # start kick: runs to `yield None`, requeues itself
    p.interrupt("boom")
    sim.run()
    assert log == ["resumed", ("interrupted", "boom")]
    assert p.completion.ok


def test_interrupt_races_with_already_triggered_event():
    """If the awaited event has triggered but not yet fired, the wakeup
    wins and the late interrupt is a no-op on the finished process."""
    sim = Simulator()
    log = []

    def proc(ev):
        try:
            log.append((yield ev))
        except Interrupt:
            log.append("interrupted")

    ev = sim.event("e")
    p = sim.spawn(proc(ev), name="racer")
    sim.step()  # park on ev
    ev.succeed("won")
    p.interrupt("late")
    sim.run()
    assert log == ["won"]
    assert p.completion.ok


def test_interrupt_detaches_from_pending_event():
    sim = Simulator()
    log = []

    def proc(ev):
        try:
            yield ev
        except Interrupt:
            log.append("interrupted")
            yield sim.timeout(1.0)
        log.append("done")

    ev = sim.event("never-mind")
    p = sim.spawn(proc(ev), name="waiter")
    sim.step()  # park on ev
    p.interrupt()
    sim.run()
    # The original event firing later must not resume the process again.
    ev.succeed("stale")
    sim.run()
    assert log == ["interrupted", "done"]
    assert p.completion.ok


# -- fail ordering ------------------------------------------------------------


def test_failures_fire_in_trigger_order():
    """succeed() and fail() share the zero-delay lane: waiters resume in
    the order the events were triggered, not the order they were made."""
    sim = Simulator()
    log = []

    def waiter(key, ev):
        try:
            yield ev
            log.append((key, "ok"))
        except RuntimeError:
            log.append((key, "fail"))

    ev1, ev2 = sim.event("one"), sim.event("two")
    sim.spawn(waiter(1, ev1), name="w1")
    sim.spawn(waiter(2, ev2), name="w2")
    ev2.fail(RuntimeError("second event, first trigger"))
    ev1.succeed()
    sim.run()
    assert log == [(2, "fail"), (1, "ok")]


def test_fail_callbacks_see_exception_before_value():
    sim = Simulator()
    seen = []
    ev = sim.event("bad")
    ev.add_callback(lambda e: seen.append((e.failed, type(e.exception))))
    ev.fail(ValueError("x"))
    assert ev.failed and not ev.ok
    sim.run()
    assert seen == [(True, ValueError)]


def test_run_until_event_raises_failure():
    sim = Simulator()
    ev = sim.event("boom")
    sim.call_later(0.0, lambda: ev.fail(RuntimeError("kapow")))
    with pytest.raises(RuntimeError, match="kapow"):
        sim.run_until_event(ev)
