"""Processes: yielding, joining, failure propagation, interrupts."""

import pytest

from repro.sim import Interrupt, Simulator
from repro.sim.process import Process, ProcessDied, all_of, any_of


def test_process_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return "done"

    p = sim.spawn(proc())
    assert sim.run_until_complete(p) == "done"
    assert p.result() == "done"
    assert not p.alive


def test_yield_none_reschedules_at_same_time():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield
        trace.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert trace == [0.0, 0.0]


def test_join_another_process():
    sim = Simulator()

    def worker():
        yield sim.timeout(2.0)
        return 7

    def boss():
        w = sim.spawn(worker())
        value = yield w
        return value * 10

    assert sim.run_until_complete(sim.spawn(boss())) == 70


def test_exception_propagates_to_joiner():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("worker died")

    def boss():
        try:
            yield sim.spawn(bad())
        except RuntimeError as exc:
            return f"caught: {exc}"

    assert sim.run_until_complete(sim.spawn(boss())) == "caught: worker died"


def test_result_of_failed_process_raises_process_died():
    sim = Simulator()

    def bad():
        yield sim.timeout(0.1)
        raise ValueError("nope")

    p = sim.spawn(bad())
    sim.run()
    with pytest.raises(ProcessDied):
        p.result()


def test_result_before_completion_raises():
    sim = Simulator()

    def slow():
        yield sim.timeout(10.0)

    p = sim.spawn(slow())
    with pytest.raises(Exception):
        p.result()


def test_yielding_garbage_fails_process():
    sim = Simulator()

    def bad():
        yield "not an event"

    p = sim.spawn(bad())
    sim.run()
    assert p.completion.failed
    assert isinstance(p.completion.exception, TypeError)


def test_interrupt_waiting_process():
    sim = Simulator()
    outcome = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            outcome.append(("interrupted", intr.cause, sim.now))

    p = sim.spawn(sleeper())
    sim.call_later(2.0, lambda: p.interrupt("wake up"))
    sim.run()
    assert outcome == [("interrupted", "wake up", 2.0)]


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.1)

    p = sim.spawn(quick())
    sim.run()
    p.interrupt("too late")  # must not raise
    sim.run()


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_all_of_collects_in_order():
    sim = Simulator()

    def worker(delay, value):
        yield sim.timeout(delay)
        return value

    def main():
        procs = [sim.spawn(worker(3 - i, i)) for i in range(3)]
        values = yield all_of(sim, procs)
        return values

    assert sim.run_until_complete(sim.spawn(main())) == [0, 1, 2]


def test_all_of_empty_list():
    sim = Simulator()

    def main():
        values = yield all_of(sim, [])
        return values

    assert sim.run_until_complete(sim.spawn(main())) == []


def test_all_of_fails_fast():
    sim = Simulator()

    def good():
        yield sim.timeout(10.0)

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("first failure")

    def main():
        try:
            yield all_of(sim, [sim.spawn(good()), sim.spawn(bad())])
        except RuntimeError:
            return sim.now

    assert sim.run_until_complete(sim.spawn(main())) == 1.0


def test_any_of_returns_first():
    sim = Simulator()

    def worker(delay, value):
        yield sim.timeout(delay)
        return value

    def main():
        idx, value = yield any_of(
            sim, [sim.spawn(worker(5, "slow")), sim.spawn(worker(1, "fast"))]
        )
        return idx, value, sim.now

    assert sim.run_until_complete(sim.spawn(main())) == (1, "fast", 1.0)


def test_nested_yield_from_helpers():
    sim = Simulator()

    def inner(n):
        yield sim.timeout(n)
        return n * 2

    def outer():
        a = yield from inner(1)
        b = yield from inner(2)
        return a + b

    assert sim.run_until_complete(sim.spawn(outer())) == 6
    assert sim.now == 3.0
