"""Stateful property test: the VFS against a dict-based model.

Hypothesis drives random sequences of filesystem operations against
both the real :class:`VirtualFS` and a trivially-correct in-memory
model, requiring identical observable outcomes (content, existence,
listings) after every step.
"""

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.vfs import Credentials, VfsError, VirtualFS

CRED = Credentials(1000, 1000)

names = st.sampled_from([f"f{i}" for i in range(6)] + [f"d{i}" for i in range(3)])
payloads = st.binary(min_size=0, max_size=200)
offsets = st.integers(min_value=0, max_value=300)


class VfsModel(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.fs = VirtualFS(root_uid=1000, root_gid=1000)
        self.files = {}  # name -> bytearray (files in the root dir)
        self.dirs = set()  # names of empty dirs in the root

    # -- rules ------------------------------------------------------------

    @rule(name=names, data=payloads, offset=offsets)
    def write(self, name, data, offset):
        if name in self.dirs:
            return
        try:
            node = self.fs.create(1, name, CRED)
        except VfsError:
            return
        self.fs.write(node.fileid, offset, data, CRED)
        buf = self.files.setdefault(name, bytearray())
        if len(buf) < offset + len(data):
            buf.extend(b"\x00" * (offset + len(data) - len(buf)))
        buf[offset : offset + len(data)] = data

    @rule(name=names)
    def mkdir(self, name):
        if name in self.files or name in self.dirs:
            try:
                self.fs.mkdir(1, name, CRED)
                raise AssertionError("mkdir should have failed with EXIST")
            except VfsError:
                return
        self.fs.mkdir(1, name, CRED)
        self.dirs.add(name)

    @rule(name=names)
    def remove(self, name):
        if name in self.files:
            self.fs.remove(1, name, CRED)
            del self.files[name]
        else:
            try:
                self.fs.remove(1, name, CRED)
                raise AssertionError("remove of missing/dir should fail")
            except VfsError:
                pass

    @rule(name=names)
    def rmdir(self, name):
        if name in self.dirs:
            self.fs.rmdir(1, name, CRED)
            self.dirs.discard(name)
        else:
            try:
                self.fs.rmdir(1, name, CRED)
                raise AssertionError("rmdir of missing/file should fail")
            except VfsError:
                pass

    @rule(src=names, dst=names)
    def rename(self, src, dst):
        model_ok = (
            src in self.files
            and src != dst
            and dst not in self.dirs
        ) or (
            # a directory may replace an *empty* directory (ours always
            # are) but never a file
            src in self.dirs and src != dst and dst not in self.files
        )
        try:
            self.fs.rename(1, src, 1, dst, CRED)
            real_ok = True
        except VfsError:
            real_ok = False
        if src == dst and (src in self.files or src in self.dirs):
            return  # no-op rename onto itself: both sides unchanged
        assert real_ok == model_ok, (src, dst, sorted(self.files), sorted(self.dirs))
        if model_ok:
            if src in self.files:
                self.files[dst] = self.files.pop(src)
            else:
                self.dirs.discard(src)
                self.dirs.discard(dst)  # replaced empty dir, if any
                self.dirs.add(dst)

    @rule(name=names, size=st.integers(min_value=0, max_value=250))
    def truncate(self, name, size):
        if name not in self.files:
            return
        node = self.fs.resolve(f"/{name}", CRED)
        self.fs.setattr(node.fileid, CRED, size=size)
        buf = self.files[name]
        if size <= len(buf):
            del buf[size:]
        else:
            buf.extend(b"\x00" * (size - len(buf)))

    # -- invariants -------------------------------------------------------------

    @invariant()
    def contents_match(self):
        listing = {
            name for name, _fid in self.fs.readdir(1, CRED)
            if name not in (".", "..")
        }
        assert listing == set(self.files) | self.dirs
        for name, expected in self.files.items():
            node = self.fs.resolve(f"/{name}", CRED)
            data, _eof = self.fs.read(node.fileid, 0, 10_000, CRED)
            assert data == bytes(expected), name
            assert node.size == len(expected)

    @invariant()
    def nlink_consistent(self):
        assert self.fs.root.nlink == 2 + len(self.dirs)


TestVfsStateful = VfsModel.TestCase
TestVfsStateful.settings = __import__("hypothesis").settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
