"""Bottleneck attribution (repro.obs.profile) and bench-diff.

Covers the span geometry (self-segments, critical path), the flame
export, the full report on a profiled run (including byte-identical
determinism), the sync-layer lock-wait export, fleet span namespacing,
and the bench-diff comparator + its CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

import pytest

from repro.cli import main
from repro.harness import run_iozone
from repro.obs import Registry, SpanTracer
from repro.obs.benchdiff import (
    bench_diff,
    direction_of,
    flatten,
    format_diff,
    has_regression,
)
from repro.obs.profile import (
    build_report,
    collapsed_stacks,
    critical_path,
    format_report,
    is_crypto_account,
    report_json,
    self_segments,
)
from repro.sim.core import Simulator
from repro.sim.sync import RwLock, Semaphore, lock_group


# -- synthetic span fixtures --------------------------------------------------


@dataclass
class _S:
    """Just enough of a Span for the geometry functions."""

    span_id: int
    name: str
    start: float
    end: Optional[float]
    parent_id: Optional[int] = None
    cat: str = "t"
    tid: int = 1


class _Trace:
    """Tracer stand-in exposing a fixed span list."""

    enabled = True

    def __init__(self, spans):
        self.spans = spans

    def track_names(self):
        return {}

    def track_namespaces(self):
        return {}


# -- self-segments ------------------------------------------------------------


def test_self_segments_subtract_children():
    parent = _S(1, "p", 0.0, 10.0)
    kids = [_S(2, "a", 2.0, 4.0, parent_id=1), _S(3, "b", 6.0, 8.0, parent_id=1)]
    segs = self_segments([parent] + kids)
    of = lambda s: sorted((a, b) for a, b, sp in segs if sp is s)
    assert of(parent) == [(0.0, 2.0), (4.0, 6.0), (8.0, 10.0)]
    assert of(kids[0]) == [(2.0, 4.0)]
    assert of(kids[1]) == [(6.0, 8.0)]


def test_self_segments_child_covering_whole_parent_leaves_nothing():
    parent = _S(1, "p", 0.0, 5.0)
    kid = _S(2, "k", 0.0, 5.0, parent_id=1)
    segs = self_segments([parent, kid])
    assert [(a, b) for a, b, s in segs if s is parent] == []
    assert [(a, b) for a, b, s in segs if s is kid] == [(0.0, 5.0)]


def test_self_segments_skip_open_spans():
    closed = _S(1, "done", 0.0, 1.0)
    open_ = _S(2, "running", 0.5, None)
    segs = self_segments([closed, open_])
    assert [s.name for _a, _b, s in segs] == ["done"]


# -- critical path ------------------------------------------------------------


def test_critical_path_prefers_latest_start_and_charges_idle():
    # A covers [0,4], B covers [3,10]; nothing covers (10,12].
    spans = [_S(1, "A", 0.0, 4.0), _S(2, "B", 3.0, 10.0, tid=2)]
    contributors, idle = critical_path(_Trace(spans), 0.0, 12.0)
    assert idle == pytest.approx(2.0)
    assert contributors[("t", "B")][0] == pytest.approx(7.0)
    assert contributors[("t", "A")][0] == pytest.approx(3.0)


def test_critical_path_tie_breaks_on_span_id():
    # Identical intervals: the newer span (larger id) wins the sweep.
    spans = [_S(1, "old", 0.0, 5.0), _S(2, "new", 0.0, 5.0, tid=2)]
    contributors, idle = critical_path(_Trace(spans), 0.0, 5.0)
    assert idle == 0.0
    assert contributors[("t", "new")][0] == pytest.approx(5.0)
    assert ("t", "old") not in contributors
    assert sum(v[0] for v in contributors.values()) == pytest.approx(5.0)


def test_critical_path_empty_trace_is_all_idle():
    contributors, idle = critical_path(_Trace([]), 1.0, 4.0)
    assert contributors == {} and idle == pytest.approx(3.0)


def test_critical_path_partitions_the_makespan():
    spans = [
        _S(1, "A", 0.0, 6.0),
        _S(2, "B", 2.0, 3.0, tid=2),
        _S(3, "C", 5.0, 9.0, tid=3),
    ]
    contributors, idle = critical_path(_Trace(spans), 0.0, 10.0)
    covered = sum(v[0] for v in contributors.values()) + idle
    assert covered == pytest.approx(10.0)


# -- flame export -------------------------------------------------------------


class _Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class _Owner:
    def __init__(self, name):
        self.name = name


def test_collapsed_stacks_format_weights_and_order():
    clock = _Clock()
    owner = _Owner("worker")
    tr = SpanTracer(clock=clock, current_track=lambda: owner)
    with tr.span("outer", cat="a"):
        clock.t = 1.0
        with tr.span("inner", cat="b"):
            clock.t = 3.0
        clock.t = 4.0
    text = collapsed_stacks(tr)
    lines = text.splitlines()
    assert lines == sorted(lines)  # lexicographic, hence reproducible
    weights = dict(line.rsplit(" ", 1) for line in lines)
    assert weights["worker;outer"] == str(2_000_000_000)  # 2 s of self time
    assert weights["worker;outer;inner"] == str(2_000_000_000)


# -- crypto account marking ---------------------------------------------------


def test_is_crypto_account():
    assert is_crypto_account("proxy/seal:aes-256-cbc-sha1")
    assert is_crypto_account("proxy/open:rc4-128-sha1")
    assert is_crypto_account("ssh/crypto:aes-256-cbc-sha1")
    assert is_crypto_account("sfsd/handshake")
    assert not is_crypto_account("proxy")
    assert not is_crypto_account("kernel-nfs")


# -- sync-layer wait export ---------------------------------------------------


def test_lock_group_collapses_digit_runs():
    assert lock_group("ino42") == "ino*"
    assert lock_group("cpu:c7.core") == "cpu:c*.core"
    assert lock_group("plain") == "plain"


def test_semaphore_contention_exports_wait_histogram():
    sim = Simulator(obs=Registry())
    sem = Semaphore(sim, capacity=1, name="disk7")

    def holder():
        yield sem.acquire()
        yield sim.timeout(2.0)
        sem.release()

    def waiter():
        yield sim.timeout(1.0)
        yield sem.acquire()
        sem.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    sync = sim.obs.snapshot()["sync"]
    assert sync["sem_waits{lock=disk*}"] == 1
    hist = sync["sem_wait{lock=disk*}"]
    assert hist["count"] == 1
    assert hist["sum"] == pytest.approx(1.0)  # queued t=1 .. granted t=2


def test_semaphore_uncontended_exports_nothing():
    sim = Simulator(obs=Registry())
    sem = Semaphore(sim, capacity=2, name="free")

    def user():
        yield sem.acquire()
        yield sim.timeout(1.0)
        sem.release()

    sim.spawn(user())
    sim.run()
    assert "sync" not in sim.obs.snapshot()
    assert sem.wait_count == 0


def test_rwlock_contention_exports_wait_histogram():
    sim = Simulator(obs=Registry())
    lk = RwLock(sim, name="ino42")

    def writer():
        yield lk.acquire_write()
        yield sim.timeout(3.0)
        lk.release_write()

    def reader():
        yield sim.timeout(1.0)
        yield lk.acquire_read()
        lk.release_read()

    sim.spawn(writer())
    sim.spawn(reader())
    sim.run()
    sync = sim.obs.snapshot()["sync"]
    assert sync["rwlock_waits{lock=ino*}"] == 1
    hist = sync["rwlock_wait{lock=ino*}"]
    assert hist["count"] == 1
    assert hist["sum"] == pytest.approx(2.0)  # queued t=1 .. granted t=3


# -- fleet span namespacing ---------------------------------------------------


def test_trace_ns_inherited_by_spawned_subtree():
    sim = Simulator(obs=Registry())
    sim.tracer = SpanTracer(clock=lambda: sim.now,
                            current_track=lambda: sim.current)

    def child():
        with sim.tracer.span("inner", cat="t"):
            yield sim.timeout(1.0)

    def root():
        with sim.tracer.span("outer", cat="t"):
            sim.spawn(child(), name="kid")
            yield sim.timeout(2.0)

    proc = sim.spawn(root(), name="rootp")
    proc.trace_ns = "c7"
    sim.run()
    names = sim.tracer.track_names()
    assert sorted(names.values()) == ["c7:kid", "c7:rootp"]
    assert set(sim.tracer.track_namespaces().values()) == {"c7"}
    # the namespace flows into the flame export, keeping clients apart
    assert all(line.startswith("c7:")
               for line in collapsed_stacks(sim.tracer).splitlines())


def test_trace_ns_defaults_to_none_outside_fleets():
    sim = Simulator(obs=Registry())
    sim.tracer = SpanTracer(clock=lambda: sim.now,
                            current_track=lambda: sim.current)

    def work():
        with sim.tracer.span("w", cat="t"):
            yield sim.timeout(1.0)

    sim.spawn(work(), name="solo")
    sim.run()
    assert set(sim.tracer.track_namespaces().values()) == {None}
    assert "solo" in sim.tracer.track_names().values()


# -- full report on a profiled run -------------------------------------------


def _profiled_run(**kw):
    return run_iozone("sgfs-aes", rtt=0.0, file_size=128 * 1024,
                      profile=kw.pop("profile", True), **kw)


def test_build_report_sections_and_crypto_attribution():
    r = _profiled_run()
    rep = r.profile
    assert {"meta", "cpu", "links", "locks", "rpc_queue",
            "critical_path", "top_spans"} <= set(rep)
    assert rep["meta"]["makespan"] > 0.0
    server = rep["cpu"]["server"]
    assert server["busy_seconds"] > 0.0
    assert server["crypto_seconds"] > 0.0
    assert server["crypto_pct_of_busy"] <= 100.0 + 1e-9
    assert any(is_crypto_account(k) for k in server["accounts"])
    # account seconds sum to the host's busy total
    total = sum(v["seconds"] for v in server["accounts"].values())
    assert total == pytest.approx(server["busy_seconds"], rel=1e-6)
    # utilization timelines are bucketed over the makespan
    assert server["timeline"] and all(0 <= pct <= 100.0 + 1e-9
                                      for _t, pct in server["timeline"])
    # link occupancy was recorded (profile=True arms it)
    assert rep["links"]
    # critical path + idle partition the makespan
    cp = rep["critical_path"]
    covered = sum(c["seconds"] for c in cp["contributors"]) + cp["idle_seconds"]
    assert covered <= rep["meta"]["makespan"] + 1e-9
    # single-session run: no per-client section
    assert "clients" not in rep


def test_build_report_same_seed_byte_identical():
    a, b = _profiled_run(), _profiled_run()
    assert report_json(a.profile) == report_json(b.profile)
    assert collapsed_stacks(a.tracer) == collapsed_stacks(b.tracer)


def test_build_report_respects_kwargs_dict():
    r = _profiled_run(profile={"top": 2, "window": 0.001})
    rep = r.profile
    assert len(rep["critical_path"]["contributors"]) <= 2
    assert len(rep["top_spans"]) <= 2
    assert rep["meta"]["window"] == pytest.approx(0.001)


def test_format_report_renders_every_section():
    text = format_report(_profiled_run().profile)
    for marker in ("makespan", "cpu server", "links:", "critical path",
                   "top spans by self time"):
        assert marker in text


def test_profile_not_attached_unless_requested():
    r = run_iozone("sgfs", rtt=0.0, file_size=128 * 1024,
                   telemetry=True, tracing=True)
    assert r.profile is None


# -- bench-diff ---------------------------------------------------------------


def test_flatten_paths_dicts_and_lists():
    doc = {"b": [1, {"c": 2}], "a": 3}
    assert flatten(doc) == {"a": 3, "b[0]": 1, "b[1].c": 2}


def test_direction_heuristics():
    assert direction_of("fleet.events_per_sec") == 1  # beats 'events...'
    assert direction_of("rpc.latency.p99") == -1
    assert direction_of("cache.hits") == 1
    assert direction_of("something.odd") == 0


def test_bench_diff_verdicts():
    base = {"lat_p50": 1.0, "hits": 10, "odd": 5.0, "gone": 1,
            "same": "x", "kind": "a"}
    cur = {"lat_p50": 2.0, "hits": 20, "odd": 6.0, "new": 2,
           "same": "x", "kind": "b"}
    by_path = {e.path: e for e in bench_diff(base, cur)}
    assert by_path["lat_p50"].verdict == "regressed"
    assert by_path["hits"].verdict == "improved"
    assert by_path["odd"].verdict == "changed"  # unknown direction
    assert by_path["gone"].verdict == "removed"
    assert by_path["new"].verdict == "added"
    assert by_path["same"].verdict == "ok"
    assert by_path["kind"].verdict == "changed"
    assert has_regression(by_path.values())


def test_bench_diff_tolerance_and_globs():
    base = {"a_seconds": 100.0, "b_seconds": 100.0}
    cur = {"a_seconds": 104.0, "b_seconds": 120.0}
    entries = bench_diff(base, cur)
    assert [e.verdict for e in entries] == ["ok", "regressed"]
    assert [e.path for e in bench_diff(base, cur, only=["a_*"])] == ["a_seconds"]
    assert not has_regression(bench_diff(base, cur, ignore=["b_*"]))
    assert not has_regression(bench_diff(base, cur, tolerance=0.5))


def test_format_diff_header_and_lines():
    text = format_diff(bench_diff({"x_seconds": 1.0}, {"x_seconds": 10.0}))
    assert text.startswith("bench-diff: 1 metrics compared")
    assert "regressed" in text and "+900.0%" in text


# -- CLI ----------------------------------------------------------------------


def test_cli_bench_diff_exit_codes(tmp_path):
    import io

    base = tmp_path / "b.json"
    cur = tmp_path / "c.json"
    base.write_text(json.dumps({"x": {"wall_seconds": 1.0}}))
    cur.write_text(json.dumps({"x": {"wall_seconds": 2.0}}))
    out = io.StringIO()
    assert main(["bench-diff", str(base), str(cur)], out=out) == 1
    assert "regressed" in out.getvalue()
    out = io.StringIO()
    assert main(["bench-diff", str(base), str(cur),
                 "--ignore", "*wall*"], out=out) == 0
    out = io.StringIO()
    assert main(["bench-diff", str(base), "/nonexistent.json"], out=out) == 2


def test_cli_profile_writes_flame_and_json(tmp_path):
    import io

    flame = tmp_path / "flame.txt"
    report = tmp_path / "report.json"
    out = io.StringIO()
    rc = main(["profile", "sgfs", "iozone", "--file-size", "131072",
               "--flame", str(flame), "--json", str(report)], out=out)
    assert rc == 0
    assert "makespan" in out.getvalue()
    doc = json.loads(report.read_text())
    assert {"cpu", "critical_path", "meta"} <= set(doc)
    lines = flame.read_text().splitlines()
    assert lines
    for line in lines:
        stack, weight = line.rsplit(" ", 1)
        assert ";" in stack and int(weight) > 0
