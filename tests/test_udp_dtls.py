"""RPC over UDP: loss, retransmission, the DRC, and DTLS protection."""

import pytest

from repro.net import Host, Network
from repro.net.datagram import DropPolicy, bind_datagram
from repro.net.errors import NetError
from repro.rpc import RpcProgram
from repro.rpc.errors import RpcTransportError
from repro.rpc.udp import UdpRpcClient, UdpRpcServer
from repro.sim import Simulator
from repro.tls.dtls import DatagramProtector, DtlsError, ReplayWindow, protector_pair
from repro.xdr import Packer, Unpacker

PROG = 400_000


class Counter(RpcProgram):
    """A deliberately NON-idempotent program: executing twice differs."""

    prog, vers = PROG, 1

    def __init__(self, sim):
        self.sim = sim
        self.value = 0

    def handle(self, proc, args, call, ctx):
        yield self.sim.timeout(0.001)
        self.value += 1
        p = Packer()
        p.pack_uint(self.value)
        return p.get_bytes()


def make_stack(loss_rate=0.0, protectors=(None, None), seed="loss"):
    sim = Simulator()
    net = Network(sim)
    c = Host(sim, net, "c")
    s = Host(sim, net, "s")
    net.connect("c", "s", latency=0.002)
    program = Counter(sim)
    server_ep = bind_datagram(
        sim, s, 2049, DropPolicy(loss_rate, seed=seed) if loss_rate else None
    )
    server = UdpRpcServer(sim, server_ep, program, protector=protectors[1])
    client_ep = bind_datagram(sim, c, 40000)
    client = UdpRpcClient(
        sim, client_ep, "s", 2049, PROG, 1, timeo=0.05, protector=protectors[0]
    )
    return sim, client, server, program


def call_n(sim, client, n):
    def go():
        out = []
        for _ in range(n):
            res = yield from client.call(0, b"")
            out.append(Unpacker(res).unpack_uint())
        return out

    return sim.run_until_complete(sim.spawn(go()))


# -- plain UDP RPC ----------------------------------------------------------------


def test_udp_rpc_basic():
    sim, client, server, program = make_stack()
    assert call_n(sim, client, 3) == [1, 2, 3]
    assert client.retransmissions == 0


def test_udp_rpc_retransmits_through_loss():
    sim, client, server, program = make_stack(loss_rate=0.4)
    assert call_n(sim, client, 10) == list(range(1, 11))
    assert client.retransmissions > 0


def test_drc_prevents_reexecution():
    """The defining DRC property: retransmitted non-idempotent requests
    do not execute twice."""
    sim, client, server, program = make_stack(loss_rate=0.4, seed="drc")
    results = call_n(sim, client, 20)
    # strictly sequential counter values: no request ran twice
    assert results == list(range(1, 21))
    assert server.drc_hits + server.calls_executed >= 20


def test_udp_rpc_gives_up_when_server_unreachable():
    sim = Simulator()
    net = Network(sim)
    c = Host(sim, net, "c")
    Host(sim, net, "s")
    net.connect("c", "s", latency=0.001)
    client_ep = bind_datagram(sim, c, 40000)
    client = UdpRpcClient(sim, client_ep, "s", 2049, PROG, 1,
                          timeo=0.01, retrans=2)

    def go():
        with pytest.raises(RpcTransportError, match="no reply"):
            yield from client.call(0, b"")
        return True

    assert sim.run_until_complete(sim.spawn(go()))


def test_datagram_endpoint_basics():
    sim = Simulator()
    net = Network(sim)
    a = Host(sim, net, "a")
    b = Host(sim, net, "b")
    net.connect("a", "b", latency=0.001)
    ep_a = bind_datagram(sim, a, 1000)
    ep_b = bind_datagram(sim, b, 2000)
    with pytest.raises(NetError):
        bind_datagram(sim, a, 1000)  # double bind
    with pytest.raises(NetError):
        ep_a.sendto("b", 2000, b"x" * 70000)  # oversized

    def exchange():
        ep_a.sendto("b", 2000, b"ping")
        src, payload = yield from ep_b.recvfrom()
        assert src == ("a", 1000)
        ep_b.sendto(src[0], src[1], b"pong:" + payload)
        _src2, reply = yield from ep_a.recvfrom()
        return reply

    assert sim.run_until_complete(sim.spawn(exchange())) == b"pong:ping"


def test_send_to_unbound_port_is_silently_dropped():
    sim = Simulator()
    net = Network(sim)
    a = Host(sim, net, "a")
    Host(sim, net, "b")
    net.connect("a", "b", latency=0.001)
    ep = bind_datagram(sim, a, 1000)
    ep.sendto("b", 9999, b"into the void")  # must not raise
    sim.run()


def test_drop_policy_determinism():
    p1 = DropPolicy(0.5, seed="same")
    p2 = DropPolicy(0.5, seed="same")
    seq1 = [p1.should_drop() for _ in range(100)]
    seq2 = [p2.should_drop() for _ in range(100)]
    assert seq1 == seq2
    assert 20 < sum(seq1) < 80


# -- replay window ------------------------------------------------------------------


def test_replay_window_rejects_duplicates():
    w = ReplayWindow()
    assert w.check_and_update(0)
    assert w.check_and_update(1)
    assert not w.check_and_update(1)
    assert not w.check_and_update(0)


def test_replay_window_accepts_reordering_within_window():
    w = ReplayWindow()
    assert w.check_and_update(10)
    assert w.check_and_update(5)   # late but fresh
    assert not w.check_and_update(5)
    assert w.check_and_update(11)


def test_replay_window_rejects_ancient():
    w = ReplayWindow(size=8)
    assert w.check_and_update(100)
    assert not w.check_and_update(10)  # far outside the window


# -- DTLS protection ---------------------------------------------------------------------


@pytest.mark.parametrize("fast", [False, True])
def test_protector_roundtrip(fast):
    client, server = protector_pair(b"master" * 6, fast=fast)
    for i in range(5):
        msg = f"datagram {i}".encode()
        assert server.open(client.seal(msg)) == msg
        reply = f"reply {i}".encode()
        assert client.open(server.seal(reply)) == reply


def test_protector_hides_plaintext():
    client, server = protector_pair(b"master" * 6, fast=False)
    sealed = client.seal(b"SECRET-UDP-PAYLOAD" * 4)
    assert b"SECRET-UDP-PAYLOAD" not in sealed


def test_protector_detects_tampering():
    client, server = protector_pair(b"master" * 6, fast=False)
    sealed = bytearray(client.seal(b"authentic"))
    sealed[-1] ^= 1
    with pytest.raises(DtlsError):
        server.open(bytes(sealed))
    assert server.macs_rejected == 1


def test_protector_rejects_wire_replay():
    client, server = protector_pair(b"master" * 6)
    sealed = client.seal(b"once only")
    assert server.open(sealed) == b"once only"
    with pytest.raises(DtlsError, match="replay"):
        server.open(sealed)
    assert server.replays_rejected == 1


def test_protector_tolerates_loss_gaps():
    client, server = protector_pair(b"master" * 6)
    d0 = client.seal(b"zero")
    d1 = client.seal(b"one")  # lost
    d2 = client.seal(b"two")
    assert server.open(d0) == b"zero"
    assert server.open(d2) == b"two"  # gap is fine
    assert server.open(d1) == b"one"  # late arrival still accepted once


def test_directions_are_independent():
    client, server = protector_pair(b"master" * 6)
    with pytest.raises(DtlsError):
        # a client cannot open its own sealed datagram (wrong direction)
        client.open(client.seal(b"loopback?"))


# -- end to end: secure RPC over lossy UDP ------------------------------------------------


def test_secure_udp_rpc_over_lossy_network():
    cp, sp = protector_pair(b"session-master" * 3)
    sim, client, server, program = make_stack(
        loss_rate=0.35, protectors=(cp, sp), seed="secure-loss"
    )
    assert call_n(sim, client, 12) == list(range(1, 13))
    assert client.retransmissions > 0


def test_forged_datagram_ignored_by_secure_server():
    cp, sp = protector_pair(b"session-master" * 3)
    sim, client, server, program = make_stack(protectors=(cp, sp))
    # an attacker injects garbage at the server's port
    net = client.endpoint.host.network
    attacker_ep = bind_datagram(sim, net.nodes["c"], 41000)

    def attack_then_call():
        attacker_ep.sendto("s", 2049, b"\x00" * 64)
        res = yield from client.call(0, b"")
        return Unpacker(res).unpack_uint()

    assert sim.run_until_complete(sim.spawn(attack_then_call())) == 1
    assert program.value == 1  # the forgery never executed
