"""The kernel client's cache machinery, unit-tested directly."""

import pytest

from repro.nfs.cache import AccessCache, AttrCache, NameCache, Page, PageCache
from repro.nfs.protocol import Fattr3, FileHandle


def attr(fileid=1, mtime=0.0, is_dir=False, size=100):
    return Fattr3(
        ftype=2 if is_dir else 1, mode=0o644, nlink=1, uid=0, gid=0,
        size=size, used=size, fsid=1, fileid=fileid,
        atime=mtime, mtime=mtime, ctime=mtime,
    )


# -- AttrCache -------------------------------------------------------------------


def test_attr_cache_hit_within_timeout():
    t = [0.0]
    cache = AttrCache(lambda: t[0], ac_reg_min=3.0)
    cache.put(attr(1))
    t[0] = 2.9
    assert cache.get(1) is not None
    t[0] = 3.1
    assert cache.get(1) is None
    assert cache.hits == 1 and cache.misses == 1


def test_attr_cache_timeout_doubles_when_stable():
    t = [0.0]
    cache = AttrCache(lambda: t[0], ac_reg_min=3.0, ac_reg_max=60.0)
    cache.put(attr(1, mtime=5.0))      # timeout 3
    cache.put(attr(1, mtime=5.0))      # unchanged: timeout 6
    cache.put(attr(1, mtime=5.0))      # timeout 12
    t[0] = 10.0
    assert cache.get(1) is not None    # 10 < 12


def test_attr_cache_timeout_resets_on_change():
    t = [0.0]
    cache = AttrCache(lambda: t[0], ac_reg_min=3.0)
    cache.put(attr(1, mtime=5.0))
    cache.put(attr(1, mtime=5.0))      # timeout 6
    cache.put(attr(1, mtime=9.0))      # changed: back to 3
    t[0] = 4.0
    assert cache.get(1) is None


def test_attr_cache_timeout_capped_at_max():
    t = [0.0]
    cache = AttrCache(lambda: t[0], ac_reg_min=3.0, ac_reg_max=10.0)
    for _ in range(10):
        cache.put(attr(1, mtime=5.0))
    t[0] = 9.9
    assert cache.get(1) is not None
    t[0] = 10.1
    assert cache.get(1) is None


def test_attr_cache_directories_use_dir_bounds():
    t = [0.0]
    cache = AttrCache(lambda: t[0], ac_reg_min=3.0, ac_dir_min=30.0)
    cache.put(attr(1, is_dir=True))
    t[0] = 20.0
    assert cache.get(1) is not None  # dirs live longer


def test_attr_cache_peek_ignores_freshness():
    t = [0.0]
    cache = AttrCache(lambda: t[0])
    cache.put(attr(1))
    t[0] = 1e6
    assert cache.get(1) is None
    assert cache.peek(1) is not None


def test_attr_cache_invalidate_and_clear():
    cache = AttrCache(lambda: 0.0)
    cache.put(attr(1))
    cache.put(attr(2))
    cache.invalidate(1)
    assert cache.peek(1) is None and cache.peek(2) is not None
    cache.clear()
    assert cache.peek(2) is None


# -- NameCache ----------------------------------------------------------------------


def fh(fileid):
    return FileHandle(1, fileid, 1)


def test_name_cache_basics():
    cache = NameCache()
    cache.put(1, "a", fh(10), 10)
    assert cache.get(1, "a") == (fh(10), 10)
    assert cache.get(1, "b") is None
    cache.invalidate(1, "a")
    assert cache.get(1, "a") is None


def test_name_cache_invalidate_dir():
    cache = NameCache()
    cache.put(1, "a", fh(10), 10)
    cache.put(1, "b", fh(11), 11)
    cache.put(2, "c", fh(12), 12)
    cache.invalidate_dir(1)
    assert cache.get(1, "a") is None and cache.get(1, "b") is None
    assert cache.get(2, "c") is not None


def test_name_cache_lru_capacity():
    cache = NameCache(capacity=2)
    cache.put(1, "a", fh(10), 10)
    cache.put(1, "b", fh(11), 11)
    cache.get(1, "a")            # refresh "a"
    cache.put(1, "c", fh(12), 12)  # evicts "b"
    assert cache.get(1, "a") is not None
    assert cache.get(1, "b") is None
    assert cache.get(1, "c") is not None


# -- AccessCache -----------------------------------------------------------------------


def test_access_cache_per_uid_with_timeout():
    t = [0.0]
    cache = AccessCache(lambda: t[0], timeout=30.0)
    cache.put(10, 1000, 0x3F)
    assert cache.get(10, 1000) == 0x3F
    assert cache.get(10, 2000) is None  # per-uid
    t[0] = 31.0
    assert cache.get(10, 1000) is None


def test_access_cache_invalidate_file():
    cache = AccessCache(lambda: 0.0)
    cache.put(10, 1000, 1)
    cache.put(10, 2000, 2)
    cache.put(11, 1000, 3)
    cache.invalidate(10)
    assert cache.get(10, 1000) is None and cache.get(10, 2000) is None
    assert cache.get(11, 1000) == 3


# -- PageCache ----------------------------------------------------------------------------


def test_page_cache_put_get_lru():
    cache = PageCache(capacity_bytes=3 * 100, block_size=100)
    for b in range(3):
        cache.put(1, b, Page(data=bytes(100)))
    cache.get(1, 0)  # refresh block 0
    cache.put(1, 3, Page(data=bytes(100)))  # evicts block 1 (LRU)
    assert cache.peek(1, 0) is not None
    assert cache.peek(1, 1) is None
    assert cache.evictions == 1


def test_page_cache_returns_dirty_victims():
    cache = PageCache(capacity_bytes=200, block_size=100)
    cache.put(1, 0, Page(data=bytes(100), dirty=True))
    cache.put(1, 1, Page(data=bytes(100)))
    victims = cache.put(1, 2, Page(data=bytes(100)))
    # block 0 was dirty and oldest: it must be in the victim list
    assert any(v[0] == 1 and v[1] == 0 and v[2].dirty for v in victims)


def test_page_cache_never_evicts_fresh_insert():
    cache = PageCache(capacity_bytes=50, block_size=100)  # smaller than a page
    victims = cache.put(1, 0, Page(data=bytes(100)))
    assert cache.peek(1, 0) is not None
    assert victims == []


def test_page_cache_replace_updates_bytes():
    cache = PageCache(capacity_bytes=1000, block_size=100)
    cache.put(1, 0, Page(data=bytes(100)))
    cache.put(1, 0, Page(data=bytes(40)))
    assert cache.used_bytes == 40
    assert len(cache) == 1


def test_page_cache_drop_file():
    cache = PageCache(capacity_bytes=1000, block_size=100)
    cache.put(1, 0, Page(data=bytes(100)))
    cache.put(2, 0, Page(data=bytes(100)))
    cache.drop_file(1)
    assert cache.peek(1, 0) is None and cache.peek(2, 0) is not None
    assert cache.used_bytes == 100


def test_page_cache_dirty_pages_iterator():
    cache = PageCache(capacity_bytes=1000, block_size=100)
    cache.put(1, 0, Page(data=bytes(100), dirty=True))
    cache.put(1, 1, Page(data=bytes(100)))
    cache.put(2, 0, Page(data=bytes(100), dirty=True))
    all_dirty = list(cache.dirty_pages())
    assert {(f, b) for f, b, _p in all_dirty} == {(1, 0), (2, 0)}
    only_1 = list(cache.dirty_pages(1))
    assert {(f, b) for f, b, _p in only_1} == {(1, 0)}
