"""All eight setups end to end, plus cross-cutting integration checks."""

import pytest

from repro.core import SETUP_BUILDERS, Testbed
from repro.core.setups import FILE_ACCOUNT
from repro.vfs.fs import Credentials

ROOT = Credentials(0, 0)

WORKLOAD_PAYLOAD = b"integration payload " * 500  # ~10 KB


def small_workload(tb, mount):
    def job():
        cl = mount.client
        yield from cl.mkdir("/it")
        yield from cl.write_file("/it/file.bin", WORKLOAD_PAYLOAD)
        data = yield from cl.read_file("/it/file.bin")
        assert data == WORKLOAD_PAYLOAD
        entries = yield from cl.readdir("/it")
        assert [e.name for e in entries] == ["file.bin"]
        attr = yield from cl.stat("/it/file.bin")
        assert attr.size == len(WORKLOAD_PAYLOAD)
        yield from cl.rename("/it/file.bin", "/it/renamed.bin")
        yield from cl.unlink("/it/renamed.bin")
        yield from cl.rmdir("/it")

    tb.run(job())
    tb.run(mount.finish())


@pytest.mark.parametrize("name", sorted(SETUP_BUILDERS))
def test_every_setup_serves_the_same_semantics(name):
    tb = Testbed.build()
    mount = SETUP_BUILDERS[name](tb)
    small_workload(tb, mount)


@pytest.mark.parametrize("name", ["nfs-v3", "sgfs", "sfs", "gfs-ssh"])
def test_every_setup_works_over_wan(name):
    tb = Testbed.build(rtt=0.020)
    kwargs = {"disk_cache": True} if name == "sgfs" else {}
    mount = SETUP_BUILDERS[name](tb, **kwargs)
    small_workload(tb, mount)


def test_file_contents_identical_across_setups():
    """The same workload leaves byte-identical server state everywhere."""
    states = {}
    for name in ("nfs-v3", "gfs", "sgfs", "sfs"):
        tb = Testbed.build()
        mount = SETUP_BUILDERS[name](tb)

        def job(mount=mount):
            yield from mount.client.write_file("/same.bin", WORKLOAD_PAYLOAD)

        tb.run(job())
        tb.run(mount.finish())
        states[name] = bytes(tb.fs.resolve("/same.bin", ROOT).data)
    assert len(set(states.values())) == 1
    assert states["nfs-v3"] == WORKLOAD_PAYLOAD


def test_ownership_identical_across_proxied_setups():
    for name in ("gfs", "sgfs", "sfs"):
        tb = Testbed.build()
        mount = SETUP_BUILDERS[name](tb)

        def job(mount=mount):
            yield from mount.client.write_file("/owner.bin", b"x")

        tb.run(job())
        assert tb.fs.resolve("/owner.bin", ROOT).uid == FILE_ACCOUNT.uid, name


def test_rtt_reconfiguration_mid_simulation():
    tb = Testbed.build(rtt=0.0)
    mount = SETUP_BUILDERS["nfs-v3"](tb)

    def job():
        cl = mount.client
        t0 = tb.sim.now
        yield from cl.write_file("/a", b"x")
        lan_time = tb.sim.now - t0
        tb.set_rtt(0.100)
        cl.attrs.clear()
        cl.names.clear()
        t1 = tb.sim.now
        yield from cl.write_file("/b", b"x")
        wan_time = tb.sim.now - t1
        return lan_time, wan_time

    lan_time, wan_time = tb.run(job())
    assert wan_time > lan_time + 0.100


def test_measured_rtt_matches_configuration():
    tb = Testbed.build(rtt=0.040)
    assert tb.measured_rtt == pytest.approx(0.040 + 0.0003, rel=0.01)


def test_secure_setups_carry_no_plaintext_on_wire():
    """End-to-end privacy for sgfs with real (bit-exact) ciphers."""
    tb = Testbed.build()
    mount = SETUP_BUILDERS["sgfs"](tb, fast_ciphers=False)
    secret = b"WIRETAP-CANARY-0123456789" * 8
    captured = bytearray()
    upstream_sock = mount.client_proxy._upstream.sock
    original = upstream_sock.send
    upstream_sock.send = lambda data: (captured.extend(data), original(data))[1]

    def job():
        yield from mount.client.write_file("/secret.bin", secret)

    tb.run(job())
    tb.run(mount.finish())
    assert len(captured) > len(secret)
    assert secret[:20] not in bytes(captured)
    # and the server did receive the true plaintext after write-back
    assert bytes(tb.fs.resolve("/secret.bin", ROOT).data) == secret


def test_plain_gfs_leaks_plaintext_on_wire():
    """The contrast the paper draws: basic GFS has no channel privacy."""
    tb = Testbed.build()
    mount = SETUP_BUILDERS["gfs"](tb)
    secret = b"WIRETAP-CANARY-0123456789" * 8
    captured = bytearray()
    upstream_sock = mount.client_proxy._upstream.sock
    original = upstream_sock.send
    upstream_sock.send = lambda data: (captured.extend(data), original(data))[1]

    def job():
        yield from mount.client.write_file("/secret.bin", secret)

    tb.run(job())
    assert secret[:20] in bytes(captured)
