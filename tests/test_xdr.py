"""XDR codec: RFC 4506 semantics, strictness, property-based roundtrips."""

import pytest
from hypothesis import given, strategies as st

from repro.xdr import Packer, Unpacker, XdrError


def roundtrip(pack, unpack):
    p = Packer()
    pack(p)
    u = Unpacker(p.get_bytes())
    out = unpack(u)
    u.assert_done()
    return out


# -- fixed encodings (wire compatibility) ---------------------------------------


def test_uint_encoding_is_big_endian():
    p = Packer()
    p.pack_uint(0x01020304)
    assert p.get_bytes() == b"\x01\x02\x03\x04"


def test_int_negative_twos_complement():
    p = Packer()
    p.pack_int(-1)
    assert p.get_bytes() == b"\xff\xff\xff\xff"


def test_string_padded_to_four_bytes():
    p = Packer()
    p.pack_string("abcde")
    assert p.get_bytes() == b"\x00\x00\x00\x05abcde\x00\x00\x00"


def test_bool_is_one_word():
    p = Packer()
    p.pack_bool(True)
    p.pack_bool(False)
    assert p.get_bytes() == b"\x00\x00\x00\x01\x00\x00\x00\x00"


def test_hyper_is_eight_bytes():
    p = Packer()
    p.pack_uhyper(2**40)
    assert len(p.get_bytes()) == 8


# -- range and error handling ----------------------------------------------------


@pytest.mark.parametrize("value", [-1, 2**32])
def test_uint_out_of_range(value):
    with pytest.raises(XdrError):
        Packer().pack_uint(value)


@pytest.mark.parametrize("value", [-(2**31) - 1, 2**31])
def test_int_out_of_range(value):
    with pytest.raises(XdrError):
        Packer().pack_int(value)


def test_underrun_detected():
    u = Unpacker(b"\x00\x00")
    with pytest.raises(XdrError, match="underrun"):
        u.unpack_uint()


def test_trailing_bytes_detected():
    u = Unpacker(b"\x00\x00\x00\x01\xff")
    u.unpack_uint()
    with pytest.raises(XdrError, match="trailing"):
        u.assert_done()


def test_nonzero_padding_rejected():
    # string "a" with garbage in the padding
    data = b"\x00\x00\x00\x01a\x01\x00\x00"
    with pytest.raises(XdrError, match="padding"):
        Unpacker(data).unpack_string()


def test_bool_strictness():
    u = Unpacker(b"\x00\x00\x00\x02")
    with pytest.raises(XdrError):
        u.unpack_bool()


def test_opaque_length_limit():
    p = Packer()
    p.pack_opaque(b"x" * 100)
    with pytest.raises(XdrError, match="exceeds"):
        Unpacker(p.get_bytes()).unpack_opaque(max_len=10)


def test_string_invalid_utf8_rejected():
    p = Packer()
    p.pack_opaque(b"\xff\xfe")
    with pytest.raises(XdrError, match="UTF-8"):
        Unpacker(p.get_bytes()).unpack_string()


def test_fopaque_length_mismatch_on_pack():
    with pytest.raises(XdrError):
        Packer().pack_fopaque(4, b"abc")


def test_array_length_limit():
    p = Packer()
    p.pack_array([1, 2, 3], p.pack_uint)
    u = Unpacker(p.get_bytes())
    with pytest.raises(XdrError):
        u.unpack_array(u.unpack_uint, max_len=2)


# -- composites --------------------------------------------------------------------


def test_optional_roundtrip():
    def pack(p):
        p.pack_optional(None, p.pack_uint)
        p.pack_optional(7, p.pack_uint)

    def unpack(u):
        return u.unpack_optional(u.unpack_uint), u.unpack_optional(u.unpack_uint)

    assert roundtrip(pack, unpack) == (None, 7)


def test_list_roundtrip():
    def pack(p):
        p.pack_list(["x", "y", "z"], p.pack_string)

    def unpack(u):
        return u.unpack_list(u.unpack_string)

    assert roundtrip(pack, unpack) == ["x", "y", "z"]


# -- property-based roundtrips -------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_uint_roundtrip(v):
    assert roundtrip(lambda p: p.pack_uint(v), lambda u: u.unpack_uint()) == v


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_int_roundtrip(v):
    assert roundtrip(lambda p: p.pack_int(v), lambda u: u.unpack_int()) == v


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_uhyper_roundtrip(v):
    assert roundtrip(lambda p: p.pack_uhyper(v), lambda u: u.unpack_uhyper()) == v


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_hyper_roundtrip(v):
    assert roundtrip(lambda p: p.pack_hyper(v), lambda u: u.unpack_hyper()) == v


@given(st.binary(max_size=300))
def test_opaque_roundtrip(v):
    assert roundtrip(lambda p: p.pack_opaque(v), lambda u: u.unpack_opaque()) == v
    # encoding is always word-aligned
    p = Packer()
    p.pack_opaque(v)
    assert len(p.get_bytes()) % 4 == 0


@given(st.text(max_size=120))
def test_string_roundtrip(v):
    assert roundtrip(lambda p: p.pack_string(v), lambda u: u.unpack_string()) == v


@given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=40))
def test_uint_array_roundtrip(v):
    assert roundtrip(
        lambda p: p.pack_array(v, p.pack_uint),
        lambda u: u.unpack_array(u.unpack_uint),
    ) == v


@given(st.floats(allow_nan=False, allow_infinity=False, width=64))
def test_double_roundtrip(v):
    assert roundtrip(lambda p: p.pack_double(v), lambda u: u.unpack_double()) == v


@given(st.binary(max_size=64), st.integers(min_value=0, max_value=32))
def test_concatenated_fields_roundtrip(blob, n):
    def pack(p):
        p.pack_uint(n)
        p.pack_opaque(blob)
        p.pack_bool(bool(n % 2))

    def unpack(u):
        return u.unpack_uint(), u.unpack_opaque(), u.unpack_bool()

    assert roundtrip(pack, unpack) == (n, blob, bool(n % 2))
