"""Live proxy reconfiguration: the §4.2 reload signal, under load."""

import pytest

from repro.core import Testbed, setup_sgfs
from repro.proxy.client_proxy import ProxyCacheConfig
from repro.vfs.fs import Credentials

ROOT = Credentials(0, 0)


def test_reload_disabling_cache_flushes_dirty_data():
    tb = Testbed.build(rtt=0.010)
    mount = setup_sgfs(tb, disk_cache=True)
    proxy = mount.client_proxy

    def job():
        yield from mount.client.write_file("/held.bin", b"h" * 65536)
        assert proxy.dirty_bytes == 65536
        # operator disables caching on the live session
        yield from proxy.reload_config(cache=ProxyCacheConfig(enabled=False))
        assert proxy.dirty_bytes == 0
        # and the data reached the server during the reload
        return bytes(tb.fs.resolve("/held.bin", ROOT).data)

    assert tb.run(job()) == b"h" * 65536


def test_reload_rekey_under_live_io():
    tb = Testbed.build()
    mount = setup_sgfs(tb, suite="aes-256-cbc-sha1", fast_ciphers=False)
    proxy = mount.client_proxy

    def job():
        cl = mount.client
        yield from cl.write_file("/a.bin", b"before")
        yield from proxy.reload_config(rekey=True)
        yield from cl.write_file("/b.bin", b"after")
        a = yield from cl.read_file("/a.bin")
        b = yield from cl.read_file("/b.bin")
        return a, b, proxy._upstream.renegotiations

    a, b, renegs = tb.run(job())
    assert (a, b) == (b"before", b"after")
    assert renegs == 1


def test_reload_gate_blocks_new_calls_until_done():
    tb = Testbed.build(rtt=0.010)
    mount = setup_sgfs(tb, disk_cache=True)
    proxy = mount.client_proxy
    sim = tb.sim

    def job():
        yield from mount.client.write_file("/big.bin", b"g" * (64 * 32768))
        # start a reload (big write-back) and immediately issue an op
        reload_proc = sim.spawn(
            proxy.reload_config(cache=ProxyCacheConfig(enabled=False))
        )
        t0 = sim.now
        mount.client.attrs.clear()
        yield from mount.client.stat("/big.bin")
        stat_done = sim.now
        yield reload_proc
        # the stat had to wait for the gate: it finished after the
        # write-back started making progress, not instantly
        return stat_done - t0

    waited = tb.run(job())
    assert waited > 0.010  # at least one WAN round trip of write-back
