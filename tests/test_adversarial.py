"""Adversarial robustness: corrupted and fuzzed inputs fail *cleanly*.

A user-level security proxy lives on untrusted input.  These property
tests require that arbitrary garbage and targeted bit-flips produce
typed errors (XdrError, RpcError, IntegrityError, SoapFault, ...) —
never unhandled exceptions, hangs, or silent acceptance.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.drbg import Drbg
from repro.crypto.hmac import hmac_sha1
from repro.crypto.rsa import CryptoError, generate_keypair
from repro.gsi import Certificate, CertificateAuthority, DistinguishedName
from repro.gsi.certs import CertError, ValidationError, validate_chain
from repro.nfs import protocol as pr
from repro.rpc.errors import RpcError
from repro.rpc.messages import CallMessage, ReplyMessage
from repro.rpc.record import RecordReader
from repro.services.soap import SoapEnvelope, SoapFault
from repro.services.xmlmini import XmlError, parse
from repro.xdr import Unpacker, XdrError

CA = CertificateAuthority(
    DistinguishedName.parse("/O=FuzzCA/CN=Root"), rng=Drbg("fuzz-ca"), key_bits=768
)
ALICE = CA.issue_identity(
    DistinguishedName.parse("/O=Fuzz/CN=Alice"), rng=Drbg("fuzz-alice"), key_bits=768
)


@given(st.binary(max_size=200))
def test_call_decode_never_crashes(data):
    try:
        CallMessage.decode(data)
    except (RpcError, XdrError):
        pass


@given(st.binary(max_size=200))
def test_reply_decode_never_crashes(data):
    try:
        ReplyMessage.decode(data)
    except (RpcError, XdrError):
        pass


@given(st.binary(max_size=300))
def test_nfs_arg_decoders_never_crash(data):
    for decoder in (
        pr.unpack_getattr_args, pr.unpack_lookup_args, pr.unpack_access_args,
        pr.unpack_read_args, pr.unpack_write_args, pr.unpack_create_args,
        pr.unpack_rename_args, pr.unpack_commit_args,
    ):
        try:
            decoder(data)
        except XdrError:
            pass


@given(st.binary(max_size=300))
def test_nfs_result_decoders_never_crash(data):
    for decoder in (
        pr.unpack_getattr_res, pr.unpack_lookup_res, pr.unpack_read_res,
        pr.unpack_write_res, pr.unpack_create_res, pr.unpack_remove_res,
    ):
        try:
            decoder(data)
        except XdrError:
            pass


@given(st.binary(max_size=200))
def test_readdir_res_decoder_never_crashes(data):
    try:
        pr.unpack_readdir_res(data, plus=True)
        pr.unpack_readdir_res(data, plus=False)
    except XdrError:
        pass


@given(st.binary(max_size=400))
def test_record_reader_survives_garbage(data):
    reader = RecordReader(max_record=4096)
    try:
        reader.feed(data)
        while reader.next_record() is not None:
            pass
    except RpcError:
        pass


@given(st.binary(max_size=300))
def test_certificate_decode_never_crashes(data):
    try:
        Certificate.from_bytes(data)
    except (CertError, XdrError, CryptoError, Exception) as exc:
        # must be a *typed* failure, not a crash with partial state
        assert isinstance(exc, (CertError, XdrError, CryptoError, ValueError))


@settings(max_examples=25)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=7))
def test_certificate_bitflip_never_validates(byte_index, bit):
    raw = bytearray(ALICE.certificate.to_bytes())
    idx = byte_index % len(raw)
    raw[idx] ^= 1 << bit
    try:
        forged = Certificate.from_bytes(bytes(raw))
    except Exception:
        return  # undecodable: fine
    try:
        validate_chain(forged, ALICE.chain, [CA.certificate], now=1.0)
    except ValidationError:
        return
    # a decodable flip that still validates must be a no-op flip
    assert bytes(raw) == ALICE.certificate.to_bytes()


@settings(max_examples=25)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=7))
def test_signature_bitflip_never_verifies(byte_index, bit):
    keys = generate_keypair(768, Drbg("sig-fuzz"))
    message = b"the signed statement"
    sig = bytearray(keys.sign(message))
    sig[byte_index % len(sig)] ^= 1 << bit
    assert not keys.public.verify(message, bytes(sig))


@settings(max_examples=25)
@given(st.binary(min_size=1, max_size=600), st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=0, max_value=7))
def test_hmac_bitflip_always_detected(message, byte_index, bit):
    key = b"integrity-key-123"
    mac = hmac_sha1(key, message)
    mutated = bytearray(message)
    mutated[byte_index % len(mutated)] ^= 1 << bit
    if bytes(mutated) != message:
        assert hmac_sha1(key, bytes(mutated)) != mac


@given(st.binary(max_size=400))
def test_soap_from_xml_never_crashes(data):
    try:
        SoapEnvelope.from_xml(data)
    except (SoapFault, XmlError, Exception) as exc:
        assert isinstance(exc, (SoapFault, XmlError, ValueError, CertError, XdrError))


@given(st.text(max_size=300))
def test_xml_parse_never_crashes(text):
    try:
        parse(text)
    except XmlError:
        pass


@settings(max_examples=20)
@given(st.binary(min_size=32, max_size=256), st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=0, max_value=7))
def test_tls_record_bitflip_always_detected(payload, byte_index, bit):
    """Flip any bit of a protected record: the receiver must reject it."""
    from repro.crypto.suites import SUITE_AES_SHA, derive_key_block
    from repro.tls.channel import IntegrityError, SecureChannel, _derive_directions
    from repro.tls.config import SecurityConfig

    cfg = SecurityConfig(
        credential=ALICE, trust_anchors=(CA.certificate,),
        suite=SUITE_AES_SHA, fast_ciphers=False,
    )
    master = b"m" * 32
    c2s_a, _ = _derive_directions(cfg, master, True)
    c2s_b, _ = _derive_directions(cfg, master, True)

    # sender protects; attacker flips; receiver unprotects
    class _Stub:
        sim = None

    sender = SecureChannel.__new__(SecureChannel)
    sender.config = cfg
    sender._send = c2s_a
    receiver = SecureChannel.__new__(SecureChannel)
    receiver.config = cfg
    receiver._recv = c2s_b

    record = sender._protect(2, payload)
    mutated = bytearray(record)
    idx = byte_index % (len(mutated) - 1) + 1  # keep the type byte
    mutated[idx] ^= 1 << bit
    with pytest.raises(IntegrityError):
        receiver._unprotect(bytes(mutated))
