"""Server-side proxy: authentication, authorization, identity mapping,
ACL interception, ACL-file protection."""

import pytest

from repro.core.setups import (
    FILE_ACCOUNT,
    JOB_ACCOUNT,
    USER_DN,
    setup_gfs,
    setup_sgfs,
)
from repro.core.topology import Testbed
from repro.gsi import DistinguishedName
from repro.gsi.gridmap import Gridmap, UnmappedPolicy
from repro.nfs.client import NfsClientError
from repro.proxy.acl import AclEntry
from repro.vfs.fs import Credentials


def test_identity_mapping_rewrites_uid():
    """The job account's uid (5001) must arrive at the server as the
    mapped file account's uid (901) — files are owned by the grid user's
    local account."""
    tb = Testbed.build()
    mount = setup_sgfs(tb)

    def job():
        yield from mount.client.write_file("/owned.txt", b"x")

    tb.run(job())
    node = tb.fs.resolve("/owned.txt", Credentials(0, 0))
    assert node.uid == FILE_ACCOUNT.uid != JOB_ACCOUNT.uid


def test_unmapped_user_denied():
    tb = Testbed.build()
    mount = setup_sgfs(tb)
    # empty the gridmap mid-session: authorization is per-connection, so
    # build a new session via reload + fresh mount would be heavy; patch
    # the mapping on the live proxy instead and reconnect.
    mount.server_proxy.gridmap = Gridmap(unmapped=UnmappedPolicy.DENY)

    # new connections map against the new (empty) gridmap
    from repro.core.setups import setup_nfs_v3  # noqa: F401  (for parity)

    tb2 = Testbed.build()
    m2 = setup_sgfs(tb2)
    m2.server_proxy.gridmap = Gridmap(unmapped=UnmappedPolicy.DENY)
    # force a brand-new session by building another client proxy is
    # overkill here; instead assert the mapping function result directly:
    assert m2.server_proxy._map_identity(USER_DN) is None


def test_anonymous_policy_maps_to_nobody():
    tb = Testbed.build()
    mount = setup_sgfs(tb)
    mount.server_proxy.gridmap = Gridmap(unmapped=UnmappedPolicy.ANONYMOUS)
    account = mount.server_proxy._map_identity(
        DistinguishedName.parse("/O=Else/CN=Stranger")
    )
    assert account is not None and account.name == "nobody"


def test_access_answered_from_acl():
    tb = Testbed.build()
    mount = setup_sgfs(tb)

    def job():
        cl = mount.client
        yield from cl.write_file("/guarded.txt", b"secret")
        # install a deny ACL for the session user
        mount.server_proxy.acls.set_acl(
            tb.fs.root.fileid, "guarded.txt",
            [AclEntry(str(USER_DN), 0, deny=True)],
        )
        cl.access_cache.clear()  # defeat client-side caching
        bits = yield from cl.access("/guarded.txt", 0x3F)
        return bits

    assert tb.run(job()) == 0
    assert mount.server_proxy.stats.acl_answers >= 1


def test_access_unix_fallback_when_no_acl():
    tb = Testbed.build()
    mount = setup_sgfs(tb)

    def job():
        cl = mount.client
        yield from cl.write_file("/plain.txt", b"x")
        cl.access_cache.clear()
        bits = yield from cl.access("/plain.txt", 0x1)
        return bits

    bits = tb.run(job())
    assert bits == 0x1  # mapped UNIX permissions grant read
    assert mount.server_proxy.stats.unix_fallbacks >= 1


def test_acl_files_hidden_from_lookup():
    tb = Testbed.build()
    mount = setup_sgfs(tb)

    def job():
        cl = mount.client
        yield from cl.write_file("/visible.txt", b"x")
        mount.server_proxy.acls.set_acl(
            tb.fs.root.fileid, "visible.txt", [AclEntry(str(USER_DN), 63)]
        )
        # lookup of the ACL file answers NOENT
        with pytest.raises(NfsClientError, match="NOENT"):
            yield from cl.stat("/.visible.txt.acl")
        return True

    assert tb.run(job())


def test_acl_files_filtered_from_readdir():
    tb = Testbed.build()
    mount = setup_sgfs(tb)

    def job():
        cl = mount.client
        yield from cl.mkdir("/d")
        yield from cl.write_file("/d/a.txt", b"x")
        d = tb.fs.resolve("/d", Credentials(0, 0))
        mount.server_proxy.acls.set_acl(d.fileid, "a.txt", [AclEntry(str(USER_DN), 63)])
        cl._dir_cache.clear()
        cl.attrs.clear()
        entries = yield from cl.readdir("/d")
        return sorted(e.name for e in entries)

    assert tb.run(job()) == ["a.txt"]
    # the ACL file genuinely exists server-side
    d = tb.fs.resolve("/d", Credentials(0, 0))
    assert ".a.txt.acl" in d.entries


def test_acl_file_mutation_refused():
    tb = Testbed.build()
    mount = setup_sgfs(tb)

    def job():
        cl = mount.client
        with pytest.raises(NfsClientError, match="ACCES|NOENT"):
            yield from cl.write_file("/.evil.txt.acl", b'"/O=X/CN=me" 63')
        with pytest.raises(NfsClientError, match="ACCES|NOENT"):
            yield from cl.unlink("/.something.acl")
        yield from cl.write_file("/real.txt", b"x")
        with pytest.raises(NfsClientError, match="ACCES"):
            yield from cl.rename("/real.txt", "/.real.txt.acl")
        return True

    assert tb.run(job())


def test_gfs_session_has_no_channel_security_but_maps_identity():
    tb = Testbed.build()
    mount = setup_gfs(tb)

    def job():
        yield from mount.client.write_file("/via-gfs.txt", b"y")

    tb.run(job())
    node = tb.fs.resolve("/via-gfs.txt", Credentials(0, 0))
    assert node.uid == FILE_ACCOUNT.uid
    assert mount.server_proxy.security is None


def test_proxy_forward_counters():
    tb = Testbed.build()
    mount = setup_sgfs(tb)

    def job():
        yield from mount.client.write_file("/f", b"x" * 100)
        yield from mount.client.read_file("/f")

    tb.run(job())
    assert mount.server_proxy.calls_forwarded > 0
    assert mount.server_proxy.stats.granted > 0
    assert mount.server_proxy.stats.denied == 0


def test_dynamic_gridmap_reload_applies_to_new_sessions():
    tb = Testbed.build()
    mount = setup_sgfs(tb)
    new_map = Gridmap()
    new_map.add(DistinguishedName.parse("/O=New/CN=Someone"), "nobody")
    mount.server_proxy.reload(gridmap=new_map)
    assert mount.server_proxy.gridmap is new_map
    assert mount.server_proxy._map_identity(USER_DN) is None
