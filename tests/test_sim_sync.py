"""Channels, stores, semaphores, gates."""

import pytest

from repro.sim import Channel, Gate, Semaphore, Simulator, Store
from repro.sim.core import SimError
from repro.sim.sync import ChannelClosed


# -- Channel ----------------------------------------------------------------


def test_channel_put_then_get():
    sim = Simulator()
    ch = Channel(sim)
    ch.put("a")
    ch.put("b")

    def main():
        x = yield ch.get()
        y = yield ch.get()
        return x, y

    assert sim.run_until_complete(sim.spawn(main())) == ("a", "b")


def test_channel_get_blocks_until_put():
    sim = Simulator()
    ch = Channel(sim)

    def consumer():
        value = yield ch.get()
        return value, sim.now

    p = sim.spawn(consumer())
    sim.call_later(3.0, lambda: ch.put("late"))
    assert sim.run_until_complete(p) == ("late", 3.0)


def test_channel_fifo_across_waiters():
    sim = Simulator()
    ch = Channel(sim)
    got = []

    def consumer(tag):
        value = yield ch.get()
        got.append((tag, value))

    sim.spawn(consumer("first"))
    sim.spawn(consumer("second"))
    sim.call_later(1.0, lambda: (ch.put(1), ch.put(2)))
    sim.run()
    assert got == [("first", 1), ("second", 2)]


def test_channel_try_get():
    sim = Simulator()
    ch = Channel(sim)
    assert ch.try_get() == (False, None)
    ch.put("x")
    assert ch.try_get() == (True, "x")


def test_channel_close_fails_waiters_and_future_gets():
    sim = Simulator()
    ch = Channel(sim)

    def waiter():
        try:
            yield ch.get()
        except ChannelClosed:
            return "closed"

    p = sim.spawn(waiter())
    sim.call_later(1.0, ch.close)
    assert sim.run_until_complete(p) == "closed"
    with pytest.raises(ChannelClosed):
        ch.put("after")


# -- Store --------------------------------------------------------------------


def test_store_put_blocks_at_capacity():
    sim = Simulator()
    st = Store(sim, capacity=2)
    timeline = []

    def producer():
        for i in range(4):
            yield st.put(i)
            timeline.append((sim.now, f"put{i}"))

    def consumer():
        yield sim.timeout(5.0)
        for _ in range(4):
            v = yield st.get()
            timeline.append((sim.now, f"got{v}"))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    # puts 0 and 1 at t=0; 2 and 3 wait for the consumer at t=5
    assert timeline[0] == (0.0, "put0") and timeline[1] == (0.0, "put1")
    assert all(t == 5.0 for t, _tag in timeline[2:])


def test_store_capacity_must_be_positive():
    with pytest.raises(SimError):
        Store(Simulator(), capacity=0)


def test_store_handoff_to_waiting_getter():
    sim = Simulator()
    st = Store(sim, capacity=1)

    def getter():
        v = yield st.get()
        return v

    p = sim.spawn(getter())
    sim.call_later(1.0, lambda: st.put("direct"))
    assert sim.run_until_complete(p) == "direct"


# -- Semaphore --------------------------------------------------------------------


def test_semaphore_limits_concurrency():
    sim = Simulator()
    sem = Semaphore(sim, capacity=2)
    active = []
    peak = []

    def worker(i):
        yield sem.acquire()
        active.append(i)
        peak.append(len(active))
        yield sim.timeout(1.0)
        active.remove(i)
        sem.release()

    for i in range(6):
        sim.spawn(worker(i))
    sim.run()
    assert max(peak) == 2
    assert sim.now == 3.0  # 6 workers, 2 at a time, 1s each


def test_semaphore_release_without_acquire_rejected():
    sim = Simulator()
    sem = Semaphore(sim)
    with pytest.raises(SimError):
        sem.release()


def test_semaphore_fifo_handoff():
    sim = Simulator()
    sem = Semaphore(sim, capacity=1)
    order = []

    def worker(i):
        yield sem.acquire()
        order.append(i)
        yield sim.timeout(0.1)
        sem.release()

    for i in range(4):
        sim.spawn(worker(i))
    sim.run()
    assert order == [0, 1, 2, 3]


def test_semaphore_counters():
    sim = Simulator()
    sem = Semaphore(sim, capacity=1)

    def holder():
        yield sem.acquire()
        assert sem.in_use == 1
        yield sim.timeout(1.0)
        sem.release()

    def contender():
        yield sim.timeout(0.5)
        assert sem.queued == 0
        yield sem.acquire()
        sem.release()

    sim.spawn(holder())
    sim.spawn(contender())
    sim.run()
    assert sem.in_use == 0


# -- Gate -----------------------------------------------------------------------------


def test_gate_open_passes_immediately():
    sim = Simulator()
    gate = Gate(sim, open=True)

    def main():
        yield gate.wait()
        return sim.now

    assert sim.run_until_complete(sim.spawn(main())) == 0.0


def test_gate_closed_blocks_until_open():
    sim = Simulator()
    gate = Gate(sim, open=False)

    def main():
        yield gate.wait()
        return sim.now

    p = sim.spawn(main())
    sim.call_later(2.0, gate.open)
    assert sim.run_until_complete(p) == 2.0
    assert gate.is_open


def test_gate_reclose():
    sim = Simulator()
    gate = Gate(sim, open=True)
    gate.close()
    assert not gate.is_open
    waited = []

    def main():
        yield gate.wait()
        waited.append(sim.now)

    sim.spawn(main())
    sim.call_later(1.0, gate.open)
    sim.run()
    assert waited == [1.0]


# -- RwLock -----------------------------------------------------------------


def test_rwlock_shared_readers_exclusive_writer():
    from repro.sim import RwLock

    sim = Simulator()
    lock = RwLock(sim)
    assert lock.try_acquire_read()
    assert lock.try_acquire_read()
    assert lock.readers == 2
    assert not lock.try_acquire_write()
    lock.release_read()
    lock.release_read()
    assert lock.try_acquire_write()
    assert lock.write_locked
    assert not lock.try_acquire_read()
    lock.release_write()
    assert lock.try_acquire_read()


def test_rwlock_fifo_no_reader_barging():
    """A reader arriving after a queued writer waits behind it."""
    from repro.sim import RwLock

    sim = Simulator()
    lock = RwLock(sim)
    order = []

    def reader(name, t):
        yield sim.timeout(t)
        if not lock.try_acquire_read():
            yield lock.acquire_read()
        order.append((name, sim.now))
        yield sim.timeout(1.0)
        lock.release_read()

    def writer(name, t):
        yield sim.timeout(t)
        if not lock.try_acquire_write():
            yield lock.acquire_write()
        order.append((name, sim.now))
        yield sim.timeout(1.0)
        lock.release_write()

    sim.spawn(reader("r1", 0.0))
    sim.spawn(writer("w", 0.1))   # queues behind r1
    sim.spawn(reader("r2", 0.2))  # queues behind w, not alongside r1
    sim.run()
    assert order == [("r1", 0.0), ("w", 1.0), ("r2", 2.0)]
    assert lock.wait_count == 2


def test_rwlock_grants_reader_run_after_writer():
    """Consecutive queued readers are admitted together."""
    from repro.sim import RwLock

    sim = Simulator()
    lock = RwLock(sim)
    order = []

    def writer():
        assert lock.try_acquire_write()
        yield sim.timeout(1.0)
        lock.release_write()

    def reader(name):
        yield sim.timeout(0.5)
        if not lock.try_acquire_read():
            yield lock.acquire_read()
        order.append((name, sim.now))
        yield sim.timeout(1.0)
        lock.release_read()

    sim.spawn(writer())
    sim.spawn(reader("a"))
    sim.spawn(reader("b"))
    sim.run()
    # Both readers enter together the moment the writer releases.
    assert order == [("a", 1.0), ("b", 1.0)]


def test_rwlock_release_while_free_raises():
    from repro.sim import RwLock

    sim = Simulator()
    lock = RwLock(sim)
    with pytest.raises(SimError):
        lock.release_read()
    with pytest.raises(SimError):
        lock.release_write()
