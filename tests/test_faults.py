"""Deterministic packet-level fault injection (repro.faults).

The adversary must be *reproducible*: the same (topology, workload,
seed) triple yields the same drop schedule and therefore bit-identical
virtual-time results.  These tests pin the plan's draw discipline, the
flap/crash machinery, and whole-workload determinism under faults.
"""

import pytest

from repro.core import Testbed, setup_nfs_v3
from repro.core.setups import setup_sgfs
from repro.faults import (
    FAULT_PRESETS,
    CrashEvent,
    FaultPlan,
    FaultSpec,
    LinkFlap,
    resolve_fault_preset,
)
from repro.harness.runner import run_iozone
from repro.sim import Simulator
from repro.vfs.fs import Credentials

ROOT = Credentials(0, 0)
PATH = ("client", "router", "server")


# -- the plan ----------------------------------------------------------------


def test_verdicts_are_seed_deterministic():
    spec = FaultSpec(drop_rate=0.2, corrupt_rate=0.1, duplicate_rate=0.1,
                     delay_rate=0.2)
    a = FaultPlan(Simulator(), spec, seed="s1")
    b = FaultPlan(Simulator(), spec, seed="s1")
    c = FaultPlan(Simulator(), spec, seed="s2")
    va = [a.verdict(PATH, 100, "stream") for _ in range(200)]
    vb = [b.verdict(PATH, 100, "stream") for _ in range(200)]
    vc = [c.verdict(PATH, 100, "stream") for _ in range(200)]
    assert va == vb
    assert va != vc
    assert {v for v, _ in va} >= {"pass", "drop"}  # rates actually bite


def test_zero_rates_consume_no_entropy():
    """Flap-only and crash-only plans must not perturb anything else:
    the packet rng is never consulted when all rates are zero."""
    plan = FaultPlan(Simulator(), FaultSpec(flaps=(LinkFlap(10.0, 1.0),)))

    class _Boom:
        def random(self):
            raise AssertionError("rng consulted with zero rates")

    plan._rng = _Boom()
    assert plan.verdict(PATH, 100, "stream") == ("pass", 0.0)


def test_flap_window_drops_everything():
    sim = Simulator()
    plan = FaultPlan(sim, FaultSpec(flaps=(LinkFlap(start=10.0, duration=1.0),)))

    def job():
        assert plan.verdict(PATH, 1, "stream")[0] == "pass"
        yield sim.timeout(10.5)  # inside the window
        assert plan.verdict(PATH, 1, "stream")[0] == "drop"
        assert plan.verdict(PATH, 1, "dgram")[0] == "drop"
        yield sim.timeout(1.0)  # past it
        assert plan.verdict(PATH, 1, "stream")[0] == "pass"
        return True

    assert sim.run_until_complete(sim.spawn(job()))
    assert plan.stats["flap_drops"] == 2


def test_periodic_flaps_expand():
    spec = FaultSpec(flap_period=5.0, flap_duration=0.5, flap_count=3,
                     flaps=(LinkFlap(start=1.0, duration=0.1),))
    flaps = spec.all_flaps()
    assert [f.start for f in flaps] == [1.0, 5.0, 10.0, 15.0]


def test_corrupt_payload_flips_exactly_one_byte():
    plan = FaultPlan(Simulator(), FaultSpec(corrupt_rate=0.1))
    payload = bytes(range(256))
    mangled = plan.corrupt_payload(payload)
    assert len(mangled) == len(payload)
    assert sum(1 for x, y in zip(payload, mangled) if x != y) == 1
    assert plan.corrupt_payload(b"") == b""


def test_rto_doubles_and_caps():
    plan = FaultPlan(Simulator(), FaultSpec(rto_base=0.2, rto_max=2.0))
    assert plan.rto(0) == pytest.approx(0.2)
    assert plan.rto(1) == pytest.approx(0.4)
    assert plan.rto(10) == pytest.approx(2.0)


def test_rates_must_sum_below_one():
    with pytest.raises(ValueError):
        FaultPlan(Simulator(), FaultSpec(drop_rate=0.6, delay_rate=0.5))


def test_resolve_preset():
    assert resolve_fault_preset(None) is None
    spec = FaultSpec(drop_rate=0.01)
    assert resolve_fault_preset(spec) is spec
    assert resolve_fault_preset("lossy-wan") is FAULT_PRESETS["lossy-wan"]
    with pytest.raises(KeyError):
        resolve_fault_preset("no-such-preset")


# -- whole-workload determinism ----------------------------------------------


def _small_iozone(fault_seed):
    return run_iozone(
        "nfs-v3", rtt=0.04, file_size=256 * 1024,
        setup_kwargs={"cache_bytes": 128 * 1024},
        faults="lossy-wan", fault_seed=fault_seed,
    )


def test_same_fault_seed_is_bit_identical():
    r1 = _small_iozone("seed-A")
    r2 = _small_iozone("seed-A")
    assert r1.total == r2.total  # exact float equality, not approx
    assert r1.phases == r2.phases
    assert r1.stats["faults"] == r2.stats["faults"]
    assert r1.stats["faults"]["dropped"] > 0  # the adversary showed up


def test_different_fault_seed_changes_the_schedule():
    r1 = _small_iozone("seed-A")
    r2 = _small_iozone("seed-B")
    assert (r1.stats["faults"] != r2.stats["faults"]
            or r1.total != r2.total)


def test_faults_off_matches_clean_run():
    clean = run_iozone("nfs-v3", rtt=0.04, file_size=256 * 1024,
                       setup_kwargs={"cache_bytes": 128 * 1024})
    off = run_iozone("nfs-v3", rtt=0.04, file_size=256 * 1024,
                     setup_kwargs={"cache_bytes": 128 * 1024}, faults=None)
    assert clean.total == off.total
    assert "faults" not in off.stats


# -- crash / restart ---------------------------------------------------------


def test_nfs_server_crash_restart_rides_through():
    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    cl = mount.client
    spec = FaultSpec(crashes=(CrashEvent(at=0.5, target="server", down_for=0.3),))
    plan = FaultPlan(tb.sim, spec).install(tb.net)
    plan.schedule({"server": (tb.crash_nfs_server, tb.restart_nfs_server)})

    def job():
        yield from cl.write_file("/a.bin", b"before the crash")
        yield tb.sim.timeout(1.0)  # the crash + restart happen in here
        yield from cl.write_file("/b.bin", b"after the restart")
        data = yield from cl.read_file("/a.bin")
        return data

    assert tb.run(job()) == b"before the crash"
    assert plan.stats["crashes"] == 1
    assert bytes(tb.fs.resolve("/b.bin", ROOT).data) == b"after the restart"


def test_server_proxy_crash_restart_rides_through():
    tb = Testbed.build(rtt=0.02)
    mount = setup_sgfs(tb)
    cl = mount.client
    sp = mount.server_proxy

    def job():
        yield from cl.write_file("/a.bin", b"pre-crash")
        sp.crash()
        yield tb.sim.timeout(0.5)
        sp.restart()
        yield from cl.write_file("/b.bin", b"post-restart")
        data = yield from cl.read_file("/a.bin")
        return data

    assert tb.run(job()) == b"pre-crash"
    assert mount.client_proxy.stats.get("upstream_retries", 0) >= 1
    assert bytes(tb.fs.resolve("/b.bin", ROOT).data) == b"post-restart"


def test_dirty_writeback_survives_server_proxy_restart():
    """The tentpole client-hardening claim: blocks sitting dirty in the
    client proxy's write-back cache outlive a server-proxy restart and
    land upstream once it returns."""
    tb = Testbed.build(rtt=0.02)
    mount = setup_sgfs(tb, disk_cache=True)
    cl = mount.client
    sp = mount.server_proxy
    payload = b"dirty block data " * 64

    def job():
        yield from cl.write_file("/d.bin", payload)  # parked dirty in the proxy
        sp.crash()
        yield tb.sim.timeout(0.5)
        sp.restart()
        yield from mount.finish()  # write-back must reconnect and flush
        return True

    assert tb.run(job())
    assert bytes(tb.fs.resolve("/d.bin", ROOT).data) == payload
    assert mount.client_proxy.stats.get("writeback_errors", 0) == 0
