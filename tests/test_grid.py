"""Sharded data plane: placement math, metadata epochs, striped fleets,
replicated crash failover."""

import pytest

from repro.faults import CrashEvent, FaultSpec
from repro.grid import GridLayout, GridMetadataService
from repro.harness import run_fleet
from repro.workloads.iozone import IOzoneWriteRead

FS = 256 * 1024
GRID_KW = dict(grid_block_size=32 * 1024,
               setup_kwargs={"cache_bytes": 64 * 1024})


def _wr():
    return IOzoneWriteRead(file_size=FS)


def _fingerprint(result):
    return (
        result.makespan,
        [(c.name, c.start, c.end, sorted(c.phases.items()), c.bytes_moved)
         for c in result.per_client],
        result.stats,
    )


# -- placement math ------------------------------------------------------------


def test_layout_validation():
    with pytest.raises(ValueError):
        GridLayout(width=0)
    with pytest.raises(ValueError):
        GridLayout(width=2, replicas=3)
    with pytest.raises(ValueError):
        GridLayout(width=2, replicas=0)
    with pytest.raises(ValueError):
        GridLayout(width=2, block_size=0)


def test_layout_owners_round_robin_and_failover_order():
    lay = GridLayout(width=4, replicas=2, block_size=1024)
    assert lay.primary(fileid=7, block=0) == 3
    assert lay.primary(fileid=7, block=1) == 0
    # primary first, then the next backends mod width
    assert lay.owners(fileid=7, block=0) == [3, 0]
    assert lay.owners(fileid=7, block=2) == [1, 2]
    # placement never depends on anything but (fileid, block, width, replicas)
    assert lay.owners(7, 2) == GridLayout(4, 2, 4096).owners(7, 2)


def test_layout_spans_split_at_block_boundaries():
    lay = GridLayout(width=2, block_size=100)
    # inside one block
    assert lay.spans(10, 50) == [(0, 10, 50)]
    # exactly one block
    assert lay.spans(100, 100) == [(1, 100, 100)]
    # straddling a boundary: offsets stay absolute
    assert lay.spans(90, 30) == [(0, 90, 10), (1, 100, 20)]
    # many blocks, ascending order, lengths sum to count
    spans = lay.spans(45, 333)
    assert [b for b, _o, _l in spans] == [0, 1, 2, 3]
    assert sum(l for _b, _o, l in spans) == 333
    assert spans[0] == (0, 45, 55)
    assert spans[-1] == (3, 300, 78)
    # empty range
    assert lay.spans(40, 0) == []


# -- metadata service ----------------------------------------------------------


def test_metadata_epoch_semantics():
    svc = GridMetadataService(width=3, replicas=2, block_size=4096)
    v = svc.get_layout(42)
    assert (v.epoch, v.striped) == (1, False)
    v = svc.register(42)
    assert (v.epoch, v.striped) == (1, True)
    # registration is idempotent and does not bump the epoch
    assert svc.register(42).epoch == 1
    assert svc.stats["registrations"] == 1
    assert svc.get_layout(42).striped is True

    # a dead backend bumps the epoch exactly once
    v = svc.mark_dead(1)
    assert v.epoch == 2 and v.dead == (1,)
    assert svc.mark_dead(1).epoch == 2  # idempotent
    assert svc.mark_dead(99).epoch == 2  # out of range: ignored
    assert svc.stats["epoch_bumps"] == 1

    v = svc.forget(42)
    assert v.striped is False and v.epoch == 2
    assert svc.get_layout(42).striped is False


# -- striped fleets ------------------------------------------------------------


def test_striped_fleet_completes_and_reports_grid_stats():
    r = run_fleet("sgfs-sha", _wr, clients=2, servers=2, **GRID_KW)
    assert all(c.bytes_moved == 3 * FS for c in r.per_client)
    g = r.stats["grid"]
    assert g["striped_reads"] > 0 and g["striped_writes"] > 0
    assert g["spans_read"] > 0 and g["spans_written"] > 0
    # healthy run: no failover, no data loss, no degraded replication
    assert g["read_failovers"] == 0
    assert g["hole_spans"] == 0
    assert g["degraded_writes"] == 0
    assert r.stats["grid.meta"]["registrations"] == 2


def test_striped_fleet_bit_identical_same_seed():
    kw = dict(clients=2, servers=2, **GRID_KW)
    a = run_fleet("sgfs-sha", _wr, **kw)
    b = run_fleet("sgfs-sha", _wr, **kw)
    assert _fingerprint(a) == _fingerprint(b)


def test_single_server_run_has_no_grid_plane():
    # servers=1 must take the exact legacy path: no router, no metadata
    # service, no grid stats -- and identical results to the default.
    legacy = run_fleet("sgfs-sha", _wr, clients=2,
                       setup_kwargs=GRID_KW["setup_kwargs"])
    one = run_fleet("sgfs-sha", _wr, clients=2, servers=1, **GRID_KW)
    assert "grid" not in one.stats and "grid.meta" not in one.stats
    assert _fingerprint(one) == _fingerprint(legacy)


def test_striping_spreads_load_across_backends():
    r = run_fleet("sgfs-aes", _wr, clients=4, servers=2, **GRID_KW)
    rpc = r.stats["rpc.server"]
    calls = {s: rpc.get(f"calls{{server={s}}}", 0) for s in ("nfsd", "nfsd-s1")}
    assert calls["nfsd-s1"] > 0, f"backend s1 served nothing: {rpc}"


def test_grid_validation():
    with pytest.raises(ValueError):
        run_fleet("sgfs-sha", _wr, clients=2, servers=0)
    with pytest.raises(ValueError):
        run_fleet("sgfs-sha", _wr, clients=2, servers=2, replicas=3)
    with pytest.raises(ValueError):
        # the grid data plane needs the proxy stack
        run_fleet("nfs-v3", _wr, clients=2, servers=2)


# -- replication and crash failover --------------------------------------------

CRASH = FaultSpec(
    crashes=(CrashEvent(at=0.05, target="backend1", down_for=10.0),),
)


def test_replicated_fleet_survives_backend_crash():
    r = run_fleet(
        "sgfs-sha", _wr, clients=2, servers=3, replicas=2,
        faults=CRASH, fault_seed="grid-ci", **GRID_KW,
    )
    # every client still moved every byte, verified by the workload's
    # read-back pattern checks
    assert all(c.bytes_moved == 3 * FS for c in r.per_client)
    g = r.stats["grid"]
    # the crash was noticed: reads failed over to replicas, writes went
    # degraded while one owner was down, and the metadata service was told
    assert g["read_failovers"] > 0
    assert g["degraded_writes"] > 0
    assert g["dead_marks"] > 0
    # replication worked: no span was ever unrecoverable
    assert g["hole_spans"] == 0
    assert r.stats["grid.meta"]["epoch_bumps"] == 1


def test_replicated_crash_fleet_bit_identical_same_seed():
    kw = dict(
        clients=2, servers=3, replicas=2,
        faults=CRASH, fault_seed="grid-ci", **GRID_KW,
    )
    a = run_fleet("sgfs-sha", _wr, **kw)
    b = run_fleet("sgfs-sha", _wr, **kw)
    assert _fingerprint(a) == _fingerprint(b)
