"""Whole-stack determinism: identical runs produce identical traces.

The reproduction's claim to replicability rests on this: no wall clock,
no OS entropy, FIFO tie-breaking everywhere.  These tests run complete
experiments twice and require bit-identical outcomes.
"""

from repro.core import SETUP_BUILDERS, Testbed
from repro.harness import run_iozone, run_postmark
from repro.workloads.postmark import PostMarkConfig


def test_iozone_run_is_bit_identical():
    a = run_iozone("sgfs-aes", rtt=0.0, file_size=1 << 20,
                   setup_kwargs={"cache_bytes": 1 << 19})
    b = run_iozone("sgfs-aes", rtt=0.0, file_size=1 << 20,
                   setup_kwargs={"cache_bytes": 1 << 19})
    assert a.total == b.total
    assert a.phases == b.phases
    assert a.client_cpu == b.client_cpu
    assert a.stats["nfs_client"] == b.stats["nfs_client"]


def test_postmark_wan_run_is_bit_identical():
    cfg = PostMarkConfig(directories=5, files=25, transactions=50)
    a = run_postmark("sgfs", rtt=0.040, config=cfg,
                     setup_kwargs={"disk_cache": True})
    b = run_postmark("sgfs", rtt=0.040, config=cfg,
                     setup_kwargs={"disk_cache": True})
    assert a.total == b.total
    assert a.phases == b.phases
    assert a.writeback_seconds == b.writeback_seconds


def test_secure_session_traffic_is_deterministic():
    """Even the encrypted byte streams replay identically (seeded DRBG)."""

    def run_and_capture():
        tb = Testbed.build()
        mount = SETUP_BUILDERS["sgfs"](tb, fast_ciphers=False)
        captured = bytearray()
        sock = mount.client_proxy._upstream.sock
        original = sock.send
        sock.send = lambda data: (captured.extend(data), original(data))[1]

        def job():
            yield from mount.client.write_file("/det.bin", b"determinism" * 50)

        tb.run(job())
        return bytes(captured), tb.sim.now

    (bytes_a, t_a), (bytes_b, t_b) = run_and_capture(), run_and_capture()
    assert bytes_a == bytes_b
    assert t_a == t_b


def test_different_rtts_differ_but_each_replays():
    cfg = PostMarkConfig(directories=3, files=10, transactions=10)
    r20a = run_postmark("nfs-v3", rtt=0.020, config=cfg).total
    r20b = run_postmark("nfs-v3", rtt=0.020, config=cfg).total
    r40 = run_postmark("nfs-v3", rtt=0.040, config=cfg).total
    assert r20a == r20b != r40
