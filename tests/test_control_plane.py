"""Population-scale control plane: authz cache, SSO delegation, churn."""

import base64

import pytest

from repro.core.setups import CA_DN, FILE_ACCOUNT, SERVER_DN, USER_DN
from repro.core.topology import NFS_PORT, Testbed
from repro.crypto.drbg import Drbg
from repro.crypto.hybrid import open_sealed
from repro.gsi import (
    CertificateAuthority,
    DistinguishedName,
    Gridmap,
    effective_identity,
    is_limited_proxy,
    issue_proxy_certificate,
)
from repro.gsi.certs import Credential, validate_chain
from repro.gsi.gridmap import UnmappedPolicy
from repro.harness import run_fleet
from repro.proxy.accounts import AccountsDb
from repro.proxy.authz import AuthzCache
from repro.services import (
    CredentialPortal,
    DataSchedulerService,
    FileSystemService,
    MAX_PORTAL_LIFETIME,
    SoapFault,
)
from repro.services.dss import seal_credential_for
from repro.services.endpoint import ServiceClient
from repro.workloads import SessionChurn

ALICE_DN = DistinguishedName.parse("/C=US/O=Lab/CN=Alice")
BOB_DN = DistinguishedName.parse("/C=US/O=Lab/CN=Bob")


# -- versioned authorization cache ---------------------------------------------


def _cache():
    gm = Gridmap()
    gm.add(ALICE_DN, "alice")
    accounts = AccountsDb()
    accounts.ensure("alice")
    return gm, accounts, AuthzCache(accounts)


def test_authz_cache_miss_then_hit():
    gm, accounts, cache = _cache()
    first = cache.resolve(gm, ALICE_DN)
    second = cache.resolve(gm, ALICE_DN)
    assert first is second and first.name == "alice"
    assert (cache.misses, cache.hits, cache.stale) == (1, 1, 0)


def test_authz_cache_denial_is_cached_too():
    gm, accounts, cache = _cache()
    assert cache.resolve(gm, BOB_DN) is None
    assert cache.resolve(gm, BOB_DN) is None
    assert (cache.misses, cache.hits) == (1, 1)


def test_authz_cache_lookup_immediately_after_remove():
    gm, accounts, cache = _cache()
    assert cache.resolve(gm, ALICE_DN).name == "alice"
    gm.remove(ALICE_DN)
    # No explicit purge happened, but the epoch moved: the very next
    # lookup must observe the removal, never the cached grant.
    assert cache.resolve(gm, ALICE_DN) is None
    assert cache.stale == 1


def test_authz_cache_stale_reresolves_on_remap():
    gm, accounts, cache = _cache()
    accounts.ensure("other")
    assert cache.resolve(gm, ALICE_DN).name == "alice"
    gm.add(ALICE_DN, "other")
    assert cache.resolve(gm, ALICE_DN).name == "other"
    # Re-resolution restamps: the follow-up lookup is a plain hit.
    assert cache.resolve(gm, ALICE_DN).name == "other"
    assert (cache.stale, cache.hits) == (1, 1)


def test_authz_cache_unrelated_mutation_costs_one_stale_pass():
    gm, accounts, cache = _cache()
    cache.resolve(gm, ALICE_DN)
    gm.add(BOB_DN, "alice")  # bumps the epoch for everyone
    assert cache.resolve(gm, ALICE_DN).name == "alice"
    assert cache.stale == 1


def test_authz_cache_gridmap_swap_invalidates_everything():
    gm, accounts, cache = _cache()
    cache.resolve(gm, ALICE_DN)
    replacement = Gridmap()  # reconfiguration: Alice not carried over
    assert cache.resolve(replacement, ALICE_DN) is None
    assert len(cache) == 1  # old entries gone, only the re-resolution


def test_authz_cache_anonymous_policy_creates_missing_account():
    gm = Gridmap(unmapped=UnmappedPolicy.ANONYMOUS, anonymous_account="grid-anon")
    accounts = AccountsDb()
    assert accounts.lookup("grid-anon") is None
    cache = AuthzCache(accounts)
    resolved = cache.resolve(gm, BOB_DN)
    assert resolved is not None and resolved.name == "grid-anon"
    assert resolved.uid >= 1000
    # Auto-created once, then served from the accounts db (and cache).
    assert cache.resolve(gm, BOB_DN) is resolved


def test_authz_cache_under_concurrent_fleet_mutation():
    """Interleave lookups with add/remove storms; the cache must agree
    with an uncached gridmap walk after every single mutation."""
    gm, accounts, cache = _cache()
    for name in ("acct00", "acct01", "acct02"):
        accounts.ensure(name)
    dns = [DistinguishedName.parse(f"/O=Lab/CN=User {i}") for i in range(16)]
    rng = Drbg("authz-storm")
    for step in range(200):
        roll = rng.randbytes(2)
        dn = dns[roll[0] % len(dns)]
        if roll[1] % 3 == 0:
            gm.add(dn, f"acct{roll[1] % 3:02d}")
        elif roll[1] % 3 == 1:
            gm.remove(dn)
        probe = dns[roll[1] % len(dns)]
        cached = cache.resolve(gm, probe)
        truth = gm.lookup(probe)
        assert (cached.name if cached else None) == truth
    assert cache.stale > 0 and cache.hits > 0


# -- limited (restricted) proxy semantics --------------------------------------

CA = CertificateAuthority(CA_DN, rng=Drbg("cp-ca"), key_bits=768)
CAROL = CA.issue_identity(
    DistinguishedName.parse("/C=US/O=Lab/CN=Carol"), rng=Drbg("cp-carol"), key_bits=768
)


def test_limited_proxy_marked_and_strips_to_base_identity():
    proxy = issue_proxy_certificate(
        CAROL, now=0.0, rng=Drbg("lp"), key_bits=768, limited=True
    )
    assert is_limited_proxy(proxy.certificate.subject)
    assert not is_limited_proxy(CAROL.certificate.subject)
    assert effective_identity(proxy.certificate.subject) == CAROL.dn
    identity = validate_chain(
        proxy.certificate, proxy.chain, [CA.certificate], now=1.0
    )
    assert identity == CAROL.dn


def test_limited_proxy_cannot_delegate_further():
    proxy = issue_proxy_certificate(
        CAROL, now=0.0, rng=Drbg("lp2"), key_bits=768, limited=True
    )
    with pytest.raises(Exception, match="limited"):
        issue_proxy_certificate(proxy, now=1.0, rng=Drbg("lp3"), key_bits=768)


# -- credential portal (single sign-on) ----------------------------------------


def portal_deploy():
    tb = Testbed.build()
    sim = tb.sim
    rng = Drbg("portal-deploy")
    ca = CertificateAuthority(CA_DN, rng=rng.fork("ca"), key_bits=768)
    anchors = [ca.certificate]
    portal_id = ca.issue_identity(
        DistinguishedName.parse("/C=US/O=UFL/CN=portal"),
        rng=rng.fork("portal-id"), key_bits=768,
    )
    fss_id = ca.issue_identity(
        DistinguishedName.parse("/C=US/O=UFL/CN=fss-client"),
        rng=rng.fork("fss-id"), key_bits=768,
    )
    user = ca.issue_identity(USER_DN, rng=rng.fork("user"), key_bits=768)
    portal = CredentialPortal(
        sim, tb.server, 5100, portal_id, anchors,
        key_bits=768, rng=rng.fork("portal"),
    )
    portal.start()
    portal.enroll(user)
    portal.register_recipient("fss", fss_id.certificate)
    return tb, rng, anchors, user, fss_id, portal, ca


def _issue(tb, client, params):
    def scenario():
        return (yield from client.call("server", 5100, "IssueProxy", params))

    return tb.run(scenario())


def test_portal_issues_short_lived_proxy_sealed_to_recipient():
    tb, rng, anchors, user, fss_id, portal, ca = portal_deploy()
    me = ServiceClient(tb.sim, tb.client, user, anchors, rng=rng.fork("me"))
    reply = _issue(tb, me, {"recipient": "fss", "lifetime": "600"})
    blob = open_sealed(base64.b64decode(reply["credential"]), fss_id.keypair)
    cred = Credential.from_bytes(blob)
    assert effective_identity(cred.certificate.subject) == user.dn
    assert not is_limited_proxy(cred.certificate.subject)
    assert cred.certificate.not_after == float(reply["not_after"])
    assert cred.certificate.not_after <= tb.sim.now + 600.0
    validate_chain(cred.certificate, cred.chain, anchors, now=tb.sim.now)
    assert portal.proxies_issued == 1 and portal.renewals == 0


def test_portal_issues_limited_proxy_on_request():
    tb, rng, anchors, user, fss_id, portal, ca = portal_deploy()
    me = ServiceClient(tb.sim, tb.client, user, anchors, rng=rng.fork("me"))
    reply = _issue(tb, me, {"recipient": "fss", "limited": "yes"})
    cred = Credential.from_bytes(
        open_sealed(base64.b64decode(reply["credential"]), fss_id.keypair)
    )
    assert reply["limited"] == "yes"
    assert is_limited_proxy(cred.certificate.subject)


def test_portal_caps_requested_lifetime():
    tb, rng, anchors, user, fss_id, portal, ca = portal_deploy()
    me = ServiceClient(tb.sim, tb.client, user, anchors, rng=rng.fork("me"))
    reply = _issue(tb, me, {"recipient": "fss", "lifetime": "1e9"})
    issued_at = tb.sim.now  # portal stamped not_after before our reply returned
    assert float(reply["not_after"]) <= issued_at + MAX_PORTAL_LIFETIME


def test_portal_counts_renewals_per_identity():
    tb, rng, anchors, user, fss_id, portal, ca = portal_deploy()
    me = ServiceClient(tb.sim, tb.client, user, anchors, rng=rng.fork("me"))
    first = _issue(tb, me, {"recipient": "fss", "lifetime": "60"})
    second = _issue(tb, me, {"recipient": "fss", "lifetime": "60"})
    # Fresh keypair per issuance: re-delegation never replays a blob.
    assert first["credential"] != second["credential"]
    assert portal.proxies_issued == 2 and portal.renewals == 1


def test_portal_denies_unenrolled_identity():
    tb, rng, anchors, user, fss_id, portal, ca = portal_deploy()
    outsider = ca.issue_identity(
        DistinguishedName.parse("/C=US/O=Other/CN=Outsider"),
        rng=rng.fork("outsider"), key_bits=768,
    )
    me = ServiceClient(tb.sim, tb.client, outsider, anchors, rng=rng.fork("out"))

    def scenario():
        with pytest.raises(SoapFault, match="not enrolled"):
            yield from me.call("server", 5100, "IssueProxy", {"recipient": "fss"})
        return True

    assert tb.run(scenario())
    assert portal.denials == 1 and portal.proxies_issued == 0


def test_portal_rejects_unknown_recipient_and_bad_lifetime():
    tb, rng, anchors, user, fss_id, portal, ca = portal_deploy()
    me = ServiceClient(tb.sim, tb.client, user, anchors, rng=rng.fork("me"))

    def scenario():
        with pytest.raises(SoapFault, match="unknown recipient"):
            yield from me.call("server", 5100, "IssueProxy", {"recipient": "ghost"})
        with pytest.raises(SoapFault, match="lifetime"):
            yield from me.call(
                "server", 5100, "IssueProxy",
                {"recipient": "fss", "lifetime": "-5"},
            )
        return True

    assert tb.run(scenario())
    assert portal.denials == 2


def test_portal_issuance_is_deterministic():
    creds = []
    times = []
    for _ in range(2):
        tb, rng, anchors, user, fss_id, portal, ca = portal_deploy()
        me = ServiceClient(tb.sim, tb.client, user, anchors, rng=rng.fork("me"))
        reply = _issue(tb, me, {"recipient": "fss", "lifetime": "600"})
        creds.append(Credential.from_bytes(
            open_sealed(base64.b64decode(reply["credential"]), fss_id.keypair)
        ))
        times.append(float(reply["not_after"]))
    # Same seed -> bit-identical issuance time, subject, and keys.
    # (Certificate serials and reply nonces come from process-global
    # counters, so raw bytes differ across two deployments in one
    # process; fleet-level bit-identity is asserted below instead.)
    assert times[0] == times[1]
    a, b = (c.certificate for c in creds)
    assert (a.subject, a.not_before, a.not_after) == (b.subject, b.not_before, b.not_after)
    assert a.public_key == b.public_key
    assert creds[0].keypair == creds[1].keypair


# -- FSS / DSS restriction enforcement -----------------------------------------


def services_deploy(max_delegation_lifetime=None):
    tb = Testbed.build()
    sim = tb.sim
    rng = Drbg("cp-deploy")
    ca = CertificateAuthority(CA_DN, rng=rng.fork("ca"), key_bits=768)
    anchors = [ca.certificate]
    ids = {
        name: ca.issue_identity(
            DistinguishedName.parse(f"/C=US/O=UFL/CN={name}"),
            rng=rng.fork(name), key_bits=768,
        )
        for name in ("fss-server", "fss-client", "dss")
    }
    user = ca.issue_identity(USER_DN, rng=rng.fork("user"), key_bits=768)
    host_id = ca.issue_identity(SERVER_DN, rng=rng.fork("host"), key_bits=768)
    fss_server = FileSystemService(
        sim, tb.server, 5000, ids["fss-server"], anchors,
        fs=tb.fs, accounts=tb.server_accounts, nfs_port=NFS_PORT,
        host_credential=host_id,
    )
    fss_server.start()
    fss_client = FileSystemService(
        sim, tb.client, 5001, ids["fss-client"], anchors,
        max_delegation_lifetime=max_delegation_lifetime,
    )
    fss_client.start()
    dss = DataSchedulerService(
        sim, tb.server, 5002, ids["dss"], anchors,
        client_fss={"client": ("client", 5001, ids["fss-client"].certificate)},
    )
    dss.start()
    dss.register_filesystem(
        "/GFS/ming", "server", 5000, acl={str(USER_DN): FILE_ACCOUNT.name}
    )
    return tb, rng, anchors, user, ids, fss_server, dss


def _create_session(tb, rng, anchors, user, ids, lifetime):
    sim = tb.sim
    proxy_cred = issue_proxy_certificate(
        user, now=sim.now, lifetime=lifetime, rng=rng.fork("px"), key_bits=768
    )
    me = ServiceClient(sim, tb.client, proxy_cred, anchors, rng=rng.fork("me"))
    blob = seal_credential_for(
        proxy_cred, ids["fss-client"].certificate, rng.fork("seal")
    )

    def scenario():
        return (yield from me.call(
            "server", 5002, "CreateSession",
            {"filesystem": "/GFS/ming", "client_host": "client",
             "suite": "rc4-128-sha1", "credential": blob},
        ))

    return tb.run(scenario())


def test_fss_accepts_delegation_within_lifetime_limit():
    tb, rng, anchors, user, ids, fss_server, dss = services_deploy(
        max_delegation_lifetime=900.0
    )
    reply = _create_session(tb, rng, anchors, user, ids, lifetime=600.0)
    assert "session_id" in reply and "client_port" in reply


def test_fss_rejects_overlong_delegation():
    tb, rng, anchors, user, ids, fss_server, dss = services_deploy(
        max_delegation_lifetime=900.0
    )
    with pytest.raises(SoapFault, match="limit"):
        _create_session(tb, rng, anchors, user, ids, lifetime=3600.0)


def test_limited_proxy_cannot_manage_acls():
    tb, rng, anchors, user, ids, fss_server, dss = services_deploy()
    limited = issue_proxy_certificate(
        user, now=tb.sim.now, rng=rng.fork("lpx"), key_bits=768, limited=True
    )
    me = ServiceClient(tb.sim, tb.client, limited, anchors, rng=rng.fork("me"))

    def scenario():
        with pytest.raises(SoapFault, match="not authorized"):
            yield from me.call(
                "server", 5000, "SetAcl",
                {"path": "/", "name": "data", "acl": f'"{user.dn}" r'},
            )
        return True

    assert tb.run(scenario())


def test_limited_proxy_cannot_grant_or_revoke_access():
    tb, rng, anchors, user, ids, fss_server, dss = services_deploy()
    limited = issue_proxy_certificate(
        user, now=tb.sim.now, rng=rng.fork("lpx"), key_bits=768, limited=True
    )
    full = issue_proxy_certificate(
        user, now=tb.sim.now, rng=rng.fork("fpx"), key_bits=768
    )
    lim = ServiceClient(tb.sim, tb.client, limited, anchors, rng=rng.fork("lc"))
    reg = ServiceClient(tb.sim, tb.client, full, anchors, rng=rng.fork("rc"))
    friend = "/C=US/O=UFL/CN=Friend"

    def scenario():
        for action in ("GrantAccess", "RevokeAccess"):
            with pytest.raises(SoapFault, match="not authorized"):
                yield from lim.call(
                    "server", 5002, action,
                    {"filesystem": "/GFS/ming", "dn": friend, "account": "ming"},
                )
        # The unrestricted proxy of the very same user may share.
        yield from reg.call(
            "server", 5002, "GrantAccess",
            {"filesystem": "/GFS/ming", "dn": friend, "account": "ming"},
        )
        return dss.gridmap_for("/GFS/ming").dump()

    assert friend in tb.run(scenario())


# -- delegated fleet: expiry, renewal, ticket composition ----------------------


def _churn():
    return SessionChurn(duration=20.0, period=1.0, io_size=4096)


def _fingerprint(result):
    return (
        result.makespan,
        [(c.name, c.start, c.end, sorted(c.phases.items())) for c in result.per_client],
        result.stats,
    )


DELEGATED_KW = dict(
    clients=4, stagger=0.25, session_tickets=True,
    reconnect_interval=3.0, delegation_lifetime=6.0,
)


def test_delegated_fleet_bit_identical_same_seed():
    a = run_fleet("sgfs-aes", _churn, **DELEGATED_KW)
    b = run_fleet("sgfs-aes", _churn, **DELEGATED_KW)
    assert _fingerprint(a) == _fingerprint(b)


def test_delegated_fleet_expiry_forces_renewal():
    r = run_fleet("sgfs-aes", _churn, **DELEGATED_KW)
    gsi = r.stats["gsi"]
    # 20 s sessions on 6 s delegations: every client renews mid-run.
    assert gsi["renewals"] > 0
    assert gsi["delegations"] == r.clients + gsi["renewals"]
    # Each renewal republishes the proxy DN: the server-side authz
    # cache must observe the epoch bumps as stale re-resolutions.
    assert r.stats["proxy.server"]["authz_cache_stale"] > 0


def test_delegation_composes_with_session_tickets():
    r = run_fleet("sgfs-aes", _churn, **DELEGATED_KW)
    tls = r.stats["tls"]
    suite = "aes-256-cbc-sha1"
    full = tls[f"full_handshakes{{role=server,suite={suite}}}"]
    resumed = tls[f"resumptions{{role=server,suite={suite}}}"]
    # Renewal swaps the credential but keeps the ticket store: only the
    # very first connect per client pays the full RSA handshake.
    assert full == r.clients
    assert resumed > 0


def test_long_delegation_never_renews():
    kw = dict(DELEGATED_KW, delegation_lifetime=10_000.0)
    r = run_fleet("sgfs-aes", _churn, **kw)
    gsi = r.stats["gsi"]
    assert gsi["renewals"] == 0
    assert gsi["delegations"] == r.clients


def test_delegation_requires_secure_setup():
    with pytest.raises(ValueError, match="secure"):
        run_fleet("nfs-v3", _churn, clients=2, delegation_lifetime=5.0)
    with pytest.raises(ValueError):
        run_fleet("sgfs-aes", _churn, clients=2, delegation_lifetime=0.0)
