"""Secure channel: handshake, record protection, renegotiation, failures."""

import pytest

from repro.crypto.drbg import Drbg
from repro.gsi import CertificateAuthority, DistinguishedName
from repro.net import Host, Network
from repro.sim import Simulator
from repro.tls import (
    HandshakeError,
    IntegrityError,
    SecurityConfig,
    client_handshake,
    server_handshake,
)

CA = CertificateAuthority(
    DistinguishedName.parse("/O=TestCA/CN=Root"), rng=Drbg("tls-ca"), key_bits=768
)
ROGUE_CA = CertificateAuthority(
    DistinguishedName.parse("/O=Rogue/CN=Root"), rng=Drbg("tls-rogue"), key_bits=768
)
USER = CA.issue_identity(
    DistinguishedName.parse("/O=Lab/CN=user"), rng=Drbg("tls-user"), key_bits=768
)
SERVER = CA.issue_identity(
    DistinguishedName.parse("/O=Lab/CN=server"), rng=Drbg("tls-server"), key_bits=768
)
ROGUE = ROGUE_CA.issue_identity(
    DistinguishedName.parse("/O=Rogue/CN=mallory"), rng=Drbg("tls-mal"), key_bits=768
)


def make_testbed():
    sim = Simulator()
    net = Network(sim)
    c = Host(sim, net, "c")
    s = Host(sim, net, "s")
    net.connect("c", "s", latency=0.001)
    return sim, c, s


def configs(suite="aes-256-cbc-sha1", fast=False, client_cred=USER,
            server_anchors=None, client_anchors=None, server_suite=None,
            reneg=None):
    ccfg = SecurityConfig.for_session(
        client_cred, client_anchors or [CA.certificate], suite,
        fast_ciphers=fast, rng=Drbg("c-rng"), renegotiate_interval=reneg,
    )
    scfg = SecurityConfig.for_session(
        SERVER, server_anchors or [CA.certificate], server_suite or suite,
        fast_ciphers=fast, rng=Drbg("s-rng"),
    )
    return ccfg, scfg


def establish(sim, c, s, ccfg, scfg, port=4433):
    result = {}

    def server_side():
        lst = s.listen(port)
        sock = yield lst.accept()
        result["server"] = yield from server_handshake(sim, sock, scfg, cpu=s.cpu)

    def client_side():
        sock = yield from c.connect("s", port)
        result["client"] = yield from client_handshake(sim, sock, ccfg, cpu=c.cpu)

    sim.spawn(server_side())
    p = sim.spawn(client_side())
    sim.run_until_complete(p)
    sim.run(until=sim.now + 1.0)
    return result["client"], result["server"]


@pytest.mark.parametrize("suite", ["null-sha1", "rc4-128-sha1", "aes-256-cbc-sha1"])
@pytest.mark.parametrize("fast", [False, True])
def test_handshake_and_data_exchange(suite, fast):
    sim, c, s = make_testbed()
    ccfg, scfg = configs(suite=suite, fast=fast)
    cch, sch = establish(sim, c, s, ccfg, scfg)
    assert str(sch.peer_identity) == "/O=Lab/CN=user"
    assert str(cch.peer_identity) == "/O=Lab/CN=server"

    def exchange():
        cch.send_record(b"request bytes")
        got = yield from sch.recv_record()
        sch.send_record(b"reply to: " + got)
        back = yield from cch.recv_record()
        return got, back

    got, back = sim.run_until_complete(sim.spawn(exchange()))
    assert got == b"request bytes"
    assert back == b"reply to: request bytes"


def test_wire_bytes_are_ciphertext():
    sim, c, s = make_testbed()
    ccfg, scfg = configs(suite="aes-256-cbc-sha1", fast=False)
    cch, sch = establish(sim, c, s, ccfg, scfg)
    captured = bytearray()
    original = cch.sock.send
    cch.sock.send = lambda data: (captured.extend(data), original(data))[1]

    secret = b"EXTREMELY SECRET PAYLOAD" * 4

    def exchange():
        cch.send_record(secret)
        return (yield from sch.recv_record())

    assert sim.run_until_complete(sim.spawn(exchange())) == secret
    assert secret[:16] not in bytes(captured)


def test_server_rejects_untrusted_client():
    sim, c, s = make_testbed()
    ccfg, scfg = configs(
        client_cred=ROGUE,
        client_anchors=[CA.certificate, ROGUE_CA.certificate],
    )

    def server_side():
        lst = s.listen(4433)
        sock = yield lst.accept()
        with pytest.raises(HandshakeError, match="rejected"):
            yield from server_handshake(sim, sock, scfg)
        return "rejected"

    def client_side():
        sock = yield from c.connect("s", 4433)
        try:
            yield from client_handshake(sim, sock, ccfg)
        except Exception:
            pass

    sp = sim.spawn(server_side())
    sim.spawn(client_side())
    assert sim.run_until_complete(sp) == "rejected"


def test_client_rejects_untrusted_server():
    sim, c, s = make_testbed()
    # client only trusts the rogue CA -> cannot validate the real server
    ccfg, scfg = configs(client_anchors=[ROGUE_CA.certificate])

    def server_side():
        lst = s.listen(4433)
        sock = yield lst.accept()
        try:
            yield from server_handshake(sim, sock, scfg)
        except Exception:
            pass

    def client_side():
        sock = yield from c.connect("s", 4433)
        with pytest.raises(HandshakeError):
            yield from client_handshake(sim, sock, ccfg)
        return "rejected"

    sim.spawn(server_side())
    assert sim.run_until_complete(sim.spawn(client_side())) == "rejected"


def test_suite_mismatch_refused():
    sim, c, s = make_testbed()
    ccfg, scfg = configs(suite="rc4-128-sha1", server_suite="aes-256-cbc-sha1")

    def server_side():
        lst = s.listen(4433)
        sock = yield lst.accept()
        with pytest.raises(HandshakeError):
            yield from server_handshake(sim, sock, scfg)
        return "refused"

    def client_side():
        sock = yield from c.connect("s", 4433)
        try:
            yield from client_handshake(sim, sock, ccfg)
        except Exception:
            pass

    sp = sim.spawn(server_side())
    sim.spawn(client_side())
    assert sim.run_until_complete(sp) == "refused"


def test_tampered_record_fails_mac():
    sim, c, s = make_testbed()
    ccfg, scfg = configs(suite="null-sha1")  # plaintext + MAC: easy to tamper
    cch, sch = establish(sim, c, s, ccfg, scfg)

    original = cch.sock.send

    def corrupt(data):
        # flip one bit of the payload area past the frame header
        mutated = bytearray(data)
        mutated[-1] ^= 0x01
        original(bytes(mutated))

    cch.sock.send = corrupt

    def exchange():
        cch.send_record(b"authentic message")
        with pytest.raises(IntegrityError):
            yield from sch.recv_record()
        return "integrity enforced"

    assert sim.run_until_complete(sim.spawn(exchange())) == "integrity enforced"


def test_explicit_renegotiation_rekeys_transparently():
    sim, c, s = make_testbed()
    ccfg, scfg = configs(suite="aes-256-cbc-sha1", fast=False)
    cch, sch = establish(sim, c, s, ccfg, scfg)

    def exchange():
        cch.send_record(b"before rekey")
        a = yield from sch.recv_record()
        cch.renegotiate()
        cch.send_record(b"after rekey")
        b = yield from sch.recv_record()
        sch.send_record(b"server speaks post-rekey")
        c_ = yield from cch.recv_record()
        return a, b, c_, cch.renegotiations, sch.renegotiations

    a, b, c_, cr, sr = sim.run_until_complete(sim.spawn(exchange()))
    assert (a, b, c_) == (b"before rekey", b"after rekey", b"server speaks post-rekey")
    assert cr == 1 and sr == 1


def test_automatic_renegotiation_timer():
    sim, c, s = make_testbed()
    ccfg, scfg = configs(suite="null-sha1", reneg=0.5)
    cch, sch = establish(sim, c, s, ccfg, scfg)

    def chatter():
        for i in range(5):
            yield sim.timeout(0.4)
            cch.send_record(b"tick %d" % i)
            got = yield from sch.recv_record()
            assert got == b"tick %d" % i
        return cch.renegotiations

    renegs = sim.run_until_complete(sim.spawn(chatter()))
    assert renegs >= 2


def test_close_notify_yields_eof():
    sim, c, s = make_testbed()
    ccfg, scfg = configs()
    cch, sch = establish(sim, c, s, ccfg, scfg)

    def exchange():
        cch.close()
        got = yield from sch.recv_record()
        return got

    assert sim.run_until_complete(sim.spawn(exchange())) is None


def test_handshake_charges_cpu():
    sim, c, s = make_testbed()
    ccfg, scfg = configs()
    establish(sim, c, s, ccfg, scfg)
    assert c.cpu.busy_total("tls") > 0
    assert s.cpu.busy_total("tls") > 0


# -- session resumption (tickets + abbreviated handshake) ---------------------


from repro.tls import SessionTicketCache  # noqa: E402


def ticket_configs(lifetime=3600.0):
    ccfg = SecurityConfig.for_session(
        USER, [CA.certificate], "aes-256-cbc-sha1",
        rng=Drbg("c-rng"), session_tickets=True, ticket_lifetime=lifetime,
    )
    scfg = SecurityConfig.for_session(
        SERVER, [CA.certificate], "aes-256-cbc-sha1",
        rng=Drbg("s-rng"), session_tickets=True, ticket_lifetime=lifetime,
    )
    return ccfg, scfg


def serial_handshakes(sim, c, s, ccfg, scfg, cache, n, gap=0.0, port=4433):
    """n sequential connect+handshake rounds sharing one ticket cache."""
    pairs = []

    def server_side():
        lst = s.listen(port)
        for _ in range(n):
            sock = yield lst.accept()
            sch = yield from server_handshake(
                sim, sock, scfg, cpu=s.cpu, ticket_cache=cache
            )
            pairs[-1]["server"] = sch

    def client_side():
        for _ in range(n):
            pairs.append({})
            sock = yield from c.connect("s", port)
            cch = yield from client_handshake(sim, sock, ccfg, cpu=c.cpu)
            pairs[-1]["client"] = cch
            yield sim.timeout(0.01 + gap)

    sim.spawn(server_side())
    p = sim.spawn(client_side())
    sim.run_until_complete(p)
    sim.run(until=sim.now + 1.0)
    return pairs


def test_second_handshake_is_abbreviated():
    sim, c, s = make_testbed()
    ccfg, scfg = ticket_configs()
    cache = SessionTicketCache(sim, rng=scfg.rng)
    pairs = serial_handshakes(sim, c, s, ccfg, scfg, cache, n=3)
    assert [p["client"].resumed for p in pairs] == [False, True, True]
    assert [p["server"].resumed for p in pairs] == [False, True, True]
    # Resumed channels carry the full identity context.
    cch, sch = pairs[2]["client"], pairs[2]["server"]
    assert str(cch.peer_identity) == "/O=Lab/CN=server"
    assert str(sch.peer_identity) == "/O=Lab/CN=user"

    def exchange():
        cch.send_record(b"over the resumed session")
        return (yield from sch.recv_record())

    assert sim.run_until_complete(sim.spawn(exchange())) == (
        b"over the resumed session"
    )


def test_resumed_keys_differ_from_original():
    sim, c, s = make_testbed()
    ccfg, scfg = ticket_configs()
    cache = SessionTicketCache(sim, rng=scfg.rng)
    pairs = serial_handshakes(sim, c, s, ccfg, scfg, cache, n=2)
    assert pairs[0]["client"]._master != pairs[1]["client"]._master
    assert (pairs[1]["client"]._master
            == pairs[1]["server"]._master)


def test_expired_ticket_falls_back_to_full_handshake():
    sim, c, s = make_testbed()
    ccfg, scfg = ticket_configs(lifetime=0.5)
    cache = SessionTicketCache(sim, rng=scfg.rng, lifetime=0.5)
    pairs = serial_handshakes(sim, c, s, ccfg, scfg, cache, n=2, gap=2.0)
    # The gap between rounds exceeds the lifetime: the offered ticket is
    # stale, the server declines, and the client completes a full
    # handshake anyway.
    assert [p["client"].resumed for p in pairs] == [False, False]
    assert [p["server"].resumed for p in pairs] == [False, False]
    assert cache.redeemed == 0


def test_flushed_cache_declines_resumption():
    sim, c, s = make_testbed()
    ccfg, scfg = ticket_configs()
    cache = SessionTicketCache(sim, rng=scfg.rng)
    first = serial_handshakes(sim, c, s, ccfg, scfg, cache, n=1, port=4433)
    assert not first[0]["client"].resumed
    cache.flush()  # models the server proxy crashing
    second = serial_handshakes(sim, c, s, ccfg, scfg, cache, n=1, port=4434)
    assert not second[0]["client"].resumed
    assert not second[0]["server"].resumed
    # The fallback still re-arms resumption: a fresh ticket was issued.
    assert len(cache) == 1


def test_tickets_are_single_use():
    sim, c, s = make_testbed()
    ccfg, scfg = ticket_configs()
    cache = SessionTicketCache(sim, rng=scfg.rng)
    serial_handshakes(sim, c, s, ccfg, scfg, cache, n=2)
    # Each successful round consumed the prior ticket and left exactly
    # one live replacement; nothing accumulates.
    assert len(cache) == 1
    assert cache.issued == 2
    assert cache.redeemed == 1


def test_resumption_counters():
    from repro.obs import Registry

    sim = Simulator(obs=Registry())
    net = Network(sim)
    c = Host(sim, net, "c")
    s = Host(sim, net, "s")
    net.connect("c", "s", latency=0.001)
    ccfg, scfg = ticket_configs()
    cache = SessionTicketCache(sim, rng=scfg.rng)
    serial_handshakes(sim, c, s, ccfg, scfg, cache, n=3)
    tls = sim.obs.snapshot()["tls"]
    suite = "aes-256-cbc-sha1"
    assert tls[f"resumptions{{role=client,suite={suite}}}"] == 2
    assert tls[f"resumptions{{role=server,suite={suite}}}"] == 2
    assert tls[f"full_handshakes{{role=client,suite={suite}}}"] == 1
    assert tls[f"full_handshakes{{role=server,suite={suite}}}"] == 1


def test_resumption_skips_rsa_cpu_cost():
    sim, c, s = make_testbed()
    ccfg, scfg = ticket_configs()
    cache = SessionTicketCache(sim, rng=scfg.rng)
    serial_handshakes(sim, c, s, ccfg, scfg, cache, n=2)
    # One full (0.004s) + one abbreviated (0.0004s) on each side.
    for cpu in (c.cpu, s.cpu):
        hs = cpu.busy_total("tls/handshake")
        assert abs(hs - 0.0044) < 1e-9, hs


def test_no_tickets_wire_format_unchanged():
    # A ticket-less client against a ticket-capable server (and vice
    # versa) must interoperate: the extension only exists on the wire
    # when the client offers it.
    sim, c, s = make_testbed()
    ccfg, _ = configs()
    _, scfg = ticket_configs()
    cache = SessionTicketCache(sim, rng=scfg.rng)
    result = {}

    def server_side():
        lst = s.listen(4433)
        sock = yield lst.accept()
        result["server"] = yield from server_handshake(
            sim, sock, scfg, cpu=s.cpu, ticket_cache=cache
        )

    def client_side():
        sock = yield from c.connect("s", 4433)
        result["client"] = yield from client_handshake(sim, sock, ccfg, cpu=c.cpu)

    sim.spawn(server_side())
    sim.run_until_complete(sim.spawn(client_side()))
    assert not result["client"].resumed
    assert not result["server"].resumed
    assert len(cache) == 0  # no extension offered -> no ticket issued
