"""Virtual filesystem: operations, permissions, error taxonomy."""

import pytest

from repro.vfs import Credentials, Ftype, Status, VfsError, VirtualFS
from repro.vfs.fs import ROOT_CRED

ALICE = Credentials(1000, 1000)
BOB = Credentials(2000, 2000, groups=(1000,))
EVE = Credentials(3000, 3000)


@pytest.fixture
def fs():
    return VirtualFS(root_uid=1000, root_gid=1000)


def test_root_exists(fs):
    assert fs.root.fileid == 1
    assert fs.root.is_dir
    assert fs.inode_count() == 1


def test_create_write_read(fs):
    f = fs.create(1, "data.bin", ALICE)
    assert f.is_reg and f.uid == 1000
    assert fs.write(f.fileid, 0, b"hello", ALICE) == 5
    data, eof = fs.read(f.fileid, 0, 100, ALICE)
    assert data == b"hello" and eof


def test_read_partial_and_eof_flags(fs):
    f = fs.create(1, "f", ALICE)
    fs.write(f.fileid, 0, b"0123456789", ALICE)
    data, eof = fs.read(f.fileid, 2, 4, ALICE)
    assert data == b"2345" and not eof
    data, eof = fs.read(f.fileid, 8, 10, ALICE)
    assert data == b"89" and eof


def test_sparse_write_zero_fills(fs):
    f = fs.create(1, "sparse", ALICE)
    fs.write(f.fileid, 100, b"x", ALICE)
    data, _eof = fs.read(f.fileid, 0, 101, ALICE)
    assert data == b"\x00" * 100 + b"x"
    assert f.size == 101


def test_create_existing_non_exclusive_returns_same(fs):
    a = fs.create(1, "f", ALICE)
    b = fs.create(1, "f", ALICE)
    assert a.fileid == b.fileid


def test_create_exclusive_conflicts(fs):
    fs.create(1, "f", ALICE)
    with pytest.raises(VfsError) as e:
        fs.create(1, "f", ALICE, exclusive=True)
    assert e.value.status == Status.EXIST


def test_lookup_missing_is_noent(fs):
    with pytest.raises(VfsError) as e:
        fs.lookup(1, "ghost", ALICE)
    assert e.value.status == Status.NOENT


def test_lookup_through_file_is_notdir(fs):
    f = fs.create(1, "f", ALICE)
    with pytest.raises(VfsError) as e:
        fs.lookup(f.fileid, "x", ALICE)
    assert e.value.status == Status.NOTDIR


def test_dot_and_dotdot(fs):
    d = fs.mkdir(1, "sub", ALICE)
    assert fs.lookup(d.fileid, ".", ALICE).fileid == d.fileid
    assert fs.lookup(d.fileid, "..", ALICE).fileid == 1


@pytest.mark.parametrize("bad", ["", ".", "..", "a/b", "x\x00y", "n" * 256])
def test_bad_names_rejected(fs, bad):
    with pytest.raises(VfsError):
        fs.create(1, bad, ALICE)


def test_mkdir_and_nlink_accounting(fs):
    assert fs.root.nlink == 2
    d = fs.mkdir(1, "d", ALICE)
    assert d.nlink == 2
    assert fs.root.nlink == 3
    fs.rmdir(1, "d", ALICE)
    assert fs.root.nlink == 2


def test_rmdir_nonempty_rejected(fs):
    d = fs.mkdir(1, "d", ALICE)
    fs.create(d.fileid, "f", ALICE)
    with pytest.raises(VfsError) as e:
        fs.rmdir(1, "d", ALICE)
    assert e.value.status == Status.NOTEMPTY


def test_rmdir_of_file_is_notdir(fs):
    fs.create(1, "f", ALICE)
    with pytest.raises(VfsError) as e:
        fs.rmdir(1, "f", ALICE)
    assert e.value.status == Status.NOTDIR


def test_remove_of_dir_is_isdir(fs):
    fs.mkdir(1, "d", ALICE)
    with pytest.raises(VfsError) as e:
        fs.remove(1, "d", ALICE)
    assert e.value.status == Status.ISDIR


def test_remove_frees_inode(fs):
    f = fs.create(1, "f", ALICE)
    fid = f.fileid
    fs.remove(1, "f", ALICE)
    with pytest.raises(VfsError) as e:
        fs.inode(fid)
    assert e.value.status == Status.STALE


def test_hard_link_shares_inode(fs):
    f = fs.create(1, "orig", ALICE)
    fs.write(f.fileid, 0, b"shared", ALICE)
    fs.link(f.fileid, 1, "alias", ALICE)
    assert f.nlink == 2
    via_alias = fs.lookup(1, "alias", ALICE)
    assert via_alias.fileid == f.fileid
    fs.remove(1, "orig", ALICE)
    # still reachable through the alias
    data, _ = fs.read(via_alias.fileid, 0, 10, ALICE)
    assert data == b"shared"


def test_link_to_directory_rejected(fs):
    d = fs.mkdir(1, "d", ALICE)
    with pytest.raises(VfsError) as e:
        fs.link(d.fileid, 1, "dlink", ALICE)
    assert e.value.status == Status.ISDIR


def test_symlink_and_readlink(fs):
    link = fs.symlink(1, "ln", "target/path", ALICE)
    assert link.ftype == Ftype.LNK
    assert fs.readlink(link.fileid) == "target/path"
    f = fs.create(1, "plain", ALICE)
    with pytest.raises(VfsError):
        fs.readlink(f.fileid)


# -- rename --------------------------------------------------------------------


def test_rename_within_directory(fs):
    f = fs.create(1, "old", ALICE)
    fs.rename(1, "old", 1, "new", ALICE)
    assert fs.lookup(1, "new", ALICE).fileid == f.fileid
    with pytest.raises(VfsError):
        fs.lookup(1, "old", ALICE)


def test_rename_across_directories_fixes_nlink(fs):
    d1 = fs.mkdir(1, "d1", ALICE)
    d2 = fs.mkdir(1, "d2", ALICE)
    sub = fs.mkdir(d1.fileid, "sub", ALICE)
    fs.rename(d1.fileid, "sub", d2.fileid, "sub", ALICE)
    assert d1.nlink == 2 and d2.nlink == 3
    assert fs.lookup(d2.fileid, "sub", ALICE).fileid == sub.fileid


def test_rename_replaces_existing_file(fs):
    a = fs.create(1, "a", ALICE)
    fs.write(a.fileid, 0, b"A", ALICE)
    b = fs.create(1, "b", ALICE)
    fs.rename(1, "a", 1, "b", ALICE)
    assert fs.lookup(1, "b", ALICE).fileid == a.fileid
    with pytest.raises(VfsError):
        fs.inode(b.fileid)  # replaced file freed


def test_rename_onto_itself_is_noop(fs):
    f = fs.create(1, "same", ALICE)
    fs.rename(1, "same", 1, "same", ALICE)
    assert fs.lookup(1, "same", ALICE).fileid == f.fileid


def test_rename_file_over_dir_rejected(fs):
    fs.create(1, "f", ALICE)
    fs.mkdir(1, "d", ALICE)
    with pytest.raises(VfsError) as e:
        fs.rename(1, "f", 1, "d", ALICE)
    assert e.value.status == Status.ISDIR


def test_rename_dir_over_nonempty_dir_rejected(fs):
    fs.mkdir(1, "src", ALICE)
    dst = fs.mkdir(1, "dst", ALICE)
    fs.create(dst.fileid, "occupant", ALICE)
    with pytest.raises(VfsError) as e:
        fs.rename(1, "src", 1, "dst", ALICE)
    assert e.value.status == Status.NOTEMPTY


# -- permissions ------------------------------------------------------------------


def test_other_user_cannot_write_0644(fs):
    f = fs.create(1, "f", ALICE, mode=0o644)
    with pytest.raises(VfsError) as e:
        fs.write(f.fileid, 0, b"x", EVE)
    assert e.value.status == Status.ACCES
    # but can read
    fs.read(f.fileid, 0, 1, EVE)


def test_group_permission_honored(fs):
    f = fs.create(1, "f", ALICE, mode=0o060)  # group rw only
    fs.write(f.fileid, 0, b"x", BOB)  # bob has group 1000
    with pytest.raises(VfsError):
        fs.read(f.fileid, 0, 1, EVE)


def test_owner_blocked_by_own_mode(fs):
    f = fs.create(1, "f", ALICE, mode=0o000)
    with pytest.raises(VfsError):
        fs.read(f.fileid, 0, 1, ALICE)


def test_superuser_bypasses_modes(fs):
    f = fs.create(1, "f", ALICE, mode=0o000)
    fs.read(f.fileid, 0, 1, ROOT_CRED)
    fs.write(f.fileid, 0, b"x", ROOT_CRED)


def test_directory_write_needed_to_create(fs):
    d = fs.mkdir(1, "d", ALICE, mode=0o755)
    with pytest.raises(VfsError) as e:
        fs.create(d.fileid, "f", EVE)
    assert e.value.status == Status.ACCES


def test_chmod_only_by_owner(fs):
    f = fs.create(1, "f", ALICE)
    with pytest.raises(VfsError) as e:
        fs.setattr(f.fileid, EVE, mode=0o777)
    assert e.value.status == Status.PERM
    fs.setattr(f.fileid, ALICE, mode=0o600)
    assert f.mode == 0o600


def test_chown_only_by_root(fs):
    f = fs.create(1, "f", ALICE)
    with pytest.raises(VfsError):
        fs.setattr(f.fileid, ALICE, uid=2000)
    fs.setattr(f.fileid, ROOT_CRED, uid=2000)
    assert f.uid == 2000


def test_truncate_and_extend_via_setattr(fs):
    f = fs.create(1, "f", ALICE)
    fs.write(f.fileid, 0, b"0123456789", ALICE)
    fs.setattr(f.fileid, ALICE, size=4)
    assert bytes(f.data) == b"0123"
    fs.setattr(f.fileid, ALICE, size=8)
    assert bytes(f.data) == b"0123\x00\x00\x00\x00"


def test_capacity_enforced():
    fs = VirtualFS(root_uid=1000, capacity_bytes=2048)
    f = fs.create(1, "big", ALICE)
    with pytest.raises(VfsError) as e:
        fs.write(f.fileid, 0, b"x" * 10_000, ALICE)
    assert e.value.status == Status.NOSPC


def test_readdir_sorted_with_dot_entries(fs):
    fs.create(1, "zeta", ALICE)
    fs.create(1, "alpha", ALICE)
    names = [name for name, _fid in fs.readdir(1, ALICE)]
    assert names == [".", "..", "alpha", "zeta"]


def test_resolve_and_walk(fs):
    d = fs.mkdir(1, "a", ALICE)
    d2 = fs.mkdir(d.fileid, "b", ALICE)
    fs.create(d2.fileid, "c.txt", ALICE)
    assert fs.resolve("/a/b/c.txt", ALICE).is_reg
    paths = [p for p, _n in fs.walk()]
    assert "/a/b/c.txt" in paths and "/" in paths


def test_timestamps_progress():
    t = [0.0]
    fs = VirtualFS(root_uid=1000, clock=lambda: t[0])
    f = fs.create(1, "f", ALICE)
    created_mtime = f.mtime
    t[0] = 5.0
    fs.write(f.fileid, 0, b"x", ALICE)
    assert f.mtime == 5.0 > created_mtime
    t[0] = 9.0
    fs.read(f.fileid, 0, 1, ALICE)
    assert f.atime == 9.0
