"""Accounts DB, session config files, the at-rest cryptofs extension."""

import pytest

from repro.crypto.drbg import Drbg
from repro.proxy.accounts import Account, AccountsDb
from repro.proxy.cryptofs import AtRestIntegrityError, BlockCryptor
from repro.proxy.session_config import ConfigError, SessionConfig


# -- accounts -------------------------------------------------------------------


def test_accounts_fixtures_present():
    db = AccountsDb()
    assert db.lookup("root").uid == 0
    assert db.lookup("nobody").uid == 65534


def test_accounts_add_and_lookup():
    db = AccountsDb()
    db.add(Account("ming", 901, 901, groups=(100,)))
    assert db.lookup("ming").gid == 901
    assert db.lookup_uid(901).name == "ming"
    assert "ming" in db and "ghost" not in db


def test_accounts_duplicates_rejected():
    db = AccountsDb()
    db.add(Account("a", 1000, 1000))
    with pytest.raises(ValueError):
        db.add(Account("a", 1001, 1001))
    with pytest.raises(ValueError):
        db.add(Account("b", 1000, 1000))


def test_accounts_ensure_allocates_on_demand():
    db = AccountsDb()
    acct = db.ensure("griduser42")
    assert acct.uid >= 1000
    assert db.ensure("griduser42") is acct  # idempotent
    other = db.ensure("griduser43")
    assert other.uid != acct.uid


# -- session config ----------------------------------------------------------------


CONFIG_TEXT = """
# security section
suite = rc4-128-sha1
user_cert = alice-proxy
host_cert = fileserver
trusted_cas = gridca, campusca
renegotiate_interval = 3600

# cache section
cache = on
cache.write_back = on
cache.block_size = 16384
cache.capacity = 1048576
cache.flush_age = 60
"""


def test_config_parse_full():
    cfg = SessionConfig.parse(CONFIG_TEXT)
    assert cfg.suite == "rc4-128-sha1"
    assert cfg.user_cert == "alice-proxy"
    assert cfg.trusted_cas == ("gridca", "campusca")
    assert cfg.renegotiate_interval == 3600.0
    assert cfg.cache.enabled and cfg.cache.write_back
    assert cfg.cache.block_size == 16384
    assert cfg.cache.capacity_bytes == 1048576
    assert cfg.cache.flush_age == 60.0


def test_config_defaults():
    cfg = SessionConfig.parse("")
    assert cfg.suite == "aes-256-cbc-sha1"
    assert not cfg.cache.enabled
    assert cfg.renegotiate_interval is None


@pytest.mark.parametrize(
    "bad",
    ["just words no equals", "cache = maybe", "cache.block_size = big"],
)
def test_config_malformed_rejected(bad):
    with pytest.raises(ConfigError):
        SessionConfig.parse(bad)


def test_config_diff_detects_changes():
    a = SessionConfig.parse("suite = null-sha1")
    b = SessionConfig.parse("suite = aes-256-cbc-sha1\ncache = on")
    changes = a.diff(b)
    assert "suite" in changes and "cache" in changes
    assert a.diff(a) == {}


# -- at-rest cryptofs (§7 future work) ------------------------------------------------


@pytest.fixture
def cryptor():
    return BlockCryptor(Drbg("session-key").randbytes(32))


def test_seal_open_roundtrip(cryptor):
    pt = b"plaintext block" * 100
    ct = cryptor.seal(5, 0, pt)
    assert len(ct) == len(pt)  # length-preserving: NFS offsets unchanged
    assert ct != pt
    assert cryptor.open(5, 0, ct) == pt


def test_ciphertext_differs_per_block(cryptor):
    pt = b"same plaintext"
    assert cryptor.seal(1, 0, pt) != cryptor.seal(1, 1, pt)
    assert cryptor.seal(1, 0, pt) != cryptor.seal(2, 0, pt)


def test_tamper_detected(cryptor):
    ct = bytearray(cryptor.seal(7, 3, b"protected data"))
    ct[5] ^= 0x80
    with pytest.raises(AtRestIntegrityError):
        cryptor.open(7, 3, bytes(ct))


def test_unknown_block_opens_without_mac(cryptor):
    """Blocks we never sealed (pre-existing server data) decrypt
    best-effort — the MAC store only covers what the session wrote."""
    other = BlockCryptor(Drbg("session-key").randbytes(32))
    ct = other.seal(9, 9, b"from another instance")
    assert cryptor.open(9, 9, ct) == b"from another instance"


def test_forget_file_clears_macs(cryptor):
    cryptor.seal(4, 0, b"a")
    cryptor.seal(4, 1, b"b")
    cryptor.seal(5, 0, b"c")
    cryptor.forget_file(4)
    assert all(fid != 4 for fid, _b in cryptor.mac_store)
    assert (5, 0) in cryptor.mac_store


def test_wrong_session_key_garbles():
    a = BlockCryptor(Drbg("key-a").randbytes(32))
    b = BlockCryptor(Drbg("key-b").randbytes(32))
    ct = a.seal(1, 0, b"for session a only")
    assert b.open(1, 0, ct) != b"for session a only"


def test_short_session_key_rejected():
    with pytest.raises(ValueError):
        BlockCryptor(b"short")
