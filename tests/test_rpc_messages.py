"""RPC CALL/REPLY message codecs and error mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.rpc import CallMessage, ReplyMessage, MSG_DENIED, SUCCESS
from repro.rpc.auth import AUTH_SYS, AuthSys, OpaqueAuth, MAX_AUTH_BODY
from repro.rpc.errors import (
    RpcAuthError,
    RpcError,
    RpcGarbageArgs,
    RpcProcUnavail,
    RpcProgMismatch,
    RpcProgUnavail,
    RpcSystemError,
)
from repro.rpc.messages import (
    AUTH_BADCRED,
    GARBAGE_ARGS,
    PROC_UNAVAIL,
    PROG_MISMATCH,
    PROG_UNAVAIL,
    SYSTEM_ERR,
    denied_reply,
    error_reply,
    success_reply,
)
from repro.xdr import XdrError


def test_call_roundtrip():
    cred = AuthSys(uid=42, gid=43, gids=[1, 2, 3]).to_opaque()
    call = CallMessage(7, 100003, 3, 6, cred=cred, args=b"\x00\x01\x02\x03")
    decoded = CallMessage.decode(call.encode())
    assert decoded.xid == 7
    assert (decoded.prog, decoded.vers, decoded.proc) == (100003, 3, 6)
    assert decoded.args == b"\x00\x01\x02\x03"
    auth = AuthSys.from_opaque(decoded.cred)
    assert (auth.uid, auth.gid, auth.gids) == (42, 43, [1, 2, 3])


def test_reply_is_not_a_call():
    reply = success_reply(9, b"")
    with pytest.raises(RpcError, match="expected CALL"):
        CallMessage.decode(reply.encode())


def test_call_is_not_a_reply():
    call = CallMessage(1, 1, 1, 0)
    with pytest.raises(RpcError, match="expected REPLY"):
        ReplyMessage.decode(call.encode())


def test_success_reply_roundtrip():
    reply = success_reply(11, b"results here")
    decoded = ReplyMessage.decode(reply.encode())
    assert decoded.xid == 11
    assert decoded.accept_stat == SUCCESS
    assert decoded.results == b"results here"
    decoded.raise_for_status()  # no exception


@pytest.mark.parametrize(
    "stat,exc",
    [
        (PROG_UNAVAIL, RpcProgUnavail),
        (PROC_UNAVAIL, RpcProcUnavail),
        (GARBAGE_ARGS, RpcGarbageArgs),
        (SYSTEM_ERR, RpcSystemError),
    ],
)
def test_error_replies_map_to_exceptions(stat, exc):
    decoded = ReplyMessage.decode(error_reply(5, stat).encode())
    with pytest.raises(exc):
        decoded.raise_for_status()


def test_prog_mismatch_carries_versions():
    reply = error_reply(5, PROG_MISMATCH)
    reply.mismatch_low, reply.mismatch_high = 2, 4
    decoded = ReplyMessage.decode(reply.encode())
    with pytest.raises(RpcProgMismatch) as info:
        decoded.raise_for_status()
    assert (info.value.low, info.value.high) == (2, 4)


def test_denied_reply_roundtrip():
    decoded = ReplyMessage.decode(denied_reply(3, AUTH_BADCRED).encode())
    assert decoded.reply_stat == MSG_DENIED
    with pytest.raises(RpcAuthError) as info:
        decoded.raise_for_status()
    assert info.value.stat == AUTH_BADCRED


def test_with_cred_rewrites_only_credentials():
    original = CallMessage(1, 2, 3, 4, cred=AuthSys(uid=10, gid=10).to_opaque(), args=b"zz")
    remapped = original.with_cred(AuthSys(uid=901, gid=901).to_opaque())
    assert remapped.xid == original.xid
    assert remapped.args == original.args
    assert AuthSys.from_opaque(remapped.cred).uid == 901
    assert AuthSys.from_opaque(original.cred).uid == 10


def test_auth_body_size_limit():
    big = OpaqueAuth(AUTH_SYS, b"x" * (MAX_AUTH_BODY + 1))
    call = CallMessage(1, 2, 3, 4, cred=big)
    with pytest.raises(XdrError):
        call.encode()


def test_auth_sys_wrong_flavor_rejected():
    with pytest.raises(XdrError):
        AuthSys.from_opaque(OpaqueAuth(0, b""))


def test_auth_sys_with_identity():
    base = AuthSys(uid=5001, gid=5001, machinename="client", gids=[7])
    mapped = base.with_identity(901, 901)
    assert (mapped.uid, mapped.gid) == (901, 901)
    assert mapped.machinename == "client"
    assert mapped.gids == [7]


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.binary(max_size=200),
)
def test_property_call_roundtrip(xid, prog, proc, args):
    call = CallMessage(xid, prog, 3, proc, args=args)
    decoded = CallMessage.decode(call.encode())
    assert (decoded.xid, decoded.prog, decoded.proc, decoded.args) == (
        xid, prog, proc, args,
    )


@given(st.integers(min_value=0, max_value=2**32 - 1), st.binary(max_size=200))
def test_property_reply_roundtrip(xid, results):
    decoded = ReplyMessage.decode(success_reply(xid, results).encode())
    assert (decoded.xid, decoded.results) == (xid, results)
