"""Management services: XML, SOAP/WS-Security, FSS/DSS orchestration."""

import pytest

from repro.core.setups import CA_DN, FILE_ACCOUNT, JOB_ACCOUNT, SERVER_DN, USER_DN, _kernel_client
from repro.core.topology import NFS_PORT, Testbed
from repro.crypto.drbg import Drbg
from repro.gsi import CertificateAuthority, DistinguishedName, issue_proxy_certificate
from repro.rpc.auth import AuthSys
from repro.services import (
    DataSchedulerService,
    FileSystemService,
    SoapEnvelope,
    SoapFault,
    XmlElement,
    XmlError,
    sign_envelope,
    verify_envelope,
)
from repro.services.dss import seal_credential_for
from repro.services.endpoint import ServiceClient
from repro.services.xmlmini import parse


# -- XML -----------------------------------------------------------------------


def test_xml_canonical_roundtrip():
    root = XmlElement("Envelope")
    root.element("Child", "text & <markup>", attr="va'l")
    sub = root.element("Nested")
    sub.element("Deep", "x")
    data = root.canonical()
    back = parse(data)
    assert back.tag == "Envelope"
    assert back.find("Child").text == "text & <markup>"
    assert back.find("Child").attrs["attr"] == "va'l"
    assert back.find("Nested").find("Deep").text == "x"
    assert back.canonical() == data


def test_xml_canonical_sorts_attributes():
    a = XmlElement("t", attrs={"b": "2", "a": "1"})
    b = XmlElement("t", attrs={"a": "1", "b": "2"})
    assert a.canonical() == b.canonical()


@pytest.mark.parametrize(
    "bad",
    [b"<unclosed>", b"<a></b>", b"not xml", b"<a></a>trailing",
     b"<a x=unquoted></a>"],
)
def test_xml_malformed_rejected(bad):
    with pytest.raises(XmlError):
        parse(bad)


def test_xml_bad_tag_rejected():
    with pytest.raises(XmlError):
        XmlElement("has space")


# -- SOAP / WS-Security -------------------------------------------------------------

CA = CertificateAuthority(CA_DN, rng=Drbg("svc-ca"), key_bits=768)
ALICE = CA.issue_identity(
    DistinguishedName.parse("/C=US/O=Lab/CN=Alice"), rng=Drbg("svc-alice"), key_bits=768
)
ROGUE_CA = CertificateAuthority(
    DistinguishedName.parse("/O=Rogue/CN=CA"), rng=Drbg("svc-rogue"), key_bits=768
)
MALLORY = ROGUE_CA.issue_identity(
    DistinguishedName.parse("/O=Rogue/CN=Mallory"), key_bits=768
)


def signed(action="DoThing", body=None, cred=ALICE, now=10.0, nonce="n1"):
    env = SoapEnvelope(action=action, body=body or {"k": "v"})
    return sign_envelope(env, cred, now, nonce)


def test_envelope_xml_roundtrip():
    env = signed()
    back = SoapEnvelope.from_xml(env.to_xml())
    assert back.action == "DoThing"
    assert back.body == {"k": "v"}
    assert back.signature == env.signature
    assert back.certificate == ALICE.certificate


def test_verify_accepts_valid_and_returns_identity():
    env = SoapEnvelope.from_xml(signed().to_xml())
    identity = verify_envelope(env, [CA.certificate], now=11.0)
    assert str(identity) == "/C=US/O=Lab/CN=Alice"


def test_verify_rejects_tampered_body():
    env = SoapEnvelope.from_xml(signed().to_xml())
    env.body["k"] = "tampered"
    with pytest.raises(SoapFault, match="signature"):
        verify_envelope(env, [CA.certificate], now=11.0)


def test_verify_rejects_untrusted_ca():
    env = SoapEnvelope.from_xml(signed(cred=MALLORY).to_xml())
    with pytest.raises(SoapFault, match="certificate"):
        verify_envelope(env, [CA.certificate], now=11.0)


def test_verify_rejects_unsigned():
    env = SoapEnvelope(action="X", body={})
    env.certificate = ALICE.certificate
    with pytest.raises(SoapFault, match="unsigned"):
        verify_envelope(env, [CA.certificate], now=11.0)


def test_verify_rejects_stale_timestamp():
    env = SoapEnvelope.from_xml(signed(now=10.0).to_xml())
    with pytest.raises(SoapFault, match="freshness"):
        verify_envelope(env, [CA.certificate], now=10_000.0)


def test_verify_rejects_replayed_nonce():
    env1 = SoapEnvelope.from_xml(signed(nonce="same").to_xml())
    env2 = SoapEnvelope.from_xml(signed(nonce="same").to_xml())
    seen = set()
    verify_envelope(env1, [CA.certificate], now=11.0, seen_nonces=seen)
    with pytest.raises(SoapFault, match="replay"):
        verify_envelope(env2, [CA.certificate], now=11.0, seen_nonces=seen)


def test_proxy_signed_message_resolves_to_user():
    proxy = issue_proxy_certificate(ALICE, now=5.0, rng=Drbg("px"), key_bits=768)
    env = SoapEnvelope.from_xml(signed(cred=proxy, now=6.0).to_xml())
    identity = verify_envelope(env, [CA.certificate], now=7.0)
    assert str(identity) == "/C=US/O=Lab/CN=Alice"


# -- full DSS/FSS deployment ------------------------------------------------------------


def deploy():
    tb = Testbed.build()
    sim = tb.sim
    rng = Drbg("deploy")
    ca = CertificateAuthority(CA_DN, rng=rng.fork("ca"), key_bits=768)
    anchors = [ca.certificate]
    ids = {
        name: ca.issue_identity(
            DistinguishedName.parse(f"/C=US/O=UFL/CN={name}"),
            rng=rng.fork(name), key_bits=768,
        )
        for name in ("fss-server", "fss-client", "dss")
    }
    user = ca.issue_identity(USER_DN, rng=rng.fork("user"), key_bits=768)
    host_id = ca.issue_identity(SERVER_DN, rng=rng.fork("host"), key_bits=768)
    fss_server = FileSystemService(
        sim, tb.server, 5000, ids["fss-server"], anchors,
        fs=tb.fs, accounts=tb.server_accounts, nfs_port=NFS_PORT,
        host_credential=host_id,
    )
    fss_server.start()
    fss_client = FileSystemService(sim, tb.client, 5001, ids["fss-client"], anchors)
    fss_client.start()
    dss = DataSchedulerService(
        sim, tb.server, 5002, ids["dss"], anchors,
        client_fss={"client": ("client", 5001, ids["fss-client"].certificate)},
    )
    dss.start()
    dss.register_filesystem(
        "/GFS/ming", "server", 5000, acl={str(USER_DN): FILE_ACCOUNT.name}
    )
    return tb, rng, ca, anchors, user, ids, fss_client, fss_server, dss


def test_full_session_lifecycle_through_services():
    tb, rng, ca, anchors, user, ids, fss_client, fss_server, dss = deploy()
    sim = tb.sim
    proxy_cred = issue_proxy_certificate(user, now=sim.now, rng=rng.fork("px"), key_bits=768)
    me = ServiceClient(sim, tb.client, proxy_cred, anchors, rng=rng.fork("me"))
    blob = seal_credential_for(proxy_cred, ids["fss-client"].certificate, rng.fork("seal"))

    def scenario():
        reply = yield from me.call(
            "server", 5002, "CreateSession",
            {"filesystem": "/GFS/ming", "client_host": "client",
             "suite": "rc4-128-sha1", "credential": blob},
        )
        cl = yield from _kernel_client(
            tb, "client", int(reply["client_port"]),
            AuthSys(uid=JOB_ACCOUNT.uid, gid=JOB_ACCOUNT.gid), None,
        )
        yield from cl.write_file("/svc.txt", b"through the service plane")
        data = yield from cl.read_file("/svc.txt")
        out = yield from me.call(
            "server", 5002, "DestroySession", {"session_id": reply["session_id"]}
        )
        return data, out

    data, out = tb.run(scenario())
    assert data == b"through the service plane"
    assert "destroyed" in out
    assert not dss.sessions


def test_unauthorized_user_cannot_create_session():
    tb, rng, ca, anchors, user, ids, fss_client, fss_server, dss = deploy()
    sim = tb.sim
    outsider = ca.issue_identity(
        DistinguishedName.parse("/C=US/O=Other/CN=Outsider"),
        rng=rng.fork("out"), key_bits=768,
    )
    proxy_cred = issue_proxy_certificate(outsider, now=sim.now, rng=rng.fork("opx"), key_bits=768)
    client = ServiceClient(sim, tb.client, proxy_cred, anchors, rng=rng.fork("oc"))
    blob = seal_credential_for(proxy_cred, ids["fss-client"].certificate, rng.fork("os"))

    def scenario():
        with pytest.raises(SoapFault, match="not authorized"):
            yield from client.call(
                "server", 5002, "CreateSession",
                {"filesystem": "/GFS/ming", "client_host": "client",
                 "credential": blob},
            )
        return True

    assert tb.run(scenario())


def test_grant_access_updates_generated_gridmap():
    tb, rng, ca, anchors, user, ids, fss_client, fss_server, dss = deploy()
    sim = tb.sim
    proxy_cred = issue_proxy_certificate(user, now=sim.now, rng=rng.fork("px"), key_bits=768)
    me = ServiceClient(sim, tb.client, proxy_cred, anchors, rng=rng.fork("me"))
    friend_dn = "/C=US/O=UFL/CN=Friend"

    def scenario():
        yield from me.call(
            "server", 5002, "GrantAccess",
            {"filesystem": "/GFS/ming", "dn": friend_dn, "account": "ming"},
        )
        return dss.gridmap_for("/GFS/ming").dump()

    gridmap_text = tb.run(scenario())
    assert friend_dn in gridmap_text


def test_unknown_action_faults():
    tb, rng, ca, anchors, user, ids, fss_client, fss_server, dss = deploy()
    sim = tb.sim
    me = ServiceClient(sim, tb.client, user, anchors, rng=rng.fork("me"))

    def scenario():
        with pytest.raises(SoapFault, match="unknown action"):
            yield from me.call("server", 5002, "NoSuchAction", {})
        return True

    assert tb.run(scenario())


def test_unknown_filesystem_faults():
    tb, rng, ca, anchors, user, ids, fss_client, fss_server, dss = deploy()
    me = ServiceClient(tb.sim, tb.client, user, anchors, rng=rng.fork("me"))

    def scenario():
        with pytest.raises(SoapFault, match="unknown filesystem"):
            yield from me.call(
                "server", 5002, "CreateSession",
                {"filesystem": "/GFS/ghost", "client_host": "client",
                 "credential": "xx"},
            )
        return True

    assert tb.run(scenario())


def test_service_cpu_charged_for_message_security():
    tb, rng, ca, anchors, user, ids, fss_client, fss_server, dss = deploy()
    me = ServiceClient(tb.sim, tb.client, user, anchors, rng=rng.fork("me"))

    def scenario():
        with pytest.raises(SoapFault):
            yield from me.call("server", 5002, "NoSuchAction", {})

    tb.run(scenario())
    assert tb.client.cpu.busy_total("services") > 0
    assert tb.server.cpu.busy_total("services") > 0
