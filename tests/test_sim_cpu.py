"""CPU resource: serialization, speed scaling, ledger accounting."""

import pytest

from repro.sim import CPU, Simulator
from repro.sim.core import SimError
from repro.sim.cpu import CpuLedger


def test_consume_takes_time():
    sim = Simulator()
    cpu = CPU(sim)

    def main():
        yield from cpu.consume(2.0, "work")
        return sim.now

    assert sim.run_until_complete(sim.spawn(main())) == 2.0
    assert cpu.busy_total("work") == 2.0


def test_speed_scales_duration():
    sim = Simulator()
    cpu = CPU(sim, speed=2.0)

    def main():
        yield from cpu.consume(2.0, "work")
        return sim.now

    assert sim.run_until_complete(sim.spawn(main())) == 1.0


def test_zero_speed_rejected():
    with pytest.raises(SimError):
        CPU(Simulator(), speed=0.0)


def test_negative_consume_rejected():
    sim = Simulator()
    cpu = CPU(sim)

    def main():
        yield from cpu.consume(-1.0)

    p = sim.spawn(main())
    sim.run()
    assert p.completion.failed


def test_single_core_serializes():
    sim = Simulator()
    cpu = CPU(sim)

    def worker():
        yield from cpu.consume(1.0, "w")

    for _ in range(3):
        sim.spawn(worker())
    sim.run()
    assert sim.now == 3.0
    assert cpu.busy_total("w") == 3.0


def test_accounts_tracked_separately():
    sim = Simulator()
    cpu = CPU(sim)

    def main():
        yield from cpu.consume(1.0, "alpha")
        yield from cpu.consume(2.0, "beta")

    sim.spawn(main())
    sim.run()
    assert cpu.busy_total("alpha") == 1.0
    assert cpu.busy_total("beta") == 2.0
    assert set(cpu.ledger.accounts()) == {"alpha", "beta"}


def test_ledger_window_query():
    ledger = CpuLedger()
    ledger.record("a", 1.0, 3.0)
    ledger.record("a", 5.0, 6.0)
    assert ledger.busy_in_window("a", 0.0, 10.0) == 3.0
    assert ledger.busy_in_window("a", 2.0, 5.5) == 1.5
    assert ledger.busy_in_window("a", 3.0, 5.0) == 0.0
    assert ledger.busy_in_window("a", 5.0, 5.0) == 0.0  # empty window
    assert ledger.busy_in_window("missing", 0.0, 10.0) == 0.0


def test_ledger_rejects_negative_interval():
    with pytest.raises(SimError):
        CpuLedger().record("a", 2.0, 1.0)


def test_utilization_series_percentages():
    ledger = CpuLedger()
    ledger.record("p", 0.0, 2.5)  # busy 2.5s of the first 5s window
    series = ledger.utilization_series("p", t_end=10.0, window=5.0)
    assert series == [(5.0, 50.0), (10.0, 0.0)]


def test_utilization_series_partial_last_window():
    ledger = CpuLedger()
    ledger.record("p", 5.0, 6.0)
    series = ledger.utilization_series("p", t_end=7.0, window=5.0)
    assert series[0] == (5.0, 0.0)
    t, pct = series[1]
    assert t == 7.0 and abs(pct - 50.0) < 1e-9


def test_contention_interleaves_fifo():
    sim = Simulator()
    cpu = CPU(sim)
    done = []

    def worker(tag, work):
        yield from cpu.consume(work, tag)
        done.append((tag, sim.now))

    sim.spawn(worker("a", 1.0))
    sim.spawn(worker("b", 0.5))
    sim.run()
    assert done == [("a", 1.0), ("b", 1.5)]


# -- multi-core dispatch ------------------------------------------------------


def test_two_cores_run_in_parallel():
    sim = Simulator()
    cpu = CPU(sim, cores=2)

    def worker():
        yield from cpu.consume(1.0, "w")

    for _ in range(4):
        sim.spawn(worker())
    sim.run()
    assert sim.now == 2.0  # 4 x 1s over 2 cores
    assert cpu.busy_total("w") == 4.0


def test_multicore_fifo_is_deterministic():
    def run():
        sim = Simulator()
        cpu = CPU(sim, cores=2)
        done = []

        def worker(tag, work):
            yield from cpu.consume(work, tag)
            done.append((tag, sim.now))

        for i, work in enumerate((1.0, 0.4, 0.7, 0.2, 0.9)):
            sim.spawn(worker(f"t{i}", work))
        sim.run()
        return done

    first = run()
    assert first == run()
    # t0/t1 grab the cores; t1 finishes at 0.4 and t2 (earliest waiter)
    # takes its core, and so on -- stable ticket order.
    assert first[0] == ("t1", 0.4)


def test_affinity_pins_to_one_core():
    sim = Simulator()
    cpu = CPU(sim, cores=4)

    def worker():
        yield from cpu.consume(1.0, "pinned", affinity=2)

    for _ in range(3):
        sim.spawn(worker())
    sim.run()
    # All three serialized on core 2 even with three other cores idle.
    assert sim.now == 3.0
    assert cpu.ledger.busy_by_core(0.0, 3.0) == {2: 3.0}


def test_affinity_wraps_modulo_cores():
    sim = Simulator()
    cpu = CPU(sim, cores=2)

    def worker(aff):
        yield from cpu.consume(1.0, "w", affinity=aff)

    sim.spawn(worker(0))
    sim.spawn(worker(5))  # 5 % 2 == 1 -> the other core
    sim.run()
    assert sim.now == 1.0
    assert cpu.ledger.busy_by_core(0.0, 1.0) == {0: 1.0, 1: 1.0}


def test_affinity_ignored_on_single_core():
    sim = Simulator()
    cpu = CPU(sim)

    def main():
        yield from cpu.consume(1.0, "w", affinity=7)

    sim.run_until_complete(sim.spawn(main()))
    assert cpu.busy_total("w") == 1.0


def test_release_prefers_earliest_ticket_across_lanes():
    sim = Simulator()
    cpu = CPU(sim, cores=2)
    done = []

    def worker(tag, aff=None):
        yield from cpu.consume(1.0, tag, affinity=aff)
        done.append(tag)

    # Fill both cores, then queue: pinned-to-0 first, un-pinned second.
    sim.spawn(worker("a", aff=0))
    sim.spawn(worker("b", aff=1))
    sim.spawn(worker("pinned0", aff=0))
    sim.spawn(worker("shared"))
    sim.run()
    # Core 0 frees at t=1; its lane's waiter enqueued before the shared
    # one, so it wins; "shared" takes core 1 at the same instant.
    assert done[:2] == ["a", "b"]
    assert set(done[2:]) == {"pinned0", "shared"}
    assert sim.now == 2.0


def test_single_core_schedule_matches_legacy():
    def run(cores):
        sim = Simulator()
        cpu = CPU(sim, cores=cores)
        done = []

        def worker(tag, work):
            yield from cpu.consume(work, tag)
            done.append((tag, sim.now))

        for i, work in enumerate((0.3, 0.1, 0.2)):
            sim.spawn(worker(f"t{i}", work))
        sim.run()
        return done, sim.now

    assert run(1) == run(cores=1)


def test_ledger_busy_by_core_windows():
    ledger = CpuLedger()
    ledger.record("a", 0.0, 2.0, core=0)
    ledger.record("b", 1.0, 3.0, core=1)
    assert ledger.busy_by_core(0.0, 3.0) == {0: 2.0, 1: 2.0}
    assert ledger.busy_by_core(1.5, 2.5) == {0: 0.5, 1: 1.0}
    assert ledger.busy_by_core(5.0, 6.0) == {}
    assert ledger.busy_by_core(3.0, 3.0) == {}


def test_ledger_parallel_busy_can_exceed_wall_time():
    ledger = CpuLedger()
    ledger.record("a", 0.0, 1.0, core=0)
    ledger.record("a", 0.0, 1.0, core=1)
    assert ledger.busy_in_window("a", 0.0, 1.0) == 2.0
    assert ledger.busy_all_in_window(0.0, 1.0) == 2.0


def test_ledger_children_index_matches_rescan():
    ledger = CpuLedger()
    ledger.record("proxy", 0.0, 1.0)
    ledger.record("proxy/seal:aes", 1.0, 2.0)
    ledger.record("proxy/handshake", 2.0, 3.0)
    ledger.record("proxyish", 3.0, 4.0)  # shares a prefix, not a child
    assert ledger.total("proxy") == 3.0
    assert ledger.total("proxyish") == 1.0
    assert ledger.total_exact("proxy") == 1.0
    # The index answers prefix-only queries too (no exact key).
    ledger2 = CpuLedger()
    ledger2.record("p/x", 0.0, 1.0)
    ledger2.record("p/y", 0.0, 2.0)
    assert ledger2.total("p") == 3.0


def test_multicore_wait_telemetry_mirrors_semaphore():
    from repro.obs import Registry

    sim = Simulator(obs=Registry())
    cpu = CPU(sim, name="cpu:srv", cores=2)

    def worker():
        yield from cpu.consume(1.0, "w")

    for _ in range(4):
        sim.spawn(worker())
    sim.run()
    assert cpu.wait_count == 2
    stats = sim.obs.snapshot()
    assert stats["sync"]["sem_waits{lock=cpu:srv.core}"] == 2


def test_zero_cores_rejected():
    with pytest.raises(SimError):
        CPU(Simulator(), cores=0)
