"""CPU resource: serialization, speed scaling, ledger accounting."""

import pytest

from repro.sim import CPU, Simulator
from repro.sim.core import SimError
from repro.sim.cpu import CpuLedger


def test_consume_takes_time():
    sim = Simulator()
    cpu = CPU(sim)

    def main():
        yield from cpu.consume(2.0, "work")
        return sim.now

    assert sim.run_until_complete(sim.spawn(main())) == 2.0
    assert cpu.busy_total("work") == 2.0


def test_speed_scales_duration():
    sim = Simulator()
    cpu = CPU(sim, speed=2.0)

    def main():
        yield from cpu.consume(2.0, "work")
        return sim.now

    assert sim.run_until_complete(sim.spawn(main())) == 1.0


def test_zero_speed_rejected():
    with pytest.raises(SimError):
        CPU(Simulator(), speed=0.0)


def test_negative_consume_rejected():
    sim = Simulator()
    cpu = CPU(sim)

    def main():
        yield from cpu.consume(-1.0)

    p = sim.spawn(main())
    sim.run()
    assert p.completion.failed


def test_single_core_serializes():
    sim = Simulator()
    cpu = CPU(sim)

    def worker():
        yield from cpu.consume(1.0, "w")

    for _ in range(3):
        sim.spawn(worker())
    sim.run()
    assert sim.now == 3.0
    assert cpu.busy_total("w") == 3.0


def test_accounts_tracked_separately():
    sim = Simulator()
    cpu = CPU(sim)

    def main():
        yield from cpu.consume(1.0, "alpha")
        yield from cpu.consume(2.0, "beta")

    sim.spawn(main())
    sim.run()
    assert cpu.busy_total("alpha") == 1.0
    assert cpu.busy_total("beta") == 2.0
    assert set(cpu.ledger.accounts()) == {"alpha", "beta"}


def test_ledger_window_query():
    ledger = CpuLedger()
    ledger.record("a", 1.0, 3.0)
    ledger.record("a", 5.0, 6.0)
    assert ledger.busy_in_window("a", 0.0, 10.0) == 3.0
    assert ledger.busy_in_window("a", 2.0, 5.5) == 1.5
    assert ledger.busy_in_window("a", 3.0, 5.0) == 0.0
    assert ledger.busy_in_window("a", 5.0, 5.0) == 0.0  # empty window
    assert ledger.busy_in_window("missing", 0.0, 10.0) == 0.0


def test_ledger_rejects_negative_interval():
    with pytest.raises(SimError):
        CpuLedger().record("a", 2.0, 1.0)


def test_utilization_series_percentages():
    ledger = CpuLedger()
    ledger.record("p", 0.0, 2.5)  # busy 2.5s of the first 5s window
    series = ledger.utilization_series("p", t_end=10.0, window=5.0)
    assert series == [(5.0, 50.0), (10.0, 0.0)]


def test_utilization_series_partial_last_window():
    ledger = CpuLedger()
    ledger.record("p", 5.0, 6.0)
    series = ledger.utilization_series("p", t_end=7.0, window=5.0)
    assert series[0] == (5.0, 0.0)
    t, pct = series[1]
    assert t == 7.0 and abs(pct - 50.0) < 1e-9


def test_contention_interleaves_fifo():
    sim = Simulator()
    cpu = CPU(sim)
    done = []

    def worker(tag, work):
        yield from cpu.consume(work, tag)
        done.append((tag, sim.now))

    sim.spawn(worker("a", 1.0))
    sim.spawn(worker("b", 0.5))
    sim.run()
    assert done == [("a", 1.0), ("b", 1.5)]
