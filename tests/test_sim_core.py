"""Kernel event loop: events, timeouts, ordering, determinism."""

import pytest

from repro.sim import Simulator, SimError
from repro.sim.core import Event


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    assert sim.run() == 2.5


def test_run_until_deadline_stops_early():
    sim = Simulator()
    sim.timeout(10.0)
    assert sim.run(until=3.0) == 3.0
    assert sim.now == 3.0


def test_run_until_beyond_last_event_advances_to_deadline():
    sim = Simulator()
    sim.timeout(1.0)
    assert sim.run(until=5.0) == 5.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.timeout(-1.0)


def test_simultaneous_events_fire_fifo():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.call_later(1.0, lambda i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_call_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.call_at(4.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.0]


def test_call_at_in_past_rejected():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(SimError):
        sim.call_at(1.0, lambda: None)


def test_event_succeed_carries_value():
    sim = Simulator()
    ev = sim.event("x")
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    ev.succeed(42)
    sim.run()
    assert got == [42]
    assert ev.ok and ev.triggered and not ev.failed


def test_event_fail_carries_exception():
    sim = Simulator()
    ev = sim.event()
    boom = ValueError("boom")
    ev.fail(boom)
    sim.run()
    assert ev.failed and ev.exception is boom


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimError):
        ev.succeed(2)
    with pytest.raises(SimError):
        ev.fail(ValueError())


def test_event_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event("pending")
    with pytest.raises(SimError):
        _ = ev.value


def test_callback_after_processing_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("late")
    sim.run()
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    assert got == ["late"]


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(7.0)
    sim.timeout(3.0)
    assert sim.peek() == 3.0
    sim.run()
    assert sim.peek() == float("inf")


def test_max_events_guard():
    sim = Simulator()

    def rearm():
        sim.call_later(0.001, rearm)

    rearm()
    with pytest.raises(SimError, match="max_events"):
        sim.run(max_events=100)


def test_deterministic_replay():
    def build_and_run():
        sim = Simulator()
        trace = []

        def proc(name, delay):
            for i in range(3):
                yield sim.timeout(delay)
                trace.append((round(sim.now, 9), name, i))

        sim.spawn(proc("a", 0.3))
        sim.spawn(proc("b", 0.2))
        sim.run()
        return trace

    assert build_and_run() == build_and_run()


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def inner():
        try:
            sim.run()
        except SimError as exc:
            errors.append(exc)

    sim.call_later(1.0, inner)
    sim.run()
    assert len(errors) == 1


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    ev = sim.event("never")
    with pytest.raises(SimError, match="deadlock"):
        sim.run_until_event(ev)
