"""Capture golden virtual-runtime values for every setup builder.

Run this against a known-good tree to (re)generate the golden table
embedded in ``tests/test_golden_runtimes.py``.  The fast-path refactor
must reproduce these numbers byte-identically.

    PYTHONPATH=src python tests/_capture_goldens.py
"""

import hashlib
import json

from repro.core.setups import SETUP_BUILDERS
from repro.harness import run_iozone

FILE_SIZE = 256 * 1024
CACHE_BYTES = 128 * 1024


def capture():
    out = {}
    for setup in sorted(SETUP_BUILDERS):
        for label, rtt in (("lan", 0.0), ("wan", 0.080)):
            r = run_iozone(setup, rtt=rtt, file_size=FILE_SIZE,
                           setup_kwargs={"cache_bytes": CACHE_BYTES},
                           telemetry=True)
            # Everything except the sim kernel's own dispatch counters,
            # which intentionally change with the dispatch strategy.
            stats = {k: v for k, v in r.stats.items() if k != "sim"}
            snap = hashlib.sha256(
                json.dumps(stats, sort_keys=True, default=repr).encode()
            ).hexdigest()
            out[f"{label}-{setup}"] = {
                "total": r.total.hex(),
                "writeback": r.writeback_seconds.hex(),
                "snapshot_sha256": snap,
            }
    return out


if __name__ == "__main__":
    print(json.dumps(capture(), indent=2, sort_keys=True))
