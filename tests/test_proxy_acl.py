"""Grid ACLs: parsing, inheritance, caching, management."""

import pytest

from repro.gsi import DistinguishedName
from repro.nfs.protocol import (
    ACCESS_DELETE,
    ACCESS_EXTEND,
    ACCESS_LOOKUP,
    ACCESS_MODIFY,
    ACCESS_READ,
    ACCESS_EXECUTE,
)
from repro.proxy.acl import (
    AclEntry,
    AclError,
    AclStore,
    acl_name_for,
    format_acl,
    is_acl_name,
    parse_acl_text,
)
from repro.vfs import Credentials, VirtualFS

ALICE = DistinguishedName.parse("/O=Lab/CN=Alice")
BOB = DistinguishedName.parse("/O=Lab/CN=Bob")
ROOT = Credentials(0, 0)


def test_acl_name_mapping():
    assert acl_name_for("data.txt") == ".data.txt.acl"
    assert is_acl_name(".data.txt.acl")
    assert not is_acl_name("data.txt")
    assert not is_acl_name(".hidden")


def test_parse_letters_and_numbers():
    entries = parse_acl_text(
        '"/O=Lab/CN=Alice" rwx\n'
        '"/O=Lab/CN=Bob" r\n'
        '"/O=Lab/CN=Carol" 63\n'
        "# comment\n"
        'deny "/O=Lab/CN=Mallory"\n'
    )
    assert entries[0].bits == (
        ACCESS_READ | ACCESS_MODIFY | ACCESS_EXTEND | ACCESS_DELETE
        | ACCESS_EXECUTE | ACCESS_LOOKUP
    )
    assert entries[1].bits == ACCESS_READ
    assert entries[2].bits == 63
    assert entries[3].deny and entries[3].bits == 0


@pytest.mark.parametrize(
    "bad",
    ['/O=Lab/CN=X rwx', '"/O=Lab/CN=X', '"/O=Lab/CN=X" q', '"bad-dn" r'],
)
def test_parse_rejects_malformed(bad):
    with pytest.raises(Exception):
        parse_acl_text(bad)


def test_format_parse_roundtrip():
    entries = [AclEntry(str(ALICE), 7), AclEntry(str(BOB), 0, deny=True)]
    assert parse_acl_text(format_acl(entries)) == entries


@pytest.fixture
def store():
    fs = VirtualFS(root_uid=0)
    d = fs.mkdir(1, "project", ROOT)
    f = fs.create(d.fileid, "data.txt", ROOT)
    sub = fs.mkdir(d.fileid, "sub", ROOT)
    nested = fs.create(sub.fileid, "deep.txt", ROOT)
    return AclStore(fs), fs, d, f, sub, nested


def test_no_acl_means_unix_fallback(store):
    acls, fs, d, f, sub, nested = store
    assert acls.evaluate(f.fileid, ALICE) is None


def test_direct_acl_grants_listed_bits(store):
    acls, fs, d, f, sub, nested = store
    acls.set_acl(d.fileid, "data.txt", [AclEntry(str(ALICE), ACCESS_READ)])
    assert acls.evaluate(f.fileid, ALICE) == ACCESS_READ
    # a user absent from a present ACL gets zero (paper §4.3)
    assert acls.evaluate(f.fileid, BOB) == 0


def test_inheritance_from_parent_directory(store):
    acls, fs, d, f, sub, nested = store
    acls.set_acl(1, "project", [AclEntry(str(ALICE), ACCESS_READ | ACCESS_LOOKUP)])
    # both levels of nesting inherit from /project's ACL
    assert acls.evaluate(f.fileid, ALICE) == ACCESS_READ | ACCESS_LOOKUP
    assert acls.evaluate(nested.fileid, ALICE) == ACCESS_READ | ACCESS_LOOKUP


def test_own_acl_overrides_inherited(store):
    acls, fs, d, f, sub, nested = store
    acls.set_acl(1, "project", [AclEntry(str(ALICE), ACCESS_READ)])
    acls.set_acl(sub.fileid, "deep.txt", [AclEntry(str(ALICE), 63)])
    assert acls.evaluate(f.fileid, ALICE) == ACCESS_READ
    assert acls.evaluate(nested.fileid, ALICE) == 63


def test_deny_entry_gives_zero(store):
    acls, fs, d, f, sub, nested = store
    acls.set_acl(d.fileid, "data.txt", [AclEntry(str(ALICE), 0, deny=True)])
    assert acls.evaluate(f.fileid, ALICE) == 0


def test_memory_cache_hits(store):
    acls, fs, d, f, sub, nested = store
    acls.set_acl(d.fileid, "data.txt", [AclEntry(str(ALICE), 1)])
    acls.evaluate(f.fileid, ALICE)
    misses = acls.cache_misses
    for _ in range(10):
        acls.evaluate(f.fileid, ALICE)
    assert acls.cache_misses == misses
    assert acls.cache_hits >= 10


def test_cache_disabled_rereads(store):
    acls, fs, d, f, sub, nested = store
    acls.cache_enabled = False
    acls.set_acl(d.fileid, "data.txt", [AclEntry(str(ALICE), 1)])
    acls.evaluate(f.fileid, ALICE)
    acls.evaluate(f.fileid, ALICE)
    assert acls.cache_misses >= 2


def test_set_acl_invalidate_picks_up_changes(store):
    acls, fs, d, f, sub, nested = store
    acls.set_acl(d.fileid, "data.txt", [AclEntry(str(ALICE), 1)])
    assert acls.evaluate(f.fileid, ALICE) == 1
    acls.set_acl(d.fileid, "data.txt", [AclEntry(str(ALICE), 63)])
    assert acls.evaluate(f.fileid, ALICE) == 63


def test_remove_acl_restores_fallback(store):
    acls, fs, d, f, sub, nested = store
    acls.set_acl(d.fileid, "data.txt", [AclEntry(str(ALICE), 1)])
    acls.remove_acl(d.fileid, "data.txt")
    assert acls.evaluate(f.fileid, ALICE) is None


def test_unreadable_acl_fails_closed(store):
    acls, fs, d, f, sub, nested = store
    # write garbage directly into an ACL file
    node = fs.create(d.fileid, acl_name_for("data.txt"), ROOT)
    fs.write(node.fileid, 0, b"not an acl at all (((", ROOT)
    assert acls.evaluate(f.fileid, ALICE) == 0


def test_invalidate_targeted_drops_only_that_acl(store):
    acls, fs, d, f, sub, nested = store
    acls.set_acl(d.fileid, "data.txt", [AclEntry(str(ALICE), 1)])
    acls.set_acl(sub.fileid, "deep.txt", [AclEntry(str(ALICE), 3)])
    acls.evaluate(f.fileid, ALICE)
    acls.evaluate(nested.fileid, ALICE)
    data_acl = fs.lookup(d.fileid, acl_name_for("data.txt"), ROOT)
    misses = acls.cache_misses
    acls.invalidate(data_acl.fileid)
    # The sibling ACL's parse stays memoized; only data.txt re-reads.
    assert acls.evaluate(nested.fileid, ALICE) == 3
    assert acls.cache_misses == misses
    assert acls.evaluate(f.fileid, ALICE) == 1
    assert acls.cache_misses == misses + 1


def test_invalidate_none_clears_whole_cache(store):
    acls, fs, d, f, sub, nested = store
    acls.set_acl(d.fileid, "data.txt", [AclEntry(str(ALICE), 1)])
    acls.set_acl(sub.fileid, "deep.txt", [AclEntry(str(ALICE), 3)])
    acls.evaluate(f.fileid, ALICE)
    acls.evaluate(nested.fileid, ALICE)
    misses = acls.cache_misses
    acls.invalidate(None)
    acls.evaluate(f.fileid, ALICE)
    acls.evaluate(nested.fileid, ALICE)
    assert acls.cache_misses == misses + 2


def test_invalidate_always_bumps_epoch(store):
    acls, fs, d, f, sub, nested = store
    e0 = acls.epoch
    acls.invalidate(None)
    assert acls.epoch == e0 + 1
    # Targeted invalidation of a never-cached (even bogus) fileid still
    # counts: layered decision caches key off the epoch alone.
    acls.invalidate(999_999)
    assert acls.epoch == e0 + 2
    acls.set_acl(d.fileid, "data.txt", [AclEntry(str(ALICE), 1)])
    assert acls.epoch == e0 + 3
    acls.remove_acl(d.fileid, "data.txt")
    assert acls.epoch == e0 + 4
