"""NFSv3 wire codecs: roundtrips for every procedure's args/results."""

import pytest
from hypothesis import given, strategies as st

from repro.nfs import protocol as pr
from repro.nfs.protocol import Fattr3, FileHandle, NfsStatus, Sattr3
from repro.xdr import XdrError

FH = FileHandle(fsid=1, fileid=42, generation=7)
DIR_FH = FileHandle(fsid=1, fileid=1, generation=1)

ATTR = Fattr3(
    ftype=1, mode=0o644, nlink=1, uid=901, gid=901, size=1234, used=2048,
    fsid=1, fileid=42, atime=10.5, mtime=11.25, ctime=11.25,
)


def test_filehandle_roundtrip():
    assert FileHandle.from_bytes(FH.to_bytes()) == FH


def test_filehandle_bad_length_rejected():
    with pytest.raises(XdrError):
        FileHandle.from_bytes(b"short")


def test_fattr3_roundtrip():
    from repro.xdr import Packer, Unpacker

    p = Packer()
    ATTR.pack(p)
    back = Fattr3.unpack(Unpacker(p.get_bytes()))
    assert back == ATTR
    assert back.is_reg and not back.is_dir


def test_sattr3_roundtrip_all_fields():
    from repro.xdr import Packer, Unpacker

    s = Sattr3(mode=0o600, uid=5, gid=6, size=99, atime=1.5, mtime=2.5)
    p = Packer()
    s.pack(p)
    back = Sattr3.unpack(Unpacker(p.get_bytes()))
    assert back == s


def test_sattr3_roundtrip_empty():
    from repro.xdr import Packer, Unpacker

    p = Packer()
    Sattr3().pack(p)
    back = Sattr3.unpack(Unpacker(p.get_bytes()))
    assert back == Sattr3()


def test_getattr_codec():
    assert pr.unpack_getattr_args(pr.pack_getattr_args(FH)) == FH
    status, attr = pr.unpack_getattr_res(pr.pack_getattr_res(NfsStatus.OK, ATTR))
    assert status == NfsStatus.OK and attr == ATTR
    status, attr = pr.unpack_getattr_res(pr.pack_getattr_res(NfsStatus.STALE, None))
    assert status == NfsStatus.STALE and attr is None


def test_lookup_codec():
    args = pr.pack_lookup_args(DIR_FH, "file.txt")
    assert pr.unpack_lookup_args(args) == (DIR_FH, "file.txt")
    res = pr.pack_lookup_res(NfsStatus.OK, FH, ATTR, ATTR)
    status, fh, attr, dir_attr = pr.unpack_lookup_res(res)
    assert (status, fh, attr, dir_attr) == (NfsStatus.OK, FH, ATTR, ATTR)
    res = pr.pack_lookup_res(NfsStatus.NOENT, None, None, ATTR)
    status, fh, attr, dir_attr = pr.unpack_lookup_res(res)
    assert status == NfsStatus.NOENT and fh is None and dir_attr == ATTR


def test_access_codec():
    args = pr.pack_access_args(FH, pr.ACCESS_READ | pr.ACCESS_MODIFY)
    assert pr.unpack_access_args(args) == (FH, pr.ACCESS_READ | pr.ACCESS_MODIFY)
    res = pr.pack_access_res(NfsStatus.OK, ATTR, pr.ACCESS_READ)
    assert pr.unpack_access_res(res) == (NfsStatus.OK, ATTR, pr.ACCESS_READ)


def test_read_codec():
    args = pr.pack_read_args(FH, 65536, 32768)
    assert pr.unpack_read_args(args) == (FH, 65536, 32768)
    res = pr.pack_read_res(NfsStatus.OK, ATTR, b"payload", eof=True)
    status, attr, data, eof = pr.unpack_read_res(res)
    assert (status, data, eof) == (NfsStatus.OK, b"payload", True)


def test_read_res_count_mismatch_detected():
    good = pr.pack_read_res(NfsStatus.OK, ATTR, b"abcd", eof=False)
    # corrupt the count word (first word after attr block + status)
    from repro.xdr import Packer

    p = Packer()
    p.pack_enum(NfsStatus.OK)
    pr.pack_post_op_attr(p, ATTR)
    p.pack_uint(99)  # count that disagrees with the opaque
    p.pack_bool(False)
    p.pack_opaque(b"abcd")
    with pytest.raises(XdrError):
        pr.unpack_read_res(p.get_bytes())
    # and the good one parses
    pr.unpack_read_res(good)


def test_write_codec():
    args = pr.pack_write_args(FH, 0, b"datadata", pr.UNSTABLE)
    fh, offset, stable, payload = pr.unpack_write_args(args)
    assert (fh, offset, stable, payload) == (FH, 0, pr.UNSTABLE, b"datadata")
    res = pr.pack_write_res(NfsStatus.OK, ATTR, 8, pr.FILE_SYNC, b"verfverf")
    status, after, count, committed, verf = pr.unpack_write_res(res)
    assert (status, count, committed, verf) == (NfsStatus.OK, 8, pr.FILE_SYNC, b"verfverf")


def test_create_codec():
    args = pr.pack_create_args(DIR_FH, "new", Sattr3(mode=0o644), pr.GUARDED)
    dir_fh, name, mode, sattr = pr.unpack_create_args(args)
    assert (dir_fh, name, mode, sattr.mode) == (DIR_FH, "new", pr.GUARDED, 0o644)
    res = pr.pack_create_res(NfsStatus.OK, FH, ATTR, ATTR)
    status, fh, attr, dir_after = pr.unpack_create_res(res)
    assert (status, fh) == (NfsStatus.OK, FH)


def test_create_exclusive_carries_verf():
    args = pr.pack_create_args(DIR_FH, "x", Sattr3(), pr.EXCLUSIVE)
    _fh, _name, mode, _sattr = pr.unpack_create_args(args)
    assert mode == pr.EXCLUSIVE


def test_mkdir_symlink_codecs():
    args = pr.pack_mkdir_args(DIR_FH, "d", Sattr3(mode=0o755))
    assert pr.unpack_mkdir_args(args)[1] == "d"
    args = pr.pack_symlink_args(DIR_FH, "ln", "target", Sattr3())
    dir_fh, name, _sattr, target = pr.unpack_symlink_args(args)
    assert (name, target) == ("ln", "target")


def test_remove_rename_link_codecs():
    args = pr.pack_remove_args(DIR_FH, "gone")
    assert pr.unpack_remove_args(args) == (DIR_FH, "gone")
    res = pr.pack_remove_res(NfsStatus.OK, ATTR)
    assert pr.unpack_remove_res(res)[0] == NfsStatus.OK

    args = pr.pack_rename_args(DIR_FH, "a", DIR_FH, "b")
    assert pr.unpack_rename_args(args) == (DIR_FH, "a", DIR_FH, "b")

    args = pr.pack_link_args(FH, DIR_FH, "alias")
    assert pr.unpack_link_args(args) == (FH, DIR_FH, "alias")


@pytest.mark.parametrize("plus", [False, True])
def test_readdir_codec(plus):
    entries = [
        pr.DirEntry(10, "alpha", 1, ATTR if plus else None, FH if plus else None),
        pr.DirEntry(11, "beta", 2, ATTR if plus else None, FH if plus else None),
    ]
    res = pr.pack_readdir_res(NfsStatus.OK, ATTR, entries, eof=True, plus=plus)
    status, dir_attr, out, eof = pr.unpack_readdir_res(res, plus=plus)
    assert status == NfsStatus.OK and eof
    assert [e.name for e in out] == ["alpha", "beta"]
    if plus:
        assert out[0].handle == FH and out[0].attr == ATTR


def test_commit_codec():
    args = pr.pack_commit_args(FH, 4096, 8192)
    assert pr.unpack_commit_args(args) == (FH, 4096, 8192)
    res = pr.pack_commit_res(NfsStatus.OK, ATTR, b"12345678")
    status, _after, verf = pr.unpack_commit_res(res)
    assert (status, verf) == (NfsStatus.OK, b"12345678")


def test_fsinfo_fsstat_codecs():
    res = pr.pack_fsinfo_res(NfsStatus.OK, ATTR, 32768, 32768)
    status, rtmax, wtmax = pr.unpack_fsinfo_res(res)
    assert (status, rtmax, wtmax) == (NfsStatus.OK, 32768, 32768)
    res = pr.pack_fsstat_res(NfsStatus.OK, ATTR, 10**12, 10**11, 10**6)
    status, tbytes, fbytes, files = pr.unpack_fsstat_res(res)
    assert (tbytes, fbytes, files) == (10**12, 10**11, 10**6)


@given(
    st.integers(min_value=0, max_value=2**64 - 1),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_read_args_roundtrip(offset, count):
    fh, off, cnt = pr.unpack_read_args(pr.pack_read_args(FH, offset, count))
    assert (fh, off, cnt) == (FH, offset, count)


@given(st.binary(max_size=1024), st.integers(min_value=0, max_value=2**40))
def test_property_write_args_roundtrip(payload, offset):
    fh, off, stable, data = pr.unpack_write_args(
        pr.pack_write_args(FH, offset, payload, pr.FILE_SYNC)
    )
    assert (off, data) == (offset, payload)


@given(st.text(min_size=1, max_size=80).filter(lambda s: "\x00" not in s))
def test_property_diropargs_roundtrip(name):
    dir_fh, out = pr.unpack_lookup_args(pr.pack_lookup_args(DIR_FH, name))
    assert out == name
