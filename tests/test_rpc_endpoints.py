"""RPC client/server endpoints over the simulated network."""

import pytest

from repro.net import Host, Network
from repro.rpc import RpcClient, RpcProgram, RpcServer, StreamTransport
from repro.rpc.auth import AuthSys
from repro.rpc.costs import EndpointCost
from repro.rpc.errors import (
    RpcError,
    RpcGarbageArgs,
    RpcProcUnavail,
    RpcProgMismatch,
    RpcProgUnavail,
    RpcSystemError,
)
from repro.net.errors import ConnectionReset
from repro.rpc.server import ProcUnavailable
from repro.sim import Simulator
from repro.xdr import Packer, Unpacker, XdrError

PROG = 300_000


class Echo(RpcProgram):
    prog, vers = PROG, 1

    def __init__(self, sim):
        self.sim = sim
        self.seen_uids = []

    def handle(self, proc, args, call, ctx):
        if proc == 99:
            raise ProcUnavailable()
        if proc == 98:
            raise XdrError("cannot decode")
        if proc == 97:
            raise RuntimeError("handler crash")
        if call.cred.flavor == 1:
            self.seen_uids.append(AuthSys.from_opaque(call.cred).uid)
        yield self.sim.timeout(0.001)
        u = Unpacker(args)
        p = Packer()
        p.pack_string(u.unpack_string()[::-1])
        return p.get_bytes()


def stack(max_inflight=64):
    sim = Simulator()
    net = Network(sim)
    c = Host(sim, net, "c")
    s = Host(sim, net, "s")
    net.connect("c", "s", latency=0.001)
    program = Echo(sim)
    server = RpcServer(sim, cpu=s.cpu, max_inflight=max_inflight)
    server.register(program)
    server.serve_listener(s.listen(111))
    return sim, c, s, program, server


def connect_client(sim, c, vers=1):
    def build():
        sock = yield from c.connect("s", 111)
        return RpcClient(sim, StreamTransport(sock), PROG, vers, cpu=c.cpu)

    return sim.run_until_complete(sim.spawn(build()))


def call_str(sim, client, proc, text):
    def go():
        p = Packer()
        p.pack_string(text)
        res = yield from client.call(proc, p.get_bytes())
        return Unpacker(res).unpack_string()

    return sim.run_until_complete(sim.spawn(go()))


def test_basic_call():
    sim, c, s, program, server = stack()
    client = connect_client(sim, c)
    assert call_str(sim, client, 0, "hello") == "olleh"
    assert server.calls_served == 1


def test_credentials_reach_handler():
    sim, c, s, program, _server = stack()
    client = connect_client(sim, c)

    def go():
        p = Packer()
        p.pack_string("x")
        yield from client.call(0, p.get_bytes(), AuthSys(uid=777, gid=7).to_opaque())

    sim.run_until_complete(sim.spawn(go()))
    assert program.seen_uids == [777]


def test_concurrent_calls_pipeline():
    sim, c, _s, _program, _server = stack()
    client = connect_client(sim, c)

    def one(i):
        p = Packer()
        p.pack_string(f"msg{i}")
        res = yield from client.call(0, p.get_bytes())
        return Unpacker(res).unpack_string()

    from repro.sim.process import all_of

    def main():
        t0 = sim.now
        procs = [sim.spawn(one(i)) for i in range(10)]
        out = yield all_of(sim, procs)
        return out, sim.now - t0

    out, elapsed = sim.run_until_complete(sim.spawn(main()))
    assert out == [f"msg{i}"[::-1] for i in range(10)]
    # pipelined: much less than 10 sequential round trips (10 * ~3ms)
    assert elapsed < 0.020


def test_max_inflight_serializes():
    sim, c, _s, _program, _server = stack(max_inflight=1)
    client = connect_client(sim, c)
    from repro.sim.process import all_of

    def one(i):
        p = Packer()
        p.pack_string("x")
        yield from client.call(0, p.get_bytes())

    def main():
        t0 = sim.now
        yield all_of(sim, [sim.spawn(one(i)) for i in range(5)])
        return sim.now - t0

    elapsed = sim.run_until_complete(sim.spawn(main()))
    assert elapsed >= 5 * 0.001  # handler time serialized


def test_unknown_program():
    sim, c, _s, _p, _server = stack()

    def build():
        sock = yield from c.connect("s", 111)
        return RpcClient(sim, StreamTransport(sock), 999_999, 1)

    client = sim.run_until_complete(sim.spawn(build()))

    def go():
        with pytest.raises(RpcProgUnavail):
            yield from client.call(0, b"")
        return True

    assert sim.run_until_complete(sim.spawn(go()))


def test_version_mismatch_reports_range():
    sim, c, _s, _p, _server = stack()
    client = connect_client(sim, c, vers=9)

    def go():
        with pytest.raises(RpcProgMismatch) as info:
            yield from client.call(0, b"")
        return info.value.low, info.value.high

    assert sim.run_until_complete(sim.spawn(go())) == (1, 1)


def test_proc_unavailable():
    sim, c, _s, _p, _server = stack()
    client = connect_client(sim, c)

    def go():
        with pytest.raises(RpcProcUnavail):
            yield from client.call(99, b"")
        return True

    assert sim.run_until_complete(sim.spawn(go()))


def test_garbage_args():
    sim, c, _s, _p, _server = stack()
    client = connect_client(sim, c)

    def go():
        with pytest.raises(RpcGarbageArgs):
            yield from client.call(98, b"")
        return True

    assert sim.run_until_complete(sim.spawn(go()))


def test_handler_crash_is_system_err():
    sim, c, _s, _p, _server = stack()
    client = connect_client(sim, c)

    def go():
        with pytest.raises(RpcSystemError):
            yield from client.call(97, b"")
        return True

    assert sim.run_until_complete(sim.spawn(go()))


def test_connection_close_fails_outstanding_calls():
    sim, c, _s, _p, _server = stack()
    client = connect_client(sim, c)

    def go():
        p = Packer()
        p.pack_string("x")
        ev_proc = sim.spawn(client.call(0, p.get_bytes()))
        client.transport.sock.abort()
        try:
            yield ev_proc
        except (RpcError, ConnectionReset):
            return "failed as expected"

    assert sim.run_until_complete(sim.spawn(go())) == "failed as expected"


def test_duplicate_program_registration_rejected():
    sim, _c, _s, program, server = stack()
    with pytest.raises(RpcError):
        server.register(program)


def test_endpoint_cost_charges_cpu():
    sim = Simulator()
    net = Network(sim)
    c = Host(sim, net, "c")
    s = Host(sim, net, "s")
    net.connect("c", "s", latency=0.001)
    program = Echo(sim)
    server = RpcServer(sim, cpu=s.cpu, cost=EndpointCost(per_msg=0.01), account="srv")
    server.register(program)
    server.serve_listener(s.listen(111))

    def build():
        sock = yield from c.connect("s", 111)
        client = RpcClient(
            sim, StreamTransport(sock), PROG, 1,
            cpu=c.cpu, cost=EndpointCost(per_msg=0.005), account="cli",
        )
        p = Packer()
        p.pack_string("x")
        yield from client.call(0, p.get_bytes())

    sim.run_until_complete(sim.spawn(build()))
    assert c.cpu.busy_total("cli") == pytest.approx(0.010)  # send + recv
    assert s.cpu.busy_total("srv") == pytest.approx(0.020)
