"""GSI layer: DNs, certificates, chains, delegation, gridmaps."""

from dataclasses import replace

import pytest

from repro.crypto.drbg import Drbg
from repro.crypto.rsa import generate_keypair
from repro.gsi import (
    Certificate,
    CertificateAuthority,
    DistinguishedName,
    Gridmap,
    GridmapError,
    ValidationError,
    effective_identity,
    issue_proxy_certificate,
)
from repro.gsi.certs import Credential, validate_chain
from repro.gsi.gridmap import UnmappedPolicy
from repro.gsi.names import DnError

CA = CertificateAuthority(
    DistinguishedName.parse("/C=US/O=TestCA/CN=Root"), rng=Drbg("ca"), key_bits=768
)
ALICE = CA.issue_identity(
    DistinguishedName.parse("/C=US/O=Lab/CN=Alice"), rng=Drbg("alice"), key_bits=768
)


# -- distinguished names -------------------------------------------------------


def test_dn_parse_format_roundtrip():
    text = "/C=US/O=UFL/OU=ACIS/CN=Ming Zhao"
    assert str(DistinguishedName.parse(text)) == text


def test_dn_make_orders_canonically():
    dn = DistinguishedName.make(CN="X", C="US", O="Org")
    assert str(dn) == "/C=US/O=Org/CN=X"


def test_dn_common_name_uses_last_cn():
    dn = DistinguishedName.parse("/O=X/CN=base/CN=proxy")
    assert dn.common_name == "proxy"


@pytest.mark.parametrize(
    "bad", ["no-slash", "/", "/CN=", "/BOGUS=x", "/CN=a/b=c", ""]
)
def test_dn_malformed_rejected(bad):
    with pytest.raises(DnError):
        DistinguishedName.parse(bad)


def test_dn_child_and_prefix():
    base = DistinguishedName.parse("/O=X/CN=alice")
    child = base.child("CN", "proxy")
    assert str(child) == "/O=X/CN=alice/CN=proxy"
    assert base.is_prefix_of(child)
    assert not child.is_prefix_of(base)
    assert child.parent() == base


# -- certificates & chains -----------------------------------------------------------


def test_ca_certificate_is_self_signed_ca():
    cert = CA.certificate
    assert cert.self_signed and cert.is_ca
    assert cert.verify_signature(CA.keypair.public)


def test_issue_and_validate_identity():
    identity = validate_chain(ALICE.certificate, ALICE.chain, [CA.certificate], now=1.0)
    assert str(identity) == "/C=US/O=Lab/CN=Alice"


def test_certificate_serialization_roundtrip():
    data = ALICE.certificate.to_bytes()
    back = Certificate.from_bytes(data)
    assert back == ALICE.certificate


def test_validation_rejects_expired():
    with pytest.raises(ValidationError, match="expired"):
        validate_chain(ALICE.certificate, ALICE.chain, [CA.certificate], now=1e12)


def test_validation_rejects_tampered_fields():
    forged = replace(ALICE.certificate, not_after=1e15)
    with pytest.raises(ValidationError):
        validate_chain(forged, ALICE.chain, [CA.certificate], now=1.0)


def test_validation_rejects_untrusted_ca():
    rogue = CertificateAuthority(
        DistinguishedName.parse("/O=Rogue/CN=CA"), rng=Drbg("rogue"), key_bits=768
    )
    mallory = rogue.issue_identity(
        DistinguishedName.parse("/O=Rogue/CN=Mallory"), key_bits=768
    )
    with pytest.raises(ValidationError):
        validate_chain(mallory.certificate, mallory.chain, [CA.certificate], now=1.0)


def test_validation_rejects_non_ca_signer():
    # Alice (not a CA) signs a certificate for Eve.
    eve_keys = generate_keypair(768, Drbg("eve"))
    cert = Certificate(
        subject=DistinguishedName.parse("/O=Lab/CN=Eve"),
        issuer=ALICE.dn,
        public_key=eve_keys.public,
        serial=99999,
        not_before=0.0,
        not_after=1e9,
    )
    cert = replace(cert, signature=ALICE.keypair.sign(cert.tbs_bytes()))
    with pytest.raises(ValidationError, match="not a CA"):
        validate_chain(cert, [ALICE.certificate], [CA.certificate], now=1.0)


def test_credential_serialization_roundtrip():
    data = ALICE.to_bytes()
    back = Credential.from_bytes(data)
    assert back.dn == ALICE.dn
    assert back.keypair.d == ALICE.keypair.d
    assert back.chain == tuple(ALICE.chain)


# -- delegation -----------------------------------------------------------------------


def test_proxy_certificate_validates_as_user():
    proxy = issue_proxy_certificate(ALICE, now=1.0, rng=Drbg("p"), key_bits=768)
    assert proxy.certificate.is_proxy
    identity = validate_chain(proxy.certificate, proxy.chain, [CA.certificate], now=2.0)
    assert identity == ALICE.dn


def test_proxy_lifetime_enforced():
    proxy = issue_proxy_certificate(
        ALICE, now=0.0, lifetime=100.0, rng=Drbg("p"), key_bits=768
    )
    validate_chain(proxy.certificate, proxy.chain, [CA.certificate], now=50.0)
    with pytest.raises(ValidationError):
        validate_chain(proxy.certificate, proxy.chain, [CA.certificate], now=200.0)


def test_proxy_signed_by_wrong_key_rejected():
    proxy = issue_proxy_certificate(ALICE, now=0.0, rng=Drbg("p"), key_bits=768)
    bob = CA.issue_identity(
        DistinguishedName.parse("/O=Lab/CN=Bob"), rng=Drbg("bob"), key_bits=768
    )
    # claim the proxy chains through Bob instead of Alice
    forged = replace(proxy.certificate, issuer=bob.dn)
    forged = replace(
        forged,
        subject=bob.dn.child("CN", "proxy"),
    )
    with pytest.raises(ValidationError):
        validate_chain(forged, (bob.certificate,) + tuple(bob.chain), [CA.certificate], now=1.0)


def test_effective_identity_strips_proxy_components():
    base = DistinguishedName.parse("/O=Lab/CN=alice")
    double = base.child("CN", "proxy").child("CN", "proxy")
    assert effective_identity(double) == base
    assert effective_identity(base) == base


# -- gridmap -----------------------------------------------------------------------------


def test_gridmap_parse_and_lookup():
    gm = Gridmap.parse(
        '# comment line\n'
        '"/C=US/O=Lab/CN=Alice" alice\n'
        '\n'
        '"/C=US/O=Lab/CN=Bob" bob\n'
    )
    assert len(gm) == 2
    assert gm.lookup(DistinguishedName.parse("/C=US/O=Lab/CN=Alice")) == "alice"
    assert gm.lookup(DistinguishedName.parse("/C=US/O=Lab/CN=Nobody")) is None


def test_gridmap_anonymous_policy():
    gm = Gridmap.parse('"/O=Lab/CN=Alice" alice', unmapped=UnmappedPolicy.ANONYMOUS)
    assert gm.lookup(DistinguishedName.parse("/O=Lab/CN=Stranger")) == "nobody"


@pytest.mark.parametrize(
    "bad",
    [
        "/O=Lab/CN=X alice",  # unquoted DN
        '"/O=Lab/CN=X',  # unterminated quote
        '"/O=Lab/CN=X"',  # missing account
        '"/O=Lab/CN=X" two words',  # account with space
        '"not-a-dn" alice',  # invalid DN
    ],
)
def test_gridmap_malformed_rejected(bad):
    with pytest.raises((GridmapError, DnError)):
        Gridmap.parse(bad)


def test_gridmap_dump_parse_roundtrip():
    gm = Gridmap()
    gm.add(DistinguishedName.parse("/O=Lab/CN=Alice"), "alice")
    gm.add(DistinguishedName.parse("/O=Lab/CN=Bob"), "bob")
    again = Gridmap.parse(gm.dump())
    assert again.entries == gm.entries


def test_gridmap_add_remove():
    gm = Gridmap()
    dn = DistinguishedName.parse("/O=Lab/CN=Carol")
    gm.add(dn, "carol")
    assert gm.lookup(dn) == "carol"
    gm.remove(dn)
    assert gm.lookup(dn) is None


def test_gridmap_duplicate_dn_last_line_wins():
    gm = Gridmap.parse(
        '"/O=Lab/CN=Alice" alice\n'
        '"/O=Lab/CN=Bob" bob\n'
        '"/O=Lab/CN=Alice" ops\n'
    )
    assert len(gm) == 2
    assert gm.lookup(DistinguishedName.parse("/O=Lab/CN=Alice")) == "ops"


def test_gridmap_anonymous_account_need_not_exist():
    # The anonymous target is just a name; resolution/creation against
    # a real accounts database is the proxy's job (AuthzCache.ensure).
    gm = Gridmap(unmapped=UnmappedPolicy.ANONYMOUS, anonymous_account="grid-anon")
    assert gm.lookup(DistinguishedName.parse("/O=Lab/CN=Stranger")) == "grid-anon"
    # A mapped DN is never demoted to the anonymous account.
    gm.add(DistinguishedName.parse("/O=Lab/CN=Alice"), "alice")
    assert gm.lookup(DistinguishedName.parse("/O=Lab/CN=Alice")) == "alice"


def test_gridmap_lookup_str_matches_lookup():
    gm = Gridmap.parse('"/O=Lab/CN=Alice" alice')
    dn = DistinguishedName.parse("/O=Lab/CN=Alice")
    assert gm.lookup_str(str(dn)) == gm.lookup(dn) == "alice"
    assert gm.lookup_str("/O=Lab/CN=Nobody") is None


def test_gridmap_epoch_counts_every_mutation():
    gm = Gridmap()
    dn = DistinguishedName.parse("/O=Lab/CN=Carol")
    assert gm.epoch == 0
    gm.add(dn, "carol")
    assert gm.epoch == 1
    gm.remove(dn)
    assert gm.epoch == 2
    # Removing an unknown DN still bumps: the mutation *attempt* is the
    # invalidation event for layered caches.
    gm.remove(dn)
    assert gm.epoch == 3
    assert gm.lookup(dn) is None
