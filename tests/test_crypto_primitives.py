"""Crypto primitives against published vectors plus property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import AES, RC4, PaddingError, hmac_sha1, hmac_sha256, pkcs7_pad, pkcs7_unpad
from repro.crypto.hmac import constant_time_equal, hmac_digest


# -- AES (FIPS-197 appendix C vectors) ------------------------------------------

FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")


def test_aes128_fips_vector():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    ct = AES(key).encrypt_block(FIPS_PT)
    assert ct == bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    assert AES(key).decrypt_block(ct) == FIPS_PT


def test_aes192_fips_vector():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
    ct = AES(key).encrypt_block(FIPS_PT)
    assert ct == bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")


def test_aes256_fips_vector():
    key = bytes.fromhex(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
    )
    ct = AES(key).encrypt_block(FIPS_PT)
    assert ct == bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
    assert AES(key).decrypt_block(ct) == FIPS_PT


def test_aes_nist_sp800_38a_cbc_vector():
    # CBC-AES128.Encrypt from SP 800-38A F.2.1 (first two blocks)
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    pt = bytes.fromhex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
    )
    ct = AES(key).cbc_encrypt(iv, pt)
    assert ct == bytes.fromhex(
        "7649abac8119b246cee98e9b12e9197d"
        "5086cb9b507219ee95db113a917678b2"
    )
    assert AES(key).cbc_decrypt(iv, ct) == pt


def test_aes_bad_key_and_block_sizes():
    with pytest.raises(ValueError):
        AES(b"short")
    aes = AES(b"k" * 16)
    with pytest.raises(ValueError):
        aes.encrypt_block(b"x" * 15)
    with pytest.raises(ValueError):
        aes.cbc_encrypt(b"i" * 15, b"x" * 16)
    with pytest.raises(ValueError):
        aes.cbc_encrypt(b"i" * 16, b"x" * 17)


@settings(max_examples=20)
@given(st.binary(min_size=16, max_size=16), st.binary(min_size=32, max_size=32))
def test_aes_block_roundtrip_property(block, key):
    aes = AES(key)
    assert aes.decrypt_block(aes.encrypt_block(block)) == block


# -- RC4 --------------------------------------------------------------------------


def test_rc4_classic_vectors():
    assert RC4(b"Key").process(b"Plaintext").hex().upper() == "BBF316E8D940AF0AD3"
    assert (
        RC4(b"Secret").process(b"Attack at dawn").hex().upper()
        == "45A01F645FC35B383552544B9BF5"
    )


def test_rc4_is_symmetric_and_stateful():
    enc = RC4(b"k")
    dec = RC4(b"k")
    c1 = enc.process(b"first")
    c2 = enc.process(b"second")
    assert dec.process(c1) == b"first"
    assert dec.process(c2) == b"second"
    # a fresh instance is NOT at the same keystream position
    assert RC4(b"k").process(c2) != b"second"


def test_rc4_skip_advances_keystream():
    a = RC4(b"k")
    b = RC4(b"k")
    a.skip(768)
    b.process(b"\x00" * 768)
    assert a.process(b"data") == b.process(b"data")


def test_rc4_key_length_limits():
    with pytest.raises(ValueError):
        RC4(b"")
    with pytest.raises(ValueError):
        RC4(b"x" * 257)


# -- HMAC (RFC 2202 / RFC 4231 vectors) ---------------------------------------------


def test_hmac_sha1_rfc2202_case1():
    assert hmac_sha1(b"\x0b" * 20, b"Hi There").hex() == (
        "b617318655057264e28bc0b6fb378c8ef146be00"
    )


def test_hmac_sha1_rfc2202_case2():
    assert hmac_sha1(b"Jefe", b"what do ya want for nothing?").hex() == (
        "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    )


def test_hmac_sha1_long_key_hashed_first():
    # RFC 2202 case 6: 80-byte key
    key = b"\xaa" * 80
    msg = b"Test Using Larger Than Block-Size Key - Hash Key First"
    assert hmac_sha1(key, msg).hex() == "aa4ae5e15272d00e95705637ce8a3b55ed402112"


def test_hmac_sha256_rfc4231_case1():
    assert hmac_sha256(b"\x0b" * 20, b"Hi There").hex() == (
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    )


@given(st.binary(max_size=100), st.binary(max_size=200))
def test_hmac_matches_stdlib(key, msg):
    import hashlib
    import hmac as stdlib_hmac

    assert hmac_digest(key, msg, "sha1") == stdlib_hmac.new(
        key, msg, hashlib.sha1
    ).digest()


def test_constant_time_equal():
    assert constant_time_equal(b"same", b"same")
    assert not constant_time_equal(b"same", b"samx")
    assert not constant_time_equal(b"short", b"longer")


# -- PKCS#7 -------------------------------------------------------------------------


def test_pkcs7_full_block_when_aligned():
    padded = pkcs7_pad(b"x" * 16, 16)
    assert len(padded) == 32 and padded[-1] == 16


@pytest.mark.parametrize(
    "bad",
    [
        b"",  # empty
        b"x" * 15,  # not block aligned
        b"x" * 15 + b"\x00",  # zero pad byte
        b"x" * 15 + b"\x11",  # pad > block
        b"x" * 14 + b"\x01\x02",  # inconsistent pad bytes
    ],
)
def test_pkcs7_unpad_rejects_bad_padding(bad):
    with pytest.raises(PaddingError):
        pkcs7_unpad(bad, 16)


@given(st.binary(max_size=100), st.integers(min_value=1, max_value=32))
def test_pkcs7_roundtrip_property(data, block):
    padded = pkcs7_pad(data, block)
    assert len(padded) % block == 0
    assert len(padded) > len(data)
    assert pkcs7_unpad(padded, block) == data
