"""Multiple concurrent sessions (paper Figure 2) and the RPC tracer."""

import pytest

from repro.core.setups import (
    CA_DN,
    FILE_ACCOUNT,
    JOB_ACCOUNT,
    SERVER_DN,
    _kernel_client,
    _make_session_pki,
)
from repro.core.topology import NFS_PORT, Testbed
from repro.crypto.drbg import Drbg
from repro.gsi import CertificateAuthority, DistinguishedName, Gridmap
from repro.harness.trace import RpcTracer
from repro.nfs.client import NfsClientError
from repro.proxy.accounts import Account
from repro.proxy.client_proxy import ProxyCacheConfig, SgfsClientProxy
from repro.proxy.server_proxy import SgfsServerProxy
from repro.rpc.auth import AuthSys
from repro.rpc.transport import StreamTransport
from repro.tls import SecurityConfig
from repro.tls.channel import client_handshake
from repro.vfs.fs import Credentials

ALICE_DN = DistinguishedName.parse("/C=US/O=UFL/CN=Alice")
BOB_DN = DistinguishedName.parse("/C=US/O=UFL/CN=Bob")


def build_two_sessions():
    """Two users, two sessions, two server proxies on one file server."""
    tb = Testbed.build()
    sim = tb.sim
    rng = Drbg("two-sessions")
    ca = CertificateAuthority(CA_DN, rng=rng.fork("ca"), key_bits=768)
    anchors = [ca.certificate]
    host_id = ca.issue_identity(SERVER_DN, rng=rng.fork("host"), key_bits=768)
    tb.server_accounts.add(Account("alice", 950, 950))
    tb.server_accounts.add(Account("bob", 951, 951))
    # each user owns a directory inside the export
    root_cred = Credentials(tb.fs.root.uid, tb.fs.root.gid)
    for name, uid in (("alice", 950), ("bob", 951)):
        d = tb.fs.mkdir(1, name, root_cred)
        tb.fs.setattr(d.fileid, Credentials(0, 0), uid=uid, gid=uid)

    mounts = {}
    for i, (dn, account) in enumerate(((ALICE_DN, "alice"), (BOB_DN, "bob"))):
        user = ca.issue_identity(dn, rng=rng.fork(f"user{i}"), key_bits=768)
        gridmap = Gridmap()
        gridmap.add(dn, account)
        server_cfg = SecurityConfig.for_session(
            host_id, anchors, "rc4-128-sha1", rng=rng.fork(f"scfg{i}")
        )
        client_cfg = SecurityConfig.for_session(
            user, anchors, "rc4-128-sha1", rng=rng.fork(f"ccfg{i}")
        )
        sproxy = SgfsServerProxy(
            sim, tb.server, 4700 + i, NFS_PORT,
            accounts=tb.server_accounts, gridmap=gridmap, fs=tb.fs,
            security=server_cfg,
        )
        sproxy.start()

        def upstream_factory(port=4700 + i, cfg=client_cfg):
            sock = yield from tb.client.connect("server", port)
            channel = yield from client_handshake(sim, sock, cfg)
            return channel

        cproxy = SgfsClientProxy(
            sim, tb.client, 4800 + i, upstream_factory,
            cache=ProxyCacheConfig(enabled=False),
        )

        def build(cproxy=cproxy, port=4800 + i):
            yield from cproxy.start()
            client = yield from _kernel_client(
                tb, tb.client.name, port,
                AuthSys(uid=JOB_ACCOUNT.uid, gid=JOB_ACCOUNT.gid), None,
            )
            return client

        mounts[account] = (tb.run(build()), sproxy)
    return tb, mounts


def test_two_sessions_isolated_identities():
    tb, mounts = build_two_sessions()
    alice, _sp_a = mounts["alice"]
    bob, _sp_b = mounts["bob"]

    def job():
        yield from alice.write_file("/alice/mine.txt", b"alice data")
        yield from bob.write_file("/bob/mine.txt", b"bob data")
        # each user's files land under their own uid
        return True

    assert tb.run(job())
    a = tb.fs.resolve("/alice/mine.txt", Credentials(0, 0))
    b = tb.fs.resolve("/bob/mine.txt", Credentials(0, 0))
    assert a.uid == 950 and b.uid == 951


def test_session_gridmap_confines_each_user():
    tb, mounts = build_two_sessions()
    alice, _ = mounts["alice"]
    bob, _ = mounts["bob"]

    def job():
        yield from alice.write_file("/alice/private.txt", b"secret", )
        # bob's session maps him to uid 951: UNIX modes deny the write
        with pytest.raises(NfsClientError, match="ACCES"):
            yield from bob.write_file("/alice/intruder.txt", b"nope")
        return True

    assert tb.run(job())


def test_sessions_run_concurrently():
    tb, mounts = build_two_sessions()
    alice, _ = mounts["alice"]
    bob, _ = mounts["bob"]
    sim = tb.sim
    done = []

    def alice_job():
        for i in range(10):
            yield from alice.write_file(f"/alice/a{i}", b"x" * 4000)
        done.append(("alice", sim.now))

    def bob_job():
        for i in range(10):
            yield from bob.write_file(f"/bob/b{i}", b"y" * 4000)
        done.append(("bob", sim.now))

    pa = sim.spawn(alice_job())
    pb = sim.spawn(bob_job())
    sim.run_until_complete(pa)
    sim.run_until_complete(pb)
    t_alice = dict(done)["alice"]
    t_bob = dict(done)["bob"]
    # concurrent, not serialized: both finish within ~2x of each other
    assert max(t_alice, t_bob) < 1.9 * min(t_alice, t_bob)


# -- tracer ---------------------------------------------------------------------------


def test_tracer_records_and_summarizes():
    from repro.core import setup_nfs_v3

    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    tracer = RpcTracer.install(mount.client)

    def job():
        yield from mount.client.mkdir("/t")
        yield from mount.client.write_file("/t/f", b"z" * 70000)
        mount.client.pages.clear()  # force the read back over RPC
        yield from mount.client.read_file("/t/f")
        yield from mount.client.drain()

    tb.run(job())
    procs = {r.proc for r in tracer.records}
    assert {"MKDIR", "CREATE", "WRITE", "READ", "COMMIT"} <= procs
    summary = tracer.summarize()
    assert summary["WRITE"].count >= 3
    assert summary["WRITE"].mean > 0
    assert summary["WRITE"].p50 <= summary["WRITE"].p95 <= summary["WRITE"].max_latency
    assert tracer.total_bytes() > 140000  # writes + reads both directions
    table = tracer.format()
    assert "WRITE" in table and "p95" in table


def test_tracer_latencies_reflect_rtt():
    from repro.core import setup_nfs_v3

    tb = Testbed.build(rtt=0.050)
    mount = setup_nfs_v3(tb)
    tracer = RpcTracer.install(mount.client)

    def job():
        yield from mount.client.mkdir("/far")

    tb.run(job())
    mkdirs = [r for r in tracer.records if r.proc == "MKDIR"]
    assert mkdirs and mkdirs[0].latency > 0.050
