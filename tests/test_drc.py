"""Duplicate-request cache: unit behavior and end-to-end exactly-once.

The DRC is the correctness half of retransmission: a client that times
out and re-sends a non-idempotent call (REMOVE, RENAME, MKDIR,
exclusive CREATE) must not have it execute twice.  The unit tests pin
the cache protocol (miss / replay / park / abort-promotion / bounds);
the end-to-end tests force same-xid retransmission by setting the reply
timer *below* the WAN RTT and count actual executions at the kernel
NFS program — for the plain NFS path and for both SGFS proxy hops.
"""

import pytest

from repro.core import Testbed, setup_nfs_v3
from repro.core.setups import setup_gfs, setup_sgfs
from repro.nfs.protocol import Proc
from repro.rpc.auth import AuthSys
from repro.rpc.drc import MISS, REPLAY, WAIT, DuplicateRequestCache, drc_key
from repro.rpc.messages import CallMessage
from repro.sim import Simulator
from repro.vfs.fs import Credentials

ROOT = Credentials(0, 0)


# -- unit: the cache protocol -------------------------------------------------


def test_miss_then_complete_then_replay():
    sim = Simulator()
    drc = DuplicateRequestCache(sim)
    state, _ = drc.check("k")
    assert state == MISS
    drc.complete("k", b"the reply")
    state, value = drc.check("k")
    assert state == REPLAY
    assert value == b"the reply"
    assert drc.replays == 1


def test_duplicate_parks_until_original_completes():
    sim = Simulator()
    drc = DuplicateRequestCache(sim)
    assert drc.check("k")[0] == MISS
    got = []

    def duplicate():
        state, ev = drc.check("k")
        assert state == WAIT
        cached = yield ev
        got.append(cached)

    def original():
        yield sim.timeout(1.0)
        drc.complete("k", b"computed once")

    sim.spawn(duplicate())
    sim.spawn(original())
    sim.run()
    assert got == [b"computed once"]
    assert drc.parks == 1


def test_abort_promotes_exactly_one_waiter():
    """If the original executor dies, one parked duplicate takes over
    (wakes with None) and the rest keep waiting for its reply."""
    sim = Simulator()
    drc = DuplicateRequestCache(sim)
    assert drc.check("k")[0] == MISS
    results = []

    def duplicate():
        _state, ev = drc.check("k")
        cached = yield ev
        if cached is None:
            results.append("promoted")
            drc.complete("k", b"recovered")
        else:
            results.append(cached)

    def crasher():
        yield sim.timeout(1.0)
        drc.abort("k")

    sim.spawn(duplicate())
    sim.spawn(duplicate())
    sim.spawn(crasher())
    sim.run()
    assert sorted(map(str, results)) == ["b'recovered'", "promoted"]


def test_lru_bound_and_eviction():
    sim = Simulator()
    drc = DuplicateRequestCache(sim, capacity=4)
    for i in range(10):
        drc.check(i)
        drc.complete(i, b"r%d" % i)
    assert len(drc) <= 4
    assert drc.evictions >= 6
    state, _ = drc.check(0)  # long evicted
    assert state == MISS
    state, value = drc.check(9)  # most recent survives
    assert state == REPLAY and value == b"r9"


def test_entries_age_out_on_virtual_clock():
    sim = Simulator()
    drc = DuplicateRequestCache(sim, max_age=10.0)

    def job():
        drc.check("k")
        drc.complete("k", b"r")
        yield sim.timeout(100.0)
        state, _ = drc.check("k")
        return state

    proc = sim.spawn(job())
    assert sim.run_until_complete(proc) == MISS
    assert drc.expirations >= 1


def test_drc_key_separates_client_identities():
    def call(uid, xid=77, args=b"same"):
        cred = AuthSys(machinename="node1", uid=uid, gid=uid).to_opaque()
        return CallMessage(xid, 100003, 3, int(Proc.REMOVE), cred=cred, args=args)

    assert drc_key(call(1)) == drc_key(call(1))
    assert drc_key(call(1)) != drc_key(call(2))  # other client, same xid
    assert drc_key(call(1)) != drc_key(call(1, xid=78))
    # same xid reused for a different payload (paranoia guard)
    assert drc_key(call(1)) != drc_key(call(1, args=b"different"))


# -- end-to-end: retransmitted non-idempotent calls execute once --------------


def _count_executions(program, proc):
    """Wrap ``program.handle`` to count executions of one procedure."""
    counts = []
    orig = program.handle

    def wrapped(p, args, call, ctx):
        if int(p) == int(proc):
            counts.append(p)
        return orig(p, args, call, ctx)

    program.handle = wrapped
    return counts


_OP_PROC = {
    "remove": Proc.REMOVE,
    "rename": Proc.RENAME,
    "mkdir": Proc.MKDIR,
    "create": Proc.CREATE,
}


def _do_op(cl, op):
    if op == "remove":
        yield from cl.unlink("/victim.bin")
    elif op == "rename":
        yield from cl.rename("/old.bin", "/new.bin")
    elif op == "mkdir":
        yield from cl.mkdir("/made")
    elif op == "create":
        yield from cl.create("/excl.bin", exclusive=True)


def _prepare_op(cl, op):
    if op == "remove":
        yield from cl.write_file("/victim.bin", b"to be removed")
    elif op == "rename":
        yield from cl.write_file("/old.bin", b"payload")


def _check_op_effect(tb, op):
    if op == "remove":
        with pytest.raises(Exception):
            tb.fs.resolve("/victim.bin", ROOT)
    elif op == "rename":
        assert bytes(tb.fs.resolve("/new.bin", ROOT).data) == b"payload"
    elif op == "mkdir":
        assert tb.fs.resolve("/made", ROOT) is not None
    elif op == "create":
        assert tb.fs.resolve("/excl.bin", ROOT) is not None


@pytest.mark.parametrize("op", sorted(_OP_PROC))
def test_nfs_retransmitted_call_executes_exactly_once(op):
    """Plain NFS: reply timer below the 80 ms RTT forces same-xid
    retransmissions; the kernel server's DRC absorbs them."""
    tb = Testbed.build(rtt=0.08)
    mount = setup_nfs_v3(tb)
    cl = mount.client

    def job():
        yield from _prepare_op(cl, op)  # prerequisites on a clean timer
        # now every call retransmits at least once before the reply lands
        cl.timeo = 0.02
        cl.timeo_retrans = 6
        counts = _count_executions(tb.nfs_program, _OP_PROC[op])
        yield from _do_op(cl, op)
        cl.timeo = None
        return counts

    counts = tb.run(job())
    assert len(counts) == 1  # executed exactly once despite duplicates
    drc = tb.nfs_rpc_server.drc
    assert drc.replays + drc.parks >= 1
    _check_op_effect(tb, op)


@pytest.mark.parametrize("builder", [setup_gfs, setup_sgfs],
                         ids=["gfs", "sgfs"])
def test_client_proxy_drc_absorbs_client_retransmissions(builder):
    """SGFS/GFS: the kernel client retransmits into the *client* proxy;
    its DRC must dedup before the call is ever forwarded twice."""
    tb = Testbed.build(rtt=0.08)
    mount = builder(tb)
    cl = mount.client

    def job():
        yield from cl.write_file("/victim.bin", b"bye")
        cl.timeo = 0.02  # loopback hop is fast, but the proxy's reply
        cl.timeo_retrans = 6  # waits on the WAN: timer fires first
        counts = _count_executions(tb.nfs_program, Proc.REMOVE)
        yield from cl.unlink("/victim.bin")
        cl.timeo = None
        # let the (blocking) proxy session drain the queued duplicates
        yield tb.sim.timeout(1.0)
        return counts

    counts = tb.run(job())
    assert len(counts) == 1
    drc = mount.client_proxy._drc
    assert drc.replays + drc.parks >= 1


@pytest.mark.parametrize("builder", [setup_gfs, setup_sgfs],
                         ids=["gfs", "sgfs"])
def test_server_proxy_drc_absorbs_proxy_retransmissions(builder):
    """SGFS/GFS: the client proxy's upstream forwarding retransmits over
    the WAN; the *server* proxy's DRC must dedup."""
    tb = Testbed.build(rtt=0.08)
    mount = builder(tb)
    cl = mount.client
    cp = mount.client_proxy

    def job():
        yield from cl.write_file("/victim.bin", b"bye")
        cp.upstream_timeo = 0.03  # below the proxy-to-proxy RTT
        cp.upstream_retrans = 3
        counts = _count_executions(tb.nfs_program, Proc.REMOVE)
        yield from cl.unlink("/victim.bin")
        cp.upstream_timeo = None
        # let the (blocking) proxy session drain the queued duplicates
        yield tb.sim.timeout(1.0)
        return counts

    counts = tb.run(job())
    assert len(counts) == 1
    drc = mount.server_proxy._drc
    assert drc.replays + drc.parks >= 1
