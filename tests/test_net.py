"""Network substrate: topology, delivery timing, sockets, router."""

import pytest

from repro.net import ConnectionRefused, ConnectionReset, DelayRouter, Host, Network
from repro.net.errors import NetError, NoRoute
from repro.net.network import LOOPBACK_LATENCY
from repro.sim import Simulator


def lan(latency=0.001, bandwidth=1e9):
    sim = Simulator()
    net = Network(sim)
    a = Host(sim, net, "a")
    b = Host(sim, net, "b")
    net.connect("a", "b", latency=latency, bandwidth=bandwidth)
    return sim, net, a, b


# -- topology ------------------------------------------------------------------


def test_duplicate_node_rejected():
    sim = Simulator()
    net = Network(sim)
    Host(sim, net, "x")
    with pytest.raises(NetError):
        Host(sim, net, "x")


def test_duplicate_link_rejected():
    sim, net, _a, _b = lan()
    with pytest.raises(NetError):
        net.connect("a", "b")


def test_bad_link_parameters_rejected():
    sim = Simulator()
    net = Network(sim)
    Host(sim, net, "a")
    Host(sim, net, "b")
    with pytest.raises(NetError):
        net.connect("a", "b", latency=-1.0)


def test_route_and_rtt_through_router():
    sim = Simulator()
    net = Network(sim)
    Host(sim, net, "c")
    Host(sim, net, "s")
    r = DelayRouter(sim, net, "r", one_way_delay=0.010)
    net.connect("c", "r", latency=0.001)
    net.connect("r", "s", latency=0.001)
    assert net.route("c", "s") == ["c", "r", "s"]
    assert abs(net.rtt("c", "s") - (2 * 0.002 + 2 * 0.010)) < 1e-12
    r.set_rtt(0.080)
    assert abs(net.rtt("c", "s") - (0.004 + 0.080)) < 1e-12


def test_no_route_detected():
    sim = Simulator()
    net = Network(sim)
    Host(sim, net, "a")
    Host(sim, net, "island")
    with pytest.raises(NoRoute):
        net.route("a", "island")


def test_router_rejects_negative_delay():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(NetError):
        DelayRouter(sim, net, "r", one_way_delay=-0.1)


# -- delivery timing -----------------------------------------------------------------


def test_delivery_latency_plus_transmission():
    sim, net, _a, _b = lan(latency=0.010, bandwidth=1000.0)
    arrived = []
    net.deliver("a", "b", 500, lambda: arrived.append(sim.now))
    sim.run()
    # 500 bytes at 1000 B/s = 0.5s + 10ms latency
    assert arrived == [pytest.approx(0.51)]


def test_link_fifo_serialization():
    sim, net, _a, _b = lan(latency=0.0, bandwidth=1000.0)
    arrivals = []
    net.deliver("a", "b", 1000, lambda: arrivals.append(("big", sim.now)))
    net.deliver("a", "b", 100, lambda: arrivals.append(("small", sim.now)))
    sim.run()
    # FIFO: the small message waits for the big one's transmission
    assert arrivals[0][0] == "big"
    assert arrivals[1] == ("small", pytest.approx(1.1))


def test_directions_do_not_contend():
    sim, net, _a, _b = lan(latency=0.0, bandwidth=1000.0)
    arrivals = []
    net.deliver("a", "b", 1000, lambda: arrivals.append(sim.now))
    net.deliver("b", "a", 1000, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [pytest.approx(1.0), pytest.approx(1.0)]


def test_cut_through_router_single_serialization():
    sim = Simulator()
    net = Network(sim)
    Host(sim, net, "c")
    Host(sim, net, "s")
    DelayRouter(sim, net, "r")
    net.connect("c", "r", latency=0.0, bandwidth=1000.0)
    net.connect("r", "s", latency=0.0, bandwidth=1000.0)
    arrived = []
    net.deliver("c", "s", 1000, lambda: arrived.append(sim.now))
    sim.run()
    # cut-through: ~1.0s (one serialization), not 2.0 (two)
    assert arrived == [pytest.approx(1.0)]


def test_loopback_delivery():
    sim, net, _a, _b = lan()
    arrived = []
    net.deliver("a", "a", 10_000, lambda: arrived.append(sim.now))
    sim.run()
    assert arrived == [pytest.approx(LOOPBACK_LATENCY)]


# -- sockets -------------------------------------------------------------------------------


def test_connect_and_exchange():
    sim, net, a, b = lan(latency=0.005)

    def server():
        lst = b.listen(80)
        sock = yield lst.accept()
        data = yield from sock.recv_exactly(5)
        sock.send(b"pong:" + data)
        sock.close()

    def client():
        sock = yield from a.connect("b", 80)
        t_conn = sim.now
        sock.send(b"hello")
        reply = yield from sock.recv_exactly(10)
        eof = yield from sock.recv()
        return t_conn, reply, eof

    sim.spawn(server())
    t_conn, reply, eof = sim.run_until_complete(sim.spawn(client()))
    assert t_conn == pytest.approx(0.010, rel=1e-3)  # SYN + SYN-ACK
    assert reply == b"pong:hello"
    assert eof == b""


def test_connect_refused_when_no_listener():
    sim, net, a, _b = lan()

    def client():
        try:
            yield from a.connect("b", 9999)
        except ConnectionRefused:
            return "refused"

    assert sim.run_until_complete(sim.spawn(client())) == "refused"


def test_connect_unknown_host_rejected():
    sim, net, a, _b = lan()

    def client():
        yield from a.connect("nowhere", 1)

    p = sim.spawn(client())
    sim.run()
    assert p.completion.failed


def test_port_rebind_rejected_until_closed():
    sim, net, a, _b = lan()
    lst = a.listen(42)
    with pytest.raises(NetError):
        a.listen(42)
    lst.close()
    a.listen(42)  # OK now


def test_stream_chunks_are_reassembled_by_caller():
    sim, net, a, b = lan()

    def server():
        lst = b.listen(80)
        sock = yield lst.accept()
        # three separate sends -> three segments
        sock.send(b"abc")
        sock.send(b"defg")
        sock.send(b"h")
        sock.close()

    def client():
        sock = yield from a.connect("b", 80)
        data = yield from sock.recv_exactly(8)
        return data

    sim.spawn(server())
    assert sim.run_until_complete(sim.spawn(client())) == b"abcdefgh"


def test_recv_exactly_eof_mid_read_raises_reset():
    sim, net, a, b = lan()

    def server():
        lst = b.listen(80)
        sock = yield lst.accept()
        sock.send(b"only4")
        sock.close()

    def client():
        sock = yield from a.connect("b", 80)
        try:
            yield from sock.recv_exactly(100)
        except ConnectionReset:
            return "reset"

    sim.spawn(server())
    assert sim.run_until_complete(sim.spawn(client())) == "reset"


def test_abort_resets_blocked_reader():
    sim, net, a, b = lan()

    def server():
        lst = b.listen(80)
        sock = yield lst.accept()
        yield sim.timeout(1.0)
        sock.abort()

    def client():
        sock = yield from a.connect("b", 80)
        try:
            yield from sock.recv()
        except ConnectionReset:
            return "reset"

    sim.spawn(server())
    assert sim.run_until_complete(sim.spawn(client())) == "reset"


def test_send_on_closed_socket_raises():
    sim, net, a, b = lan()

    def server():
        lst = b.listen(80)
        yield lst.accept()

    def client():
        sock = yield from a.connect("b", 80)
        sock.close()
        with pytest.raises(ConnectionReset):
            sock.send(b"too late")
        return "ok"

    sim.spawn(server())
    assert sim.run_until_complete(sim.spawn(client())) == "ok"


def test_byte_counters():
    sim, net, a, b = lan()

    def server():
        lst = b.listen(80)
        sock = yield lst.accept()
        yield from sock.recv_exactly(6)
        sock.close()

    def client():
        sock = yield from a.connect("b", 80)
        sock.send(b"abcdef")
        yield from sock.recv()  # EOF
        return sock.bytes_sent

    sim.spawn(server())
    assert sim.run_until_complete(sim.spawn(client())) == 6
