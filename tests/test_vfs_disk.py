"""Disk timing model."""

import pytest

from repro.sim import Simulator
from repro.vfs import DiskModel


def test_cached_read_is_free():
    sim = Simulator()
    disk = DiskModel(sim)

    def main():
        yield from disk.read(1_000_000, cached=True)
        return sim.now

    assert sim.run_until_complete(sim.spawn(main())) == 0.0
    assert disk.reads == 1 and disk.bytes_read == 1_000_000


def test_uncached_read_pays_seek_and_transfer():
    sim = Simulator()
    disk = DiskModel(sim, access_latency=0.004, read_bandwidth=1e6)

    def main():
        yield from disk.read(1_000_000, cached=False)
        return sim.now

    assert sim.run_until_complete(sim.spawn(main())) == pytest.approx(1.004)


def test_sync_write_pays_latency():
    sim = Simulator()
    disk = DiskModel(sim, access_latency=0.01, write_bandwidth=1e6)

    def main():
        yield from disk.write(500_000, sync=True)
        return sim.now

    assert sim.run_until_complete(sim.spawn(main())) == pytest.approx(0.51)


def test_async_writes_coalesce_within_window():
    sim = Simulator()
    disk = DiskModel(sim, access_latency=0.01, write_bandwidth=1e6,
                     write_delay_window=0.030)

    def main():
        yield from disk.write(1000, sync=True)     # pays latency
        yield from disk.write(1000, sync=False)    # coalesced: no latency
        return sim.now

    elapsed = sim.run_until_complete(sim.spawn(main()))
    assert elapsed == pytest.approx(0.01 + 0.001 + 0.001)


def test_spindle_serializes_concurrent_io():
    sim = Simulator()
    disk = DiskModel(sim, access_latency=0.0, read_bandwidth=1e6,
                     write_bandwidth=1e6)

    def reader():
        yield from disk.read(1_000_000, cached=False)

    def writer():
        yield from disk.write(1_000_000, sync=True)

    sim.spawn(reader())
    sim.spawn(writer())
    sim.run()
    assert sim.now == pytest.approx(2.0)  # serialized, not parallel


def test_counters():
    sim = Simulator()
    disk = DiskModel(sim)

    def main():
        yield from disk.write(100, sync=True)
        yield from disk.write(200, sync=True)
        yield from disk.read(50, cached=True)

    sim.spawn(main())
    sim.run()
    assert disk.writes == 2 and disk.bytes_written == 300
    assert disk.reads == 1 and disk.bytes_read == 50


def test_negative_sizes_rejected():
    sim = Simulator()
    disk = DiskModel(sim)

    def bad_read():
        yield from disk.read(-1, cached=False)

    p = sim.spawn(bad_read())
    sim.run()
    assert p.completion.failed
