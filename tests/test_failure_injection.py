"""Failure injection: connections die mid-workload; hard mounts survive.

The paper's deployment story (§5) assumes long-lived sessions on shared
grid resources; a reproduction that only works on a perfect network
would be toothless.  These tests abort live connections at awkward
moments and require either full recovery (hard-mount reconnect) or a
clean, surfaced failure (soft mount).
"""

import pytest

from repro.core import Testbed, setup_nfs_v3
from repro.nfs.client import NfsClientError
from repro.rpc.errors import RpcError, RpcTransportError
from repro.vfs.fs import Credentials

ROOT = Credentials(0, 0)


def test_hard_mount_survives_connection_abort():
    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    cl = mount.client

    def job():
        yield from cl.write_file("/pre.bin", b"before the cut")
        # sever the live connection abruptly
        cl.rpc.transport.sock.abort()
        yield tb.sim.timeout(0.01)
        # operations keep working through the reconnect
        yield from cl.write_file("/post.bin", b"after the cut")
        data = yield from cl.read_file("/pre.bin")
        return data

    assert tb.run(job()) == b"before the cut"
    assert cl.retransmissions >= 1
    assert bytes(tb.fs.resolve("/post.bin", ROOT).data) == b"after the cut"


def test_hard_mount_survives_repeated_aborts():
    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    cl = mount.client

    def job():
        for i in range(4):
            cl.rpc.transport.sock.abort()
            yield from cl.write_file(f"/f{i}.bin", bytes([i]) * 100)
        return True

    assert tb.run(job())
    for i in range(4):
        assert bytes(tb.fs.resolve(f"/f{i}.bin", ROOT).data) == bytes([i]) * 100


def test_soft_mount_surfaces_transport_error():
    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    cl = mount.client
    cl.reconnect = None  # soft mount

    def job():
        yield from cl.write_file("/ok.bin", b"fine")
        cl.rpc.transport.sock.abort()
        yield tb.sim.timeout(0.01)
        cl.attrs.clear()  # force the stat onto the (dead) wire
        with pytest.raises(RpcTransportError):
            yield from cl.stat("/ok.bin")
        return True

    assert tb.run(job())


def test_retransmission_gives_up_after_max_attempts():
    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    cl = mount.client
    cl.retrans_max = 2

    def never_reconnect():
        raise RpcTransportError("network is gone")
        yield  # pragma: no cover

    # a reconnect that itself keeps failing
    attempts = []

    def failing_reconnect():
        attempts.append(1)
        raise RpcTransportError("still down")
        yield  # pragma: no cover

    cl.reconnect = failing_reconnect

    def job():
        cl.rpc.transport.sock.abort()
        yield tb.sim.timeout(0.01)
        with pytest.raises(RpcTransportError):
            yield from cl.stat("/whatever")
        return True

    assert tb.run(job())
    assert len(attempts) >= 1


def test_retransmission_backs_off():
    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    cl = mount.client
    cl.retrans_backoff = 2.0

    def job():
        yield from cl.write_file("/x.bin", b"x")
        t0 = tb.sim.now
        cl.rpc.transport.sock.abort()
        yield  # let the abort propagate
        cl.attrs.clear()
        yield from cl.stat("/x.bin")
        return tb.sim.now - t0

    elapsed = tb.run(job())
    assert elapsed >= 2.0  # first retry waited backoff * 1


def test_server_restart_equivalent_listener_rebind():
    """Close the server's listener (crash), rebind it (restart): a hard
    mount rides through the outage."""
    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    cl = mount.client

    def job():
        yield from cl.write_file("/durable.bin", b"written before crash")
        # "crash": the nfsd stops accepting and the connection resets
        listener = tb.server._ports.get(2049)
        listener.close()
        cl.rpc.transport.sock.abort()
        yield tb.sim.timeout(0.5)
        # "restart": rebind and serve again (state is in the VFS)
        tb.nfs_rpc_server.serve_listener(tb.server.listen(2049))
        data = yield from cl.read_file("/durable.bin")
        return data

    assert tb.run(job()) == b"written before crash"
