"""Failure injection: adversarial networks, crashes, and hard mounts.

The paper's deployment story (§5) assumes long-lived sessions on shared
grid resources; a reproduction that only works on a perfect network
would be toothless.  These tests abort live connections at awkward
moments and require either full recovery (hard-mount reconnect) or a
clean, surfaced failure (soft mount) — and then turn the whole network
hostile with seeded packet-level faults (repro.faults) and require
workloads to complete with intact data and no spurious errors.
"""

import pytest

from repro.core import Testbed, setup_nfs_v3
from repro.core.setups import setup_sgfs
from repro.faults import FAULT_PRESETS, FaultPlan, FaultSpec
from repro.nfs.client import NfsClientError
from repro.rpc.errors import RpcError, RpcTransportError
from repro.vfs.fs import Credentials

ROOT = Credentials(0, 0)


def test_hard_mount_survives_connection_abort():
    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    cl = mount.client

    def job():
        yield from cl.write_file("/pre.bin", b"before the cut")
        # sever the live connection abruptly
        cl.rpc.transport.sock.abort()
        yield tb.sim.timeout(0.01)
        # operations keep working through the reconnect
        yield from cl.write_file("/post.bin", b"after the cut")
        data = yield from cl.read_file("/pre.bin")
        return data

    assert tb.run(job()) == b"before the cut"
    assert cl.retransmissions >= 1
    assert bytes(tb.fs.resolve("/post.bin", ROOT).data) == b"after the cut"


def test_hard_mount_survives_repeated_aborts():
    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    cl = mount.client

    def job():
        for i in range(4):
            cl.rpc.transport.sock.abort()
            yield from cl.write_file(f"/f{i}.bin", bytes([i]) * 100)
        return True

    assert tb.run(job())
    for i in range(4):
        assert bytes(tb.fs.resolve(f"/f{i}.bin", ROOT).data) == bytes([i]) * 100


def test_soft_mount_surfaces_transport_error():
    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    cl = mount.client
    cl.reconnect = None  # soft mount

    def job():
        yield from cl.write_file("/ok.bin", b"fine")
        cl.rpc.transport.sock.abort()
        yield tb.sim.timeout(0.01)
        cl.attrs.clear()  # force the stat onto the (dead) wire
        with pytest.raises(NfsClientError) as excinfo:
            yield from cl.stat("/ok.bin")
        # the failed procedure is named, not a leaked RpcTransportError
        assert "GETATTR" in str(excinfo.value)
        return True

    assert tb.run(job())


def test_retransmission_gives_up_after_max_attempts():
    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    cl = mount.client
    cl.retrans_max = 2

    def never_reconnect():
        raise RpcTransportError("network is gone")
        yield  # pragma: no cover

    # a reconnect that itself keeps failing
    attempts = []

    def failing_reconnect():
        attempts.append(1)
        raise RpcTransportError("still down")
        yield  # pragma: no cover

    cl.reconnect = failing_reconnect

    def job():
        cl.rpc.transport.sock.abort()
        yield tb.sim.timeout(0.01)
        with pytest.raises(RpcTransportError):
            yield from cl.stat("/whatever")
        return True

    assert tb.run(job())
    assert len(attempts) >= 1


def test_retransmission_backs_off():
    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    cl = mount.client
    cl.retrans_backoff = 2.0

    def job():
        yield from cl.write_file("/x.bin", b"x")
        t0 = tb.sim.now
        cl.rpc.transport.sock.abort()
        yield  # let the abort propagate
        cl.attrs.clear()
        yield from cl.stat("/x.bin")
        return tb.sim.now - t0

    elapsed = tb.run(job())
    assert elapsed >= 2.0  # first retry waited backoff * 1


def test_server_restart_equivalent_listener_rebind():
    """Close the server's listener (crash), rebind it (restart): a hard
    mount rides through the outage."""
    tb = Testbed.build()
    mount = setup_nfs_v3(tb)
    cl = mount.client

    def job():
        yield from cl.write_file("/durable.bin", b"written before crash")
        # "crash": the nfsd stops accepting and the connection resets
        listener = tb.server._ports.get(2049)
        listener.close()
        cl.rpc.transport.sock.abort()
        yield tb.sim.timeout(0.5)
        # "restart": rebind and serve again (state is in the VFS)
        tb.nfs_rpc_server.serve_listener(tb.server.listen(2049))
        data = yield from cl.read_file("/durable.bin")
        return data

    assert tb.run(job()) == b"written before crash"


# -- adversarial networks -----------------------------------------------------


def _adversarial_files_job(tb, cl, count=8):
    payloads = {
        f"/f{i}.bin": bytes([65 + i]) * (900 + 137 * i) for i in range(count)
    }

    def job():
        for path, data in payloads.items():
            yield from cl.write_file(path, data)
        out = {}
        for path in payloads:
            out[path] = yield from cl.read_file(path)
        return out

    assert tb.run(job()) == payloads


@pytest.mark.parametrize("preset", ["lossy-wan", "dup-wan", "jittery-wan"])
def test_nfs_data_intact_under_adversarial_network(preset):
    tb = Testbed.build(rtt=0.08)
    mount = setup_nfs_v3(tb)
    cl = mount.client
    spec = FAULT_PRESETS[preset]
    plan = FaultPlan(tb.sim, spec, seed=f"adv-{preset}").install(tb.net)
    cl.timeo = spec.client_timeo
    _adversarial_files_job(tb, cl)
    assert plan.stats["packets"] > 0


def test_sgfs_data_intact_under_packet_loss():
    tb = Testbed.build(rtt=0.08)
    mount = setup_sgfs(tb)
    cl = mount.client
    spec = FAULT_PRESETS["lossy-wan"]
    plan = FaultPlan(tb.sim, spec, seed="sgfs-loss").install(tb.net)
    cl.timeo = spec.client_timeo
    mount.client_proxy.upstream_timeo = spec.proxy_timeo
    _adversarial_files_job(tb, cl)
    assert plan.stats["dropped"] > 0


def test_heavy_loss_recovers_via_retransmission():
    """15% drop: every recovery mechanism fires, data stays exact."""
    tb = Testbed.build(rtt=0.08)
    mount = setup_nfs_v3(tb)
    cl = mount.client
    spec = FaultSpec(drop_rate=0.15, client_timeo=0.7, rto_base=1.0,
                     rto_max=4.0)
    plan = FaultPlan(tb.sim, spec, seed="heavy").install(tb.net)
    cl.timeo = spec.client_timeo
    _adversarial_files_job(tb, cl, count=4)
    assert plan.stats["dropped"] > 0
    assert plan.stats["retransmits"] > 0


def test_evicted_dirty_block_redirtied_during_writeback_not_lost():
    """Regression: _block_put must clear a victim's dirty mark *before*
    yielding to the write-back.  The old order wiped the mark after the
    yield, so a writer re-dirtying the block mid-flight lost its data."""
    tb = Testbed.build(rtt=0.08)
    mount = setup_sgfs(tb, disk_cache=True)
    cp = mount.client_proxy
    cl = mount.client

    def job():
        yield from cl.write_file("/t.bin", b"A" * 100)  # dirty block (fid, 0)
        fid = next(iter(cp._dirty))
        assert 0 in cp._dirty[fid]
        orig_wb = cp._writeback_block

        def racing_wb(fileid, block, data):
            # a writer re-dirties the very block being evicted, mid-flight
            cp._dirty.setdefault(fileid, set()).add(block)
            yield from orig_wb(fileid, block, data)

        cp._writeback_block = racing_wb
        cp.cache.capacity_bytes = 1  # next insert evicts the dirty block
        yield from cp._block_put(fid + 777, 0, b"B" * 100, dirty=False)
        cp._writeback_block = orig_wb
        return fid

    fid = tb.run(job())
    # the mid-flight re-dirty survives the eviction
    assert 0 in cp._dirty.get(fid, set())
