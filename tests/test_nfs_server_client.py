"""NFS server + caching client end to end over the simulated network."""

import pytest

from repro.net import Host, Network
from repro.nfs import NfsClient, NfsClientError, NfsServerProgram, NFS_PROGRAM, NFS_V3
from repro.nfs.protocol import Proc, Sattr3
from repro.rpc import RpcClient, RpcServer, StreamTransport
from repro.rpc.auth import AuthSys
from repro.sim import Simulator
from repro.vfs import DiskModel, Status, VirtualFS


def build(cache_bytes=1 << 20, read_ahead=2, write_behind=True, uid=1000):
    sim = Simulator()
    net = Network(sim)
    c = Host(sim, net, "c")
    s = Host(sim, net, "s")
    net.connect("c", "s", latency=0.0005)
    fs = VirtualFS(clock=lambda: sim.now, root_uid=1000, root_gid=1000)
    prog = NfsServerProgram(sim, fs, DiskModel(sim))
    server = RpcServer(sim, cpu=s.cpu)
    server.register(prog)
    server.serve_listener(s.listen(2049))

    def connect():
        sock = yield from c.connect("s", 2049)
        rpc = RpcClient(sim, StreamTransport(sock), NFS_PROGRAM, NFS_V3, cpu=c.cpu)
        return NfsClient(
            sim, rpc, prog.root_handle(), AuthSys(uid=uid, gid=uid),
            block_size=4096, cache_bytes=cache_bytes,
            read_ahead_blocks=read_ahead, write_behind=write_behind,
        )

    client = sim.run_until_complete(sim.spawn(connect()))
    return sim, fs, prog, client


def run(sim, gen):
    return sim.run_until_complete(sim.spawn(gen))


def test_full_file_lifecycle():
    sim, fs, prog, cl = build()

    def main():
        yield from cl.mkdir("/dir")
        yield from cl.write_file("/dir/f.bin", b"payload" * 100)
        data = yield from cl.read_file("/dir/f.bin")
        assert data == b"payload" * 100
        attr = yield from cl.stat("/dir/f.bin")
        assert attr.size == 700
        yield from cl.rename("/dir/f.bin", "/dir/g.bin")
        yield from cl.unlink("/dir/g.bin")
        yield from cl.rmdir("/dir")
        assert not (yield from cl.exists("/dir"))
        yield from cl.drain()

    run(sim, main())


def test_multi_block_write_and_read():
    sim, fs, prog, cl = build()
    payload = bytes(range(256)) * 64  # 16 KB = 4 blocks at 4 KB

    def main():
        yield from cl.write_file("/big", payload)
        yield from cl.drain()
        data = yield from cl.read_file("/big")
        assert data == payload
        # the data really reached the server's VFS
        node = fs.resolve("/big")
        assert bytes(node.data) == payload

    run(sim, main())


def test_partial_overwrite_read_modify_write():
    sim, fs, prog, cl = build()

    def main():
        yield from cl.write_file("/f", b"A" * 10000)
        f = yield from cl.open("/f")
        yield from cl.write(f, 5000, b"B" * 100)
        yield from cl.close(f)
        data = yield from cl.read_file("/f")
        assert data == b"A" * 5000 + b"B" * 100 + b"A" * 4900

    run(sim, main())


def test_enoent_and_eexist_errors():
    sim, fs, prog, cl = build()

    def main():
        with pytest.raises(NfsClientError) as e:
            yield from cl.read_file("/missing")
        assert e.value.status == Status.NOENT
        yield from cl.mkdir("/d")
        with pytest.raises(NfsClientError) as e:
            yield from cl.mkdir("/d")
        assert e.value.status == Status.EXIST
        with pytest.raises(NfsClientError) as e:
            yield from cl.create("/d/x/y")
        assert e.value.status == Status.NOENT

    run(sim, main())


def test_permission_error_surfaces():
    sim, fs, prog, cl = build(uid=4242)  # not the export owner

    def main():
        with pytest.raises(NfsClientError) as e:
            yield from cl.mkdir("/notmine")
        assert e.value.status == Status.ACCES

    run(sim, main())


def test_readdir_listing_and_caching():
    sim, fs, prog, cl = build()

    def main():
        yield from cl.mkdir("/d")
        for i in range(10):
            yield from cl.write_file(f"/d/f{i:02d}", b"x")
        entries = yield from cl.readdir("/d")
        names = sorted(e.name for e in entries)
        assert names == [f"f{i:02d}" for i in range(10)]
        before = cl.rpc.calls_sent
        yield from cl.readdir("/d")  # served from the listing cache
        assert cl.rpc.calls_sent == before
        # mutation invalidates it
        yield from cl.unlink("/d/f00")
        entries = yield from cl.readdir("/d")
        assert len(entries) == 9

    run(sim, main())


def test_readdir_paginates_large_directory():
    sim, fs, prog, cl = build()

    def main():
        yield from cl.mkdir("/big")
        for i in range(300):
            yield from cl.write_file(f"/big/file-{i:03d}", b"")
        entries = yield from cl.readdir("/big")
        assert len(entries) == 300

    run(sim, main())


def test_attribute_cache_avoids_getattr_storm():
    sim, fs, prog, cl = build()

    def main():
        yield from cl.write_file("/f", b"data")
        yield from cl.stat("/f")
        getattrs_before = prog.ops[Proc.GETATTR] + prog.ops[Proc.LOOKUP]
        for _ in range(25):
            yield from cl.stat("/f")
        return prog.ops[Proc.GETATTR] + prog.ops[Proc.LOOKUP] - getattrs_before

    assert run(sim, main()) == 0


def test_attribute_cache_expires():
    sim, fs, prog, cl = build()

    def main():
        yield from cl.write_file("/f", b"data")
        yield from cl.stat("/f")
        before = prog.ops[Proc.GETATTR]
        yield sim.timeout(120.0)  # beyond acregmax
        yield from cl.stat("/f")
        return prog.ops[Proc.GETATTR] - before

    assert run(sim, main()) >= 1


def test_page_cache_hit_avoids_read_rpc():
    sim, fs, prog, cl = build()

    def main():
        yield from cl.write_file("/f", b"z" * 8192)
        f = yield from cl.open("/f")
        yield from cl.read(f, 0, 8192)
        reads_before = prog.ops[Proc.READ]
        yield from cl.read(f, 0, 8192)  # same blocks, cache-hot
        yield from cl.close(f)
        return prog.ops[Proc.READ] - reads_before

    assert run(sim, main()) == 0


def test_lru_eviction_under_small_cache():
    sim, fs, prog, cl = build(cache_bytes=8192, read_ahead=0)  # 2 pages only

    def main():
        payload = bytes(range(256)) * 64  # 16 KB
        yield from cl.write_file("/f", payload)
        yield from cl.drain()
        data = yield from cl.read_file("/f")
        assert data == payload
        return cl.pages.evictions

    assert run(sim, main()) > 0


def test_sequential_read_triggers_read_ahead():
    sim, fs, prog, cl = build(read_ahead=3)

    def main():
        payload = b"r" * (4096 * 8)
        yield from cl.write_file("/f", payload)
        yield from cl.drain()
        cl.pages.clear()
        f = yield from cl.open("/f")
        yield from cl.read(f, 0, 4096)
        yield from cl.drain()  # let read-ahead land
        # blocks 1..3 should be resident without explicit reads
        return [cl.pages.peek(f.fileid, b) is not None for b in (1, 2, 3)]

    assert run(sim, main()) == [True, True, True]


def test_concurrent_same_block_fetch_coalesces():
    sim, fs, prog, cl = build(read_ahead=0)

    def main():
        yield from cl.write_file("/f", b"x" * 4096)
        yield from cl.drain()
        cl.pages.clear()
        f = yield from cl.open("/f")
        reads_before = prog.ops[Proc.READ]
        from repro.sim.process import all_of

        procs = [sim.spawn(cl.read(f, 0, 4096)) for _ in range(5)]
        results = yield all_of(sim, procs)
        assert all(r == b"x" * 4096 for r in results)
        return prog.ops[Proc.READ] - reads_before

    assert run(sim, main()) == 1


def test_write_behind_batches_then_commits():
    sim, fs, prog, cl = build()

    def main():
        f = yield from cl.open("/f", create=True)
        for i in range(8):
            yield from cl.write(f, i * 4096, b"w" * 4096)
        commits_before = prog.ops[Proc.COMMIT]
        yield from cl.close(f)
        assert prog.ops[Proc.COMMIT] - commits_before == 1
        # durable after close
        node = fs.resolve("/f")
        assert node.size == 8 * 4096

    run(sim, main())


def test_write_through_mode():
    sim, fs, prog, cl = build(write_behind=False)

    def main():
        f = yield from cl.open("/f", create=True)
        yield from cl.write(f, 0, b"immediate" * 1000)
        # data durable before close in write-through mode
        node = fs.resolve("/f")
        assert node.size == 9000
        yield from cl.close(f)

    run(sim, main())


def test_close_to_open_revalidation_sees_external_change():
    sim, fs, prog, cl = build()

    def main():
        yield from cl.write_file("/f", b"version-one")
        data = yield from cl.read_file("/f")
        assert data == b"version-one"
        # another client (out of band) rewrites the file
        yield sim.timeout(1.0)
        node = fs.resolve("/f")
        from repro.vfs.fs import Credentials

        fs.setattr(node.fileid, Credentials(1000, 1000), size=0)
        fs.write(node.fileid, 0, b"version-TWO", Credentials(1000, 1000))
        # reopening must revalidate and fetch fresh data
        data = yield from cl.read_file("/f")
        assert data == b"version-TWO"

    run(sim, main())


def test_truncate_via_open():
    sim, fs, prog, cl = build()

    def main():
        yield from cl.write_file("/f", b"long content here")
        f = yield from cl.open("/f", truncate=True)
        assert f.size == 0
        yield from cl.close(f)
        attr = yield from cl.stat("/f")
        assert attr.size == 0

    run(sim, main())


def test_setattr_chmod():
    sim, fs, prog, cl = build()

    def main():
        yield from cl.write_file("/f", b"x")
        yield from cl.setattr("/f", Sattr3(mode=0o600))
        attr = yield from cl.stat("/f")
        assert attr.mode == 0o600

    run(sim, main())


def test_symlink_via_client():
    sim, fs, prog, cl = build()

    def main():
        yield from cl.write_file("/target", b"t")
        yield from cl.symlink("/ln", "target")
        assert (yield from cl.readlink("/ln")) == "target"
        with pytest.raises(NfsClientError):
            yield from cl.readlink("/target")

    run(sim, main())


def test_hard_link_via_client():
    sim, fs, prog, cl = build()

    def main():
        yield from cl.write_file("/orig", b"shared-bytes")
        yield from cl.link("/orig", "/alias")
        data = yield from cl.read_file("/alias")
        assert data == b"shared-bytes"
        attr = yield from cl.stat("/alias")
        assert attr.nlink == 2

    run(sim, main())


def test_access_results_cached():
    sim, fs, prog, cl = build()

    def main():
        yield from cl.write_file("/f", b"x")
        yield from cl.access("/f", 0x1)
        before = prog.ops[Proc.ACCESS]
        yield from cl.access("/f", 0x2)
        return prog.ops[Proc.ACCESS] - before

    assert run(sim, main()) == 0


def test_stale_handle_after_out_of_band_remove():
    sim, fs, prog, cl = build()

    def main():
        yield from cl.write_file("/f", b"x")
        f = yield from cl.open("/f")
        node = fs.resolve("/f")
        from repro.vfs.fs import Credentials

        fs.remove(1, "f", Credentials(1000, 1000))
        cl.pages.drop_file(f.fileid)
        with pytest.raises(NfsClientError) as e:
            yield from cl.read(f, 0, 4096)
        assert e.value.status == Status.STALE

    run(sim, main())


def test_nfsv4_flavor_serves_same_semantics():
    sim = Simulator()
    net = Network(sim)
    c = Host(sim, net, "c")
    s = Host(sim, net, "s")
    net.connect("c", "s", latency=0.0005)
    fs = VirtualFS(clock=lambda: sim.now, root_uid=1000, root_gid=1000)
    from repro.nfs.v4 import NFS_V4, NfsV4ServerProgram

    prog = NfsV4ServerProgram(sim, fs, DiskModel(sim))
    server = RpcServer(sim, cpu=s.cpu)
    server.register(prog)
    server.serve_listener(s.listen(2049))

    def main():
        sock = yield from c.connect("s", 2049)
        rpc = RpcClient(sim, StreamTransport(sock), NFS_PROGRAM, NFS_V4, cpu=c.cpu)
        cl = NfsClient(sim, rpc, prog.root_handle(), AuthSys(uid=1000, gid=1000))
        yield from cl.write_file("/v4file", b"compound")
        return (yield from cl.read_file("/v4file"))

    assert sim.run_until_complete(sim.spawn(main())) == b"compound"
