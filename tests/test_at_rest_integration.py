"""At-rest protection end to end: the §7 future work, live on the data path.

``setup_sgfs(at_rest=True)`` seals every block before it reaches the
server (which therefore stores only ciphertext), opens and verifies
blocks on the way back, and surfaces server-side tampering as an I/O
error to the application.
"""

import pytest

from repro.core import Testbed, setup_sgfs
from repro.nfs.client import NfsClientError
from repro.vfs.fs import Credentials, Status

ROOT = Credentials(0, 0)
SECRET = b"AT-REST-CANARY-7f3a" * 400  # ~7.6 KB, compressible marker


def at_rest_mount(rtt=0.010):
    tb = Testbed.build(rtt=rtt)
    mount = setup_sgfs(tb, disk_cache=True, at_rest=True)
    return tb, mount


def test_server_stores_only_ciphertext():
    tb, mount = at_rest_mount()

    def job():
        yield from mount.client.write_file("/vault.bin", SECRET)

    tb.run(job())
    tb.run(mount.finish())  # write-back ships sealed blocks
    stored = bytes(tb.fs.resolve("/vault.bin", ROOT).data)
    assert len(stored) == len(SECRET)  # length-preserving
    assert SECRET[:19] not in stored
    assert mount.client_proxy.stats["blocks_sealed"] > 0


def test_read_back_decrypts_transparently():
    tb, mount = at_rest_mount()

    def job():
        cl = mount.client
        yield from cl.write_file("/vault.bin", SECRET)
        return "wrote"

    tb.run(job())
    tb.run(mount.finish())
    # drop every client-side copy so reads come back from the server
    mount.client.pages.clear()
    mount.client_proxy._blocks.clear()
    mount.client_proxy._cache_bytes = 0

    def job2():
        return (yield from mount.client.read_file("/vault.bin"))

    assert tb.run(job2()) == SECRET
    assert mount.client_proxy.stats["blocks_opened"] > 0


def test_tampering_on_server_detected_as_io_error():
    tb, mount = at_rest_mount()

    def job():
        yield from mount.client.write_file("/vault.bin", SECRET)

    tb.run(job())
    tb.run(mount.finish())
    # a malicious administrator flips a byte in the stored ciphertext
    node = tb.fs.resolve("/vault.bin", ROOT)
    node.data[100] ^= 0x5A
    mount.client.pages.clear()
    mount.client_proxy._blocks.clear()
    mount.client_proxy._cache_bytes = 0

    def job2():
        with pytest.raises(NfsClientError) as e:
            yield from mount.client.read_file("/vault.bin")
        return e.value.status

    assert tb.run(job2()) == Status.IO


def test_at_rest_requires_write_back_cache():
    from repro.crypto.drbg import Drbg
    from repro.proxy.client_proxy import ProxyCacheConfig, SgfsClientProxy
    from repro.proxy.cryptofs import BlockCryptor
    from repro.sim import Simulator
    from repro.net import Host, Network

    sim = Simulator()
    net = Network(sim)
    host = Host(sim, net, "h")
    with pytest.raises(ValueError, match="write-back"):
        SgfsClientProxy(
            sim, host, 1234, upstream_factory=lambda: None,
            cache=ProxyCacheConfig(enabled=False),
            cryptor=BlockCryptor(Drbg("k").randbytes(32)),
        )


def test_deleted_files_forget_their_macs():
    tb, mount = at_rest_mount()

    def job():
        cl = mount.client
        yield from cl.write_file("/gone.bin", SECRET)
        fileid = (yield from cl.stat("/gone.bin")).fileid
        yield from cl.unlink("/gone.bin")
        return fileid

    fileid = tb.run(job())
    cryptor = mount.extras["cryptor"]
    assert all(fid != fileid for fid, _b in cryptor.mac_store)


def test_normal_sgfs_unaffected():
    """Without at_rest the server stores plaintext (the paper's v1)."""
    tb = Testbed.build(rtt=0.010)
    mount = setup_sgfs(tb, disk_cache=True, at_rest=False)

    def job():
        yield from mount.client.write_file("/plain.bin", SECRET)

    tb.run(job())
    tb.run(mount.finish())
    assert SECRET[:19] in bytes(tb.fs.resolve("/plain.bin", ROOT).data)
