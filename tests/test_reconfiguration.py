"""Dynamic session reconfiguration (paper §4.2) end to end.

"A SGFS session's security customization can also be reconfigured by
signaling the proxies to reload the configuration files ... force a
proxy to reload the certificate ... force a SSL-renegotiation and
refresh the session key for a long-lived session."
"""

import pytest

from repro.core import Testbed, setup_sgfs
from repro.core.setups import USER_DN
from repro.gsi import DistinguishedName, Gridmap
from repro.proxy.session_config import SessionConfig
from repro.services.soap import SoapFault


def test_config_reload_detects_certificate_rotation():
    before = SessionConfig.parse("user_cert = alice-2007\nsuite = rc4-128-sha1")
    after = SessionConfig.parse("user_cert = alice-2008\nsuite = rc4-128-sha1")
    changes = before.diff(after)
    assert set(changes) == {"user_cert"}
    assert after.requires_renegotiation


def test_live_session_renegotiates_on_signal():
    tb = Testbed.build()
    mount = setup_sgfs(tb, suite="aes-256-cbc-sha1", fast_ciphers=False)
    channel = mount.client_proxy._upstream

    def job():
        cl = mount.client
        yield from cl.write_file("/pre.txt", b"before rekey")
        channel.renegotiate()  # the reload signal's effect
        yield from cl.write_file("/post.txt", b"after rekey")
        data_pre = yield from cl.read_file("/pre.txt")
        data_post = yield from cl.read_file("/post.txt")
        return data_pre, data_post

    pre, post = tb.run(job())
    assert (pre, post) == (b"before rekey", b"after rekey")
    assert channel.renegotiations == 1


def test_periodic_renegotiation_during_real_io():
    tb = Testbed.build()
    mount = setup_sgfs(tb, suite="null-sha1", renegotiate_interval=0.05)

    def job():
        cl = mount.client
        for i in range(5):
            yield tb.sim.timeout(0.04)
            yield from cl.write_file(f"/tick{i}", b"x" * 1000)
        for i in range(5):
            data = yield from cl.read_file(f"/tick{i}")
            assert data == b"x" * 1000
        return mount.client_proxy._upstream.renegotiations

    assert tb.run(job()) >= 2


def test_gridmap_reload_revokes_new_sessions_only():
    """Reload applies to sessions established afterwards; the live
    session's authorization was fixed at its handshake (per-connection
    mapping, like the paper's per-session gridmap)."""
    tb = Testbed.build()
    mount = setup_sgfs(tb)

    def before():
        yield from mount.client.write_file("/pre-revoke.txt", b"ok")
        return True

    assert tb.run(before())
    mount.server_proxy.reload(gridmap=Gridmap())  # revoke everyone
    assert mount.server_proxy._map_identity(USER_DN) is None

    def still_alive():
        # the established session keeps its mapping
        yield from mount.client.write_file("/post-revoke.txt", b"still ok")
        return True

    assert tb.run(still_alive())


def test_fss_reconfigure_action_updates_gridmap():
    from repro.core.setups import CA_DN, FILE_ACCOUNT, SERVER_DN
    from repro.core.topology import NFS_PORT
    from repro.crypto.drbg import Drbg
    from repro.gsi import CertificateAuthority
    from repro.services import FileSystemService
    from repro.services.endpoint import ServiceClient

    tb = Testbed.build()
    sim = tb.sim
    rng = Drbg("reconf")
    ca = CertificateAuthority(CA_DN, rng=rng.fork("ca"), key_bits=768)
    anchors = [ca.certificate]
    host_id = ca.issue_identity(SERVER_DN, rng=rng.fork("host"), key_bits=768)
    fss_id = ca.issue_identity(
        DistinguishedName.parse("/C=US/O=UFL/CN=fss"), rng=rng.fork("fss"), key_bits=768
    )
    user = ca.issue_identity(USER_DN, rng=rng.fork("user"), key_bits=768)
    fss = FileSystemService(
        sim, tb.server, 5000, fss_id, anchors,
        fs=tb.fs, accounts=tb.server_accounts, nfs_port=NFS_PORT,
        host_credential=host_id,
    )
    fss.start()
    me = ServiceClient(sim, tb.client, user, anchors, rng=rng.fork("me"))

    def scenario():
        created = yield from me.call(
            "server", 5000, "CreateServerSession",
            {"suite": "null-sha1",
             "gridmap": f'"{USER_DN}" {FILE_ACCOUNT.name}'},
        )
        session_id = created["session_id"]
        proxy = fss.server_sessions[session_id]
        assert proxy.gridmap.lookup(USER_DN) == FILE_ACCOUNT.name
        yield from me.call(
            "server", 5000, "ReconfigureSession",
            {"session_id": session_id,
             "gridmap": '"/C=US/O=UFL/CN=Someone Else" nobody'},
        )
        assert proxy.gridmap.lookup(USER_DN) is None
        with pytest.raises(SoapFault):
            yield from me.call(
                "server", 5000, "ReconfigureSession",
                {"session_id": "nope", "gridmap": ""},
            )
        yield from me.call(
            "server", 5000, "DestroySession", {"session_id": session_id}
        )
        assert session_id not in fss.server_sessions
        return True

    assert tb.run(scenario())


def test_fss_set_acl_action_enforced_by_proxy():
    from repro.core.setups import CA_DN, FILE_ACCOUNT, SERVER_DN
    from repro.core.topology import NFS_PORT
    from repro.crypto.drbg import Drbg
    from repro.gsi import CertificateAuthority
    from repro.services import FileSystemService
    from repro.services.endpoint import ServiceClient
    from repro.vfs.fs import Credentials

    tb = Testbed.build()
    sim = tb.sim
    rng = Drbg("setacl")
    ca = CertificateAuthority(CA_DN, rng=rng.fork("ca"), key_bits=768)
    anchors = [ca.certificate]
    admin_dn = DistinguishedName.parse("/C=US/O=UFL/CN=admin")
    admin = ca.issue_identity(admin_dn, rng=rng.fork("admin"), key_bits=768)
    outsider = ca.issue_identity(
        DistinguishedName.parse("/C=US/O=Else/CN=user"), rng=rng.fork("o"), key_bits=768
    )
    fss_id = ca.issue_identity(
        DistinguishedName.parse("/C=US/O=UFL/CN=fss"), rng=rng.fork("fss"), key_bits=768
    )
    host_id = ca.issue_identity(SERVER_DN, rng=rng.fork("host"), key_bits=768)
    fss = FileSystemService(
        sim, tb.server, 5000, fss_id, anchors,
        fs=tb.fs, accounts=tb.server_accounts, nfs_port=NFS_PORT,
        host_credential=host_id,
        authorized_admins={str(admin_dn)},
    )
    fss.start()
    # a file to protect
    tb.fs.create(1, "guarded.txt", Credentials(tb.fs.root.uid, tb.fs.root.gid))
    admin_client = ServiceClient(sim, tb.server, admin, anchors, rng=rng.fork("ac"))
    outsider_client = ServiceClient(sim, tb.server, outsider, anchors, rng=rng.fork("oc"))

    def scenario():
        yield from admin_client.call(
            "server", 5000, "SetAcl",
            {"path": "/guarded.txt", "acl": f'"{USER_DN}" r'},
        )
        node = tb.fs.resolve("/guarded.txt", Credentials(0, 0))
        from repro.proxy.acl import AclStore

        store = AclStore(tb.fs)
        assert store.evaluate(node.fileid, USER_DN) is not None
        # non-admins may not manage ACLs
        with pytest.raises(SoapFault, match="not authorized"):
            yield from outsider_client.call(
                "server", 5000, "SetAcl",
                {"path": "/guarded.txt", "acl": '"/C=US/O=Else/CN=user" rwx'},
            )
        yield from admin_client.call(
            "server", 5000, "RemoveAcl", {"path": "/guarded.txt"}
        )
        assert AclStore(tb.fs).evaluate(node.fileid, USER_DN) is None
        return True

    assert tb.run(scenario())
