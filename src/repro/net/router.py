"""NIST-Net-style delay router.

The paper emulates wide-area RTTs by routing client/server traffic
through a NIST Net box configured with a given round-trip time.  A
:class:`DelayRouter` reproduces that: it sits on the path between the
client and server links and adds ``one_way_delay`` seconds to every
transiting segment, in each direction.  ``set_rtt`` reconfigures it
mid-experiment, exactly like re-running ``nistnet`` with a new latency.
"""

from __future__ import annotations

from repro.sim.core import Simulator
from repro.net.errors import NetError
from repro.net.network import Network


class DelayRouter:
    """A transit node adding a configurable one-way delay.

    Forwarding is cut-through: a transiting segment pays link
    serialization once on the path, not once per hop.
    """

    cut_through = True

    def __init__(self, sim: Simulator, network: Network, name: str = "router",
                 one_way_delay: float = 0.0):
        if one_way_delay < 0:
            raise NetError("delay must be >= 0")
        self.sim = sim
        self.network = network
        self.name = name
        self.forward_delay = one_way_delay
        self._ports: dict = {}  # routers never listen; kept for Host duck-typing
        network.add_node(self)

    def set_rtt(self, rtt_seconds: float) -> None:
        """Configure the emulated round-trip time added by this router."""
        if rtt_seconds < 0:
            raise NetError("RTT must be >= 0")
        self.forward_delay = rtt_seconds / 2.0

    @property
    def rtt(self) -> float:
        return self.forward_delay * 2.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DelayRouter {self.name} rtt={self.rtt * 1000:.1f}ms>"
