"""Network error types."""

from repro.sim.core import SimError


class NetError(SimError):
    """Base class for network-layer errors."""


class ConnectionRefused(NetError):
    """No listener on the destination port."""


class ConnectionReset(NetError):
    """The peer closed or the connection was torn down mid-operation."""


class NoRoute(NetError):
    """No path exists between the two hosts."""
