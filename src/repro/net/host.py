"""Hosts: named nodes with a CPU, port table, and connect/listen API."""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.sim.core import Simulator
from repro.sim.cpu import CPU
from repro.net.errors import ConnectionRefused, NetError
from repro.net.network import Network
from repro.net.socket import Listener, SimSocket, SEGMENT_OVERHEAD

_conn_counter = itertools.count(1)


class Host:
    """A machine on the simulated network.

    Owns a :class:`~repro.sim.cpu.CPU` (single-core by default, matching
    the paper's 1-vCPU client/server VMs) whose ledger backs the
    CPU-utilization figures.  ``cpu_speed`` scales all compute charged
    on this host; ``cpu_cores`` sizes the deterministic multi-core run
    queue (scale-out servers).
    """

    forward_delay = 0.0  # plain hosts add no transit delay

    def __init__(self, sim: Simulator, network: Network, name: str,
                 cpu_speed: float = 1.0, cpu_cores: int = 1):
        self.sim = sim
        self.network = network
        self.name = name
        self.cpu = CPU(sim, name=f"cpu:{name}", speed=cpu_speed, cores=cpu_cores)
        self._ports: Dict[int, Listener] = {}
        network.add_node(self)

    # -- passive side ----------------------------------------------------

    def listen(self, port: int) -> Listener:
        if port in self._ports:
            raise NetError(f"{self.name}: port {port} already bound")
        lst = Listener(self.sim, self, port)
        self._ports[port] = lst
        return lst

    def _unbind(self, port: int) -> None:
        self._ports.pop(port, None)

    # -- active side -----------------------------------------------------

    def connect(self, dest: str, port: int):
        """Process generator: open a stream connection to (dest, port).

        Costs one round trip (SYN / SYN-ACK), like TCP.  Returns the
        local :class:`SimSocket`.  Raises :class:`ConnectionRefused` if
        nothing listens there.
        """
        if dest not in self.network.nodes:
            raise NetError(f"unknown destination host {dest!r}")
        conn_id = f"conn{next(_conn_counter)}:{self.name}->{dest}:{port}"
        local = SimSocket(self.sim, self, dest, conn_id)
        done = self.sim.event(name=f"connect:{conn_id}")

        def syn_arrives() -> None:
            target = self.network.nodes[dest]
            listener = target._ports.get(port) if isinstance(target, Host) else None
            if listener is None or listener.closed:
                # RST comes back after another half round trip.
                self.network.deliver(
                    dest,
                    self.name,
                    SEGMENT_OVERHEAD,
                    lambda: done.fail(
                        ConnectionRefused(f"{dest}:{port} refused {conn_id}")
                    ),
                )
                return
            remote = SimSocket(self.sim, target, self.name, conn_id + ":srv")
            remote.peer = local
            local.peer = remote
            listener._enqueue(remote)
            self.network.deliver(dest, self.name, SEGMENT_OVERHEAD, lambda: done.succeed())

        self.network.deliver(self.name, dest, SEGMENT_OVERHEAD, syn_arrives)
        yield done
        return local

    def rtt_to(self, other: str) -> float:
        return self.network.rtt(self.name, other)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name}>"
