"""Simulated network substrate.

Models the paper's testbed: hosts connected by links with latency and
bandwidth, optionally routed through a NIST-Net-style delay router that
emulates wide-area round-trip times.  On top of the packet path it
provides TCP-like stream sockets (connection handshake, ordered
byte-stream delivery, FIN teardown) that the RPC layer runs over.

The model is store-and-forward per hop: a message occupies each link's
direction for ``size / bandwidth`` seconds (FIFO), then experiences the
link's propagation latency; intermediate router nodes add their
configured one-way emulation delay.  This reproduces the two effects the
paper's evaluation turns on — RTT-bound small operations and
bandwidth/CPU-bound bulk transfers — while staying deterministic.
"""

from repro.net.errors import NetError, ConnectionRefused, ConnectionReset
from repro.net.network import Network, Link
from repro.net.host import Host
from repro.net.router import DelayRouter
from repro.net.socket import SimSocket, Listener
from repro.net.datagram import DatagramEndpoint, DropPolicy, bind_datagram

__all__ = [
    "NetError",
    "ConnectionRefused",
    "ConnectionReset",
    "Network",
    "Link",
    "Host",
    "DelayRouter",
    "SimSocket",
    "Listener",
    "DatagramEndpoint",
    "DropPolicy",
    "bind_datagram",
]
