"""TCP-like stream sockets over the simulated network.

Semantics implemented (the subset the RPC stack needs, faithfully):

- connection establishment via a SYN/SYN-ACK exchange (costs one RTT),
- ordered byte-stream delivery — each ``send`` becomes one transport
  segment, so message boundaries are *not* guaranteed to the receiver
  and the RPC record-marking layer genuinely has to reassemble,
- graceful close via FIN (reader drains buffered data, then sees EOF),
- abortive teardown surfaces :class:`ConnectionReset` to blocked readers.

Segments of one connection traverse the same route through FIFO link
queues, so on a fault-free network they arrive in order.  Each segment
nevertheless carries a sequence number: when a :class:`FaultPlan
<repro.faults.FaultPlan>` is installed, segments can be dropped (then
redelivered after an RTO, arriving late), delayed, or duplicated, and
the receiver reassembles the stream — buffering out-of-order arrivals,
discarding duplicates — so the byte stream stays exact under loss.
The FIN is sequenced too, so EOF cannot overtake in-flight data.
"""

from __future__ import annotations

from typing import Deque, Optional
from collections import deque

from repro.sim.core import Event, Simulator
from repro.sim.sync import Channel, ChannelClosed
from repro.net.errors import ConnectionReset, NetError

#: Fixed per-segment header overhead charged on the wire (TCP/IP-ish).
SEGMENT_OVERHEAD = 66


class SimSocket:
    """One endpoint of an established stream connection."""

    def __init__(self, sim: Simulator, host: "HostLike", peer_host_name: str, conn_id: str):
        self.sim = sim
        self.host = host
        self.peer_host_name = peer_host_name
        self.conn_id = conn_id
        self.peer: Optional["SimSocket"] = None  # set by Host at setup
        self._rx = Channel(sim, name=f"rx:{conn_id}")
        self._buffer = bytearray()
        self._eof = False
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self._tx_seq = 0  # next sequence number to send
        self._rx_next = 0  # next sequence number expected from peer
        self._rx_ooo: dict = {}  # out-of-order segments awaiting reassembly

    # -- sending -------------------------------------------------------

    def send(self, data: bytes) -> None:
        """Queue ``data`` for delivery to the peer (non-blocking).

        Each call produces one wire segment of ``len(data) + header``
        bytes.  Raises once the socket is closed locally.
        """
        if self.closed:
            raise ConnectionReset(f"send on closed socket {self.conn_id}")
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("send() wants bytes")
        payload = bytes(data)
        if not payload:
            return
        self.bytes_sent += len(payload)
        peer = self._require_peer()
        seq = self._tx_seq
        self._tx_seq += 1
        self.host.network.deliver(
            self.host.name,
            self.peer_host_name,
            len(payload) + SEGMENT_OVERHEAD,
            lambda: peer._on_segment(seq, payload),
            kind="stream",
        )

    def _on_segment(self, seq: int, payload) -> None:
        if self.closed:
            return  # segment raced with local close: drop it
        if seq < self._rx_next or seq in self._rx_ooo:
            return  # duplicate (fault-injected copy or RTO redelivery)
        if seq != self._rx_next:
            self._rx_ooo[seq] = payload  # arrived early; hold for reassembly
            return
        self._deliver(payload)
        self._rx_next += 1
        while self._rx_next in self._rx_ooo:
            self._deliver(self._rx_ooo.pop(self._rx_next))
            self._rx_next += 1

    def _deliver(self, payload) -> None:
        self._rx.put(payload)

    # -- receiving -----------------------------------------------------

    def recv(self):
        """Process generator: yield-from to receive the next chunk.

        Returns ``b""`` on orderly EOF.  Chunks are whatever segment
        sizes the sender produced — callers needing exact lengths use
        :meth:`recv_exactly`.
        """
        if self._buffer:
            # Left over from a previous recv_exactly; already counted in
            # bytes_received when the segment arrived.
            out = bytes(self._buffer)
            self._buffer.clear()
            return out
        return (yield from self._recv_segment())

    def _recv_segment(self):
        if self._eof:
            return b""
        try:
            chunk = yield self._rx.get()
        except ChannelClosed:
            raise ConnectionReset(f"connection {self.conn_id} reset") from None
        if chunk is _FIN:
            self._eof = True
            return b""
        self.bytes_received += len(chunk)
        return chunk

    def recv_exactly(self, n: int):
        """Process generator: receive exactly ``n`` bytes (or raise on EOF)."""
        while len(self._buffer) < n:
            chunk = yield from self._recv_segment()
            if chunk == b"":
                raise ConnectionReset(
                    f"EOF after {len(self._buffer)}/{n} bytes on {self.conn_id}"
                )
            self._buffer.extend(chunk)
        out = bytes(self._buffer[:n])
        del self._buffer[:n]
        return out

    # -- teardown ------------------------------------------------------

    def close(self) -> None:
        """Orderly close: peer sees EOF after draining in-flight data."""
        if self.closed:
            return
        self.closed = True
        peer = self.peer
        if peer is not None and not peer.closed:
            seq = self._tx_seq
            self._tx_seq += 1
            self.host.network.deliver(
                self.host.name,
                self.peer_host_name,
                SEGMENT_OVERHEAD,
                lambda: peer._on_segment(seq, _FIN),
                kind="stream",
            )

    def abort(self) -> None:
        """Abortive close: blocked/future reads on the peer raise reset."""
        if self.closed:
            return
        self.closed = True
        peer = self.peer
        if peer is not None and not peer.closed:
            self.host.network.deliver(
                self.host.name,
                self.peer_host_name,
                SEGMENT_OVERHEAD,
                lambda: peer._rx.close(),
            )

    def _require_peer(self) -> "SimSocket":
        if self.peer is None:
            raise NetError(f"socket {self.conn_id} not wired to a peer")
        return self.peer

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SimSocket {self.conn_id} {'closed' if self.closed else 'open'}>"


#: In-band marker for orderly shutdown.
_FIN = object()


class Listener:
    """A passive endpoint accepting connections on (host, port)."""

    def __init__(self, sim: Simulator, host: "HostLike", port: int):
        self.sim = sim
        self.host = host
        self.port = port
        self._backlog = Channel(sim, name=f"accept:{host.name}:{port}")
        self.closed = False

    def accept(self) -> Event:
        """Event firing with the next accepted :class:`SimSocket`."""
        return self._backlog.get()

    def _enqueue(self, sock: SimSocket) -> None:
        self._backlog.put(sock)

    def close(self) -> None:
        self.closed = True
        self.host._unbind(self.port)
        self._backlog.close()


class HostLike:
    """Interface sockets require of their host (see repro.net.host)."""

    name: str
    network: object

    def _unbind(self, port: int) -> None:  # pragma: no cover - protocol stub
        raise NotImplementedError
