"""Topology, links and the message delivery engine.

A :class:`Network` owns a set of nodes (hosts and routers) and duplex
:class:`Link` objects between them.  Routing uses shortest-path hop
counts computed on demand and cached; topologies in this repository are
tiny (2–4 nodes), so this is more than enough.

Delivery of one transport segment works like a real store-and-forward
path: for each hop the segment queues FIFO for the link direction,
occupies it for ``size / bandwidth``, then propagates for the link's
latency; intermediate nodes add their ``forward_delay`` (zero for plain
hosts, the configured emulation delay for a :class:`DelayRouter`).
Per-connection ordering is preserved because the per-direction link
queues are FIFO and all segments of a connection follow the same path.

Two delivery engines implement those semantics:

- the **callback chain** (:class:`_Delivery`) — one small reusable state
  object per segment that walks the hops by chaining timeout callbacks.
  It is used while every hop's transmit lock is free (the overwhelmingly
  common case) and allocates no generator, no process, and no
  per-hop closure;
- the **generator fallback** (:meth:`Network._carry_rest`) — the
  classic process-based walk, entered the moment a hop finds its link
  contended.  The blocking ``acquire()`` is issued *before* spawning so
  the segment keeps its exact FIFO position in the link queue.

Both paths fire the same transmit/propagation timeouts at the same
virtual instants, so results are identical whichever engine carries a
segment.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.core import Simulator
from repro.sim.cpu import CpuLedger
from repro.sim.sync import Semaphore
from repro.net.errors import NetError, NoRoute

#: One-way latency of the loopback interface (same-host connections —
#: the app-to-proxy hop of a GFS/SGFS session).
LOOPBACK_LATENCY = 15e-6


def _bind_payload(on_payload, payload) -> Callable[[], None]:
    return lambda: on_payload(payload)


class Link:
    """A duplex point-to-point link.

    ``latency`` is the one-way propagation delay in seconds; ``bandwidth``
    is in bytes/second.  Each direction has its own FIFO transmit queue.
    """

    def __init__(
        self,
        sim: Simulator,
        a: str,
        b: str,
        latency: float,
        bandwidth: float,
        name: str = "",
    ):
        if latency < 0 or bandwidth <= 0:
            raise NetError("link needs latency >= 0 and bandwidth > 0")
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth = bandwidth
        self.name = name or f"{a}<->{b}"
        self._tx: Dict[Tuple[str, str], Semaphore] = {
            (a, b): Semaphore(sim, 1, name=f"{self.name}:{a}->{b}"),
            (b, a): Semaphore(sim, 1, name=f"{self.name}:{b}->{a}"),
        }
        #: per-link telemetry instruments, resolved once on first use by
        #: :meth:`Network._metrics_for` and cached here so the per-packet
        #: hot loop never repeats the registry lookups.
        self._obs_metrics: Optional[tuple] = None

    def other_end(self, node: str) -> str:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise NetError(f"{node} is not an endpoint of {self.name}")

    def tx_lock(self, src: str, dst: str) -> Semaphore:
        return self._tx[(src, dst)]

    def transmit_time(self, nbytes: int) -> float:
        return nbytes / self.bandwidth


class Network:
    """Node and link registry plus the delivery engine."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.nodes: Dict[str, "NodeLike"] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self._adj: Dict[str, List[str]] = {}
        self._route_cache: Dict[Tuple[str, str], List[str]] = {}
        self.obs = sim.obs
        # Lazily created so runs with no loopback traffic snapshot
        # exactly as before (no spurious zero-valued counter).
        self._c_loopback = None
        #: Installed FaultPlan (repro.faults), or None for a clean network.
        self.fault_plan = None
        #: Profiling: when True, every transmission records its busy
        #: interval into ``link_ledger`` under the directed key
        #: ``"src->dst"``, giving the profiler time-bucketed link
        #: occupancy (the same query machinery as CPU utilization).
        self.record_occupancy = False
        self.link_ledger = CpuLedger()

    def _metrics_for(self, link: Link) -> tuple:
        """Per-link instruments (bytes, busy-seconds, queue-delay),
        created on first use and cached on the link object itself."""
        m = link._obs_metrics
        if m is None:
            m = link._obs_metrics = (
                self.obs.counter("net", "link_bytes", link=link.name),
                self.obs.gauge("net", "link_busy_seconds", link=link.name),
                self.obs.histogram("net", "queue_delay", link=link.name),
            )
        return m

    # -- topology ------------------------------------------------------

    def add_node(self, node: "NodeLike") -> None:
        if node.name in self.nodes:
            raise NetError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self._adj.setdefault(node.name, [])

    def connect(
        self, a: str, b: str, latency: float = 0.0001, bandwidth: float = 125_000_000.0
    ) -> Link:
        """Create a duplex link (defaults: 0.1 ms one-way, Gigabit)."""
        for n in (a, b):
            if n not in self.nodes:
                raise NetError(f"unknown node {n!r}")
        key = (min(a, b), max(a, b))
        if key in self.links:
            raise NetError(f"link {a}<->{b} already exists")
        link = Link(self.sim, a, b, latency, bandwidth)
        self.links[key] = link
        self._adj[a].append(b)
        self._adj[b].append(a)
        self._route_cache.clear()
        return link

    def link_between(self, a: str, b: str) -> Link:
        return self.links[(min(a, b), max(a, b))]

    def route(self, src: str, dst: str) -> List[str]:
        """Shortest path (list of node names, inclusive of endpoints)."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            path = [src]
        else:
            prev: Dict[str, Optional[str]] = {src: None}
            q = deque([src])
            while q:
                u = q.popleft()
                if u == dst:
                    break
                for v in self._adj.get(u, ()):
                    if v not in prev:
                        prev[v] = u
                        q.append(v)
            if dst not in prev:
                raise NoRoute(f"no path {src} -> {dst}")
            path = [dst]
            while prev[path[-1]] is not None:
                path.append(prev[path[-1]])  # type: ignore[arg-type]
            path.reverse()
        self._route_cache[key] = path
        return path

    def rtt(self, src: str, dst: str) -> float:
        """Round-trip propagation time between two nodes (zero-size payload)."""
        path = self.route(src, dst)
        one_way = sum(
            self.link_between(path[i], path[i + 1]).latency for i in range(len(path) - 1)
        )
        one_way += sum(self.nodes[n].forward_delay for n in path[1:-1])
        return 2.0 * one_way

    # -- delivery ------------------------------------------------------

    def deliver(
        self,
        src: str,
        dst: str,
        nbytes: int,
        on_arrival: Optional[Callable[[], None]] = None,
        kind: str = "ctrl",
        payload: Optional[bytes] = None,
        on_payload: Optional[Callable] = None,
    ) -> None:
        """Carry a segment of ``nbytes`` from src to dst; call ``on_arrival``.

        The segment starts its first hop at the current instant, after
        already-queued events (the same position the spawned carrier
        process historically started from), then walks the route via
        the callback chain, dropping to the generator fallback if a
        hop's transmit lock is contended.

        ``kind`` classifies the packet for fault injection: ``"stream"``
        segments belong to a reliable transport (loss is recovered by RTO
        redelivery, duplicates deduplicated by sequence number at the
        socket), ``"dgram"`` packets are genuinely lossy, and ``"ctrl"``
        packets (SYN/FIN-ack-class handshake closures) are retransmitted
        on loss but never duplicated — their closures fire exactly once.

        Datagram senders pass ``payload``/``on_payload`` instead of a
        baked closure so an injected corruption can rewrite the bytes;
        ``on_payload(payload)`` runs at arrival.
        """
        path = self.route(src, dst)
        plan = self.fault_plan
        if plan is not None and len(path) > 1:
            self._deliver_faulted(path, nbytes, on_arrival, kind,
                                  payload, on_payload, 0)
            return
        if on_arrival is None:
            on_arrival = _bind_payload(on_payload, payload)
        self.sim._schedule_now(_Delivery(self, path, nbytes, on_arrival))

    def _launch(self, path, nbytes, on_arrival, payload, on_payload) -> None:
        if on_arrival is None:
            on_arrival = _bind_payload(on_payload, payload)
        self.sim._schedule_now(_Delivery(self, path, nbytes, on_arrival))

    def _deliver_faulted(
        self, path, nbytes, on_arrival, kind, payload, on_payload, attempt
    ) -> None:
        """Consult the fault plan for one packet and act on the verdict."""
        plan = self.fault_plan
        if plan is None:  # uninstalled while a redelivery was pending
            self._launch(path, nbytes, on_arrival, payload, on_payload)
            return
        verdict, extra = plan.verdict(path, nbytes, kind)
        if verdict == "drop" or (verdict == "corrupt" and kind != "dgram"):
            # A corrupted reliable-transport segment fails its checksum
            # and is discarded — same outcome as a drop.  The sender's
            # modeled RTO redelivers it; datagrams are simply lost.
            if kind == "dgram":
                return
            plan.note_retransmit()
            delay = plan.rto(attempt)
            self.sim.call_later(
                delay,
                lambda: self._deliver_faulted(
                    path, nbytes, on_arrival, kind, payload, on_payload,
                    attempt + 1,
                ),
            )
            return
        if verdict == "corrupt":  # dgram: deliver with flipped bits
            payload = plan.corrupt_payload(payload)
        elif verdict == "duplicate" and kind != "ctrl":
            # Extra copy; receivers dedup by seq (stream) or DRC (dgram).
            self._launch(path, nbytes, on_arrival, payload, on_payload)
        elif verdict == "delay":
            self.sim.call_later(
                extra,
                lambda: self._launch(path, nbytes, on_arrival, payload, on_payload),
            )
            return
        self._launch(path, nbytes, on_arrival, payload, on_payload)

    def _carry_rest(self, d: "_Delivery", acquire_ev):
        """Generator fallback: finish a delivery whose hop ``d.i`` found
        its link contended.

        ``acquire_ev`` is the already-issued (queued) acquire for hop
        ``d.i`` — issuing it *before* the spawn keeps the segment's FIFO
        position in the link queue exactly where the historical
        all-generator engine put it.
        """
        sim = self.sim
        record = self.obs.enabled
        path, nbytes = d.path, d.nbytes
        i, cut, queued_at = d.i, d.cut, sim.now
        last = len(path) - 1
        while i < last:
            u, v = path[i], path[i + 1]
            link = self.link_between(u, v)
            lock = link.tx_lock(u, v)
            if acquire_ev is None:
                queued_at = sim.now
                acquire_ev = lock.acquire()
            yield acquire_ev
            acquire_ev = None
            try:
                if record:
                    c_bytes, g_busy, h_queue = self._metrics_for(link)
                    c_bytes.inc(nbytes)
                    h_queue.observe(sim.now - queued_at)
                # A cut-through router forwards as bits arrive, so the
                # segment pays serialization only once on the path.
                if not cut:
                    tx = link.transmit_time(nbytes)
                    if record:
                        g_busy.add(tx)
                        if self.record_occupancy:
                            self.link_ledger.record(
                                f"{u}->{v}", sim.now, sim.now + tx
                            )
                    yield sim.timeout(tx)
            finally:
                lock.release()
            yield sim.timeout(link.latency)
            # Intermediate node adds its forwarding/emulation delay.
            if i + 1 < last:
                node = self.nodes[v]
                if node.forward_delay > 0:
                    yield sim.timeout(node.forward_delay)
                if getattr(node, "cut_through", False):
                    cut = True
            i += 1
        d.on_arrival()


#: _Delivery chain states: which timeout the next __call__ answers.
_TX_DONE = 1       # transmission finished: release the lock, propagate
_PROPAGATED = 2    # propagation finished: arrive or forward
_FORWARDED = 3     # router forward delay finished: start the next hop


class _Delivery:
    """Callback-chained hop walker — one reusable object per segment.

    The object is its own zero-delay queue entry (``_fire`` starts hop
    0 at the segment's FIFO position) and its own timeout callback
    (``__call__`` advances the chain by ``state``), so carrying a
    segment over an uncontended path allocates only the unavoidable
    transmit/propagation :class:`~repro.sim.core.Timeout` events.
    """

    __slots__ = ("_when", "_seq", "net", "path", "nbytes", "on_arrival",
                 "i", "cut", "state", "link", "lock")

    def __init__(self, net: Network, path: List[str], nbytes: int,
                 on_arrival: Callable[[], None]):
        self.net = net
        self.path = path
        self.nbytes = nbytes
        self.on_arrival = on_arrival
        self.i = 0          # current hop index (path[i] -> path[i+1])
        self.cut = False    # passed a cut-through router already?
        self.state = 0
        self.link: Optional[Link] = None
        self.lock = None

    # -- queue-entry hook ----------------------------------------------

    def _fire(self) -> None:
        net = self.net
        path = self.path
        if len(path) == 1:
            # Loopback: kernel-only round trip, no wire.
            if net.obs.enabled:
                c = net._c_loopback
                if c is None:
                    c = net._c_loopback = net.obs.counter("net", "loopback_bytes")
                c.inc(self.nbytes)
            self.state = _PROPAGATED
            net.sim.timeout(LOOPBACK_LATENCY).add_callback(self)
            return
        self._start_hop()

    # -- chain ---------------------------------------------------------

    def _start_hop(self) -> None:
        net = self.net
        i = self.i
        u, v = self.path[i], self.path[i + 1]
        link = self.link = net.link_between(u, v)
        lock = self.lock = link.tx_lock(u, v)
        if not lock.try_acquire():
            # Contended: queue for the lock *now* (preserving FIFO
            # order) and let the generator engine finish the walk.
            net.sim.spawn(net._carry_rest(self, lock.acquire()),
                          name=f"pkt:{self.path[0]}->{self.path[-1]}")
            return
        sim = net.sim
        tx = 0.0 if self.cut else link.transmit_time(self.nbytes)
        if net.obs.enabled:
            c_bytes, g_busy, h_queue = net._metrics_for(link)
            c_bytes.inc(self.nbytes)
            h_queue.observe(0.0)  # try_acquire succeeded: no queueing
            if not self.cut:
                g_busy.add(tx)
                if net.record_occupancy:
                    net.link_ledger.record(f"{u}->{v}", sim.now, sim.now + tx)
        if not self.cut:
            self.state = _TX_DONE
            sim.timeout(tx).add_callback(self)
        else:
            # Cut-through: serialization was already paid upstream.
            lock.release()
            self.state = _PROPAGATED
            sim.timeout(link.latency).add_callback(self)

    def __call__(self, _event) -> None:
        state = self.state
        if state == _TX_DONE:
            self.lock.release()
            self.state = _PROPAGATED
            self.net.sim.timeout(self.link.latency).add_callback(self)
            return
        if state == _PROPAGATED:
            i = self.i
            path = self.path
            if i + 1 >= len(path) - 1:
                self.on_arrival()
                return
            node = self.net.nodes[path[i + 1]]
            if node.forward_delay > 0:
                self.state = _FORWARDED
                self.net.sim.timeout(node.forward_delay).add_callback(self)
                return
            self._next_hop(node)
            return
        # _FORWARDED
        self._next_hop(self.net.nodes[self.path[self.i + 1]])

    def _next_hop(self, node) -> None:
        if getattr(node, "cut_through", False):
            self.cut = True
        self.i += 1
        self._start_hop()


class NodeLike:
    """Minimal interface Network expects of a node."""

    name: str
    forward_delay: float = 0.0
