"""Topology, links and the message delivery engine.

A :class:`Network` owns a set of nodes (hosts and routers) and duplex
:class:`Link` objects between them.  Routing uses shortest-path hop
counts computed on demand and cached; topologies in this repository are
tiny (2–4 nodes), so this is more than enough.

Delivery of one transport segment works like a real store-and-forward
path: for each hop the segment queues FIFO for the link direction,
occupies it for ``size / bandwidth``, then propagates for the link's
latency; intermediate nodes add their ``forward_delay`` (zero for plain
hosts, the configured emulation delay for a :class:`DelayRouter`).
Per-connection ordering is preserved because the per-direction link
queues are FIFO and all segments of a connection follow the same path.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.core import Simulator
from repro.sim.sync import Semaphore
from repro.net.errors import NetError, NoRoute

#: One-way latency of the loopback interface (same-host connections —
#: the app-to-proxy hop of a GFS/SGFS session).
LOOPBACK_LATENCY = 15e-6


class Link:
    """A duplex point-to-point link.

    ``latency`` is the one-way propagation delay in seconds; ``bandwidth``
    is in bytes/second.  Each direction has its own FIFO transmit queue.
    """

    def __init__(
        self,
        sim: Simulator,
        a: str,
        b: str,
        latency: float,
        bandwidth: float,
        name: str = "",
    ):
        if latency < 0 or bandwidth <= 0:
            raise NetError("link needs latency >= 0 and bandwidth > 0")
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth = bandwidth
        self.name = name or f"{a}<->{b}"
        self._tx: Dict[Tuple[str, str], Semaphore] = {
            (a, b): Semaphore(sim, 1, name=f"{self.name}:{a}->{b}"),
            (b, a): Semaphore(sim, 1, name=f"{self.name}:{b}->{a}"),
        }

    def other_end(self, node: str) -> str:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise NetError(f"{node} is not an endpoint of {self.name}")

    def tx_lock(self, src: str, dst: str) -> Semaphore:
        return self._tx[(src, dst)]

    def transmit_time(self, nbytes: int) -> float:
        return nbytes / self.bandwidth


class Network:
    """Node and link registry plus the delivery engine."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.nodes: Dict[str, "NodeLike"] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self._adj: Dict[str, List[str]] = {}
        self._route_cache: Dict[Tuple[str, str], List[str]] = {}
        self.obs = sim.obs
        self._link_metrics: Dict[str, tuple] = {}

    def _metrics_for(self, link: Link) -> tuple:
        """Per-link instruments (bytes, busy-seconds, queue-delay)."""
        m = self._link_metrics.get(link.name)
        if m is None:
            m = (
                self.obs.counter("net", "link_bytes", link=link.name),
                self.obs.gauge("net", "link_busy_seconds", link=link.name),
                self.obs.histogram("net", "queue_delay", link=link.name),
            )
            self._link_metrics[link.name] = m
        return m

    # -- topology ------------------------------------------------------

    def add_node(self, node: "NodeLike") -> None:
        if node.name in self.nodes:
            raise NetError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self._adj.setdefault(node.name, [])

    def connect(
        self, a: str, b: str, latency: float = 0.0001, bandwidth: float = 125_000_000.0
    ) -> Link:
        """Create a duplex link (defaults: 0.1 ms one-way, Gigabit)."""
        for n in (a, b):
            if n not in self.nodes:
                raise NetError(f"unknown node {n!r}")
        key = (min(a, b), max(a, b))
        if key in self.links:
            raise NetError(f"link {a}<->{b} already exists")
        link = Link(self.sim, a, b, latency, bandwidth)
        self.links[key] = link
        self._adj[a].append(b)
        self._adj[b].append(a)
        self._route_cache.clear()
        return link

    def link_between(self, a: str, b: str) -> Link:
        return self.links[(min(a, b), max(a, b))]

    def route(self, src: str, dst: str) -> List[str]:
        """Shortest path (list of node names, inclusive of endpoints)."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            path = [src]
        else:
            prev: Dict[str, Optional[str]] = {src: None}
            q = deque([src])
            while q:
                u = q.popleft()
                if u == dst:
                    break
                for v in self._adj.get(u, ()):
                    if v not in prev:
                        prev[v] = u
                        q.append(v)
            if dst not in prev:
                raise NoRoute(f"no path {src} -> {dst}")
            path = [dst]
            while prev[path[-1]] is not None:
                path.append(prev[path[-1]])  # type: ignore[arg-type]
            path.reverse()
        self._route_cache[key] = path
        return path

    def rtt(self, src: str, dst: str) -> float:
        """Round-trip propagation time between two nodes (zero-size payload)."""
        path = self.route(src, dst)
        one_way = sum(
            self.link_between(path[i], path[i + 1]).latency for i in range(len(path) - 1)
        )
        one_way += sum(self.nodes[n].forward_delay for n in path[1:-1])
        return 2.0 * one_way

    # -- delivery ------------------------------------------------------

    def deliver(
        self, src: str, dst: str, nbytes: int, on_arrival: Callable[[], None]
    ) -> None:
        """Carry a segment of ``nbytes`` from src to dst; call ``on_arrival``.

        Spawns an internal process that walks the route hop by hop.
        """
        path = self.route(src, dst)
        record = self.obs.enabled

        def _carry():
            if len(path) == 1:
                # Loopback: kernel-only round trip, no wire.
                if record:
                    self.obs.counter("net", "loopback_bytes").inc(nbytes)
                yield self.sim.timeout(LOOPBACK_LATENCY)
                on_arrival()
                return
            through_cut_through = False
            for i in range(len(path) - 1):
                u, v = path[i], path[i + 1]
                link = self.link_between(u, v)
                lock = link.tx_lock(u, v)
                queued_at = self.sim.now
                yield lock.acquire()
                try:
                    if record:
                        c_bytes, g_busy, h_queue = self._metrics_for(link)
                        c_bytes.inc(nbytes)
                        h_queue.observe(self.sim.now - queued_at)
                    # A cut-through router forwards as bits arrive, so the
                    # segment pays serialization only once on the path.
                    if not through_cut_through:
                        if record:
                            g_busy.add(link.transmit_time(nbytes))
                        yield self.sim.timeout(link.transmit_time(nbytes))
                finally:
                    lock.release()
                yield self.sim.timeout(link.latency)
                # Intermediate node adds its forwarding/emulation delay.
                if i + 1 < len(path) - 1:
                    node = self.nodes[v]
                    if node.forward_delay > 0:
                        yield self.sim.timeout(node.forward_delay)
                    if getattr(node, "cut_through", False):
                        through_cut_through = True
            on_arrival()

        self.sim.spawn(_carry(), name=f"pkt:{src}->{dst}")


class NodeLike:
    """Minimal interface Network expects of a node."""

    name: str
    forward_delay: float = 0.0
