"""Datagram (UDP-like) endpoints.

Message-oriented, connectionless, and — unlike the stream sockets —
allowed to *lose* packets: each endpoint can be given a deterministic
drop policy (seeded, so runs still replay), which is what exercises the
RPC layer's retransmission and the server's duplicate-request cache.

Datagrams ride the same links as stream segments (shared FIFO queues,
same latency/bandwidth), so mixed traffic contends realistically.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.crypto.drbg import Drbg
from repro.net.errors import NetError
from repro.net.network import Network
from repro.sim.core import Simulator
from repro.sim.sync import Channel

#: UDP/IP header overhead per datagram.
DATAGRAM_OVERHEAD = 28

#: Conventional maximum datagram our stack forwards (fragmentation is
#: not modeled; ONC RPC over UDP historically kept records under this).
MAX_DATAGRAM = 65507


class DropPolicy:
    """Deterministic packet-loss decider."""

    def __init__(self, loss_rate: float = 0.0, seed: str = "udp-loss"):
        if not 0.0 <= loss_rate < 1.0:
            raise NetError(f"loss rate {loss_rate} out of [0, 1)")
        self.loss_rate = loss_rate
        self._rng = Drbg(seed)
        self.dropped = 0
        self.passed = 0

    def should_drop(self) -> bool:
        if self.loss_rate == 0.0:
            self.passed += 1
            return False
        drop = self._rng.random() < self.loss_rate
        if drop:
            self.dropped += 1
        else:
            self.passed += 1
        return drop


class DatagramEndpoint:
    """A bound UDP-like port on a host."""

    def __init__(self, sim: Simulator, host, port: int,
                 drop_policy: Optional[DropPolicy] = None):
        self.sim = sim
        self.host = host
        self.port = port
        self.drop_policy = drop_policy
        self._rx: Channel = Channel(sim, name=f"udp:{host.name}:{port}")
        self.closed = False
        self.datagrams_sent = 0
        self.datagrams_received = 0

    def sendto(self, dest_host: str, dest_port: int, payload: bytes) -> None:
        """Fire-and-forget, like sendto(2).  Oversized payloads raise."""
        if self.closed:
            raise NetError(f"endpoint {self.host.name}:{self.port} closed")
        if len(payload) > MAX_DATAGRAM:
            raise NetError(f"datagram of {len(payload)} bytes exceeds {MAX_DATAGRAM}")
        network: Network = self.host.network
        if dest_host not in network.nodes:
            raise NetError(f"unknown destination {dest_host!r}")
        self.datagrams_sent += 1
        src = (self.host.name, self.port)

        def arrive(data: bytes) -> None:
            # ``data`` may differ from the sent payload if fault
            # injection corrupted the packet in flight.
            target = network.nodes[dest_host]
            endpoint = getattr(target, "_udp_ports", {}).get(dest_port)
            if endpoint is None or endpoint.closed:
                return  # silently dropped, like real UDP to a dead port
            if endpoint.drop_policy is not None and endpoint.drop_policy.should_drop():
                return
            endpoint.datagrams_received += 1
            endpoint._rx.put((src, data))

        network.deliver(
            self.host.name,
            dest_host,
            len(payload) + DATAGRAM_OVERHEAD,
            kind="dgram",
            payload=payload,
            on_payload=arrive,
        )

    def recvfrom(self):
        """Process generator: ((host, port), payload) of the next datagram."""
        out = yield self._rx.get()
        return out

    def close(self) -> None:
        self.closed = True
        self.host._udp_ports.pop(self.port, None)
        self._rx.close()


def bind_datagram(sim: Simulator, host, port: int,
                  drop_policy: Optional[DropPolicy] = None) -> DatagramEndpoint:
    """Bind a datagram endpoint on a host (Host grows a UDP port table)."""
    table: Dict[int, DatagramEndpoint] = getattr(host, "_udp_ports", None)
    if table is None:
        table = {}
        host._udp_ports = table
    if port in table:
        raise NetError(f"{host.name}: UDP port {port} already bound")
    endpoint = DatagramEndpoint(sim, host, port, drop_policy)
    table[port] = endpoint
    return endpoint
