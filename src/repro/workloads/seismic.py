"""Seismic (SPEC HPC96) — §6.3.2: mixed I/O and computation.

Four phases, each consuming its predecessor's on-disk output:

1. **data generation** — compute + write one large initial data file,
2. **data stacking** — strided passes over phase 1's file: seismic
   stacking gathers traces across the dataset, so the access order is a
   permutation of the file's blocks.  That defeats sequential
   read-ahead *and* LRU reuse (the file exceeds client memory), which
   is why the paper's phase 2 collapses from 27 s in LAN to 1021 s at
   40 ms RTT on native NFS — and why SGFS's disk cache erases it (the
   blocks were cached when phase 1 wrote them),
3. **time migration** — read phase 2's output + compute + output,
4. **depth migration** — compute-dominated + final output.

At the end the intermediate outputs (phases 1–2) are removed and only
the last two results are preserved — which, under SGFS write-back, is
exactly why the temporaries never cross the WAN.

The compute portions charge the client host's CPU under the "app"
account.  Sizes are scaled testbed parameters; the defining ratios
(phase-1 file ≫ client cache; phase-2 strides over it repeatedly) hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.setups import Mount
from repro.crypto.drbg import Drbg


@dataclass
class SeismicConfig:
    #: phase-1 output: must exceed the client page cache
    initial_file: int = 16 * 1024 * 1024
    #: strided passes phase 2 makes over the phase-1 file
    stack_passes: int = 4
    stacked_file: int = 4 * 1024 * 1024
    time_mig_file: int = 3 * 1024 * 1024
    depth_mig_file: int = 3 * 1024 * 1024
    #: compute seconds per phase (client CPU); scaled 1:8 with the I/O
    #: scale so compute-vs-I/O balance matches the paper's phases
    cpu_generate: float = 2.5
    cpu_stack: float = 1.6
    cpu_time_mig: float = 0.4
    cpu_depth_mig: float = 21.0
    block: int = 32768
    root: str = "/seismic"
    seed: str = "seismic-strides"


class Seismic:
    """One Seismic run with per-phase timing."""

    def __init__(self, config: SeismicConfig | None = None):
        self.config = config or SeismicConfig()
        self.results: Dict[str, float] = {}

    def _chunk(self, size: int) -> bytes:
        return (b"\x13\x37seismic-trace" * (size // 15 + 1))[:size]

    def _write_streaming(self, mount: Mount, path: str, size: int,
                         cpu_seconds: float):
        """Interleave compute and output like the real code: produce a
        block, write a block."""
        cl = mount.client
        cpu = mount.tb.client.cpu
        cfg = self.config
        f = yield from cl.open(path, create=True, truncate=True)
        blocks = max(1, size // cfg.block)
        per_block_cpu = cpu_seconds / blocks
        payload = self._chunk(cfg.block)
        pos = 0
        for _ in range(blocks):
            yield from cpu.consume(per_block_cpu, "app")
            yield from cl.write(f, pos, payload)
            pos += len(payload)
        yield from cl.close(f)

    def _read_sequential(self, mount: Mount, path: str):
        cl = mount.client
        cfg = self.config
        f = yield from cl.open(path)
        pos = 0
        while pos < f.size:
            data = yield from cl.read(f, pos, cfg.block)
            if not data:
                break
            pos += len(data)
        yield from cl.close(f)
        return pos

    def _read_strided(self, mount: Mount, path: str, rng: Drbg):
        """One stacking pass: visit every block in permuted order."""
        cl = mount.client
        cfg = self.config
        f = yield from cl.open(path)
        nblocks = max(1, f.size // cfg.block)
        order: List[int] = list(range(nblocks))
        rng.shuffle(order)
        for b in order:
            yield from cl.read(f, b * cfg.block, cfg.block)
        yield from cl.close(f)

    def run(self, mount: Mount):
        """Process generator; fills self.results per phase."""
        sim = mount.tb.sim
        cl = mount.client
        cfg = self.config
        cpu = mount.tb.client.cpu
        rng = Drbg(cfg.seed)
        t_start = sim.now
        yield from cl.mkdir(cfg.root)

        # ---- phase 1: data generation ----------------------------------------
        t0 = sim.now
        f1 = f"{cfg.root}/initial.data"
        yield from self._write_streaming(mount, f1, cfg.initial_file, cfg.cpu_generate)
        self.results["phase1"] = sim.now - t0

        # ---- phase 2: data stacking (strided gathers) ---------------------------
        t1 = sim.now
        for p in range(cfg.stack_passes):
            yield from self._read_strided(mount, f1, rng.fork(f"pass{p}"))
            yield from cpu.consume(cfg.cpu_stack / cfg.stack_passes, "app")
        f2 = f"{cfg.root}/stacked.data"
        yield from self._write_streaming(mount, f2, cfg.stacked_file, 0.3)
        self.results["phase2"] = sim.now - t1

        # ---- phase 3: time migration ----------------------------------------------
        t2 = sim.now
        yield from self._read_sequential(mount, f2)
        yield from cpu.consume(cfg.cpu_time_mig, "app")
        f3 = f"{cfg.root}/time-mig.data"
        yield from self._write_streaming(mount, f3, cfg.time_mig_file, 0.2)
        self.results["phase3"] = sim.now - t2

        # ---- phase 4: depth migration -------------------------------------------------
        t3 = sim.now
        yield from self._read_sequential(mount, f3)
        f4 = f"{cfg.root}/depth-mig.data"
        yield from self._write_streaming(
            mount, f4, cfg.depth_mig_file, cfg.cpu_depth_mig
        )
        self.results["phase4"] = sim.now - t3

        # ---- cleanup: drop intermediates, keep the last two results ----------------
        yield from cl.unlink(f1)
        yield from cl.unlink(f2)
        self.results["total"] = sim.now - t_start
        return self.results["total"]
