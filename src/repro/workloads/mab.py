"""Modified Andrew Benchmark (§6.3.1).

The paper replaces the original Andrew workload with the openssh-4.6p1
source package: a 3-level tree with 13 directories and 449 files, whose
compilation emits 194 binaries and object files.  Four phases:

1. **copy** — copy the source tree *within the file system* (read every
   source file through the mount, write the copy back through the
   mount: many small reads, creations and writes),
2. **stat** — recursively stat every file (metadata lookups),
3. **search** — read every file fully, searching for a keyword,
4. **compile** — compile the tree: per translation unit the "compiler"
   stats its include path, opens and reads headers, burns CPU, writes
   an object file; a final link reads all objects and writes binaries.

The pristine tree is materialized directly in the exported filesystem
by :meth:`ModifiedAndrewBenchmark.prepare` (the experiment's setup
step); all phase I/O then flows through the mounted client, like an
unmodified ``cp -r``/``ls -lR``/``grep -r``/``make``.

Compile CPU is charged to the *client host's* core under the "app"
account, so compilation genuinely competes with the user-level proxies
for the one client CPU — reproducing the LAN compile overhead of
Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.setups import Mount
from repro.core.topology import Testbed
from repro.crypto.drbg import Drbg
from repro.nfs.client import NfsClientError
from repro.vfs.fs import Credentials


@dataclass
class SourceTree:
    """A synthetic openssh-4.6p1-shaped source tree."""

    directories: List[str] = field(default_factory=list)
    #: (path, size, compiles_to_object)
    files: List[Tuple[str, int, bool]] = field(default_factory=list)
    objects: int = 194

    @classmethod
    def openssh_like(cls, seed: str = "openssh-4.6p1") -> "SourceTree":
        """13 directories, 449 files, 194 compilation units."""
        rng = Drbg(seed)
        tree = cls()
        subdirs = [
            "", "openbsd-compat", "scard", "contrib", "contrib/redhat",
            "contrib/suse", "contrib/cygwin", "contrib/caldera", "regress",
            "scp-ssh-wrapper", "ssh-rand-helper", "doc", "misc",
        ]  # 13 directories including the root
        tree.directories = subdirs
        n_files = 449
        n_objects = 194
        for i in range(n_files):
            is_source = i < n_objects  # the first 194 are .c files
            d = subdirs[0] if (is_source and rng.random() < 0.7) else rng.choice(subdirs)
            if is_source:
                name = f"src{i}.c"
                size = 2000 + rng.randint(0, 30000)  # typical .c file
            else:
                kind = rng.choice(["h", "m4", "txt", "sh", "conf"])
                name = f"file{i}.{kind}"
                size = 500 + rng.randint(0, 12000)
            path = f"{d}/{name}" if d else name
            tree.files.append((path, size, is_source))
        tree.objects = n_objects
        return tree

    @property
    def total_bytes(self) -> int:
        return sum(size for _p, size, _s in self.files)


@dataclass
class MabConfig:
    #: compiler CPU seconds per source file (client-host compute)
    compile_cpu_per_unit: float = 0.30
    #: headers each translation unit opens and reads
    headers_per_unit: int = 15
    #: include-path existence probes (stat/access) per translation unit
    include_probes_per_unit: int = 120
    #: object file size ≈ source size × this
    object_size_factor: float = 1.6
    #: final link step: read all objects, write this many binaries
    binaries: int = 12
    keyword: bytes = b"SSH_PROTOCOL"
    pristine_root: str = "/dist/openssh-4.6p1"
    src_root: str = "/work/openssh-4.6p1"
    build_root: str = "/work/build"


class ModifiedAndrewBenchmark:
    """MAB with per-phase timing."""

    def __init__(self, tree: SourceTree | None = None, config: MabConfig | None = None):
        self.tree = tree or SourceTree.openssh_like()
        self.config = config or MabConfig()
        self.results: Dict[str, float] = {}

    def _content(self, size: int) -> bytes:
        return (b"int main(void) { return ssh_main(); } /* filler */\n" * (size // 51 + 1))[:size]

    # ------------------------------------------------------------------

    def prepare(self, tb: Testbed) -> None:
        """Materialize the pristine source tree in the exported FS."""
        cred = Credentials(tb.fs.root.uid, tb.fs.root.gid)
        root = tb.fs.root.fileid

        def ensure_dir(path: str) -> int:
            node_id = root
            for part in [p for p in path.split("/") if p]:
                d = tb.fs.inode(node_id)
                child = d.entries.get(part)
                if child is None:
                    node_id = tb.fs.mkdir(node_id, part, cred).fileid
                else:
                    node_id = child
            return node_id

        base = self.config.pristine_root
        ensure_dir(base)
        for d in self.tree.directories:
            if d:
                ensure_dir(f"{base}/{d}")
        for path, size, _src in self.tree.files:
            dir_path, _, name = f"{base}/{path}".rpartition("/")
            dir_id = ensure_dir(dir_path)
            node = tb.fs.create(dir_id, name, cred)
            tb.fs.write(node.fileid, 0, self._content(size), cred)

    # ------------------------------------------------------------------

    def _mkdirs(self, cl, base: str):
        if not (yield from cl.exists(base)):
            parts = [p for p in base.split("/") if p]
            for i in range(1, len(parts) + 1):
                sub = "/" + "/".join(parts[:i])
                if not (yield from cl.exists(sub)):
                    yield from cl.mkdir(sub)
        for d in self.tree.directories:
            if d:
                parts = d.split("/")
                for i in range(1, len(parts) + 1):
                    sub = f"{base}/{'/'.join(parts[:i])}"
                    if not (yield from cl.exists(sub)):
                        yield from cl.mkdir(sub)

    def run(self, mount: Mount):
        """Process generator; fills self.results per phase."""
        sim = mount.tb.sim
        cl = mount.client
        cfg = self.config
        cpu = mount.tb.client.cpu
        t_start = sim.now

        # ---- phase 1: copy (read pristine, write working copy) -------------
        t0 = sim.now
        yield from self._mkdirs(cl, cfg.src_root)
        for path, _size, _src in self.tree.files:
            data = yield from cl.read_file(f"{cfg.pristine_root}/{path}")
            yield from cl.write_file(f"{cfg.src_root}/{path}", data)
        self.results["copy"] = sim.now - t0

        # ---- phase 2: stat -----------------------------------------------------
        t1 = sim.now
        stack = [cfg.src_root]
        while stack:
            d = stack.pop()
            entries = yield from cl.readdir(d)
            for e in entries:
                full = f"{d}/{e.name}"
                attr = yield from cl.stat(full)
                if attr.is_dir:
                    stack.append(full)
        self.results["stat"] = sim.now - t1

        # ---- phase 3: search ------------------------------------------------------
        t2 = sim.now
        found = 0
        for path, _size, _src in self.tree.files:
            data = yield from cl.read_file(f"{cfg.src_root}/{path}")
            # the grep itself: trivial CPU per byte
            yield from cpu.consume(len(data) * 0.4e-9, "app")
            if cfg.keyword in data:
                found += 1
        self.results["search"] = sim.now - t2

        # ---- phase 4: compile --------------------------------------------------------
        t3 = sim.now
        yield from self._mkdirs(cl, cfg.build_root)
        headers = [p for p, _s, src in self.tree.files if not src]
        probe_rng = Drbg("mab-include-probes")
        objects: List[str] = []
        unit_index = 0
        for path, size, is_src in self.tree.files:
            if not is_src:
                continue
            # compiler probes its include path (stat/access misses included)
            for k in range(cfg.include_probes_per_unit):
                probe = headers[(unit_index * 7 + k * 13) % len(headers)]
                if probe_rng.random() < 0.4:
                    try:
                        yield from cl.stat(f"{cfg.src_root}/{probe}")
                    except NfsClientError:
                        pass
                else:
                    try:
                        yield from cl.access(f"{cfg.src_root}/{probe}", 0x1)
                    except NfsClientError:
                        pass
            # read the translation unit + its headers
            yield from cl.read_file(f"{cfg.src_root}/{path}")
            for k in range(cfg.headers_per_unit):
                h = headers[(unit_index * 3 + k) % len(headers)]
                yield from cl.read_file(f"{cfg.src_root}/{h}")
            yield from cpu.consume(cfg.compile_cpu_per_unit, "app")
            obj = f"{cfg.build_root}/{path.replace('/', '_')}.o"
            yield from cl.write_file(obj, self._content(int(size * cfg.object_size_factor)))
            objects.append(obj)
            unit_index += 1
        # link: read all objects, write binaries
        total_obj_bytes = 0
        for obj in objects:
            data = yield from cl.read_file(obj)
            total_obj_bytes += len(data)
        yield from cpu.consume(cfg.binaries * 0.4, "app")
        for i in range(cfg.binaries):
            yield from cl.write_file(
                f"{cfg.build_root}/bin{i}", self._content(total_obj_bytes // cfg.binaries // 4)
            )
        self.results["compile"] = sim.now - t3
        self.results["total"] = sim.now - t_start
        return self.results["total"]
