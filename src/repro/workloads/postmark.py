"""PostMark (§6.2.2): small-file and metadata-intensive workload.

Faithful to Katcher's benchmark structure and to the paper's parameters:
an initial pool of 100 directories and 500 files, 1000 transactions
(half create/delete, half read/append), file sizes 512 B – 16 KB —
"mostly metadata operations and small writes".

Three measured phases:

1. **creation** — build the directory pool and initial files,
2. **transaction** — the random create/delete/read/append mix,
3. **deletion** — remove everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.setups import Mount
from repro.crypto.drbg import Drbg
from repro.nfs.client import NfsClientError


@dataclass
class PostMarkConfig:
    directories: int = 100
    files: int = 500
    transactions: int = 1000
    min_size: int = 512
    max_size: int = 16384
    seed: str = "postmark"
    root: str = "/pm"


class PostMark:
    """One PostMark run against a mountpoint."""

    def __init__(self, config: PostMarkConfig | None = None):
        self.config = config or PostMarkConfig()
        self.results: Dict[str, float] = {}
        self._rng = Drbg(self.config.seed)
        self._serial = 0

    # -- helpers -----------------------------------------------------------

    def _content(self, size: int) -> bytes:
        # Cheap deterministic filler; content is opaque to the benchmark.
        return (b"postmark-data-" * (size // 14 + 1))[:size]

    def _new_name(self) -> str:
        self._serial += 1
        return f"pmfile{self._serial}"

    # -- phases ---------------------------------------------------------------

    def run(self, mount: Mount):
        """Process generator; fills self.results with per-phase seconds."""
        sim = mount.tb.sim
        cfg = self.config
        cl = mount.client
        rng = self._rng

        # ---- creation phase ------------------------------------------------
        t0 = sim.now
        yield from cl.mkdir(cfg.root)
        dirs: List[str] = []
        for i in range(cfg.directories):
            d = f"{cfg.root}/d{i}"
            yield from cl.mkdir(d)
            dirs.append(d)
        pool: List[str] = []
        for _ in range(cfg.files):
            d = rng.choice(dirs)
            path = f"{d}/{self._new_name()}"
            size = rng.randint(cfg.min_size, cfg.max_size)
            yield from cl.write_file(path, self._content(size))
            pool.append(path)
        self.results["creation"] = sim.now - t0

        # ---- transaction phase ------------------------------------------------
        t1 = sim.now
        for _ in range(cfg.transactions):
            # Pair 1: create or delete (equal probability)
            if rng.randint(0, 1) == 0 or not pool:
                d = rng.choice(dirs)
                path = f"{d}/{self._new_name()}"
                size = rng.randint(cfg.min_size, cfg.max_size)
                yield from cl.write_file(path, self._content(size))
                pool.append(path)
            else:
                idx = rng.randrange(0, len(pool))
                path = pool.pop(idx)
                try:
                    yield from cl.unlink(path)
                except NfsClientError:
                    pass
            # Pair 2: read or append (equal probability)
            if not pool:
                continue
            path = pool[rng.randrange(0, len(pool))]
            if rng.randint(0, 1) == 0:
                try:
                    yield from cl.read_file(path)
                except NfsClientError:
                    pass
            else:
                try:
                    f = yield from cl.open(path)
                    extra = rng.randint(cfg.min_size, cfg.max_size // 4)
                    yield from cl.write(f, f.size, self._content(extra))
                    yield from cl.close(f)
                except NfsClientError:
                    pass
        self.results["transaction"] = sim.now - t1

        # ---- deletion phase ----------------------------------------------------
        t2 = sim.now
        for path in pool:
            try:
                yield from cl.unlink(path)
            except NfsClientError:
                pass
        for d in dirs:
            try:
                yield from cl.rmdir(d)
            except NfsClientError:
                pass
        yield from cl.rmdir(cfg.root)
        self.results["deletion"] = sim.now - t2
        self.results["total"] = sim.now - t0
        return self.results["total"]
