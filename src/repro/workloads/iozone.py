"""IOzone read/reread (§6.2.1).

The paper runs IOzone sequentially reading a 512 MB file twice from a
client with 256 MB of memory: LRU makes the buffer cache useless for
sequential reads of a file twice its size, so the client really fetches
1 GB over the protocol — the worst case for user-level interposition.
The server preloads the file, so no server disk I/O is involved.

We preserve the defining ratio (file = 2 × client cache) at a scaled
size.  Runtimes scale linearly with size; ratios between setups — the
paper's actual results — are size-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.setups import Mount
from repro.core.topology import Testbed
from repro.vfs.fs import Credentials


@dataclass
class IOzoneReadReread:
    """Sequential read/reread of one large file."""

    file_size: int = 16 * 1024 * 1024
    block_size: int = 32768
    path: str = "/iozone.tmp"
    results: Dict[str, float] = field(default_factory=dict)
    #: payload bytes actually moved through the mount (both passes);
    #: fleet accounting reads this for measured aggregate throughput
    bytes_moved: int = 0

    def prepare(self, tb: Testbed) -> None:
        """Materialize the file server-side and preload it (no disk I/O),
        exactly as the experiment setup does."""
        root = tb.fs.root.fileid
        cred = Credentials(tb.fs.root.uid, tb.fs.root.gid)
        node = tb.fs.create(root, self.path.strip("/"), cred)
        # Patterned content so payloads are verifiable, written directly
        # into the exported VFS (out of band, like the setup script).
        chunk = bytes(range(256)) * 256  # 64 KB pattern
        data = (chunk * (self.file_size // len(chunk) + 1))[: self.file_size]
        tb.fs.write(node.fileid, 0, data, cred)
        tb.nfs_program.preload(node.fileid)

    def run(self, mount: Mount):
        """Process generator: the benchmark proper.  Returns total time."""
        sim = mount.tb.sim
        t0 = sim.now
        f = yield from mount.client.open(self.path)
        if f.size != self.file_size:
            raise AssertionError(f"setup error: size {f.size} != {self.file_size}")
        for passno in ("read", "reread"):
            t_pass = sim.now
            pos = 0
            while pos < self.file_size:
                data = yield from mount.client.read(f, pos, self.block_size)
                if not data:
                    raise AssertionError(f"short read at {pos}")
                pos += len(data)
                self.bytes_moved += len(data)
            self.results[passno] = sim.now - t_pass
        yield from mount.client.close(f)
        self.results["total"] = sim.now - t0
        return self.results["total"]


@dataclass
class IOzoneWriteRead:
    """Sequential write, fsync, then verified read/reread of one file.

    Unlike :class:`IOzoneReadReread` (whose dataset is materialized
    server-side out of band), this workload creates its file *through
    the mount*, so on a sharded fleet the file registers with the grid
    metadata service and its blocks stripe across the backends.  Both
    read passes verify content against the written pattern, so silently
    lost or corrupted stripes fail the run rather than skewing it.
    """

    file_size: int = 256 * 1024
    block_size: int = 32768
    path: str = "/iozone-wr.tmp"
    results: Dict[str, float] = field(default_factory=dict)
    #: bytes moved through the mount: one write + two read passes
    bytes_moved: int = 0

    def _pattern(self, offset: int, length: int) -> bytes:
        chunk = bytes(range(256)) * 256  # 64 KB repeating pattern
        start = offset % len(chunk)
        data = (chunk[start:] + chunk * (length // len(chunk) + 1))[:length]
        return data

    def run(self, mount: Mount):
        """Process generator: write, fsync, verified read ×2."""
        sim = mount.tb.sim
        t0 = sim.now
        f = yield from mount.client.open(self.path, create=True, truncate=True)
        t_pass = sim.now
        pos = 0
        while pos < self.file_size:
            n = min(self.block_size, self.file_size - pos)
            yield from mount.client.write(f, pos, self._pattern(pos, n))
            pos += n
            self.bytes_moved += n
        yield from mount.client.fsync(f)
        self.results["write"] = sim.now - t_pass
        for passno in ("read", "reread"):
            t_pass = sim.now
            pos = 0
            while pos < self.file_size:
                n = min(self.block_size, self.file_size - pos)
                data = yield from mount.client.read(f, pos, n)
                if len(data) != n:
                    raise AssertionError(
                        f"short read at {pos}: {len(data)} != {n}")
                if data != self._pattern(pos, n):
                    raise AssertionError(f"corrupt data at offset {pos}")
                pos += n
                self.bytes_moved += n
            self.results[passno] = sim.now - t_pass
        yield from mount.client.close(f)
        self.results["total"] = sim.now - t0
        return self.results["total"]
