"""Workloads: the four benchmarks of the evaluation (§6.2–6.3).

- :mod:`repro.workloads.iozone` — IOzone read/reread: sequential read of
  a file twice the client cache, twice (worst-case user-level overhead),
- :mod:`repro.workloads.postmark` — PostMark: small-file create /
  transaction / delete phases,
- :mod:`repro.workloads.mab` — the Modified Andrew Benchmark over an
  openssh-4.6p1-shaped source tree (copy / stat / search / compile),
- :mod:`repro.workloads.seismic` — the SPEC HPC96 Seismic 4-phase
  I/O + compute pipeline,
- :mod:`repro.workloads.churn` — long-lived light-I/O sessions for
  control-plane churn studies (reconnects, delegation expiry).

Every workload drives only the public mountpoint API
(:class:`repro.nfs.client.NfsClient`), exactly like an unmodified
application over a kernel mount.
"""

from repro.workloads.iozone import IOzoneReadReread, IOzoneWriteRead
from repro.workloads.postmark import PostMark, PostMarkConfig
from repro.workloads.mab import ModifiedAndrewBenchmark, SourceTree
from repro.workloads.seismic import Seismic, SeismicConfig
from repro.workloads.churn import SessionChurn

__all__ = [
    "IOzoneReadReread",
    "IOzoneWriteRead",
    "PostMark",
    "PostMarkConfig",
    "ModifiedAndrewBenchmark",
    "SourceTree",
    "Seismic",
    "SeismicConfig",
    "SessionChurn",
]
