"""Session-churn workload: long-lived interactive sessions, light I/O.

The population-scale control plane is stressed not by bulk transfer but
by *session lifecycle*: login storms, periodic reconnects, delegations
expiring mid-run.  :class:`SessionChurn` models the client a grid portal
actually serves — a session that stays mounted for a long virtual span
and touches the file system in small periodic bursts — so the fleet
knobs (``reconnect_interval``, ``delegation_lifetime``,
``session_tickets``, ``stagger``) have room to fire many times per run.

Determinism and units: the burst schedule is fixed by ``duration`` /
``period`` (virtual seconds) and the payloads by the offset-derived
pattern — no randomness, so same-seed fleet runs are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.setups import Mount


@dataclass
class SessionChurn:
    """Periodic small writes + verified read-back over a long session.

    Every ``period`` virtual seconds the client writes ``io_size`` bytes
    at a rotating offset in one file and reads the previous burst back,
    until ``duration`` has elapsed.  ``results`` reports the burst count
    and per-burst mean latency (virtual seconds); ``bytes_moved`` counts
    write + read payload bytes.
    """

    duration: float = 30.0
    period: float = 1.0
    io_size: int = 8192
    path: str = "/churn.dat"
    results: Dict[str, float] = field(default_factory=dict)
    bytes_moved: int = 0

    def _pattern(self, burst: int) -> bytes:
        return bytes((burst + j) % 256 for j in range(self.io_size))

    def run(self, mount: Mount):
        """Process generator: the think/burst loop."""
        sim = mount.tb.sim
        t0 = sim.now
        deadline = t0 + self.duration
        f = yield from mount.client.open(self.path, create=True, truncate=True)
        burst = 0
        busy = 0.0
        while sim.now < deadline:
            yield sim.timeout(self.period)
            t_burst = sim.now
            offset = (burst % 8) * self.io_size
            yield from mount.client.write(f, offset, self._pattern(burst))
            self.bytes_moved += self.io_size
            if burst:
                prev = ((burst - 1) % 8) * self.io_size
                data = yield from mount.client.read(f, prev, self.io_size)
                if len(data) != self.io_size:
                    raise AssertionError(
                        f"short read of burst {burst - 1}: {len(data)}"
                    )
                if data != self._pattern(burst - 1):
                    raise AssertionError(f"corrupt burst {burst - 1}")
                self.bytes_moved += self.io_size
            busy += sim.now - t_burst
            burst += 1
        yield from mount.client.close(f)
        self.results["bursts"] = float(burst)
        self.results["burst_mean"] = busy / burst if burst else 0.0
        self.results["total"] = sim.now - t0
        return self.results["total"]
