"""RPC server endpoint.

Accepts transports (plain sockets, TLS channels, SSH-tunnel exits — the
acceptor is pluggable), reads CALL records, dispatches to registered
programs, and writes replies.  Two dispatch disciplines:

- **spawn-per-call** (default, ``workers=None``): each call is served in
  its own process so multiple outstanding requests from a pipelining
  client genuinely overlap, bounded by a per-server concurrency cap
  (the analog of the number of nfsd threads);
- **worker pool** (``workers=N``): every connection (session) gets its
  own FIFO request queue and a fixed pool of N worker processes drains
  the queues round-robin across sessions — the service model of a real
  multi-client nfsd, where fleet clients contend for a finite thread
  pool and queueing becomes visible.  Queue depth and queue wait are
  exported through :mod:`repro.obs` (``rpc.server/queue_depth``,
  ``queue_wait``).

Both disciplines are deterministic: queues are strictly FIFO, the
round-robin order is the session-arrival order, and all state lives in
insertion-ordered containers.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.obs import NULL_SPAN
from repro.rpc.costs import EndpointCost, FREE
from repro.rpc.drc import DuplicateRequestCache, REPLAY, WAIT, drc_key
from repro.rpc.errors import RpcError
from repro.rpc.messages import (
    CallMessage,
    GARBAGE_ARGS,
    PROC_UNAVAIL,
    PROG_MISMATCH,
    PROG_UNAVAIL,
    SYSTEM_ERR,
    ReplyMessage,
    error_reply,
    success_reply,
)
from repro.rpc.transport import Transport
from repro.sim.core import Simulator
from repro.sim.cpu import CPU
from repro.sim.sync import Channel, Semaphore


class RpcProgram:
    """Base class for an RPC program implementation.

    Subclasses set ``prog``/``vers`` and implement :meth:`handle` as a
    process generator returning the XDR-encoded result bytes.  Raising
    :class:`GarbageArgsError`-ish conditions is signalled by raising
    ``repro.xdr.XdrError`` (mapped to GARBAGE_ARGS) or any other
    exception (mapped to SYSTEM_ERR).
    """

    prog: int = 0
    vers: int = 0
    #: Procedure numbers whose replies must go through the server's
    #: duplicate-request cache (non-idempotent operations).
    non_idempotent: frozenset = frozenset()

    def handle(self, proc: int, args: bytes, call: CallMessage, ctx: "CallContext"):
        raise NotImplementedError  # pragma: no cover - interface


class CallContext:
    """Per-call context handed to program handlers."""

    __slots__ = ("transport", "server")

    def __init__(self, transport: Transport, server: "RpcServer"):
        self.transport = transport
        self.server = server

    @property
    def peer_certificate(self):
        """The authenticated peer certificate, if the transport has one."""
        return getattr(self.transport, "peer_certificate", None)


class ProcUnavailable(RpcError):
    """Handlers raise this for unknown procedure numbers."""


class RpcServer:
    """Dispatches calls arriving on accepted transports."""

    def __init__(
        self,
        sim: Simulator,
        cpu: Optional[CPU] = None,
        cost: EndpointCost = FREE,
        account: str = "rpc-server",
        max_inflight: int = 64,
        name: str = "rpc-server",
        drc: Optional[DuplicateRequestCache] = None,
        workers: Optional[int] = None,
    ):
        """``workers=None`` (default) serves each call in its own
        process, capped at ``max_inflight`` concurrent calls.

        ``workers=N`` switches to the worker-pool discipline: incoming
        calls queue per session (per accepted transport) and N worker
        processes drain the session queues round-robin — one request
        from the session at the head of the rotation, which then moves
        to the back.  ``max_inflight`` is ignored in this mode (the pool
        size is the concurrency cap).
        """
        self.sim = sim
        self.cpu = cpu
        self.cost = cost
        self.account = account
        self.name = name
        self.calls_served = 0
        self.obs = sim.obs
        self.tracer = sim.tracer
        self._c_calls = self.obs.counter("rpc.server", "calls", server=name)
        self._c_bytes_in = self.obs.counter("rpc.server", "bytes_in", server=name)
        self._c_bytes_out = self.obs.counter("rpc.server", "bytes_out", server=name)
        self._programs: Dict[Tuple[int, int], RpcProgram] = {}
        self._versions: Dict[int, Tuple[int, int]] = {}
        self._inflight = Semaphore(sim, max_inflight, name=f"{name}.inflight")
        self.drc = drc if drc is not None else DuplicateRequestCache(sim, name=name)
        self._transports: list = []
        # -- worker-pool state (workers=N mode only) -----------------------
        self.workers = workers
        #: per-session FIFO of (record, enqueued_at); insertion-ordered
        self._session_q: Dict[Transport, Deque[Tuple[bytes, float]]] = {}
        #: round-robin rotation of sessions with pending requests
        self._rr: Deque[Transport] = deque()
        self._rr_members: set = set()  # membership only, never iterated
        #: one token per queued request; workers block on get()
        self._work = Channel(sim, name=f"{name}.work")
        self._pending = 0
        self._workers_started = False
        #: profiling timeline: (virtual_time, pending_depth) sampled at
        #: every depth change, recorded only when ``sim.profile`` is set.
        self.queue_timeline: list = []

    # -- registration ------------------------------------------------------

    def register(self, program: RpcProgram) -> None:
        key = (program.prog, program.vers)
        if key in self._programs:
            raise RpcError(f"program {key} already registered")
        self._programs[key] = program
        low, high = self._versions.get(program.prog, (program.vers, program.vers))
        self._versions[program.prog] = (min(low, program.vers), max(high, program.vers))

    # -- serving -------------------------------------------------------------

    def serve_listener(self, listener) -> None:
        """Accept plain-socket connections from a Listener forever."""
        from repro.rpc.transport import StreamTransport

        def acceptor():
            while True:
                try:
                    sock = yield listener.accept()
                except Exception:
                    return
                self.serve_transport(StreamTransport(sock))

        self.sim.spawn(acceptor(), name=f"{self.name}.accept")

    def serve_transport(self, transport: Transport) -> None:
        """Serve RPC calls arriving on an established transport."""
        self._transports.append(transport)
        self.sim.spawn(self._connection_loop(transport), name=f"{self.name}.conn")

    def disconnect_all(self) -> None:
        """Tear down every active connection (crash injection)."""
        transports, self._transports = self._transports, []
        for transport in transports:
            sock = getattr(transport, "sock", None)
            if sock is not None and hasattr(sock, "abort"):
                sock.abort()
            else:
                try:
                    transport.close()
                except Exception:
                    pass

    def _connection_loop(self, transport: Transport):
        try:
            while True:
                try:
                    record = yield from transport.recv_record()
                except Exception:
                    return
                if record is None:
                    return
                if self.workers is None:
                    self.sim.spawn(
                        self._serve_call(transport, record), name=f"{self.name}.call"
                    )
                else:
                    self._enqueue(transport, record)
        finally:
            if transport in self._transports:
                self._transports.remove(transport)
            # Drop an exhausted session's (empty) queue; a queue with
            # pending work stays until the workers drain it.
            q = self._session_q.get(transport)
            if q is not None and not q:
                del self._session_q[transport]

    # -- worker-pool discipline --------------------------------------------

    def _enqueue(self, transport: Transport, record: bytes) -> None:
        """Queue one request on its session and post a work token."""
        if not self._workers_started:
            for i in range(self.workers):
                self.sim.spawn(self._worker(), name=f"{self.name}.worker{i}")
            self._workers_started = True
        q = self._session_q.get(transport)
        if q is None:
            q = self._session_q[transport] = deque()
        q.append((record, self.sim.now))
        if transport not in self._rr_members:
            self._rr.append(transport)
            self._rr_members.add(transport)
        self._pending += 1
        if self.sim.profile:
            self.queue_timeline.append((self.sim.now, self._pending))
        if self.obs.enabled:
            self.obs.histogram(
                "rpc.server", "queue_depth", server=self.name
            ).observe(self._pending)
            self.obs.gauge(
                "rpc.server", "sessions_queued", server=self.name
            ).set(len(self._rr))
        self._work.put(None)

    def _worker(self):
        """One pool worker: take the next session in the rotation, serve
        one of its requests, rotate it to the back."""
        while True:
            yield self._work.get()
            transport = self._rr.popleft()
            q = self._session_q[transport]
            record, enqueued_at = q.popleft()
            if q:
                self._rr.append(transport)  # fair rotation
            else:
                self._rr_members.discard(transport)
                if transport not in self._transports:
                    del self._session_q[transport]
            self._pending -= 1
            if self.sim.profile:
                self.queue_timeline.append((self.sim.now, self._pending))
            if self.obs.enabled:
                self.obs.histogram(
                    "rpc.server", "queue_wait", server=self.name
                ).observe(self.sim.now - enqueued_at)
            yield from self._handle_record(transport, record)

    # -- per-call ----------------------------------------------------------

    def _serve_call(self, transport: Transport, record: bytes):
        yield self._inflight.acquire()
        try:
            yield from self._handle_record(transport, record)
        finally:
            self._inflight.release()

    def _handle_record(self, transport: Transport, record: bytes):
        if self.obs.enabled:
            self._c_calls.inc()
            self._c_bytes_in.inc(len(record))
            start = self.sim.now
        if self.cpu is not None:
            yield from self.cpu.consume(self.cost.cost(len(record)), self.account)
        try:
            call = CallMessage.decode(record)
        except Exception:
            return  # undecodable header: drop, like a real server
        program = self._programs.get((call.prog, call.vers))
        key = None
        if program is not None and call.proc in program.non_idempotent:
            key = drc_key(call)
            state, value = self.drc.check(key)
            if state == WAIT:
                cached = yield value
                if cached is not None:
                    self._send_silently(transport, cached)
                    return
                # Original execution aborted; we were promoted to
                # run the call ourselves (entry stays in-progress).
            elif state == REPLAY:
                self._send_silently(transport, value)
                return
        with self.tracer.span(
            "rpc.serve", cat="rpc", server=self.name,
            prog=call.prog, proc=call.proc,
        ) if self.tracer.enabled else NULL_SPAN:
            try:
                reply = yield from self._dispatch(transport, call)
            except BaseException:
                if key is not None:
                    self.drc.abort(key)
                raise
            if self.cpu is not None:
                yield from self.cpu.consume(
                    self.cost.cost(len(reply.results)), self.account
                )
        if self.obs.enabled:
            self._c_bytes_out.inc(len(reply.results))
            self.obs.histogram(
                "rpc.server", "service_time", server=self.name, proc=call.proc
            ).observe(self.sim.now - start)
        encoded = reply.encode()
        if key is not None:
            self.drc.complete(key, encoded)
        try:
            transport.send_record(encoded)
        except Exception:
            return  # peer went away while we processed
        self.calls_served += 1

    @staticmethod
    def _send_silently(transport: Transport, record: bytes) -> None:
        try:
            transport.send_record(record)
        except Exception:
            pass  # peer went away; the retransmission loop covers it

    def _dispatch(self, transport: Transport, call: CallMessage):
        program = self._programs.get((call.prog, call.vers))
        if program is None:
            if call.prog in self._versions:
                low, high = self._versions[call.prog]
                reply = error_reply(call.xid, PROG_MISMATCH)
                reply.mismatch_low, reply.mismatch_high = low, high
                return reply
            return error_reply(call.xid, PROG_UNAVAIL)
        ctx = CallContext(transport, self)
        try:
            results = yield from program.handle(call.proc, call.args, call, ctx)
        except ProcUnavailable:
            return error_reply(call.xid, PROC_UNAVAIL)
        except Exception as exc:
            from repro.xdr import XdrError

            if isinstance(exc, XdrError):
                return error_reply(call.xid, GARBAGE_ARGS)
            return error_reply(call.xid, SYSTEM_ERR)
        if isinstance(results, ReplyMessage):
            return results  # handler built a full reply (proxies do this)
        return success_reply(call.xid, results)
