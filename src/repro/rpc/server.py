"""RPC server endpoint.

Accepts transports (plain sockets, TLS channels, SSH-tunnel exits — the
acceptor is pluggable), reads CALL records, dispatches to registered
programs, and writes replies.  Each call is served in its own process so
multiple outstanding requests from a pipelining client genuinely overlap,
bounded by an optional per-server concurrency cap (the analog of the
number of nfsd threads).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.obs import NULL_SPAN
from repro.rpc.costs import EndpointCost, FREE
from repro.rpc.drc import DuplicateRequestCache, REPLAY, WAIT, drc_key
from repro.rpc.errors import RpcError
from repro.rpc.messages import (
    CallMessage,
    GARBAGE_ARGS,
    PROC_UNAVAIL,
    PROG_MISMATCH,
    PROG_UNAVAIL,
    SYSTEM_ERR,
    ReplyMessage,
    error_reply,
    success_reply,
)
from repro.rpc.transport import Transport
from repro.sim.core import Simulator
from repro.sim.cpu import CPU
from repro.sim.sync import Semaphore


class RpcProgram:
    """Base class for an RPC program implementation.

    Subclasses set ``prog``/``vers`` and implement :meth:`handle` as a
    process generator returning the XDR-encoded result bytes.  Raising
    :class:`GarbageArgsError`-ish conditions is signalled by raising
    ``repro.xdr.XdrError`` (mapped to GARBAGE_ARGS) or any other
    exception (mapped to SYSTEM_ERR).
    """

    prog: int = 0
    vers: int = 0
    #: Procedure numbers whose replies must go through the server's
    #: duplicate-request cache (non-idempotent operations).
    non_idempotent: frozenset = frozenset()

    def handle(self, proc: int, args: bytes, call: CallMessage, ctx: "CallContext"):
        raise NotImplementedError  # pragma: no cover - interface


class CallContext:
    """Per-call context handed to program handlers."""

    __slots__ = ("transport", "server")

    def __init__(self, transport: Transport, server: "RpcServer"):
        self.transport = transport
        self.server = server

    @property
    def peer_certificate(self):
        """The authenticated peer certificate, if the transport has one."""
        return getattr(self.transport, "peer_certificate", None)


class ProcUnavailable(RpcError):
    """Handlers raise this for unknown procedure numbers."""


class RpcServer:
    """Dispatches calls arriving on accepted transports."""

    def __init__(
        self,
        sim: Simulator,
        cpu: Optional[CPU] = None,
        cost: EndpointCost = FREE,
        account: str = "rpc-server",
        max_inflight: int = 64,
        name: str = "rpc-server",
        drc: Optional[DuplicateRequestCache] = None,
    ):
        self.sim = sim
        self.cpu = cpu
        self.cost = cost
        self.account = account
        self.name = name
        self.calls_served = 0
        self.obs = sim.obs
        self.tracer = sim.tracer
        self._c_calls = self.obs.counter("rpc.server", "calls", server=name)
        self._c_bytes_in = self.obs.counter("rpc.server", "bytes_in", server=name)
        self._c_bytes_out = self.obs.counter("rpc.server", "bytes_out", server=name)
        self._programs: Dict[Tuple[int, int], RpcProgram] = {}
        self._versions: Dict[int, Tuple[int, int]] = {}
        self._inflight = Semaphore(sim, max_inflight, name=f"{name}.inflight")
        self.drc = drc if drc is not None else DuplicateRequestCache(sim, name=name)
        self._transports: list = []

    # -- registration ------------------------------------------------------

    def register(self, program: RpcProgram) -> None:
        key = (program.prog, program.vers)
        if key in self._programs:
            raise RpcError(f"program {key} already registered")
        self._programs[key] = program
        low, high = self._versions.get(program.prog, (program.vers, program.vers))
        self._versions[program.prog] = (min(low, program.vers), max(high, program.vers))

    # -- serving -------------------------------------------------------------

    def serve_listener(self, listener) -> None:
        """Accept plain-socket connections from a Listener forever."""
        from repro.rpc.transport import StreamTransport

        def acceptor():
            while True:
                try:
                    sock = yield listener.accept()
                except Exception:
                    return
                self.serve_transport(StreamTransport(sock))

        self.sim.spawn(acceptor(), name=f"{self.name}.accept")

    def serve_transport(self, transport: Transport) -> None:
        """Serve RPC calls arriving on an established transport."""
        self._transports.append(transport)
        self.sim.spawn(self._connection_loop(transport), name=f"{self.name}.conn")

    def disconnect_all(self) -> None:
        """Tear down every active connection (crash injection)."""
        transports, self._transports = self._transports, []
        for transport in transports:
            sock = getattr(transport, "sock", None)
            if sock is not None and hasattr(sock, "abort"):
                sock.abort()
            else:
                try:
                    transport.close()
                except Exception:
                    pass

    def _connection_loop(self, transport: Transport):
        try:
            while True:
                try:
                    record = yield from transport.recv_record()
                except Exception:
                    return
                if record is None:
                    return
                self.sim.spawn(
                    self._serve_call(transport, record), name=f"{self.name}.call"
                )
        finally:
            if transport in self._transports:
                self._transports.remove(transport)

    def _serve_call(self, transport: Transport, record: bytes):
        yield self._inflight.acquire()
        try:
            if self.obs.enabled:
                self._c_calls.inc()
                self._c_bytes_in.inc(len(record))
                start = self.sim.now
            if self.cpu is not None:
                yield from self.cpu.consume(self.cost.cost(len(record)), self.account)
            try:
                call = CallMessage.decode(record)
            except Exception:
                return  # undecodable header: drop, like a real server
            program = self._programs.get((call.prog, call.vers))
            key = None
            if program is not None and call.proc in program.non_idempotent:
                key = drc_key(call)
                state, value = self.drc.check(key)
                if state == WAIT:
                    cached = yield value
                    if cached is not None:
                        self._send_silently(transport, cached)
                        return
                    # Original execution aborted; we were promoted to
                    # run the call ourselves (entry stays in-progress).
                elif state == REPLAY:
                    self._send_silently(transport, value)
                    return
            with self.tracer.span(
                "rpc.serve", cat="rpc", server=self.name,
                prog=call.prog, proc=call.proc,
            ) if self.tracer.enabled else NULL_SPAN:
                try:
                    reply = yield from self._dispatch(transport, call)
                except BaseException:
                    if key is not None:
                        self.drc.abort(key)
                    raise
                if self.cpu is not None:
                    yield from self.cpu.consume(
                        self.cost.cost(len(reply.results)), self.account
                    )
            if self.obs.enabled:
                self._c_bytes_out.inc(len(reply.results))
                self.obs.histogram(
                    "rpc.server", "service_time", server=self.name, proc=call.proc
                ).observe(self.sim.now - start)
            encoded = reply.encode()
            if key is not None:
                self.drc.complete(key, encoded)
            try:
                transport.send_record(encoded)
            except Exception:
                return  # peer went away while we processed
            self.calls_served += 1
        finally:
            self._inflight.release()

    @staticmethod
    def _send_silently(transport: Transport, record: bytes) -> None:
        try:
            transport.send_record(record)
        except Exception:
            pass  # peer went away; the retransmission loop covers it

    def _dispatch(self, transport: Transport, call: CallMessage):
        program = self._programs.get((call.prog, call.vers))
        if program is None:
            if call.prog in self._versions:
                low, high = self._versions[call.prog]
                reply = error_reply(call.xid, PROG_MISMATCH)
                reply.mismatch_low, reply.mismatch_high = low, high
                return reply
            return error_reply(call.xid, PROG_UNAVAIL)
        ctx = CallContext(transport, self)
        try:
            results = yield from program.handle(call.proc, call.args, call, ctx)
        except ProcUnavailable:
            return error_reply(call.xid, PROC_UNAVAIL)
        except Exception as exc:
            from repro.xdr import XdrError

            if isinstance(exc, XdrError):
                return error_reply(call.xid, GARBAGE_ARGS)
            return error_reply(call.xid, SYSTEM_ERR)
        if isinstance(results, ReplyMessage):
            return results  # handler built a full reply (proxies do this)
        return success_reply(call.xid, results)
