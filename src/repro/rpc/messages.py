"""RPC CALL and REPLY message encode/decode (RFC 1831 §8).

Messages carry their procedure arguments/results as raw bytes: the
program layer (NFS) packs/unpacks those separately.  That split is what
lets the SGFS proxies forward and rewrite messages without understanding
every procedure — they only re-encode the credential when doing identity
mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.rpc.auth import OpaqueAuth, NULL_AUTH
from repro.rpc.errors import (
    RpcAuthError,
    RpcError,
    RpcGarbageArgs,
    RpcProcUnavail,
    RpcProgMismatch,
    RpcProgUnavail,
    RpcSystemError,
)
from repro.xdr import Packer, Unpacker, XdrError

RPC_VERSION = 2

# msg_type
CALL = 0
REPLY = 1

# reply_stat
MSG_ACCEPTED = 0
MSG_DENIED = 1

# accept_stat
SUCCESS = 0
PROG_UNAVAIL = 1
PROG_MISMATCH = 2
PROC_UNAVAIL = 3
GARBAGE_ARGS = 4
SYSTEM_ERR = 5

# reject_stat
RPC_MISMATCH = 0
AUTH_ERROR = 1

# auth_stat (subset)
AUTH_OK = 0
AUTH_BADCRED = 1
AUTH_REJECTEDCRED = 2
AUTH_BADVERF = 3
AUTH_TOOWEAK = 5


@dataclass
class CallMessage:
    xid: int
    prog: int
    vers: int
    proc: int
    cred: OpaqueAuth = NULL_AUTH
    verf: OpaqueAuth = NULL_AUTH
    args: bytes = b""

    def encode(self) -> bytes:
        p = Packer()
        p.pack_uint(self.xid)
        p.pack_enum(CALL)
        p.pack_uint(RPC_VERSION)
        p.pack_uint(self.prog)
        p.pack_uint(self.vers)
        p.pack_uint(self.proc)
        self.cred.pack(p)
        self.verf.pack(p)
        out = p.get_bytes() + self.args
        return out

    @classmethod
    def decode(cls, record: bytes) -> "CallMessage":
        u = Unpacker(record)
        xid = u.unpack_uint()
        mtype = u.unpack_enum()
        if mtype != CALL:
            raise RpcError(f"expected CALL, got msg_type={mtype}")
        rpcvers = u.unpack_uint()
        if rpcvers != RPC_VERSION:
            raise RpcError(f"unsupported RPC version {rpcvers}")
        prog = u.unpack_uint()
        vers = u.unpack_uint()
        proc = u.unpack_uint()
        cred = OpaqueAuth.unpack(u)
        verf = OpaqueAuth.unpack(u)
        args = bytes(record[u.position :])
        return cls(xid, prog, vers, proc, cred, verf, args)

    def with_cred(self, cred: OpaqueAuth) -> "CallMessage":
        """A copy with a replaced credential — used by identity mapping."""
        return CallMessage(self.xid, self.prog, self.vers, self.proc, cred, self.verf, self.args)


@dataclass
class ReplyMessage:
    xid: int
    reply_stat: int = MSG_ACCEPTED
    accept_stat: int = SUCCESS
    reject_stat: int = 0
    auth_stat: int = 0
    verf: OpaqueAuth = NULL_AUTH
    mismatch_low: int = 0
    mismatch_high: int = 0
    results: bytes = b""

    def encode(self) -> bytes:
        p = Packer()
        p.pack_uint(self.xid)
        p.pack_enum(REPLY)
        p.pack_enum(self.reply_stat)
        if self.reply_stat == MSG_ACCEPTED:
            self.verf.pack(p)
            p.pack_enum(self.accept_stat)
            if self.accept_stat == PROG_MISMATCH:
                p.pack_uint(self.mismatch_low)
                p.pack_uint(self.mismatch_high)
            return p.get_bytes() + (self.results if self.accept_stat == SUCCESS else b"")
        # MSG_DENIED
        p.pack_enum(self.reject_stat)
        if self.reject_stat == RPC_MISMATCH:
            p.pack_uint(self.mismatch_low)
            p.pack_uint(self.mismatch_high)
        else:  # AUTH_ERROR
            p.pack_enum(self.auth_stat)
        return p.get_bytes()

    @classmethod
    def decode(cls, record: bytes) -> "ReplyMessage":
        u = Unpacker(record)
        xid = u.unpack_uint()
        mtype = u.unpack_enum()
        if mtype != REPLY:
            raise RpcError(f"expected REPLY, got msg_type={mtype}")
        reply_stat = u.unpack_enum()
        msg = cls(xid, reply_stat)
        if reply_stat == MSG_ACCEPTED:
            msg.verf = OpaqueAuth.unpack(u)
            msg.accept_stat = u.unpack_enum()
            if msg.accept_stat == PROG_MISMATCH:
                msg.mismatch_low = u.unpack_uint()
                msg.mismatch_high = u.unpack_uint()
            elif msg.accept_stat == SUCCESS:
                msg.results = bytes(record[u.position :])
        elif reply_stat == MSG_DENIED:
            msg.reject_stat = u.unpack_enum()
            if msg.reject_stat == RPC_MISMATCH:
                msg.mismatch_low = u.unpack_uint()
                msg.mismatch_high = u.unpack_uint()
            else:
                msg.auth_stat = u.unpack_enum()
        else:
            raise RpcError(f"bad reply_stat {reply_stat}")
        return msg

    def raise_for_status(self) -> None:
        """Raise the matching RpcError subclass unless SUCCESS."""
        if self.reply_stat == MSG_DENIED:
            if self.reject_stat == RPC_MISMATCH:
                raise RpcError("RPC version rejected by server")
            raise RpcAuthError(self.auth_stat)
        if self.accept_stat == SUCCESS:
            return
        if self.accept_stat == PROG_UNAVAIL:
            raise RpcProgUnavail("program unavailable")
        if self.accept_stat == PROG_MISMATCH:
            raise RpcProgMismatch(self.mismatch_low, self.mismatch_high)
        if self.accept_stat == PROC_UNAVAIL:
            raise RpcProcUnavail("procedure unavailable")
        if self.accept_stat == GARBAGE_ARGS:
            raise RpcGarbageArgs("server could not decode arguments")
        raise RpcSystemError(f"server error (accept_stat={self.accept_stat})")


def success_reply(xid: int, results: bytes) -> ReplyMessage:
    return ReplyMessage(xid=xid, results=results)


def error_reply(xid: int, accept_stat: int) -> ReplyMessage:
    return ReplyMessage(xid=xid, accept_stat=accept_stat)


def denied_reply(xid: int, auth_stat: int) -> ReplyMessage:
    return ReplyMessage(
        xid=xid, reply_stat=MSG_DENIED, reject_stat=AUTH_ERROR, auth_stat=auth_stat
    )
