"""Endpoint CPU cost descriptors.

Every RPC endpoint (kernel NFS client/server, user-level proxy, SFS
daemon, SSH forwarder) charges its host CPU for handling a message.  The
charge has a fixed per-message part (syscall/context switch, header
processing) and a per-byte part (copies, checksums).  The concrete
constants live in :mod:`repro.core.calibration`; this module only defines
the shape so lower layers stay policy-free.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EndpointCost:
    """Seconds charged per message: ``per_msg + nbytes * per_byte``."""

    per_msg: float = 0.0
    per_byte: float = 0.0

    def cost(self, nbytes: int) -> float:
        return self.per_msg + nbytes * self.per_byte


FREE = EndpointCost(0.0, 0.0)


@dataclass(frozen=True)
class CostProfile:
    """A user-level process's per-message cost, split into two parts.

    ``latency`` elapses as wall time but does not occupy the CPU —
    kernel network-stack work, data copies across the user/kernel
    boundary, and scheduling delays, which the paper's user-CPU-time
    sampling does *not* see (its proxies run at 0.6 % CPU while slowing
    the file system 2×).  ``cpu`` is genuine user-mode compute, charged
    against the host core and visible in the utilization figures.
    """

    latency: EndpointCost = FREE
    cpu: EndpointCost = FREE


FREE_PROFILE = CostProfile()


def charge_profile(sim, cpu, profile: CostProfile, nbytes: int, account: str,
                   affinity=None):
    """Process generator: apply a CostProfile for one message.

    Wall latency elapses via a timeout (no core occupancy); the CPU part
    queues on the host core and lands in its ledger.  ``affinity`` pins
    the CPU part to one core of a multi-core CPU (see
    :meth:`repro.sim.cpu.CPU.consume`).
    """
    lat = profile.latency.cost(nbytes)
    if lat > 0:
        yield sim.timeout(lat)
    c = profile.cpu.cost(nbytes)
    if c > 0 and cpu is not None:
        yield from cpu.consume(c, account, affinity=affinity)


def batched_seal_cycles(suite, nbytes: int, nrecords: int) -> float:
    """Cycles to seal ``nrecords`` coalesced into one batch.

    The per-byte bulk work is irreducible, but the fixed per-record
    setup (MAC ipad/opad rounds, cipher IV/padding handling — the
    suite's ``record_setup_cycles``) is paid **once per batch** instead
    of once per record.  The unbatched legacy path charges no explicit
    setup — its per-record overhead is folded into the calibrated
    per-message proxy cost — so this model only applies when a channel
    runs with ``batch_records > 1``, keeping historic schedules
    byte-identical.
    """
    if nrecords < 1:
        return 0.0
    return suite.cycles_per_byte * nbytes + suite.record_setup_cycles
