"""ONC RPC (RFC 1831) over simulated stream transports.

Layers, bottom to top:

- :mod:`repro.rpc.record` — RFC 1831 §10 record marking over a byte
  stream (fragment headers, reassembly).
- :mod:`repro.rpc.transport` — the transport interface the stack runs
  on.  :class:`~repro.rpc.transport.StreamTransport` is the plain TCP
  flavor; the TLS channel (:mod:`repro.tls`) and SSH tunnel
  (:mod:`repro.sshtun`) provide drop-in secure flavors, which is exactly
  how the paper's ``clnt_tli_ssl_create`` slots under unmodified RPC
  code.
- :mod:`repro.rpc.auth` — AUTH_NONE / AUTH_SYS credentials.
- :mod:`repro.rpc.messages` — CALL/REPLY message encode/decode.
- :mod:`repro.rpc.client` / :mod:`repro.rpc.server` — endpoints.  The
  client supports multiple outstanding calls matched by xid (the SFS
  baseline pipelines; the SGFS prototype issues blocking calls — the
  paper's stated reason it trails SFS by ~15 % under IOzone).
"""

from repro.rpc.errors import RpcError, RpcAuthError, RpcGarbageArgs, RpcProgUnavail, RpcProcUnavail
from repro.rpc.record import RecordWriter, RecordReader
from repro.rpc.transport import Transport, StreamTransport
from repro.rpc.auth import OpaqueAuth, AuthSys, AUTH_NONE, AUTH_SYS
from repro.rpc.messages import CallMessage, ReplyMessage, MSG_ACCEPTED, MSG_DENIED, SUCCESS
from repro.rpc.client import RpcClient
from repro.rpc.server import RpcServer, RpcProgram
from repro.rpc.udp import UdpRpcClient, UdpRpcServer

__all__ = [
    "RpcError",
    "RpcAuthError",
    "RpcGarbageArgs",
    "RpcProgUnavail",
    "RpcProcUnavail",
    "RecordWriter",
    "RecordReader",
    "Transport",
    "StreamTransport",
    "OpaqueAuth",
    "AuthSys",
    "AUTH_NONE",
    "AUTH_SYS",
    "CallMessage",
    "ReplyMessage",
    "MSG_ACCEPTED",
    "MSG_DENIED",
    "SUCCESS",
    "RpcClient",
    "RpcServer",
    "RpcProgram",
    "UdpRpcClient",
    "UdpRpcServer",
]
