"""Duplicate-request cache (DRC) for RPC servers.

NFSv3 procedures like REMOVE, RENAME, MKDIR, and exclusive CREATE are
not idempotent: a retransmitted request that re-executes after the first
execution already committed returns a spurious error (NOENT/EXIST) or
double-applies a mutation.  Real NFS servers defend against this with a
duplicate-request cache (Juszczak, USENIX '89): the reply to each
non-idempotent call is retained, keyed by the caller's identity and xid,
and a retransmission replays the cached reply instead of re-executing.

This DRC implements both halves of that defence:

- **replay** — a duplicate of a *completed* call returns the cached
  encoded reply bytes verbatim.
- **park** — a duplicate of an *in-progress* call waits on the original
  execution instead of racing it, then replays its reply.

Entries age out on the simulated clock and the table is bounded by an
LRU cap (in-progress entries are never evicted).  The cache is a plain
object so every serving hop — kernel NFS server, UDP server, and both
SGFS proxies (which rewrite xids, defeating any end-to-end cache) — can
own its own instance.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.rpc.auth import AUTH_SYS, AuthSys
from repro.rpc.messages import CallMessage
from repro.sim.core import Event, Simulator

#: check() states
MISS = "miss"
REPLAY = "replay"
WAIT = "wait"


def drc_key(call: CallMessage) -> Tuple:
    """Cache key for a call: (client identity, xid, proc, args checksum).

    The identity part uses the AUTH_SYS (machinename, uid) pair, which
    is stable across reconnects — the xid alone is not unique across
    clients.  The args checksum guards against the (pathological) case
    of an xid being reused for a different request.
    """
    if call.cred.flavor == AUTH_SYS:
        try:
            sys = AuthSys.from_opaque(call.cred)
            ident: Tuple = (sys.machinename, sys.uid)
        except Exception:
            ident = ("-", call.cred.flavor)
    else:
        ident = ("-", call.cred.flavor)
    return (ident, call.xid, call.proc, zlib.crc32(call.args))


class _Entry:
    __slots__ = ("reply", "done_at", "waiters")

    def __init__(self):
        self.reply: Optional[bytes] = None  # None while in progress
        self.done_at: float = 0.0
        self.waiters: list = []


class DuplicateRequestCache:
    """Bounded, age-limited reply cache with duplicate parking."""

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 256,
        max_age: float = 120.0,
        name: str = "drc",
    ):
        self.sim = sim
        self.capacity = capacity
        self.max_age = max_age
        self.name = name
        # Plain attributes, not obs counters: misses happen on every
        # non-idempotent call of a fault-free run and eager registration
        # would perturb the golden registry snapshots.
        self.misses = 0
        self.replays = 0
        self.parks = 0
        self.evictions = 0
        self.expirations = 0
        self._entries: "OrderedDict[Tuple, _Entry]" = OrderedDict()
        self._c_replays = None
        self._c_parks = None

    def __len__(self) -> int:
        return len(self._entries)

    # -- core protocol ---------------------------------------------------

    def check(self, key: Tuple):
        """Classify an incoming call.

        Returns one of::

            (MISS, None)     -- new call; caller must execute it and then
                                call complete(key, encoded) or abort(key)
            (REPLAY, bytes)  -- duplicate of a completed call; send bytes
            (WAIT, Event)    -- duplicate of an in-progress call; yield
                                the event.  It fires with the encoded
                                reply bytes, or with None if the original
                                execution aborted (then re-execute).
        """
        self._expire()
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._entries[key] = _Entry()
            return (MISS, None)
        if entry.reply is not None:
            self.replays += 1
            if self.sim.obs.enabled:
                if self._c_replays is None:
                    self._c_replays = self.sim.obs.counter(
                        "rpc.drc", "replays", cache=self.name
                    )
                self._c_replays.inc()
            self._entries.move_to_end(key)
            return (REPLAY, entry.reply)
        self.parks += 1
        if self.sim.obs.enabled:
            if self._c_parks is None:
                self._c_parks = self.sim.obs.counter(
                    "rpc.drc", "parks", cache=self.name
                )
            self._c_parks.inc()
        ev = self.sim.event(name=f"drc-park:{self.name}")
        entry.waiters.append(ev)
        return (WAIT, ev)

    def complete(self, key: Tuple, encoded: bytes) -> None:
        """Record the encoded reply for a MISS and wake parked duplicates."""
        entry = self._entries.get(key)
        if entry is None:  # evicted/expired mid-flight; recreate
            entry = _Entry()
            self._entries[key] = entry
        entry.reply = encoded
        entry.done_at = self.sim.now
        self._entries.move_to_end(key)
        waiters, entry.waiters = entry.waiters, []
        for ev in waiters:
            ev.succeed(encoded)
        self._trim()

    def abort(self, key: Tuple) -> None:
        """The MISS execution failed before producing a reply.

        Exactly one parked waiter (if any) is promoted to become the new
        executor — it wakes with None and must run the call itself; the
        entry stays in-progress for the remaining waiters.  With no
        waiters the entry is dropped so a later retransmission re-executes.
        """
        entry = self._entries.get(key)
        if entry is None or entry.reply is not None:
            return
        if entry.waiters:
            entry.waiters.pop(0).succeed(None)
        else:
            del self._entries[key]

    # -- bounds ----------------------------------------------------------

    def _trim(self) -> None:
        while len(self._entries) > self.capacity:
            victim = None
            for key, entry in self._entries.items():
                if entry.reply is not None:  # never evict in-progress
                    victim = key
                    break
            if victim is None:
                return
            del self._entries[victim]
            self.evictions += 1

    def _expire(self) -> None:
        now = self.sim.now
        stale = [
            key
            for key, entry in self._entries.items()
            if entry.reply is not None and now - entry.done_at > self.max_age
        ]
        for key in stale:
            del self._entries[key]
            self.expirations += 1
