"""RPC error types surfaced to callers."""


class RpcError(Exception):
    """Base class for RPC-layer failures."""


class RpcAuthError(RpcError):
    """The server rejected the call's credentials (MSG_DENIED/AUTH_ERROR)."""

    def __init__(self, stat: int, message: str = ""):
        super().__init__(message or f"authentication error (auth_stat={stat})")
        self.stat = stat


class RpcProgUnavail(RpcError):
    """PROG_UNAVAIL: the program is not registered at the server."""


class RpcProgMismatch(RpcError):
    """PROG_MISMATCH: unsupported program version."""

    def __init__(self, low: int, high: int):
        super().__init__(f"program version unsupported (server supports {low}..{high})")
        self.low = low
        self.high = high


class RpcProcUnavail(RpcError):
    """PROC_UNAVAIL: unknown procedure number."""


class RpcGarbageArgs(RpcError):
    """GARBAGE_ARGS: the server could not decode the arguments."""


class RpcSystemError(RpcError):
    """SYSTEM_ERR: server-side failure while processing the call."""


class RpcTransportError(RpcError):
    """The transport died under the call (connection reset/closed).

    Distinct from server-reported errors: callers with hard-mount
    semantics retry these after reconnecting, like a kernel NFS client.
    """


class RpcTimeout(RpcTransportError):
    """No reply arrived within the caller's retransmission budget.

    Raised by clients that retransmit in-flight requests on a timer
    (``timeout=``/``retrans=``); the transport itself may still be
    alive.  Subclasses :class:`RpcTransportError` so hard-mount callers
    treat a silent server exactly like a dead connection."""
