"""RPC client endpoint.

Bound to one (program, version) over one transport, like a TI-RPC client
handle.  Supports any number of outstanding calls: replies are matched
to callers by xid, which is what lets the SFS baseline pipeline requests
while the SGFS prototype's blocking callers simply await one at a time.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.obs import NULL_SPAN
from repro.rpc.auth import NULL_AUTH, OpaqueAuth
from repro.rpc.costs import EndpointCost, FREE
from repro.rpc.errors import RpcError, RpcTransportError
from repro.rpc.messages import CallMessage, ReplyMessage
from repro.rpc.transport import Transport
from repro.sim.core import Event, Simulator
from repro.sim.cpu import CPU

_xid_counter = itertools.count(0x10_0000)


class RpcClient:
    """Issues calls for one program/version over a transport."""

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        prog: int,
        vers: int,
        cpu: Optional[CPU] = None,
        cost: EndpointCost = FREE,
        account: str = "rpc-client",
    ):
        self.sim = sim
        self.transport = transport
        self.prog = prog
        self.vers = vers
        self.cpu = cpu
        self.cost = cost
        self.account = account
        self.calls_sent = 0
        self.obs = sim.obs
        self.tracer = sim.tracer
        self._c_calls = self.obs.counter("rpc.client", "calls", account=account)
        self._c_bytes_out = self.obs.counter("rpc.client", "bytes_out", account=account)
        self._c_bytes_in = self.obs.counter("rpc.client", "bytes_in", account=account)
        self._pending: Dict[int, Event] = {}
        self._pump = sim.spawn(self._reply_pump(), name=f"rpc-pump:{prog}/{vers}")

    # -- calling ---------------------------------------------------------

    def call(self, proc: int, args: bytes, cred: OpaqueAuth = NULL_AUTH):
        """Process generator: perform one call, return the result bytes.

        Raises an :class:`RpcError` subclass on a non-SUCCESS reply, and
        :class:`RpcError` if the transport dies first.
        """
        reply = yield from self.call_detailed(proc, args, cred)
        reply.raise_for_status()
        return reply.results

    def call_detailed(self, proc: int, args: bytes, cred: OpaqueAuth = NULL_AUTH):
        """Like :meth:`call` but returns the full :class:`ReplyMessage`."""
        xid = next(_xid_counter)
        msg = CallMessage(xid, self.prog, self.vers, proc, cred=cred, args=args)
        record = msg.encode()
        observing = self.obs.enabled
        if observing:
            self._c_calls.inc()
            self._c_bytes_out.inc(len(record))
            start = self.sim.now
        with self.tracer.span("rpc.call", cat="rpc", prog=self.prog,
                              proc=proc) if self.tracer.enabled else NULL_SPAN:
            if self.cpu is not None:
                yield from self.cpu.consume(self.cost.cost(len(record)), self.account)
            ev = self.sim.event(name=f"rpc-reply:{xid}")
            self._pending[xid] = ev
            self.calls_sent += 1
            try:
                self.transport.send_record(record)
            except Exception as exc:
                self._pending.pop(xid, None)
                raise RpcTransportError(f"send failed: {exc}") from exc
            reply: ReplyMessage = yield ev
            if self.cpu is not None:
                yield from self.cpu.consume(
                    self.cost.cost(len(reply.results)), self.account
                )
        if observing:
            self._c_bytes_in.inc(len(reply.results))
            self.obs.histogram("rpc.client", "latency", proc=proc).observe(
                self.sim.now - start
            )
        return reply

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    # -- reply pump --------------------------------------------------------

    def _reply_pump(self):
        try:
            while True:
                record = yield from self.transport.recv_record()
                if record is None:
                    break
                try:
                    reply = ReplyMessage.decode(record)
                except RpcError:
                    continue  # not a reply; ignore (robustness)
                ev = self._pending.pop(reply.xid, None)
                if ev is not None:
                    ev.succeed(reply)
                # else: duplicate/unsolicited reply — drop
        except Exception as exc:
            self._fail_all(RpcTransportError(f"transport failure: {exc}"))
            return
        self._fail_all(RpcTransportError("connection closed with calls outstanding"))

    def _fail_all(self, exc: RpcTransportError) -> None:
        pending, self._pending = self._pending, {}
        for ev in pending.values():
            ev.fail(exc)

    def close(self) -> None:
        self.transport.close()
