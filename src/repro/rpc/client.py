"""RPC client endpoint.

Bound to one (program, version) over one transport, like a TI-RPC client
handle.  Supports any number of outstanding calls: replies are matched
to callers by xid, which is what lets the SFS baseline pipeline requests
while the SGFS prototype's blocking callers simply await one at a time.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.obs import NULL_SPAN
from repro.rpc.auth import NULL_AUTH, OpaqueAuth
from repro.rpc.costs import EndpointCost, FREE
from repro.rpc.errors import RpcError, RpcTimeout, RpcTransportError
from repro.rpc.messages import CallMessage, ReplyMessage
from repro.rpc.transport import Transport
from repro.sim.core import Event, Simulator
from repro.sim.cpu import CPU
from repro.sim.process import any_of

_xid_counter = itertools.count(0x10_0000)


class RpcClient:
    """Issues calls for one program/version over a transport."""

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        prog: int,
        vers: int,
        cpu: Optional[CPU] = None,
        cost: EndpointCost = FREE,
        account: str = "rpc-client",
    ):
        self.sim = sim
        self.transport = transport
        self.prog = prog
        self.vers = vers
        self.cpu = cpu
        self.cost = cost
        self.account = account
        self.calls_sent = 0
        self.retransmissions = 0
        self._c_retrans = None
        self.obs = sim.obs
        self.tracer = sim.tracer
        self._c_calls = self.obs.counter("rpc.client", "calls", account=account)
        self._c_bytes_out = self.obs.counter("rpc.client", "bytes_out", account=account)
        self._c_bytes_in = self.obs.counter("rpc.client", "bytes_in", account=account)
        self._pending: Dict[int, Event] = {}
        #: set when the reply pump dies; new calls fail fast instead of
        #: sending into a connection nobody reads from anymore
        self._dead: Optional[RpcTransportError] = None
        self._pump = sim.spawn(self._reply_pump(), name=f"rpc-pump:{prog}/{vers}")

    # -- calling ---------------------------------------------------------

    @staticmethod
    def next_xid() -> int:
        """Allocate a fresh xid from the shared counter.

        Callers that retransmit across reconnects (the NFS hard-mount
        loop) pin one xid up front so the server's duplicate-request
        cache recognises the retry as the same request.
        """
        return next(_xid_counter)

    def call(
        self,
        proc: int,
        args: bytes,
        cred: OpaqueAuth = NULL_AUTH,
        xid: Optional[int] = None,
        timeout: Optional[float] = None,
        retrans: int = 0,
    ):
        """Process generator: perform one call, return the result bytes.

        Raises an :class:`RpcError` subclass on a non-SUCCESS reply, and
        :class:`RpcError` if the transport dies first.  With ``timeout``
        set, the in-flight request is retransmitted (same xid, same
        record) up to ``retrans`` times on a doubling timer before
        :class:`RpcTimeout` is raised.
        """
        reply = yield from self.call_detailed(
            proc, args, cred, xid=xid, timeout=timeout, retrans=retrans
        )
        reply.raise_for_status()
        return reply.results

    def call_detailed(
        self,
        proc: int,
        args: bytes,
        cred: OpaqueAuth = NULL_AUTH,
        xid: Optional[int] = None,
        timeout: Optional[float] = None,
        retrans: int = 0,
    ):
        """Like :meth:`call` but returns the full :class:`ReplyMessage`."""
        if self._dead is not None:
            raise RpcTransportError(f"transport is dead: {self._dead}")
        if xid is None:
            xid = next(_xid_counter)
        msg = CallMessage(xid, self.prog, self.vers, proc, cred=cred, args=args)
        record = msg.encode()
        observing = self.obs.enabled
        if observing:
            self._c_calls.inc()
            self._c_bytes_out.inc(len(record))
            start = self.sim.now
        with self.tracer.span("rpc.call", cat="rpc", prog=self.prog,
                              proc=proc) if self.tracer.enabled else NULL_SPAN:
            if self.cpu is not None:
                yield from self.cpu.consume(self.cost.cost(len(record)), self.account)
            ev = self.sim.event(name=f"rpc-reply:{xid}")
            self._pending[xid] = ev
            self.calls_sent += 1
            try:
                self.transport.send_record(record)
            except Exception as exc:
                self._pending.pop(xid, None)
                raise RpcTransportError(f"send failed: {exc}") from exc
            if timeout is None:
                reply: ReplyMessage = yield ev
            else:
                reply = yield from self._await_with_retrans(
                    ev, xid, record, timeout, retrans
                )
            if self.cpu is not None:
                yield from self.cpu.consume(
                    self.cost.cost(len(reply.results)), self.account
                )
        if observing:
            self._c_bytes_in.inc(len(reply.results))
            self.obs.histogram("rpc.client", "latency", proc=proc).observe(
                self.sim.now - start
            )
        return reply

    def _await_with_retrans(
        self, ev: Event, xid: int, record: bytes, timeout: float, retrans: int
    ):
        """Wait for the reply, retransmitting the same record on timeout.

        The xid stays pending across retransmissions, so whichever copy
        the server answers first completes the call; the reply pump
        drops the later duplicates.
        """
        t = timeout
        sent = 0
        while True:
            idx, value = yield any_of(self.sim, [ev, self.sim.timeout(t)])
            if idx == 0:
                return value
            if sent >= retrans:
                self._pending.pop(xid, None)
                raise RpcTimeout(
                    f"no reply for xid={xid:#x} after {sent + 1} transmissions"
                )
            sent += 1
            self.retransmissions += 1
            if self.obs.enabled:
                if self._c_retrans is None:
                    self._c_retrans = self.obs.counter(
                        "rpc.client", "retransmissions", account=self.account
                    )
                self._c_retrans.inc()
            try:
                self.transport.send_record(record)
            except Exception as exc:
                self._pending.pop(xid, None)
                raise RpcTransportError(f"send failed: {exc}") from exc
            t *= 2.0

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    # -- reply pump --------------------------------------------------------

    def _reply_pump(self):
        try:
            while True:
                record = yield from self.transport.recv_record()
                if record is None:
                    break
                try:
                    reply = ReplyMessage.decode(record)
                except RpcError:
                    continue  # not a reply; ignore (robustness)
                ev = self._pending.pop(reply.xid, None)
                if ev is not None:
                    ev.succeed(reply)
                # else: duplicate/unsolicited reply — drop
        except Exception as exc:
            self._fail_all(RpcTransportError(f"transport failure: {exc}"))
            return
        self._fail_all(RpcTransportError("connection closed with calls outstanding"))

    def _fail_all(self, exc: RpcTransportError) -> None:
        self._dead = exc
        pending, self._pending = self._pending, {}
        for ev in pending.values():
            ev.fail(exc)

    def close(self) -> None:
        self.transport.close()
