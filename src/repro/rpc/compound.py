"""Compound RPC envelope — many calls, one round trip.

GridFTP-style pipelining hides WAN latency by keeping many requests in
flight; the compound envelope goes one step further and amortizes the
per-record transport charge too.  A compound CALL carries a list of
fully encoded member CALL records as its args; the matching REPLY
carries the member REPLY records in the same order (an undecodable or
failed member is returned as an empty opaque so the others survive).

Two properties keep this safe on a lossy WAN:

- member xids are allocated (and the member records encoded) exactly
  once, *before* the envelope is first transmitted, so a retransmitted
  envelope replays byte-identical members and the server-side duplicate
  request cache recognizes every one of them;
- members are executed strictly in list order on the server, so a
  same-seed run issues, executes, and completes members in the same
  order regardless of how often the envelope itself was retransmitted.

The envelope program number lives outside the transient range so it can
never collide with NFS or the SGFS control programs.
"""

from __future__ import annotations

from typing import List

from repro.xdr import Packer, Unpacker

#: private-use program number for the proxy-to-proxy compound envelope
COMPOUND_PROGRAM = 0x2F5F_0001
COMPOUND_VERSION = 1

#: the only procedure: execute the member calls in order
COMPOUND_EXEC = 1

#: hard cap on members per envelope — bounds server-side burst work and
#: keeps a corrupted count field from allocating unbounded memory
MAX_MEMBERS = 256


def pack_members(records: List[bytes]) -> bytes:
    """Encode a list of member records (used for both args and results)."""
    if len(records) > MAX_MEMBERS:
        raise ValueError(f"compound of {len(records)} members exceeds {MAX_MEMBERS}")
    p = Packer()
    p.pack_uint(len(records))
    for record in records:
        p.pack_opaque(record)
    return p.get_bytes()


def unpack_members(data: bytes) -> List[bytes]:
    """Decode a member list; raises XdrError on truncation."""
    u = Unpacker(data)
    count = u.unpack_uint()
    if count > MAX_MEMBERS:
        raise ValueError(f"compound of {count} members exceeds {MAX_MEMBERS}")
    return [u.unpack_opaque() for _ in range(count)]
