"""RPC authentication flavors (RFC 1831 §9).

NFS v2/v3 deployments near-universally use AUTH_SYS (UNIX-style uid/gid
credentials), which is exactly the weakness the paper's introduction
calls out: the credentials are plain integers anyone can forge.  SGFS
keeps AUTH_SYS in the inner RPC messages — the proxies still need the
uid/gid for identity mapping — but moves *actual* authentication to the
certificate handshake of the secure transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.xdr import Packer, Unpacker, XdrError

AUTH_NONE = 0
AUTH_SYS = 1  # a.k.a. AUTH_UNIX

#: RFC 1831 limit on opaque auth bodies.
MAX_AUTH_BODY = 400


@dataclass(frozen=True)
class OpaqueAuth:
    """A (flavor, body) pair as it appears on the wire."""

    flavor: int = AUTH_NONE
    body: bytes = b""

    def pack(self, p: Packer) -> None:
        if len(self.body) > MAX_AUTH_BODY:
            raise XdrError(f"auth body {len(self.body)} exceeds {MAX_AUTH_BODY}")
        p.pack_enum(self.flavor)
        p.pack_opaque(self.body)

    @classmethod
    def unpack(cls, u: Unpacker) -> "OpaqueAuth":
        flavor = u.unpack_enum()
        body = u.unpack_opaque(max_len=MAX_AUTH_BODY)
        return cls(flavor, body)


NULL_AUTH = OpaqueAuth()


@dataclass(frozen=True)
class AuthSys:
    """AUTH_SYS credential contents."""

    stamp: int = 0
    machinename: str = "localhost"
    uid: int = 65534  # nobody
    gid: int = 65534
    gids: List[int] = field(default_factory=list)

    def to_opaque(self) -> OpaqueAuth:
        p = Packer()
        p.pack_uint(self.stamp)
        p.pack_string(self.machinename)
        p.pack_uint(self.uid)
        p.pack_uint(self.gid)
        p.pack_array(self.gids, p.pack_uint)
        return OpaqueAuth(AUTH_SYS, p.get_bytes())

    @classmethod
    def from_opaque(cls, auth: OpaqueAuth) -> "AuthSys":
        if auth.flavor != AUTH_SYS:
            raise XdrError(f"not an AUTH_SYS credential (flavor={auth.flavor})")
        u = Unpacker(auth.body)
        stamp = u.unpack_uint()
        machinename = u.unpack_string(max_len=255)
        uid = u.unpack_uint()
        gid = u.unpack_uint()
        gids = u.unpack_array(u.unpack_uint, max_len=16)
        u.assert_done()
        return cls(stamp, machinename, uid, gid, gids)

    def with_identity(self, uid: int, gid: int) -> "AuthSys":
        """A copy with remapped uid/gid — the proxy's identity mapping."""
        return AuthSys(self.stamp, self.machinename, uid, gid, list(self.gids))
