"""Transport abstraction the RPC endpoints run over.

A transport moves whole *records* (already RPC-framed byte blobs are the
transport's payload unit).  The plain flavor frames with RFC 1831 record
marking over a simulated TCP socket.  Secure flavors — the TLS channel of
:mod:`repro.tls` and the SSH tunnel of :mod:`repro.sshtun` — implement
the same three methods, so the RPC client/server and the SGFS proxies
are completely agnostic to which one they ride on.  This mirrors the
paper's secure-RPC library, where ``clnt_tli_ssl_create`` swaps the
transport under unmodified RPC code.
"""

from __future__ import annotations

from typing import Optional

from repro.net.socket import SimSocket
from repro.rpc.record import RecordReader, RecordWriter, DEFAULT_FRAGMENT_SIZE


class Transport:
    """Interface: record-oriented, ordered, reliable."""

    def send_record(self, record: bytes) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def recv_record(self):  # pragma: no cover - interface
        """Process generator returning the next record, or None on EOF."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def closed(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class StreamTransport(Transport):
    """Record marking directly over a simulated TCP socket (no security).

    This is what native NFS and the plain GFS proxies use, and it is the
    inner layer every secure transport wraps.
    """

    def __init__(self, sock: SimSocket, fragment_size: int = DEFAULT_FRAGMENT_SIZE):
        self.sock = sock
        self._writer = RecordWriter(sock, fragment_size)
        self._reader = RecordReader()
        self._eof = False

    def send_record(self, record: bytes) -> None:
        self._writer.write(record)

    def recv_record(self):
        """Process generator: next full record, or None on orderly EOF."""
        while True:
            rec = self._reader.next_record()
            if rec is not None:
                return rec
            if self._eof:
                return None
            chunk = yield from self.sock.recv()
            if chunk == b"":
                self._eof = True
                if self._reader.pending == 0:
                    return None
            else:
                self._reader.feed(chunk)

    def close(self) -> None:
        self.sock.close()

    @property
    def closed(self) -> bool:
        return self.sock.closed

    @property
    def peer_certificate(self) -> Optional[object]:
        """Plain transports carry no authentication."""
        return None
