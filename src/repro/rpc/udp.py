"""ONC RPC over UDP: retransmission and the duplicate-request cache.

Classic NFS transport semantics (pre-TCP-default era), implemented so
the secure RPC library genuinely "supports RPC over connectionless and
connection-oriented transports" as the paper's §4.1 describes:

- the client retransmits after an (exponentially backed-off) timeout
  until a reply with the matching xid arrives or retries are exhausted,
- the server keeps a *duplicate request cache* keyed by
  (source, xid): a retransmitted request whose reply was already
  computed is answered from the cache instead of re-executing — vital
  for non-idempotent procedures (REMOVE, RENAME, CREATE-exclusive),
- payloads may be protected by a :class:`~repro.tls.dtls.DtlsChannel`
  work-alike via the ``protector`` hook (seal/open per datagram).
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Optional, Tuple

from repro.net.datagram import DatagramEndpoint
from repro.rpc.auth import NULL_AUTH, OpaqueAuth
from repro.rpc.errors import RpcError, RpcTransportError
from repro.rpc.messages import CallMessage, ReplyMessage
from repro.sim.core import Event, Simulator
from repro.sim.process import any_of

_udp_xids = iter(range(0x5000_0000, 0x7FFF_FFFF))


class UdpRpcClient:
    """Call one (program, version) at a fixed server address over UDP."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: DatagramEndpoint,
        server_host: str,
        server_port: int,
        prog: int,
        vers: int,
        timeo: float = 0.7,
        retrans: int = 5,
        protector=None,
    ):
        self.sim = sim
        self.endpoint = endpoint
        self.server = (server_host, server_port)
        self.prog = prog
        self.vers = vers
        self.timeo = timeo
        self.retrans = retrans
        self.protector = protector
        self.retransmissions = 0
        self._pending: Dict[int, Event] = {}
        sim.spawn(self._reply_pump(), name="udp-rpc-pump")

    def call(self, proc: int, args: bytes, cred: OpaqueAuth = NULL_AUTH):
        """Process generator: one call with retransmission."""
        xid = next(_udp_xids)
        record = CallMessage(xid, self.prog, self.vers, proc, cred=cred, args=args).encode()
        timeout = self.timeo
        for attempt in range(self.retrans + 1):
            ev = self.sim.event(name=f"udp-reply:{xid}")
            self._pending[xid] = ev
            # seal per transmission: each retransmission is a fresh DTLS
            # datagram (new sequence number), not a wire-level replay
            wire = record if self.protector is None else self.protector.seal(record)
            self.endpoint.sendto(self.server[0], self.server[1], wire)
            if attempt > 0:
                self.retransmissions += 1
            which, value = yield any_of(
                self.sim, [ev, self.sim.timeout(timeout)]
            )
            self._pending.pop(xid, None)
            if which == 0:  # the reply arrived
                reply: ReplyMessage = value
                reply.raise_for_status()
                return reply.results
            timeout *= 2.0  # classic exponential backoff
        raise RpcTransportError(
            f"no reply from {self.server[0]}:{self.server[1]} after "
            f"{self.retrans + 1} transmissions"
        )

    def _reply_pump(self):
        while True:
            try:
                _src, payload = yield from self.endpoint.recvfrom()
            except Exception:
                return
            if self.protector is not None:
                try:
                    payload = self.protector.open(payload)
                except Exception:
                    continue  # forged/corrupted datagram: drop
            try:
                reply = ReplyMessage.decode(payload)
            except RpcError:
                continue
            ev = self._pending.pop(reply.xid, None)
            if ev is not None:
                ev.succeed(reply)
            # else: duplicate reply from a retransmitted request — drop


class UdpRpcServer:
    """Serves one program over a datagram endpoint, with a DRC.

    Built on the shared :class:`repro.rpc.drc.DuplicateRequestCache`:
    completed replies are replayed from the cache and a duplicate of an
    *in-progress* call parks on the original execution instead of racing
    it (the classic UDP failure mode: retransmission arrives while the
    first copy is still executing, and both run).
    """

    def __init__(
        self,
        sim: Simulator,
        endpoint: DatagramEndpoint,
        program,
        drc_size: int = 256,
        protector=None,
    ):
        from repro.rpc.drc import DuplicateRequestCache

        self.sim = sim
        self.endpoint = endpoint
        self.program = program
        self.protector = protector
        self.drc = DuplicateRequestCache(
            sim, capacity=drc_size, name=f"udp:{endpoint.host.name}:{endpoint.port}"
        )
        self.calls_executed = 0
        sim.spawn(self._serve_loop(), name="udp-rpc-server")

    @property
    def drc_hits(self) -> int:
        """Duplicates answered without re-execution (replayed or parked)."""
        return self.drc.replays + self.drc.parks

    def _serve_loop(self):
        while True:
            try:
                src, payload = yield from self.endpoint.recvfrom()
            except Exception:
                return
            self.sim.spawn(self._serve_one(src, payload), name="udp-rpc-call")

    def _serve_one(self, src, payload: bytes):
        from repro.rpc.drc import REPLAY, WAIT

        if self.protector is not None:
            try:
                payload = self.protector.open(payload)
            except Exception:
                return  # fails authentication: drop silently
        try:
            call = CallMessage.decode(payload)
        except Exception:
            return
        # UDP identity is the source address; every procedure goes
        # through the cache (classic connectionless DRC behavior).
        key = (src, call.xid, call.proc, zlib.crc32(call.args))
        state, value = self.drc.check(key)
        if state == WAIT:
            cached = yield value
            if cached is not None:
                self._send(src, cached)
                return
            # original execution died; we were promoted to run the call
        elif state == REPLAY:
            self._send(src, value)
            return
        from repro.rpc.server import CallContext

        class _NullTransport:
            peer_certificate = None

        ctx = CallContext(_NullTransport(), self)
        try:
            results = yield from self.program.handle(call.proc, call.args, call, ctx)
        except Exception:
            from repro.rpc.messages import SYSTEM_ERR, error_reply

            encoded = error_reply(call.xid, SYSTEM_ERR).encode()
            self.drc.complete(key, encoded)
            self._send(src, encoded)
            return
        from repro.rpc.messages import success_reply

        reply = results if isinstance(results, ReplyMessage) else success_reply(
            call.xid, results
        )
        encoded = reply.encode()
        self.calls_executed += 1
        self.drc.complete(key, encoded)
        self._send(src, encoded)

    # CallContext expects a ``cpu`` attribute on the server object
    cpu = None

    def _send(self, src, encoded: bytes) -> None:
        if self.protector is not None:
            encoded = self.protector.seal(encoded)
        try:
            self.endpoint.sendto(src[0], src[1], encoded)
        except Exception:
            pass
