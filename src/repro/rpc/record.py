"""Record marking for RPC over stream transports (RFC 1831 §10).

A record is sent as one or more fragments.  Each fragment is preceded by
a 4-byte big-endian header: the top bit marks the final fragment of the
record, the remaining 31 bits give the fragment length.  The reader
reassembles records from an arbitrary chunking of the byte stream, which
our simulated sockets genuinely produce.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.rpc.errors import RpcError

_HDR = struct.Struct(">I")
LAST_FRAGMENT = 0x80000000
MAX_FRAGMENT = 0x7FFFFFFF

#: Fragment size used when splitting large records.  Real stacks use the
#: write buffer size; anything works as long as both codecs agree on the
#: framing, and a sub-record size exercises reassembly in tests.
DEFAULT_FRAGMENT_SIZE = 1 << 20


def frame_record(record: bytes, fragment_size: int = DEFAULT_FRAGMENT_SIZE) -> bytes:
    """Encode one record into its on-the-wire framed form."""
    if fragment_size < 1 or fragment_size > MAX_FRAGMENT:
        raise RpcError(f"bad fragment size {fragment_size}")
    if len(record) == 0:
        return _HDR.pack(LAST_FRAGMENT)
    parts: List[bytes] = []
    for off in range(0, len(record), fragment_size):
        chunk = record[off : off + fragment_size]
        last = off + fragment_size >= len(record)
        parts.append(_HDR.pack((LAST_FRAGMENT if last else 0) | len(chunk)))
        parts.append(chunk)
    return b"".join(parts)


class RecordWriter:
    """Frames records onto a transport-like object with a ``send``."""

    def __init__(self, sink, fragment_size: int = DEFAULT_FRAGMENT_SIZE):
        self._sink = sink
        self.fragment_size = fragment_size

    def write(self, record: bytes) -> None:
        self._sink.send(frame_record(record, self.fragment_size))


class RecordReader:
    """Incremental record reassembler.

    Feed it raw stream bytes with :meth:`feed`; pull completed records
    with :meth:`next_record`.  This push design lets one connection
    process interleave reading with other work.
    """

    def __init__(self, max_record: int = 256 * 1024 * 1024):
        self._buf = bytearray()
        self._records: List[bytes] = []
        self._current = bytearray()
        self._need: Optional[int] = None  # bytes left in current fragment
        self._last = False
        self.max_record = max_record

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)
        self._drain()

    def _drain(self) -> None:
        while True:
            if self._need is None:
                if len(self._buf) < 4:
                    return
                hdr = _HDR.unpack(bytes(self._buf[:4]))[0]
                del self._buf[:4]
                self._last = bool(hdr & LAST_FRAGMENT)
                self._need = hdr & MAX_FRAGMENT
                if len(self._current) + self._need > self.max_record:
                    raise RpcError(
                        f"record exceeds {self.max_record} bytes; corrupt stream?"
                    )
            take = min(self._need, len(self._buf))
            if take:
                self._current.extend(self._buf[:take])
                del self._buf[:take]
                self._need -= take
            if self._need == 0:
                self._need = None
                if self._last:
                    self._records.append(bytes(self._current))
                    self._current.clear()
            else:
                return  # need more stream data

    def next_record(self) -> Optional[bytes]:
        """Pop a completed record, or None if none is ready."""
        if self._records:
            return self._records.pop(0)
        return None

    @property
    def pending(self) -> int:
        """Completed records waiting to be popped."""
        return len(self._records)
