"""Credential portal: single-sign-on delegation for session churn.

The GridCertLib shape (PAPERS.md): users authenticate **once** to a
portal holding (or fetching) their long-term grid credential; every
subsequent session presents a *short-lived delegated proxy certificate*
the portal issues on demand, so long-term keys never travel and an
expired session costs one cheap re-delegation instead of a new
enrollment.

:class:`CredentialPortal` is a :class:`~repro.services.endpoint.ServiceEndpoint`
with one SOAP action:

``IssueProxy``
    The caller's signed envelope proves the identity (WS-Security, like
    every management call).  The portal looks up the enrolled long-term
    credential for that identity, issues a proxy certificate with the
    requested (capped) lifetime, optionally **limited** (restricted:
    no ACL/grant management, no further delegation), seals the fresh
    credential to a registered recipient service's public key, and
    returns the blob base64-encoded — exactly the wire form
    FSS ``CreateClientSession`` unwraps.

Determinism and units: all randomness comes from the portal's DRBG
(forked per issuance in enrollment order), lifetimes and timestamps are
virtual seconds, and issuance charges
:data:`~repro.gsi.proxy.DELEGATION_CPU_SECONDS` of portal CPU plus the
usual per-message security cost — same-seed runs issue bit-identical
credentials at bit-identical times.
"""

from __future__ import annotations

import base64
from typing import Dict, Iterable, Optional

from repro.crypto.drbg import Drbg
from repro.crypto.hybrid import seal
from repro.gsi.certs import Certificate, Credential
from repro.gsi.proxy import (
    DEFAULT_PROXY_LIFETIME,
    DELEGATION_CPU_SECONDS,
    issue_proxy_certificate,
)
from repro.services.endpoint import ServiceEndpoint
from repro.services.soap import SoapFault
from repro.sim.core import Simulator

#: Hard ceiling on the lifetime a portal will delegate, regardless of
#: what the request asks for: restricted *short-lived* certs are the
#: SSO contract (virtual seconds; 12 h mirrors the globus default).
MAX_PORTAL_LIFETIME = DEFAULT_PROXY_LIFETIME


class CredentialPortal(ServiceEndpoint):
    """Issues short-lived (optionally restricted) proxy credentials.

    ``enroll`` and ``register_recipient`` are local administration
    APIs, standing in for the out-of-band SSO enrollment (Shibboleth in
    GridCertLib) and service-certificate directory.
    """

    def __init__(
        self,
        sim: Simulator,
        host,
        port: int,
        credential: Credential,
        trust_anchors: Iterable[Certificate],
        default_lifetime: float = 3600.0,
        max_lifetime: float = MAX_PORTAL_LIFETIME,
        key_bits: int = 1024,
        rng: Optional[Drbg] = None,
    ):
        super().__init__(
            sim, host, port, credential, trust_anchors, name="portal"
        )
        self.default_lifetime = default_lifetime
        self.max_lifetime = max_lifetime
        self.key_bits = key_bits
        self.rng = rng or Drbg("credential-portal")
        #: DN string -> enrolled long-term credential
        self._users: Dict[str, Credential] = {}
        #: recipient name -> service certificate to seal blobs to
        self._recipients: Dict[str, Certificate] = {}
        #: DN string -> issuance count (first = login, rest = renewals)
        self._issued: Dict[str, int] = {}
        self.proxies_issued = 0
        self.renewals = 0
        self.denials = 0
        self.register("IssueProxy", self._issue_proxy)
        if sim.obs.enabled:
            sim.obs.add_collector(
                "portal",
                lambda: {
                    "proxies_issued": self.proxies_issued,
                    "renewals": self.renewals,
                    "denials": self.denials,
                    "enrolled_users": len(self._users),
                },
            )

    # -- administration (local API) ----------------------------------------

    def enroll(self, credential: Credential) -> None:
        """Store a user's long-term credential for later delegation."""
        self._users[str(credential.dn)] = credential

    def register_recipient(self, name: str, certificate: Certificate) -> None:
        """Register a service certificate blobs may be sealed to."""
        self._recipients[name] = certificate

    # -- actions -------------------------------------------------------------

    def _issue_proxy(self, identity, params):
        dn_text = str(identity)
        user = self._users.get(dn_text)
        if user is None:
            self.denials += 1
            raise SoapFault("Security", f"{identity} is not enrolled")
        recipient_name = params.get("recipient", "")
        recipient = self._recipients.get(recipient_name)
        if recipient is None:
            self.denials += 1
            raise SoapFault(
                "Client", f"unknown recipient service {recipient_name!r}"
            )
        lifetime = float(params.get("lifetime", self.default_lifetime))
        if lifetime <= 0:
            self.denials += 1
            raise SoapFault("Client", f"bad lifetime {lifetime!r}")
        lifetime = min(lifetime, self.max_lifetime)
        limited = params.get("limited", "no") == "yes"
        n = self._issued.get(dn_text, 0)
        self._issued[dn_text] = n + 1

        def issue():
            # The RSA keygen + user-key signature are the measurable
            # cost of a login/renewal (cf. the full TLS handshake).
            yield from self.host.cpu.consume(DELEGATION_CPU_SECONDS, "services")
            proxy = issue_proxy_certificate(
                user, now=self.sim.now, lifetime=lifetime,
                rng=self.rng.fork(f"issue:{dn_text}:{n}"),
                key_bits=self.key_bits, limited=limited,
            )
            self.proxies_issued += 1
            if n:
                self.renewals += 1
            blob = base64.b64encode(
                seal(proxy.to_bytes(), recipient.public_key,
                     self.rng.fork(f"seal:{dn_text}:{n}"))
            ).decode("ascii")
            return {
                "credential": blob,
                "not_after": repr(proxy.certificate.not_after),
                "limited": "yes" if limited else "no",
            }

        return issue()
