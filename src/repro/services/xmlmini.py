"""Minimal XML: enough for SOAP envelopes with a canonical form.

Supports elements, attributes, text content and nesting — no namespaces
beyond literal prefixes, no entities beyond the five standard ones, no
comments/PIs.  ``canonical()`` produces a deterministic byte encoding
(sorted attributes, no insignificant whitespace) which is what the
WS-Security-style signature covers; ``parse`` round-trips it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class XmlError(Exception):
    """Malformed XML input."""


_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;"), ('"', "&quot;"), ("'", "&apos;")]


def _escape(text: str) -> str:
    for raw, esc in _ESCAPES:
        text = text.replace(raw, esc)
    return text


def _unescape(text: str) -> str:
    for raw, esc in reversed(_ESCAPES):
        text = text.replace(esc, raw)
    return text


class XmlElement:
    """An element with attributes, text, and child elements."""

    def __init__(self, tag: str, text: str = "", attrs: Optional[Dict[str, str]] = None):
        if not tag or any(c in tag for c in " <>&\"'"):
            raise XmlError(f"bad tag {tag!r}")
        self.tag = tag
        self.text = text
        self.attrs: Dict[str, str] = dict(attrs or {})
        self.children: List["XmlElement"] = []

    # -- building ------------------------------------------------------------

    def add(self, child: "XmlElement") -> "XmlElement":
        self.children.append(child)
        return child

    def element(self, tag: str, text: str = "", **attrs: str) -> "XmlElement":
        """Create, append and return a child element."""
        return self.add(XmlElement(tag, text, attrs))

    # -- navigation -----------------------------------------------------------

    def find(self, tag: str) -> Optional["XmlElement"]:
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> List["XmlElement"]:
        return [c for c in self.children if c.tag == tag]

    def require(self, tag: str) -> "XmlElement":
        found = self.find(tag)
        if found is None:
            raise XmlError(f"<{self.tag}> has no <{tag}> child")
        return found

    def get_text(self, tag: str, default: str = "") -> str:
        found = self.find(tag)
        return found.text if found is not None else default

    # -- serialization ------------------------------------------------------------

    def canonical(self) -> bytes:
        """Deterministic encoding: sorted attributes, no whitespace."""
        parts = [f"<{self.tag}"]
        for key in sorted(self.attrs):
            parts.append(f' {key}="{_escape(self.attrs[key])}"')
        parts.append(">")
        parts.append(_escape(self.text))
        for child in self.children:
            parts.append(child.canonical().decode("utf-8"))
        parts.append(f"</{self.tag}>")
        return "".join(parts).encode("utf-8")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XmlElement {self.tag} attrs={self.attrs} children={len(self.children)}>"


def parse(data: bytes | str) -> XmlElement:
    """Parse canonical-form XML back into elements."""
    text = data.decode("utf-8") if isinstance(data, bytes) else data
    pos = 0

    def parse_element() -> Tuple[XmlElement, int]:
        nonlocal pos
        if pos >= len(text) or text[pos] != "<":
            raise XmlError(f"expected '<' at offset {pos}")
        end = text.find(">", pos)
        if end < 0:
            raise XmlError("unterminated tag")
        header = text[pos + 1 : end]
        if header.endswith("/"):
            raise XmlError("self-closing tags not in canonical form")
        pos = end + 1
        tag, attrs = _parse_header(header)
        elem = XmlElement(tag, attrs=attrs)
        # text content up to the next tag
        nxt = text.find("<", pos)
        if nxt < 0:
            raise XmlError(f"unclosed element <{tag}>")
        elem.text = _unescape(text[pos:nxt])
        pos = nxt
        while True:
            if text.startswith("</", pos):
                close = text.find(">", pos)
                if close < 0:
                    raise XmlError("unterminated close tag")
                if text[pos + 2 : close] != tag:
                    raise XmlError(
                        f"mismatched close: <{tag}> vs </{text[pos + 2 : close]}>"
                    )
                pos = close + 1
                return elem, pos
            child, pos = parse_element()
            elem.children.append(child)
            nxt = text.find("<", pos)
            if nxt < 0:
                raise XmlError(f"unclosed element <{tag}>")
            pos = nxt

    def _parse_header(header: str) -> Tuple[str, Dict[str, str]]:
        parts = header.split(" ")
        tag = parts[0]
        attrs: Dict[str, str] = {}
        for chunk in parts[1:]:
            if not chunk:
                continue
            if "=" not in chunk:
                raise XmlError(f"bad attribute {chunk!r}")
            key, _, value = chunk.partition("=")
            if len(value) < 2 or value[0] != '"' or value[-1] != '"':
                raise XmlError(f"attribute value must be quoted: {chunk!r}")
            attrs[key] = _unescape(value[1:-1])
        return tag, attrs

    elem, pos = parse_element()
    if text[pos:].strip():
        raise XmlError("trailing content after document element")
    return elem
