"""SOAP-like envelopes with WS-Security-style protection.

An envelope carries an action, a body of simple key/value parameters,
and a Security header holding:

- a ``BinarySecurityToken``: the sender's certificate (and chain) in
  base64 of our canonical encoding,
- a ``Timestamp`` and ``Nonce`` (replay protection),
- a ``Signature`` over the canonical bytes of Body + Timestamp + Nonce,
  made with the sender's RSA key.

``verify_envelope`` checks the signature, validates the certificate
chain against trust anchors, enforces timestamp freshness, and returns
the authenticated (base) grid identity — proxy certificates resolve to
the delegating user, which is how the DSS acts "as" a user toward the
FSSs.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.gsi.certs import Certificate, Credential, ValidationError, validate_chain
from repro.gsi.names import DistinguishedName
from repro.gsi.proxy import effective_identity
from repro.services.xmlmini import XmlElement, XmlError, parse

#: Maximum allowed clock skew / message age in virtual seconds.
MAX_MESSAGE_AGE = 300.0


class SoapFault(Exception):
    """A fault reply or a security failure while processing a message."""

    def __init__(self, code: str, reason: str):
        super().__init__(f"{code}: {reason}")
        self.code = code
        self.reason = reason


@dataclass
class SoapEnvelope:
    """A parsed/built SOAP message."""

    action: str
    body: Dict[str, str] = field(default_factory=dict)
    timestamp: float = 0.0
    nonce: str = ""
    signature: bytes = b""
    certificate: Optional[Certificate] = None
    chain: Tuple[Certificate, ...] = ()

    # -- XML mapping ---------------------------------------------------------

    def _body_element(self) -> XmlElement:
        body = XmlElement("Body")
        act = body.element("Action", self.action)
        params = body.element("Parameters")
        for key in sorted(self.body):
            params.element("Param", self.body[key], name=key)
        return body

    def _signed_bytes(self) -> bytes:
        signed = XmlElement("SignedInfo")
        signed.element("Timestamp", repr(self.timestamp))
        signed.element("Nonce", self.nonce)
        signed.add(self._body_element())
        return signed.canonical()

    def to_xml(self) -> bytes:
        env = XmlElement("Envelope")
        header = env.element("Header")
        sec = header.element("Security")
        if self.certificate is not None:
            token = sec.element("BinarySecurityToken")
            token.element(
                "Certificate",
                base64.b64encode(self.certificate.to_bytes()).decode("ascii"),
            )
            for cert in self.chain:
                token.element(
                    "ChainCertificate",
                    base64.b64encode(cert.to_bytes()).decode("ascii"),
                )
        sec.element("Timestamp", repr(self.timestamp))
        sec.element("Nonce", self.nonce)
        if self.signature:
            sec.element(
                "SignatureValue", base64.b64encode(self.signature).decode("ascii")
            )
        env.add(self._body_element())
        return env.canonical()

    @classmethod
    def from_xml(cls, data: bytes) -> "SoapEnvelope":
        try:
            env = parse(data)
        except XmlError as exc:
            raise SoapFault("Client", f"malformed envelope: {exc}") from None
        if env.tag != "Envelope":
            raise SoapFault("Client", f"not an Envelope: <{env.tag}>")
        sec = env.require("Header").require("Security")
        body = env.require("Body")
        action = body.get_text("Action")
        params: Dict[str, str] = {}
        params_el = body.find("Parameters")
        if params_el is not None:
            for p in params_el.find_all("Param"):
                params[p.attrs.get("name", "")] = p.text
        cert = None
        chain: Tuple[Certificate, ...] = ()
        token = sec.find("BinarySecurityToken")
        if token is not None:
            cert_el = token.find("Certificate")
            if cert_el is not None:
                cert = Certificate.from_bytes(base64.b64decode(cert_el.text))
            chain = tuple(
                Certificate.from_bytes(base64.b64decode(c.text))
                for c in token.find_all("ChainCertificate")
            )
        sig_el = sec.find("SignatureValue")
        signature = base64.b64decode(sig_el.text) if sig_el is not None else b""
        try:
            timestamp = float(sec.get_text("Timestamp", "0"))
        except ValueError:
            raise SoapFault("Client", "bad timestamp") from None
        return cls(
            action=action, body=params, timestamp=timestamp,
            nonce=sec.get_text("Nonce"), signature=signature,
            certificate=cert, chain=chain,
        )


def sign_envelope(
    envelope: SoapEnvelope, credential: Credential, now: float, nonce: str
) -> SoapEnvelope:
    """Attach timestamp, nonce, token and signature."""
    envelope.timestamp = now
    envelope.nonce = nonce
    envelope.certificate = credential.certificate
    envelope.chain = tuple(credential.chain)
    envelope.signature = credential.keypair.sign(envelope._signed_bytes())
    return envelope


def verify_envelope(
    envelope: SoapEnvelope,
    trust_anchors: Iterable[Certificate],
    now: float,
    seen_nonces: Optional[set] = None,
) -> DistinguishedName:
    """Authenticate a received envelope; returns the base grid identity.

    Raises :class:`SoapFault` on any violation: missing token, bad
    signature, invalid chain, stale timestamp, replayed nonce.
    """
    if envelope.certificate is None:
        raise SoapFault("Security", "no security token")
    if not envelope.signature:
        raise SoapFault("Security", "unsigned message")
    if not envelope.certificate.public_key.verify(
        envelope._signed_bytes(), envelope.signature
    ):
        raise SoapFault("Security", "signature verification failed")
    try:
        identity = validate_chain(
            envelope.certificate, envelope.chain, trust_anchors, now
        )
    except ValidationError as exc:
        raise SoapFault("Security", f"certificate rejected: {exc}") from None
    if abs(now - envelope.timestamp) > MAX_MESSAGE_AGE:
        raise SoapFault("Security", "message timestamp outside freshness window")
    if seen_nonces is not None:
        if envelope.nonce in seen_nonces:
            raise SoapFault("Security", "replayed nonce")
        seen_nonces.add(envelope.nonce)
    # Delegation: a proxy certificate authenticates as the base identity.
    if envelope.certificate.is_proxy:
        return effective_identity(envelope.certificate.subject)
    return identity


def fault_envelope(code: str, reason: str) -> SoapEnvelope:
    return SoapEnvelope(action="Fault", body={"code": code, "reason": reason})
