"""Data Scheduler Service (paper §3.2, §4.4).

The DSS coordinates SGFS sessions across the grid:

- it authenticates requesting users (their SOAP messages are signed
  with GSI proxy certificates, which resolve to the base identity),
- it authorizes them against its **per-filesystem ACL database**, from
  which it *generates the gridmap files* the server-side proxies
  enforce,
- it acts on the user's behalf toward the client- and server-side FSSs
  using the user's **delegated credential** (signed requests + the
  encrypted credential blob forwarded to the client FSS so the data
  channel can authenticate as the user),
- it hands back a :class:`SessionHandle` naming the loopback port the
  job's kernel NFS client mounts.
"""

from __future__ import annotations

import base64
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.crypto.drbg import Drbg
from repro.crypto.hybrid import seal
from repro.gsi.certs import Certificate, Credential
from repro.gsi.gridmap import Gridmap
from repro.gsi.names import DistinguishedName
from repro.gsi.proxy import is_limited_proxy
from repro.services.endpoint import ServiceClient, ServiceEndpoint
from repro.services.soap import SoapFault
from repro.sim.core import Simulator

_session_counter = itertools.count(1)


@dataclass(frozen=True)
class SessionHandle:
    """What a user needs to mount an established session."""

    session_id: str
    client_host: str
    client_port: int
    server_session_id: str
    client_session_id: str
    suite: str


@dataclass
class _FilesystemRecord:
    """One exported filesystem registered with the DSS."""

    name: str
    server_host: str
    fss_port: int
    #: DN string -> local account (the DSS ACL database, §4.4)
    acl: Dict[str, str] = field(default_factory=dict)


class DataSchedulerService(ServiceEndpoint):
    """The grid's session scheduler.

    Access-sharing actions (``GrantAccess``/``RevokeAccess``) mutate
    the per-filesystem ACL database and are refused to **limited**
    proxies: a restricted session credential may open sessions but
    never widen anyone's rights.  Session actions remain open to any
    authenticated (possibly limited-proxy) identity.

    Determinism and units: decisions are pure data over the signed
    envelope; virtual time is the per-message
    :data:`~repro.services.endpoint.MESSAGE_SECURITY_CPU` (seconds)
    plus the downstream FSS calls made while orchestrating a session.
    """

    def __init__(
        self,
        sim: Simulator,
        host,
        port: int,
        credential: Credential,
        trust_anchors: Iterable[Certificate],
        client_fss: Dict[str, Tuple[str, int, Certificate]],
    ):
        """``client_fss`` maps a compute host name to its FSS
        (host, port, service certificate) — the certificate is needed to
        seal delegated credentials to that FSS."""

        def authorize(identity, action: str, envelope) -> bool:
            # Limited proxies may create/destroy their own sessions but
            # must not mutate the ACL database (GSI limited-proxy
            # semantics: no privilege management).
            if action in ("GrantAccess", "RevokeAccess"):
                cert = envelope.certificate
                if cert is not None and is_limited_proxy(cert.subject):
                    return False
            return True

        super().__init__(
            sim, host, port, credential, trust_anchors,
            name="dss", authorizer=authorize,
        )
        self.filesystems: Dict[str, _FilesystemRecord] = {}
        self.client_fss = dict(client_fss)
        self.sessions: Dict[str, SessionHandle] = {}
        self._svc_client = ServiceClient(sim, host, credential, trust_anchors)
        self.register("CreateSession", self._create_session)
        self.register("DestroySession", self._destroy_session)
        self.register("GrantAccess", self._grant_access)
        self.register("RevokeAccess", self._revoke_access)

    # -- administration (local API; tests use it for setup) ---------------------

    def register_filesystem(
        self, name: str, server_host: str, fss_port: int,
        acl: Optional[Dict[str, str]] = None,
    ) -> None:
        self.filesystems[name] = _FilesystemRecord(
            name=name, server_host=server_host, fss_port=fss_port, acl=dict(acl or {})
        )

    def gridmap_for(self, fs_name: str) -> Gridmap:
        """Generate the gridmap the server proxy will enforce (§4.4)."""
        record = self.filesystems[fs_name]
        gm = Gridmap()
        for dn_text, account in record.acl.items():
            gm.add(DistinguishedName.parse(dn_text), account)
        return gm

    # -- actions -----------------------------------------------------------------

    def _grant_access(self, identity, params):
        """Add ``dn`` → ``account`` to a filesystem's ACL database.

        Bumps the generated gridmap on the next session start; running
        proxies pick the change up through ``ReconfigureSession``.
        """
        fs = self._fs(params)
        # Only already-authorized users may share further (simplified
        # owner model: any mapped user can grant).
        if str(identity) not in fs.acl:
            raise SoapFault("Security", f"{identity} has no rights on {fs.name}")
        fs.acl[params["dn"]] = params["account"]
        return {"granted": params["dn"]}

    def _revoke_access(self, identity, params):
        """Remove ``dn`` from a filesystem's ACL database (idempotent)."""
        fs = self._fs(params)
        if str(identity) not in fs.acl:
            raise SoapFault("Security", f"{identity} has no rights on {fs.name}")
        fs.acl.pop(params.get("dn", ""), None)
        return {"revoked": params.get("dn", "")}

    def _fs(self, params) -> _FilesystemRecord:
        name = params.get("filesystem", "")
        record = self.filesystems.get(name)
        if record is None:
            raise SoapFault("Client", f"unknown filesystem {name!r}")
        return record

    def _create_session(self, identity, params):
        """Orchestrate a session: server proxy, then client proxy.

        Two sequential FSS calls (each a full signed SOAP exchange —
        the dominant virtual-time cost of session establishment besides
        the data channel's TLS handshake).
        """
        record = self._fs(params)
        account = record.acl.get(str(identity))
        if account is None:
            raise SoapFault(
                "Security", f"{identity} is not authorized on {record.name}"
            )
        client_host = params.get("client_host", "")
        if client_host not in self.client_fss:
            raise SoapFault("Client", f"no FSS registered for host {client_host!r}")
        suite = params.get("suite", "aes-256-cbc-sha1")
        disk_cache = params.get("disk_cache", "off")
        credential_blob = params.get("credential", "")
        if not credential_blob:
            raise SoapFault("Client", "missing delegated credential")

        def orchestrate():
            # 1. server side: start the proxy with the generated gridmap.
            server_reply = yield from self._svc_client.call(
                record.server_host, record.fss_port, "CreateServerSession",
                {
                    "suite": suite,
                    "gridmap": self.gridmap_for(record.name).dump(),
                },
            )
            # 2. client side: hand over the delegated credential
            #    (re-sealed by the *user* to the client FSS's key — the
            #    DSS never sees the private key in the clear).
            fss_host, fss_port, _fss_cert = self.client_fss[client_host]
            client_reply = yield from self._svc_client.call(
                fss_host, fss_port, "CreateClientSession",
                {
                    "credential": credential_blob,
                    "suite": suite,
                    "server_host": server_reply["host"],
                    "server_port": server_reply["port"],
                    "disk_cache": disk_cache,
                },
            )
            session_id = f"sgfs-session-{next(_session_counter)}"
            handle = SessionHandle(
                session_id=session_id,
                client_host=client_reply["host"],
                client_port=int(client_reply["port"]),
                server_session_id=server_reply["session_id"],
                client_session_id=client_reply["session_id"],
                suite=suite,
            )
            self.sessions[session_id] = handle
            return {
                "session_id": session_id,
                "client_host": handle.client_host,
                "client_port": str(handle.client_port),
            }

        return orchestrate()

    def _destroy_session(self, identity, params):
        session_id = params.get("session_id", "")
        handle = self.sessions.pop(session_id, None)
        if handle is None:
            raise SoapFault("Client", f"unknown session {session_id!r}")

        def orchestrate():
            fss_host, fss_port, _cert = self.client_fss[handle.client_host]
            yield from self._svc_client.call(
                fss_host, fss_port, "DestroySession",
                {"session_id": handle.client_session_id},
            )
            record = next(
                (f for f in self.filesystems.values()), None
            )
            if record is not None:
                yield from self._svc_client.call(
                    record.server_host, record.fss_port, "DestroySession",
                    {"session_id": handle.server_session_id},
                )
            return {"destroyed": session_id}

        return orchestrate()


def seal_credential_for(
    credential: Credential, recipient_cert: Certificate, rng: Drbg
) -> str:
    """Seal a delegated credential to a service's certificate (base64)."""
    return base64.b64encode(
        seal(credential.to_bytes(), recipient_cert.public_key, rng)
    ).decode("ascii")
