"""File System Service — runs on every client and server (paper §3.2).

The FSS is the hands of the management plane: it configures and starts
the local SGFS proxies on request from the DSS (or directly from a
user).  A server-side FSS starts server proxies with a supplied gridmap
and cipher suite; a client-side FSS starts client proxies, receiving the
user's *delegated credential* as an encrypted blob and handing it to the
proxy's TLS layer — the proxies then "use this certificate to establish
a secure file system session" (§3.2).
"""

from __future__ import annotations

import base64
import itertools
from typing import Dict, Iterable, Optional

from repro.crypto.drbg import Drbg
from repro.crypto.hybrid import open_sealed
from repro.gsi.certs import Certificate, Credential
from repro.gsi.gridmap import Gridmap
from repro.gsi.proxy import is_limited_proxy
from repro.proxy.accounts import AccountsDb
from repro.proxy.client_proxy import ProxyCacheConfig, SgfsClientProxy
from repro.proxy.server_proxy import SgfsServerProxy
from repro.rpc.transport import StreamTransport
from repro.services.endpoint import ServiceEndpoint
from repro.services.soap import SoapFault
from repro.sim.core import Simulator
from repro.tls import SecurityConfig
from repro.tls.channel import client_handshake
from repro.vfs.disk import DiskModel
from repro.vfs.fs import VirtualFS

_session_ids = itertools.count(100)


class FileSystemService(ServiceEndpoint):
    """One host's FSS.

    Construct with either server-side wiring (``fs``, ``accounts``,
    ``nfs_port``, ``host_credential``) or client-side wiring (or both;
    a host can play both roles).

    Authorization is two-layered: WS-Security signature verification
    establishes the *base* identity (proxy chains collapse to the
    long-term DN), then the authorizer applies action policy — ACL
    management needs an admin DN, and a **limited** proxy (the
    restricted credentials the portal issues for data sessions) is
    refused ACL management outright, whoever it delegates for.

    Determinism and units: every decision is pure data over the signed
    envelope; the only virtual time charged is the per-message
    :data:`~repro.services.endpoint.MESSAGE_SECURITY_CPU` (seconds) and
    whatever the started proxies consume.  Same-seed runs produce
    bit-identical session ports, decisions, and schedules.
    """

    def __init__(
        self,
        sim: Simulator,
        host,
        port: int,
        credential: Credential,
        trust_anchors: Iterable[Certificate],
        # server-side wiring
        fs: Optional[VirtualFS] = None,
        accounts: Optional[AccountsDb] = None,
        nfs_port: int = 2049,
        host_credential: Optional[Credential] = None,
        # shared
        proxy_cost=None,
        cache_disk_factory=None,
        authorized_admins: Optional[set] = None,
        max_delegation_lifetime: Optional[float] = None,
    ):
        def authorize(identity, action: str, envelope) -> bool:
            # Session-management actions are open to any authenticated
            # grid user (per-session authz happens in the DSS / gridmap);
            # ACL-management actions require an admin DN and are never
            # allowed to a *limited* proxy, even an admin's.
            if action in ("SetAcl", "RemoveAcl"):
                cert = envelope.certificate
                if cert is not None and is_limited_proxy(cert.subject):
                    return False
                if authorized_admins is not None:
                    return str(identity) in authorized_admins
            return True

        super().__init__(
            sim, host, port, credential, trust_anchors,
            name=f"fss:{host.name}", authorizer=authorize,
        )
        self.fs = fs
        self.accounts = accounts
        self.nfs_port = nfs_port
        self.host_credential = host_credential
        self.proxy_cost = proxy_cost
        self.cache_disk_factory = cache_disk_factory
        #: refuse delegated credentials valid longer than this many
        #: virtual seconds (None = no ceiling) — long-lived delegation
        #: defeats the point of short-lived SSO proxies
        self.max_delegation_lifetime = max_delegation_lifetime
        self.server_sessions: Dict[str, SgfsServerProxy] = {}
        self.client_sessions: Dict[str, SgfsClientProxy] = {}

        self.register("CreateServerSession", self._create_server_session)
        self.register("CreateClientSession", self._create_client_session)
        self.register("DestroySession", self._destroy_session)
        self.register("ReconfigureSession", self._reconfigure_session)
        self.register("SetAcl", self._set_acl)
        self.register("RemoveAcl", self._remove_acl)

    # -- server side -----------------------------------------------------------

    def _create_server_session(self, identity, params):
        if self.fs is None or self.accounts is None or self.host_credential is None:
            raise SoapFault("Server", "this FSS has no server-side wiring")
        suite = params.get("suite", "aes-256-cbc-sha1")
        gridmap = Gridmap.parse(params.get("gridmap", ""))
        port = int(params.get("port", 0)) or (24000 + next(_session_ids))
        security = SecurityConfig.for_session(
            self.host_credential, self.trust_anchors, suite,
            rng=Drbg(f"fss-server-session-{port}"),
        )
        proxy = SgfsServerProxy(
            self.sim, self.host, port, self.nfs_port,
            accounts=self.accounts, gridmap=gridmap, fs=self.fs,
            security=security,
            cost=self.proxy_cost if self.proxy_cost is not None else _default_cost(),
        )
        proxy.start()
        session_id = f"srv-{port}"
        self.server_sessions[session_id] = proxy
        return {"session_id": session_id, "port": str(port), "host": self.host.name}

    # -- client side ------------------------------------------------------------

    def _create_client_session(self, identity, params):
        """Start a client proxy with a delegated credential.

        The sealed blob is unwrapped with this FSS's private key, its
        chain validated to a trust anchor **at the current virtual
        time** (an expired delegation fails here, forcing the caller to
        re-delegate), and its remaining lifetime checked against
        :attr:`max_delegation_lifetime`.
        """
        blob_b64 = params.get("credential")
        if not blob_b64:
            raise SoapFault("Client", "missing delegated credential")
        try:
            blob = open_sealed(base64.b64decode(blob_b64), self.credential.keypair)
            user_cred = Credential.from_bytes(blob)
        except Exception as exc:
            raise SoapFault("Security", f"cannot unwrap credential: {exc}") from None
        # Possession of a delegated credential is the authority (GSI
        # semantics): validate its chain up to a trusted CA.  The caller
        # may be the user directly, or the DSS acting on the user's
        # behalf (§3.2).
        from repro.gsi.certs import ValidationError, validate_chain

        try:
            validate_chain(
                user_cred.certificate, user_cred.chain, self.trust_anchors, self.sim.now
            )
        except ValidationError as exc:
            raise SoapFault("Security", f"delegated credential invalid: {exc}") from None
        if self.max_delegation_lifetime is not None:
            remaining = user_cred.certificate.not_after - self.sim.now
            if remaining > self.max_delegation_lifetime:
                raise SoapFault(
                    "Security",
                    f"delegated credential lives {remaining:g}s, "
                    f"limit is {self.max_delegation_lifetime:g}s",
                )
        suite = params.get("suite", "aes-256-cbc-sha1")
        server_host = params["server_host"]
        server_port = int(params["server_port"])
        port = int(params.get("port", 0)) or (25000 + next(_session_ids))
        disk_cache = params.get("disk_cache", "off") == "on"
        client_cfg = SecurityConfig.for_session(
            user_cred, self.trust_anchors, suite,
            rng=Drbg(f"fss-client-session-{port}"),
        )
        sim, host = self.sim, self.host

        def upstream_factory():
            sock = yield from host.connect(server_host, server_port)
            channel = yield from client_handshake(
                sim, sock, client_cfg, cpu=host.cpu, account="proxy"
            )
            return channel

        disk = None
        if disk_cache and self.cache_disk_factory is not None:
            disk = self.cache_disk_factory()
        proxy = SgfsClientProxy(
            sim, host, port,
            upstream_factory=upstream_factory,
            cost=self.proxy_cost if self.proxy_cost is not None else _default_cost(),
            cache=ProxyCacheConfig(enabled=disk_cache),
            disk=disk,
        )

        def handler_body():
            yield from proxy.start()
            session_id = f"cli-{port}"
            self.client_sessions[session_id] = proxy
            return {"session_id": session_id, "port": str(port), "host": host.name}

        return handler_body()

    # -- lifecycle ----------------------------------------------------------------

    def _destroy_session(self, identity, params):
        session_id = params.get("session_id", "")
        proxy = self.server_sessions.pop(session_id, None)
        if proxy is not None:
            proxy.stop()
            return {"destroyed": session_id}
        cproxy = self.client_sessions.pop(session_id, None)
        if cproxy is not None:

            def drain():
                yield from cproxy.writeback()
                cproxy.stop()
                return {"destroyed": session_id}

            return drain()
        raise SoapFault("Client", f"unknown session {session_id!r}")

    def _reconfigure_session(self, identity, params):
        """Dynamic reconfiguration (§4.2): reload gridmap / rekey."""
        session_id = params.get("session_id", "")
        proxy = self.server_sessions.get(session_id)
        if proxy is None:
            raise SoapFault("Client", f"unknown session {session_id!r}")
        if "gridmap" in params:
            proxy.reload(gridmap=Gridmap.parse(params["gridmap"]))
        return {"reconfigured": session_id}

    # -- fine-grained ACL management (§4.4) -------------------------------------------

    def _set_acl(self, identity, params):
        if self.fs is None:
            raise SoapFault("Server", "no server-side wiring")
        from repro.proxy.acl import AclStore, parse_acl_text

        path = params.get("path", "")
        entries = parse_acl_text(params.get("acl", ""))
        node = self.fs.resolve(path.rpartition("/")[0] or "/")
        name = path.rpartition("/")[2]
        store = self._acl_store()
        store.set_acl(node.fileid, name, entries)
        return {"acl_set": path}

    def _remove_acl(self, identity, params):
        if self.fs is None:
            raise SoapFault("Server", "no server-side wiring")
        path = params.get("path", "")
        node = self.fs.resolve(path.rpartition("/")[0] or "/")
        self._acl_store().remove_acl(node.fileid, path.rpartition("/")[2])
        return {"acl_removed": path}

    def _acl_store(self):
        # Use the live proxy's store when a session exists (keeps its
        # in-memory ACL cache coherent), else a fresh one.
        for proxy in self.server_sessions.values():
            return proxy.acls
        from repro.proxy.acl import AclStore

        return AclStore(self.fs)


def _default_cost():
    from repro.core.calibration import DEFAULT_CALIBRATION

    return DEFAULT_CALIBRATION.proxy_cost
