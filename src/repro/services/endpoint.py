"""Service endpoints and clients over the simulated network.

Messages are canonical-XML envelopes carried as single records (RM
framing) over a TCP connection per request.  Message-level security
costs real (virtual) CPU — XML canonicalization plus an RSA sign/verify
per message — which is why the architecture keeps services off the data
path (§3.2): "the use of more expensive security mechanisms does not
hurt an established SGFS session's I/O performance".
"""

from __future__ import annotations

import inspect
import itertools
from typing import Callable, Dict, Iterable, Optional

from repro.crypto.drbg import Drbg
from repro.gsi.certs import Certificate, Credential
from repro.gsi.names import DistinguishedName
from repro.rpc.record import RecordReader, RecordWriter
from repro.services.soap import (
    SoapEnvelope,
    SoapFault,
    fault_envelope,
    sign_envelope,
    verify_envelope,
)
from repro.sim.core import Simulator

#: CPU seconds per message for XML processing + RSA sign or verify —
#: deliberately much heavier than transport-level security per message.
MESSAGE_SECURITY_CPU = 0.012

_nonce_counter = itertools.count(1)


class ServiceError(Exception):
    """Local service failure (bad handler, connection trouble)."""


#: handler(identity, params) -> dict of reply params; may be a plain
#: function or a process generator.
Handler = Callable[[DistinguishedName, Dict[str, str]], object]


class ServiceEndpoint:
    """A WSRF-like service bound to (host, port)."""

    def __init__(
        self,
        sim: Simulator,
        host,
        port: int,
        credential: Credential,
        trust_anchors: Iterable[Certificate],
        name: str = "service",
        authorizer: Optional[Callable[[DistinguishedName, str], bool]] = None,
    ):
        self.sim = sim
        self.host = host
        self.port = port
        self.credential = credential
        self.trust_anchors = tuple(trust_anchors)
        self.name = name
        self.authorizer = authorizer
        # Restriction-aware authorizers take (identity, action, envelope)
        # — the envelope carries the presented certificate, which is how
        # a service refuses privileged actions to *limited* proxies.
        # Two-argument authorizers keep working unchanged.
        self._authorizer_wants_envelope = (
            authorizer is not None
            and len(inspect.signature(authorizer).parameters) >= 3
        )
        self._handlers: Dict[str, Handler] = {}
        self._seen_nonces: set = set()
        self._listener = None
        self.requests_served = 0
        self.faults_returned = 0

    def register(self, action: str, handler: Handler) -> None:
        if action in self._handlers:
            raise ServiceError(f"duplicate action {action!r}")
        self._handlers[action] = handler

    def start(self) -> None:
        self._listener = self.host.listen(self.port)

        def accept_loop():
            while True:
                try:
                    sock = yield self._listener.accept()
                except Exception:
                    return
                self.sim.spawn(self._serve_connection(sock), name=f"{self.name}-req")

        self.sim.spawn(accept_loop(), name=f"{self.name}:{self.port}")

    def stop(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    # -- request processing ----------------------------------------------------

    def _serve_connection(self, sock):
        reader = RecordReader()
        writer = RecordWriter(sock)
        request = yield from _read_record(sock, reader)
        if request is None:
            return
        reply = yield from self._process(request)
        try:
            writer.write(reply)
        except Exception:
            pass
        sock.close()

    def _process(self, raw: bytes):
        yield from self.host.cpu.consume(MESSAGE_SECURITY_CPU, "services")
        try:
            envelope = SoapEnvelope.from_xml(raw)
            identity = verify_envelope(
                envelope, self.trust_anchors, self.sim.now, self._seen_nonces
            )
        except SoapFault as fault:
            self.faults_returned += 1
            return self._signed_reply(fault_envelope(fault.code, fault.reason))
        if self.authorizer is not None and not (
            self.authorizer(identity, envelope.action, envelope)
            if self._authorizer_wants_envelope
            else self.authorizer(identity, envelope.action)
        ):
            self.faults_returned += 1
            return self._signed_reply(
                fault_envelope("Security", f"{identity} not authorized for {envelope.action}")
            )
        handler = self._handlers.get(envelope.action)
        if handler is None:
            self.faults_returned += 1
            return self._signed_reply(
                fault_envelope("Client", f"unknown action {envelope.action!r}")
            )
        try:
            result = handler(identity, dict(envelope.body))
            if hasattr(result, "send"):  # handler is a process generator
                result = yield from result
        except SoapFault as fault:
            self.faults_returned += 1
            return self._signed_reply(fault_envelope(fault.code, fault.reason))
        except Exception as exc:
            self.faults_returned += 1
            return self._signed_reply(fault_envelope("Server", str(exc)))
        self.requests_served += 1
        reply = SoapEnvelope(
            action=envelope.action + "Response",
            body={k: str(v) for k, v in (result or {}).items()},
        )
        return self._signed_reply(reply)

    def _signed_reply(self, envelope: SoapEnvelope) -> bytes:
        sign_envelope(
            envelope, self.credential, self.sim.now, f"srv-nonce-{next(_nonce_counter)}"
        )
        return envelope.to_xml()


class ServiceClient:
    """Calls services on behalf of a credential (user, proxy, or service)."""

    def __init__(
        self,
        sim: Simulator,
        host,
        credential: Credential,
        trust_anchors: Iterable[Certificate],
        rng: Optional[Drbg] = None,
    ):
        self.sim = sim
        self.host = host
        self.credential = credential
        self.trust_anchors = tuple(trust_anchors)
        self.rng = rng or Drbg(f"svc-client:{credential.dn}")

    def call(self, dest_host: str, port: int, action: str, params: Dict[str, str]):
        """Process generator: one signed request/response exchange.

        Returns the reply parameter dict; raises :class:`SoapFault` if
        the service returned a fault, or on a bad reply signature.
        """
        envelope = SoapEnvelope(action=action, body=dict(params))
        sign_envelope(
            envelope, self.credential, self.sim.now,
            f"cli-{self.rng.randbytes(8).hex()}",
        )
        yield from self.host.cpu.consume(MESSAGE_SECURITY_CPU, "services")
        sock = yield from self.host.connect(dest_host, port)
        writer = RecordWriter(sock)
        reader = RecordReader()
        writer.write(envelope.to_xml())
        raw = yield from _read_record(sock, reader)
        sock.close()
        if raw is None:
            raise ServiceError(f"no reply from {dest_host}:{port}")
        yield from self.host.cpu.consume(MESSAGE_SECURITY_CPU, "services")
        reply = SoapEnvelope.from_xml(raw)
        verify_envelope(reply, self.trust_anchors, self.sim.now)
        if reply.action == "Fault":
            raise SoapFault(reply.body.get("code", "?"), reply.body.get("reason", "?"))
        return reply.body


def _read_record(sock, reader: RecordReader):
    while True:
        rec = reader.next_record()
        if rec is not None:
            return rec
        data = yield from sock.recv()
        if data == b"":
            return None
        reader.feed(data)
