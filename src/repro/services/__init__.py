"""Secure management services (paper §3.2, §4.4).

The service plane of SGFS: WSRF-style web services exchanging SOAP
messages protected with WS-Security-style XML signatures over X.509/GSI
certificates (the original used WSRF::Lite).  Message-level security is
expensive but off the data path — these services run only when sessions
are created, reconfigured, or destroyed.

- :mod:`repro.services.xmlmini` — a minimal XML document model with a
  canonical serialization (what gets signed),
- :mod:`repro.services.soap` — SOAP-like envelopes and the WS-Security
  header: body signature, binary security token (the sender's cert
  chain), timestamp and nonce,
- :mod:`repro.services.endpoint` — service endpoints over the simulated
  network: verify, authorize, dispatch, reply signed,
- :mod:`repro.services.fss` — the File System Service on every client
  and server, controlling the local proxies,
- :mod:`repro.services.dss` — the Data Scheduler Service: session
  scheduling, the per-filesystem ACL database, gridmap generation, and
  delegation handling (a user hands the DSS a proxy credential; the DSS
  acts on the user's behalf toward both FSSs),
- :mod:`repro.services.portal` — the credential portal: single-sign-on
  issuance of short-lived (optionally *limited*) proxy credentials from
  enrolled long-term identities (see docs/CONTROL_PLANE.md).
"""

from repro.services.xmlmini import XmlElement, XmlError
from repro.services.soap import SoapEnvelope, SoapFault, sign_envelope, verify_envelope
from repro.services.endpoint import ServiceEndpoint, ServiceClient, ServiceError
from repro.services.fss import FileSystemService
from repro.services.dss import DataSchedulerService, SessionHandle
from repro.services.portal import CredentialPortal, MAX_PORTAL_LIFETIME

__all__ = [
    "XmlElement",
    "XmlError",
    "SoapEnvelope",
    "SoapFault",
    "sign_envelope",
    "verify_envelope",
    "ServiceEndpoint",
    "ServiceClient",
    "ServiceError",
    "FileSystemService",
    "DataSchedulerService",
    "SessionHandle",
    "CredentialPortal",
    "MAX_PORTAL_LIFETIME",
]
