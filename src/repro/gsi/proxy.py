"""Proxy certificates: GSI delegation.

A user delegates by generating a fresh keypair and signing — with the
user's own key — a short-lived certificate whose subject extends the
user's DN with ``CN=proxy``.  A service holding the proxy credential can
then authenticate *as the user* without ever touching the user's
long-term key.  This is how the DSS creates SGFS sessions on a user's
behalf (paper §3.2).

Restricted delegation follows the classic GSI shape ("Security for Grid
Services", PAPERS.md): a **limited** proxy extends the DN with
``CN=limited proxy`` instead.  It authenticates as the same base
identity for data access, but services refuse it for privileged
actions — here, ACL management (FSS ``SetAcl``/``RemoveAcl``) and DSS
``GrantAccess``/``RevokeAccess`` — and it cannot delegate further.

Determinism: issuance is a pure function of its inputs — the caller's
DRBG stream supplies all randomness and ``now`` is the caller's clock
(virtual seconds inside the simulation), so same-seed runs issue
bit-identical certificates.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.crypto.drbg import Drbg
from repro.crypto.rsa import generate_keypair
from repro.gsi.certs import Certificate, Credential, ValidationError, _serial_counter
from repro.gsi.names import DistinguishedName

#: Default proxy lifetime: 12 hours, the globus-style default.
DEFAULT_PROXY_LIFETIME = 12 * 3600.0

#: CN value of an impersonation (full) proxy certificate.
PROXY_CN = "proxy"

#: CN value of a restricted proxy: same identity, privileged management
#: actions refused, no further delegation.
LIMITED_PROXY_CN = "limited proxy"

#: Virtual CPU seconds one delegation costs the issuing host (proxy
#: keypair generation + the user-key signature) — the same order as a
#: full TLS handshake's RSA work.  Charged by callers that run inside
#: the simulation (the fleet harness, the CredentialPortal).
DELEGATION_CPU_SECONDS = 0.004


def issue_proxy_certificate(
    user: Credential,
    now: float,
    lifetime: float = DEFAULT_PROXY_LIFETIME,
    rng: Optional[Drbg] = None,
    key_bits: int = 1024,
    limited: bool = False,
) -> Credential:
    """Create a delegated proxy credential signed by ``user``'s key.

    The resulting credential chains: proxy cert -> user cert -> CA.
    ``limited=True`` issues a restricted proxy (``CN=limited proxy``).
    ``user`` may itself be a (full) proxy credential — the chain simply
    grows — but a *limited* proxy refuses further delegation
    (:class:`~repro.gsi.certs.ValidationError`), per GSI semantics.
    ``lifetime`` is in the caller's clock units (virtual seconds in
    simulation); short lifetimes are the point of SSO portals.
    """
    if is_limited_proxy(user.certificate.subject):
        raise ValidationError("a limited proxy cannot delegate further")
    rng = rng or Drbg(f"proxy:{user.dn}:{now}")
    proxy_keys = generate_keypair(key_bits, rng)
    subject = user.dn.child("CN", LIMITED_PROXY_CN if limited else PROXY_CN)
    cert = Certificate(
        subject=subject,
        issuer=user.dn,
        public_key=proxy_keys.public,
        serial=next(_serial_counter),
        not_before=now,
        not_after=now + lifetime,
        is_proxy=True,
    )
    signed = replace(cert, signature=user.keypair.sign(cert.tbs_bytes()))
    return Credential(signed, proxy_keys, chain=(user.certificate,) + tuple(user.chain))


def effective_identity(subject: DistinguishedName) -> DistinguishedName:
    """Strip trailing ``CN=proxy`` / ``CN=limited proxy`` components.

    Authorization (gridmap lookups, ACL matching) must key on the user's
    base identity, not the delegated proxy's extended DN.
    """
    rdns = list(subject.rdns)
    while len(rdns) > 1 and rdns[-1] in (
        ("CN", PROXY_CN), ("CN", LIMITED_PROXY_CN),
    ):
        rdns.pop()
    return DistinguishedName(tuple(rdns))


def is_limited_proxy(subject: DistinguishedName) -> bool:
    """True when any delegation step in ``subject`` was restricted.

    A limited step anywhere in the chain taints the whole credential
    (delegating from a limited proxy is refused, but the check stays
    conservative).
    """
    return any(rdn == ("CN", LIMITED_PROXY_CN) for rdn in subject.rdns)
