"""Proxy certificates: GSI delegation.

A user delegates by generating a fresh keypair and signing — with the
user's own key — a short-lived certificate whose subject extends the
user's DN with ``CN=proxy``.  A service holding the proxy credential can
then authenticate *as the user* without ever touching the user's
long-term key.  This is how the DSS creates SGFS sessions on a user's
behalf (paper §3.2).
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Optional

from repro.crypto.drbg import Drbg
from repro.crypto.rsa import generate_keypair
from repro.gsi.certs import Certificate, Credential, _serial_counter
from repro.gsi.names import DistinguishedName

#: Default proxy lifetime: 12 hours, the globus-style default.
DEFAULT_PROXY_LIFETIME = 12 * 3600.0


def issue_proxy_certificate(
    user: Credential,
    now: float,
    lifetime: float = DEFAULT_PROXY_LIFETIME,
    rng: Optional[Drbg] = None,
    key_bits: int = 1024,
) -> Credential:
    """Create a delegated proxy credential signed by ``user``'s key.

    The resulting credential chains: proxy cert -> user cert -> CA.
    """
    rng = rng or Drbg(f"proxy:{user.dn}:{now}")
    proxy_keys = generate_keypair(key_bits, rng)
    subject = user.dn.child("CN", "proxy")
    cert = Certificate(
        subject=subject,
        issuer=user.dn,
        public_key=proxy_keys.public,
        serial=next(_serial_counter),
        not_before=now,
        not_after=now + lifetime,
        is_proxy=True,
    )
    signed = replace(cert, signature=user.keypair.sign(cert.tbs_bytes()))
    return Credential(signed, proxy_keys, chain=(user.certificate,) + tuple(user.chain))


def effective_identity(subject: DistinguishedName) -> DistinguishedName:
    """Strip trailing ``CN=proxy`` components to get the base identity.

    Authorization (gridmap lookups, ACL matching) must key on the user's
    identity, not the delegated proxy's extended DN.
    """
    rdns = list(subject.rdns)
    while len(rdns) > 1 and rdns[-1] == ("CN", "proxy"):
        rdns.pop()
    return DistinguishedName(tuple(rdns))
