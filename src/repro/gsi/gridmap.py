"""Gridmap files: per-filesystem access control (paper §4.3).

A gridmap maps a grid identity (distinguished name) to a local account
name.  If a mapping exists, the grid user gains the mapped local user's
access rights to the exported filesystem; otherwise the session's policy
decides between an anonymous mapping and outright denial.  SGFS keeps a
gridmap *per session*, which is what makes ad-hoc sharing one-line cheap
("add the other user's DN to your session's gridmap").

The text format matches GSI's::

    "/C=US/O=UFL/CN=Ming Zhao" ming
    "/C=US/O=UFL/CN=Guest User" anonymous

Population scale: entries live in a hash table keyed by the canonical
DN string, so :meth:`Gridmap.lookup` is O(1) regardless of population —
``benchmarks/bench_scaleout.py`` verifies flat lookup cost from 10^3 to
10^6 entries.  Every mutation (:meth:`add` / :meth:`remove`) bumps
:attr:`Gridmap.epoch`; authorization caches (the server proxy's
:class:`repro.proxy.authz.AuthzCache`) stamp their entries with the
epoch they resolved under and lazily re-resolve when it moves, which is
what makes cached decisions invalidation-correct under live policy
churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from repro.gsi.names import DistinguishedName


class GridmapError(Exception):
    """Malformed gridmap text."""


class UnmappedPolicy(Enum):
    """What to do with an authenticated user that has no mapping."""

    DENY = "deny"
    ANONYMOUS = "anonymous"


@dataclass
class Gridmap:
    """DN-string -> local account mapping with an unmapped-user policy.

    Determinism: a gridmap is plain data — no clocks, no randomness.
    Two gridmaps built from the same text (or the same ``add``/``remove``
    sequence) are equal, iterate in the same order, and :meth:`dump` the
    same bytes.  :attr:`epoch` counts mutations since construction (a
    pure event counter, not wall time), so same-seed simulation runs see
    bit-identical epoch sequences.
    """

    entries: Dict[str, str] = field(default_factory=dict)
    unmapped: UnmappedPolicy = UnmappedPolicy.DENY
    anonymous_account: str = "nobody"
    #: mutation counter: bumped by every :meth:`add` / :meth:`remove`
    #: call.  Versioned authorization caches stamp entries with the
    #: epoch they resolved under and re-resolve when it moves.
    epoch: int = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, text: str, unmapped: UnmappedPolicy = UnmappedPolicy.DENY) -> "Gridmap":
        """Parse gridmap text into a hashed map (O(1) lookups).

        Lines are ``"<quoted DN>" <account>``; blanks and ``#`` comments
        are skipped.  A DN repeated on a later line **overrides** the
        earlier mapping (last line wins), matching the reload semantics
        of appending to a live gridmap file.  Raises
        :class:`GridmapError` on unquoted DNs, unterminated quotes, or
        malformed accounts.
        """
        entries: Dict[str, str] = {}
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if not line.startswith('"'):
                raise GridmapError(f"line {lineno}: DN must be quoted")
            try:
                end = line.index('"', 1)
            except ValueError:
                raise GridmapError(f"line {lineno}: unterminated DN quote") from None
            dn_text = line[1:end]
            account = line[end + 1 :].strip()
            if not account or " " in account:
                raise GridmapError(f"line {lineno}: bad account {account!r}")
            DistinguishedName.parse(dn_text)  # validate
            entries[dn_text] = account
        return cls(entries=entries, unmapped=unmapped)

    def dump(self) -> str:
        """The canonical text form: one quoted-DN line per entry, sorted."""
        return "\n".join(f'"{dn}" {acct}' for dn, acct in sorted(self.entries.items()))

    # -- mutation (per-session sharing) --------------------------------------

    def add(self, dn: DistinguishedName, account: str) -> None:
        """Map ``dn`` to ``account`` (replacing any prior mapping).

        Bumps :attr:`epoch` so versioned caches re-resolve this DN.
        """
        self.entries[str(dn)] = account
        self.epoch += 1

    def remove(self, dn: DistinguishedName) -> None:
        """Drop ``dn``'s mapping; a no-op for unknown DNs still bumps
        :attr:`epoch` (the mutation *attempt* is the invalidation event,
        so a remove racing a concurrent add can never leave a cache
        serving the removed mapping)."""
        self.entries.pop(str(dn), None)
        self.epoch += 1

    # -- lookup ---------------------------------------------------------------

    def lookup(self, dn: DistinguishedName) -> Optional[str]:
        """The local account for ``dn``, or None meaning *deny*.

        Applies the unmapped policy for unknown DNs: ``ANONYMOUS``
        returns :attr:`anonymous_account` (which need not exist in the
        local accounts database — the proxy creates it on first use),
        ``DENY`` returns None.  One hash probe — O(1) in the population.
        """
        return self.lookup_str(str(dn))

    def lookup_str(self, dn_text: str) -> Optional[str]:
        """:meth:`lookup` keyed by an already-canonical DN string.

        The fast path for callers that hold the canonical string (the
        authz cache, the population-scale benchmark): skips DN object
        stringification entirely.
        """
        account = self.entries.get(dn_text)
        if account is not None:
            return account
        if self.unmapped is UnmappedPolicy.ANONYMOUS:
            return self.anonymous_account
        return None

    def __len__(self) -> int:
        return len(self.entries)
