"""Gridmap files: per-filesystem access control (paper §4.3).

A gridmap maps a grid identity (distinguished name) to a local account
name.  If a mapping exists, the grid user gains the mapped local user's
access rights to the exported filesystem; otherwise the session's policy
decides between an anonymous mapping and outright denial.  SGFS keeps a
gridmap *per session*, which is what makes ad-hoc sharing one-line cheap
("add the other user's DN to your session's gridmap").

The text format matches GSI's::

    "/C=US/O=UFL/CN=Ming Zhao" ming
    "/C=US/O=UFL/CN=Guest User" anonymous
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from repro.gsi.names import DistinguishedName


class GridmapError(Exception):
    """Malformed gridmap text."""


class UnmappedPolicy(Enum):
    """What to do with an authenticated user that has no mapping."""

    DENY = "deny"
    ANONYMOUS = "anonymous"


@dataclass
class Gridmap:
    """DN-string -> local account mapping with an unmapped-user policy."""

    entries: Dict[str, str] = field(default_factory=dict)
    unmapped: UnmappedPolicy = UnmappedPolicy.DENY
    anonymous_account: str = "nobody"

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, text: str, unmapped: UnmappedPolicy = UnmappedPolicy.DENY) -> "Gridmap":
        entries: Dict[str, str] = {}
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if not line.startswith('"'):
                raise GridmapError(f"line {lineno}: DN must be quoted")
            try:
                end = line.index('"', 1)
            except ValueError:
                raise GridmapError(f"line {lineno}: unterminated DN quote") from None
            dn_text = line[1:end]
            account = line[end + 1 :].strip()
            if not account or " " in account:
                raise GridmapError(f"line {lineno}: bad account {account!r}")
            DistinguishedName.parse(dn_text)  # validate
            entries[dn_text] = account
        return cls(entries=entries, unmapped=unmapped)

    def dump(self) -> str:
        return "\n".join(f'"{dn}" {acct}' for dn, acct in sorted(self.entries.items()))

    # -- mutation (per-session sharing) --------------------------------------

    def add(self, dn: DistinguishedName, account: str) -> None:
        self.entries[str(dn)] = account

    def remove(self, dn: DistinguishedName) -> None:
        self.entries.pop(str(dn), None)

    # -- lookup ---------------------------------------------------------------

    def lookup(self, dn: DistinguishedName) -> Optional[str]:
        """The local account for ``dn``, or None meaning *deny*.

        Applies the unmapped policy for unknown DNs.
        """
        account = self.entries.get(str(dn))
        if account is not None:
            return account
        if self.unmapped is UnmappedPolicy.ANONYMOUS:
            return self.anonymous_account
        return None

    def __len__(self) -> int:
        return len(self.entries)
