"""Certificates, certificate authorities, and chain validation.

The trust model is GSI's: a certificate binds a DN to an RSA public key
under a CA's signature; validation walks the chain from an end-entity
certificate to a trusted anchor, checking signatures, validity windows,
and CA/proxy constraints along the way.  Times are in seconds on
whatever clock the caller uses (the simulation's virtual clock in
experiments), so certificate expiry and reload can be exercised inside
a run — the paper's §4.2 dynamic-reconfiguration scenario.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence

from repro.crypto.drbg import Drbg
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.gsi.names import DistinguishedName
from repro.xdr import Packer, Unpacker


class CertError(Exception):
    """Malformed certificate data."""


class ValidationError(CertError):
    """A certificate chain failed validation."""


_serial_counter = itertools.count(1000)


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject DN to a public key."""

    subject: DistinguishedName
    issuer: DistinguishedName
    public_key: RsaPublicKey
    serial: int
    not_before: float
    not_after: float
    is_ca: bool = False
    is_proxy: bool = False
    signature: bytes = b""

    # -- canonical encoding -------------------------------------------------

    def tbs_bytes(self) -> bytes:
        """The to-be-signed canonical encoding."""
        p = Packer()
        p.pack_string(str(self.subject))
        p.pack_string(str(self.issuer))
        p.pack_opaque(self.public_key.to_bytes())
        p.pack_uhyper(self.serial)
        p.pack_double(self.not_before)
        p.pack_double(self.not_after)
        p.pack_bool(self.is_ca)
        p.pack_bool(self.is_proxy)
        return p.get_bytes()

    def to_bytes(self) -> bytes:
        p = Packer()
        p.pack_opaque(self.tbs_bytes())
        p.pack_opaque(self.signature)
        return p.get_bytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Certificate":
        u = Unpacker(data)
        tbs = u.unpack_opaque()
        signature = u.unpack_opaque()
        u.assert_done()
        t = Unpacker(tbs)
        subject = DistinguishedName.parse(t.unpack_string())
        issuer = DistinguishedName.parse(t.unpack_string())
        public_key = RsaPublicKey.from_bytes(t.unpack_opaque())
        serial = t.unpack_uhyper()
        not_before = t.unpack_double()
        not_after = t.unpack_double()
        is_ca = t.unpack_bool()
        is_proxy = t.unpack_bool()
        t.assert_done()
        return cls(
            subject, issuer, public_key, serial, not_before, not_after,
            is_ca, is_proxy, signature,
        )

    # -- checks --------------------------------------------------------------

    def verify_signature(self, signer_key: RsaPublicKey) -> bool:
        return signer_key.verify(self.tbs_bytes(), self.signature)

    def valid_at(self, now: float) -> bool:
        return self.not_before <= now <= self.not_after

    @property
    def self_signed(self) -> bool:
        return self.subject == self.issuer

    def __str__(self) -> str:  # pragma: no cover
        kind = "CA" if self.is_ca else ("proxy" if self.is_proxy else "EE")
        return f"Cert[{kind}] {self.subject} (by {self.issuer}, #{self.serial})"


class CertificateAuthority:
    """A CA: a keypair plus a self-signed CA certificate.

    ``ca.issue(...)`` signs end-entity (user/host) certificates.  Grid
    deployments trust a set of CA certificates; chain validation is
    :func:`validate_chain`.
    """

    DEFAULT_LIFETIME = 10 * 365 * 24 * 3600.0

    def __init__(
        self,
        dn: DistinguishedName,
        rng: Optional[Drbg] = None,
        key_bits: int = 1024,
        now: float = 0.0,
        lifetime: float = DEFAULT_LIFETIME,
    ):
        self.rng = rng or Drbg(f"ca:{dn}")
        self.keypair: RsaKeyPair = generate_keypair(key_bits, self.rng)
        cert = Certificate(
            subject=dn,
            issuer=dn,
            public_key=self.keypair.public,
            serial=next(_serial_counter),
            not_before=now,
            not_after=now + lifetime,
            is_ca=True,
        )
        self.certificate = replace(
            cert, signature=self.keypair.sign(cert.tbs_bytes())
        )

    @property
    def dn(self) -> DistinguishedName:
        return self.certificate.subject

    def issue(
        self,
        subject: DistinguishedName,
        public_key: RsaPublicKey,
        now: float = 0.0,
        lifetime: float = 365 * 24 * 3600.0,
        is_ca: bool = False,
    ) -> Certificate:
        """Sign a certificate for ``subject`` holding ``public_key``."""
        cert = Certificate(
            subject=subject,
            issuer=self.dn,
            public_key=public_key,
            serial=next(_serial_counter),
            not_before=now,
            not_after=now + lifetime,
            is_ca=is_ca,
        )
        return replace(cert, signature=self.keypair.sign(cert.tbs_bytes()))

    def issue_identity(
        self, subject: DistinguishedName, rng: Optional[Drbg] = None,
        key_bits: int = 1024, now: float = 0.0,
        lifetime: float = 365 * 24 * 3600.0,
    ) -> "Credential":
        """Generate a keypair and certify it — a complete grid identity."""
        rng = rng or self.rng.fork(f"id:{subject}")
        keypair = generate_keypair(key_bits, rng)
        cert = self.issue(subject, keypair.public, now=now, lifetime=lifetime)
        return Credential(cert, keypair, chain=(self.certificate,))


@dataclass(frozen=True)
class Credential:
    """A certificate plus its private key plus the issuing chain."""

    certificate: Certificate
    keypair: RsaKeyPair
    chain: tuple = ()

    @property
    def dn(self) -> DistinguishedName:
        return self.certificate.subject

    def to_bytes(self) -> bytes:
        """Serialize including the private key — for *encrypted* delegation
        transfer only (see repro.crypto.hybrid)."""
        p = Packer()
        p.pack_opaque(self.certificate.to_bytes())
        for v in (self.keypair.public.n, self.keypair.public.e,
                  self.keypair.d, self.keypair.p, self.keypair.q):
            vb = v.to_bytes((v.bit_length() + 7) // 8 or 1, "big")
            p.pack_opaque(vb)
        p.pack_array([c.to_bytes() for c in self.chain], p.pack_opaque)
        return p.get_bytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Credential":
        u = Unpacker(data)
        cert = Certificate.from_bytes(u.unpack_opaque())
        n, e, d, pp, q = (int.from_bytes(u.unpack_opaque(), "big") for _ in range(5))
        chain = tuple(
            Certificate.from_bytes(b) for b in u.unpack_array(u.unpack_opaque, max_len=8)
        )
        u.assert_done()
        from repro.crypto.rsa import RsaPublicKey

        return cls(cert, RsaKeyPair(RsaPublicKey(n, e), d, pp, q), chain)


def validate_chain(
    cert: Certificate,
    intermediates: Sequence[Certificate],
    trust_anchors: Iterable[Certificate],
    now: float,
) -> DistinguishedName:
    """Validate ``cert`` up to a trust anchor; return the *base* identity.

    Walks issuer links through ``intermediates`` (proxy certificates and
    intermediate CAs) until a trusted anchor signs the top.  Rules, per
    GSI:

    - every certificate must be inside its validity window,
    - a non-proxy certificate must be signed by a CA certificate,
    - a proxy certificate must be signed by its issuer's key where the
      issuer is the *subject* of the next certificate in the chain (the
      user signs their own proxy), and its subject must extend the
      issuer's DN,
    - the returned identity is the first non-proxy subject found — proxy
      certificates delegate, they do not create new identities.

    Raises :class:`ValidationError` on any violation.
    """
    by_subject = {str(c.subject): c for c in intermediates}
    anchors = {str(a.subject): a for a in trust_anchors}

    identity: Optional[DistinguishedName] = None
    current = cert
    seen: List[int] = []
    for _ in range(16):  # depth guard
        if not current.valid_at(now):
            raise ValidationError(f"certificate expired/not yet valid: {current.subject}")
        if current.serial in seen:
            raise ValidationError("certificate loop")
        seen.append(current.serial)

        if not current.is_proxy and identity is None:
            identity = current.subject

        issuer_str = str(current.issuer)
        anchor = anchors.get(issuer_str)
        if anchor is not None and not current.is_proxy:
            if not anchor.is_ca:
                raise ValidationError(f"trust anchor {anchor.subject} is not a CA")
            if not anchor.valid_at(now):
                raise ValidationError(f"trust anchor expired: {anchor.subject}")
            if not current.verify_signature(anchor.public_key):
                raise ValidationError(f"bad CA signature on {current.subject}")
            assert identity is not None
            return identity

        parent = by_subject.get(issuer_str)
        if parent is None:
            raise ValidationError(
                f"no issuer {issuer_str} in chain and not a trust anchor"
            )
        if current.is_proxy:
            if not current.issuer.is_prefix_of(current.subject):
                raise ValidationError(
                    "proxy subject must extend the issuer DN "
                    f"({current.subject} !< {current.issuer})"
                )
            if not current.verify_signature(parent.public_key):
                raise ValidationError(f"bad delegation signature on {current.subject}")
        else:
            if not parent.is_ca:
                raise ValidationError(
                    f"{parent.subject} signed {current.subject} but is not a CA"
                )
            if not current.verify_signature(parent.public_key):
                raise ValidationError(f"bad signature on {current.subject}")
        current = parent
    raise ValidationError("chain too deep")
