"""X.500-style distinguished names.

Grid identities are DNs like ``/C=US/O=UFL/OU=ACIS/CN=Ming Zhao``.  The
gridmap and ACL mechanisms key on the exact string form, so parsing and
formatting must round-trip byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

_ALLOWED_KEYS = ("C", "ST", "L", "O", "OU", "CN", "UID", "DC", "emailAddress")


class DnError(ValueError):
    """Malformed distinguished name."""


@dataclass(frozen=True)
class DistinguishedName:
    """An ordered sequence of (attribute, value) pairs."""

    rdns: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.rdns:
            raise DnError("empty distinguished name")
        for key, value in self.rdns:
            if key not in _ALLOWED_KEYS:
                raise DnError(f"unknown DN attribute {key!r}")
            if not value or "/" in value or "=" in value or "\n" in value:
                raise DnError(f"bad DN value {value!r} for {key}")

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "DistinguishedName":
        """Parse the slash form: ``/C=US/O=Grid/CN=Alice``."""
        if not text.startswith("/"):
            raise DnError(f"DN must start with '/': {text!r}")
        rdns = []
        for part in text[1:].split("/"):
            if "=" not in part:
                raise DnError(f"bad RDN {part!r} in {text!r}")
            key, _, value = part.partition("=")
            rdns.append((key.strip(), value.strip()))
        return cls(tuple(rdns))

    @classmethod
    def make(cls, **fields: str) -> "DistinguishedName":
        """Build in canonical C/O/OU/CN order from keywords."""
        order = {k: i for i, k in enumerate(_ALLOWED_KEYS)}
        rdns = sorted(fields.items(), key=lambda kv: order[kv[0]])
        return cls(tuple(rdns))

    # -- accessors --------------------------------------------------------

    @property
    def common_name(self) -> str:
        for key, value in reversed(self.rdns):
            if key == "CN":
                return value
        raise DnError(f"DN {self} has no CN")

    def child(self, key: str, value: str) -> "DistinguishedName":
        """Append one RDN — how proxy-certificate subjects are formed."""
        return DistinguishedName(self.rdns + ((key, value),))

    def parent(self) -> "DistinguishedName":
        if len(self.rdns) < 2:
            raise DnError("DN has no parent")
        return DistinguishedName(self.rdns[:-1])

    def is_prefix_of(self, other: "DistinguishedName") -> bool:
        return len(self.rdns) <= len(other.rdns) and other.rdns[: len(self.rdns)] == self.rdns

    def __str__(self) -> str:
        return "".join(f"/{k}={v}" for k, v in self.rdns)

    def __repr__(self) -> str:  # pragma: no cover
        return f"DN({str(self)!r})"
