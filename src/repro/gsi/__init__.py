"""GSI-style PKI: identities, certificates, delegation, gridmaps.

Implements the trust model of the Grid Security Infrastructure the paper
conforms to: X.509-style certificates binding a distinguished name to an
RSA public key, signed by a certificate authority; *proxy certificates*
signed by a user's key for delegation (a service acts on the user's
behalf); chain validation up to a set of trusted CAs; and gridmap files
mapping grid identities to local accounts.

Certificates use this package's own canonical serialization rather than
ASN.1/DER — the encoding is irrelevant to every behaviour the paper
measures or relies on (see DESIGN.md substitution table).
"""

from repro.gsi.names import DistinguishedName
from repro.gsi.certs import Certificate, CertificateAuthority, CertError, ValidationError
from repro.gsi.proxy import (
    DEFAULT_PROXY_LIFETIME,
    DELEGATION_CPU_SECONDS,
    effective_identity,
    is_limited_proxy,
    issue_proxy_certificate,
)
from repro.gsi.gridmap import Gridmap, GridmapError

__all__ = [
    "DistinguishedName",
    "Certificate",
    "CertificateAuthority",
    "CertError",
    "ValidationError",
    "DEFAULT_PROXY_LIFETIME",
    "DELEGATION_CPU_SECONDS",
    "issue_proxy_certificate",
    "effective_identity",
    "is_limited_proxy",
    "Gridmap",
    "GridmapError",
]
