"""CPU resource with per-activity time accounting.

The paper reports the *user CPU time* consumed by the user-level
proxies/daemons, sampled every 5 seconds during the IOzone run (Figs. 5
and 6).  To reproduce that, every simulated host owns a :class:`CPU`;
code that models computation calls ``yield cpu.consume(seconds, account)``
which (a) serializes compute through a core like a real CPU and (b)
records the busy interval under the given account name in a
:class:`CpuLedger`.

The ledger can then answer "what fraction of the window [t, t+5) was
spent in account 'proxy'?" — exactly the series the paper plots.

Multi-core (``CPU(cores=N)``): the paper's testbed is 1-vCPU VMs, so
``cores=1`` is the default and reproduces the single-semaphore schedule
bit-for-bit.  With ``cores=N`` the CPU becomes a deterministic run
queue served by N cores:

- un-pinned work takes the lowest-numbered idle core, or joins a global
  FIFO when all cores are busy;
- pinned work (``consume(..., affinity=k)``) runs on core ``k % N``
  only, queueing behind that core's other pinned work — how the server
  proxy keeps each session's cipher stream on one core;
- when a core frees, it serves whichever eligible waiter (its pinned
  lane vs. the global queue) enqueued first — stable (ready-time, seq)
  dispatch, so two same-seed runs schedule identically.

The ledger records which core served each interval; per-core interval
lists stay sorted (one core runs one thing at a time), keeping windowed
queries exact under parallelism.
"""

from __future__ import annotations

import bisect
import itertools
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.sim.core import Event, SimError, Simulator
from repro.sim.sync import Semaphore, lock_group


class CpuLedger:
    """Records (start, end) busy intervals per account name and core.

    Within one core, intervals are appended in nondecreasing start order
    (a core runs one activity at a time), which keeps queries cheap.

    Accounts are **hierarchical**: ``proxy/seal:aes-256-cbc-sha1`` is a
    sub-account of ``proxy``, and every query for ``proxy`` aggregates
    its own intervals plus all ``proxy/...`` children.  The crypto
    layers charge their bulk/handshake work to sub-accounts so the
    profiler can attribute "how much of the proxy's CPU is cipher work"
    while the paper's utilization figures (which sample the parent
    account) are unchanged.

    A parent→children index, updated when an account first records, maps
    each slash-boundary prefix to the ledger keys beneath it, so
    hierarchical queries never rescan the whole key space (profiler
    report generation used to be quadratic in account count).
    """

    def __init__(self) -> None:
        #: account -> core id -> interval list (sorted per core)
        self._intervals: Dict[str, Dict[int, List[Tuple[float, float]]]] = {}
        #: slash-boundary prefix -> ledger keys at/under it, in
        #: first-record order (matches the old linear-scan order, so
        #: float accumulation order — and thus sums — are unchanged)
        self._children: Dict[str, List[str]] = {}

    def record(self, account: str, start: float, end: float, core: int = 0) -> None:
        if end < start:
            raise SimError(f"negative busy interval for {account!r}")
        if end > start:
            by_core = self._intervals.get(account)
            if by_core is None:
                by_core = self._intervals[account] = {}
                self._index(account)
            by_core.setdefault(core, []).append((start, end))

    def _index(self, account: str) -> None:
        """Register a new ledger key under itself and every ``/`` prefix."""
        self._children.setdefault(account, []).append(account)
        key = account
        while True:
            cut = key.rfind("/")
            if cut < 0:
                return
            key = key[:cut]
            self._children.setdefault(key, []).append(account)

    def accounts(self) -> Iterator[str]:
        return iter(self._intervals)

    def _keys_for(self, account: str) -> List[str]:
        """The ledger keys matching an account: itself + sub-accounts."""
        return self._children.get(account, [])

    def total(self, account: str) -> float:
        """Total busy seconds charged to an account (children included)."""
        return sum(e - s
                   for k in self._keys_for(account)
                   for ivs in self._intervals[k].values()
                   for s, e in ivs)

    def total_exact(self, account: str) -> float:
        """Total busy seconds of one exact ledger key, no children."""
        by_core = self._intervals.get(account)
        if not by_core:
            return 0.0
        return sum(e - s for ivs in by_core.values() for s, e in ivs)

    def totals(self) -> Dict[str, float]:
        """Exact per-key busy totals, sorted by key — the profiler's
        per-account attribution table."""
        return {k: self.total_exact(k) for k in sorted(self._intervals)}

    @staticmethod
    def _overlap(ivs: List[Tuple[float, float]], t0: float, t1: float) -> float:
        """Overlap of a sorted disjoint interval list with [t0, t1)."""
        # Find the first interval that could overlap (end > t0).
        starts = [s for s, _ in ivs]
        i = bisect.bisect_left(starts, t0)
        # Step back: the previous interval may straddle t0.
        while i > 0 and ivs[i - 1][1] > t0:
            i -= 1
        busy = 0.0
        for s, e in ivs[i:]:
            if s >= t1:
                break
            busy += max(0.0, min(e, t1) - max(s, t0))
        return busy

    def _busy_one(self, key: str, t0: float, t1: float) -> float:
        by_core = self._intervals.get(key)
        if not by_core:
            return 0.0
        busy = 0.0
        for ivs in by_core.values():
            busy += self._overlap(ivs, t0, t1)
        return busy

    def busy_in_window(self, account: str, t0: float, t1: float) -> float:
        """Busy core-seconds of ``account`` (plus sub-accounts) in [t0, t1).

        Summing per-(key, core) overlaps is exact because one core never
        runs two activities at once — intervals within a core are
        disjoint in time.  With N cores the result can reach
        ``N * (t1 - t0)``.
        """
        if t1 <= t0:
            return 0.0
        return sum(self._busy_one(k, t0, t1) for k in self._keys_for(account))

    def busy_all_in_window(self, t0: float, t1: float) -> float:
        """Busy core-seconds of every account in [t0, t1)."""
        if t1 <= t0:
            return 0.0
        return sum(self._busy_one(k, t0, t1) for k in self._intervals)

    def busy_by_core(self, t0: float, t1: float) -> Dict[int, float]:
        """Busy seconds per core in [t0, t1) — the profiler's per-core
        utilization rows.  Only cores that ever recorded appear."""
        out: Dict[int, float] = {}
        if t1 <= t0:
            return out
        for by_core in self._intervals.values():
            for core, ivs in by_core.items():
                busy = self._overlap(ivs, t0, t1)
                if busy > 0.0:
                    out[core] = out.get(core, 0.0) + busy
        return out

    def utilization_series(
        self, account: str, t_end: float, window: float = 5.0
    ) -> List[Tuple[float, float]]:
        """Per-window utilization percentages.

        Returns ``[(window_end_time, percent), ...]`` covering [0, t_end),
        mirroring the paper's every-5-seconds sampling of user CPU time.
        """
        out: List[Tuple[float, float]] = []
        t = 0.0
        while t < t_end:
            hi = min(t + window, t_end)
            span = hi - t
            pct = 100.0 * self.busy_in_window(account, t, hi) / span if span > 0 else 0.0
            out.append((hi, pct))
            t += window
        return out


class CPU:
    """One or more cores that serialize and account simulated compute.

    ``consume(seconds, account)`` returns a generator suitable for
    ``yield from`` inside a process: it queues for a core (FIFO),
    holds it for ``seconds`` of virtual time, and logs the busy interval.

    A ``speed`` factor scales all durations — a host twice as fast
    executes the same work in half the virtual time — which is how the
    calibration layer expresses different machine classes without
    touching call sites.

    ``cores=1`` (the default) keeps the original single-semaphore
    discipline and is bit-identical to the historic schedules; see the
    module docstring for the multi-core dispatch rules.
    """

    def __init__(self, sim: Simulator, name: str = "cpu", speed: float = 1.0,
                 cores: int = 1):
        if speed <= 0:
            raise SimError("CPU speed must be positive")
        if cores < 1:
            raise SimError("CPU needs at least one core")
        self.sim = sim
        self.name = name
        self.speed = speed
        self.cores = cores
        self.ledger = CpuLedger()
        #: queued acquisitions (contention indicator, mirrors Semaphore)
        self.wait_count = 0
        if cores == 1:
            self._core = Semaphore(sim, capacity=1, name=f"{name}.core")
        else:
            self._acq_name = f"acq:{name}.core"
            self._busy = [False] * cores
            #: global FIFO of un-pinned waiters: (event, enqueued_at, seq)
            self._run_queue: Deque[Tuple[Event, float, int]] = deque()
            #: per-core FIFO lanes for affinity-pinned waiters
            self._lanes: List[Deque[Tuple[Event, float, int]]] = [
                deque() for _ in range(cores)
            ]
            #: arrival ticket; with nondecreasing enqueue times this
            #: totally orders waiters by (ready-time, seq)
            self._ticket = itertools.count()
            self._h_wait = None  # sync/sem_wait histogram, resolved lazily

    def consume(self, seconds: float, account: str = "other",
                affinity: Optional[int] = None):
        """Generator: occupy a core for ``seconds / speed`` virtual time.

        ``affinity`` pins the work to core ``affinity % cores`` (multi-
        core CPUs only; ignored on a single core), so a session's cipher
        stream stays on one core while other sessions' work overlaps.
        """
        if seconds < 0:
            raise SimError(f"negative CPU time: {seconds}")
        scaled = seconds / self.speed
        if self.cores == 1:
            yield self._core.acquire()
            start = self.sim.now
            try:
                yield self.sim.timeout(scaled)
                self.ledger.record(account, start, self.sim.now)
            finally:
                self._core.release()
            return
        core = yield self._acquire(affinity)
        start = self.sim.now
        try:
            yield self.sim.timeout(scaled)
            self.ledger.record(account, start, self.sim.now, core=core)
        finally:
            self._release(core)

    # -- multi-core dispatch ------------------------------------------------

    def _acquire(self, affinity: Optional[int]) -> Event:
        """An event that fires with the granted core's index."""
        ev = Event(self.sim, self._acq_name)
        if affinity is not None:
            core = affinity % self.cores
            if not self._busy[core]:
                self._busy[core] = True
                ev.succeed(core)
            else:
                self._note_wait()
                self._lanes[core].append((ev, self.sim.now, next(self._ticket)))
        else:
            core = next(
                (i for i in range(self.cores) if not self._busy[i]), None
            )
            if core is not None:
                self._busy[core] = True
                ev.succeed(core)
            else:
                self._note_wait()
                self._run_queue.append((ev, self.sim.now, next(self._ticket)))
        return ev

    def _release(self, core: int) -> None:
        """Hand the freed core to the earliest eligible waiter.

        Eligible waiters are the core's own pinned lane and the global
        run queue; the one that enqueued first (smaller ticket, i.e.
        earlier (ready-time, seq)) wins — deterministic, no barging.
        """
        lane = self._lanes[core]
        shared = self._run_queue
        if lane and shared:
            queue = lane if lane[0][2] <= shared[0][2] else shared
        elif lane:
            queue = lane
        elif shared:
            queue = shared
        else:
            self._busy[core] = False
            return
        ev, enqueued_at, _seq = queue.popleft()
        if self._h_wait is not None:
            self._h_wait.observe(self.sim.now - enqueued_at)
        ev.succeed(core)

    def _note_wait(self) -> None:
        """Count a queued acquisition, mirroring Semaphore's telemetry
        (same ``sync`` metric family, so fleet dashboards don't fork)."""
        self.wait_count += 1
        obs = self.sim.obs
        if obs.enabled:
            group = lock_group(f"{self.name}.core")
            if self._h_wait is None:
                self._h_wait = obs.histogram("sync", "sem_wait", lock=group)
            obs.counter("sync", "sem_waits", lock=group).inc()

    def busy_total(self, account: str) -> float:
        return self.ledger.total(account)
