"""CPU resource with per-activity time accounting.

The paper reports the *user CPU time* consumed by the user-level
proxies/daemons, sampled every 5 seconds during the IOzone run (Figs. 5
and 6).  To reproduce that, every simulated host owns a :class:`CPU`;
code that models computation calls ``yield cpu.consume(seconds, account)``
which (a) serializes compute through the core like a real CPU and (b)
records the busy interval under the given account name in a
:class:`CpuLedger`.

The ledger can then answer "what fraction of the window [t, t+5) was
spent in account 'proxy'?" — exactly the series the paper plots.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, Iterator, List, Tuple

from repro.sim.core import SimError, Simulator
from repro.sim.sync import Semaphore


class CpuLedger:
    """Records (start, end) busy intervals per account name.

    Intervals are appended in nondecreasing start order (guaranteed by
    the single-core FIFO CPU), which keeps queries cheap.

    Accounts are **hierarchical**: ``proxy/seal:aes-256-cbc-sha1`` is a
    sub-account of ``proxy``, and every query for ``proxy`` aggregates
    its own intervals plus all ``proxy/...`` children.  The crypto
    layers charge their bulk/handshake work to sub-accounts so the
    profiler can attribute "how much of the proxy's CPU is cipher work"
    while the paper's utilization figures (which sample the parent
    account) are unchanged.
    """

    def __init__(self) -> None:
        self._intervals: Dict[str, List[Tuple[float, float]]] = defaultdict(list)

    def record(self, account: str, start: float, end: float) -> None:
        if end < start:
            raise SimError(f"negative busy interval for {account!r}")
        if end > start:
            self._intervals[account].append((start, end))

    def accounts(self) -> Iterator[str]:
        return iter(self._intervals)

    def _keys_for(self, account: str) -> List[str]:
        """The ledger keys matching an account: itself + sub-accounts."""
        prefix = account + "/"
        return [k for k in self._intervals
                if k == account or k.startswith(prefix)]

    def total(self, account: str) -> float:
        """Total busy seconds charged to an account (children included)."""
        return sum(e - s
                   for k in self._keys_for(account)
                   for s, e in self._intervals[k])

    def total_exact(self, account: str) -> float:
        """Total busy seconds of one exact ledger key, no children."""
        return sum(e - s for s, e in self._intervals.get(account, ()))

    def totals(self) -> Dict[str, float]:
        """Exact per-key busy totals, sorted by key — the profiler's
        per-account attribution table."""
        return {k: self.total_exact(k) for k in sorted(self._intervals)}

    def _busy_one(self, key: str, t0: float, t1: float) -> float:
        ivs = self._intervals.get(key, [])
        # Find the first interval that could overlap (end > t0).
        starts = [s for s, _ in ivs]
        i = bisect.bisect_left(starts, t0)
        # Step back: the previous interval may straddle t0.
        while i > 0 and ivs[i - 1][1] > t0:
            i -= 1
        busy = 0.0
        for s, e in ivs[i:]:
            if s >= t1:
                break
            busy += max(0.0, min(e, t1) - max(s, t0))
        return busy

    def busy_in_window(self, account: str, t0: float, t1: float) -> float:
        """Busy seconds of ``account`` (plus sub-accounts) in [t0, t1).

        Summing per-key overlaps is exact because a single FIFO core
        never runs two accounts at once — intervals across keys are
        disjoint in time.
        """
        if t1 <= t0:
            return 0.0
        return sum(self._busy_one(k, t0, t1) for k in self._keys_for(account))

    def busy_all_in_window(self, t0: float, t1: float) -> float:
        """Busy seconds of the whole core (every account) in [t0, t1)."""
        if t1 <= t0:
            return 0.0
        return sum(self._busy_one(k, t0, t1) for k in self._intervals)

    def utilization_series(
        self, account: str, t_end: float, window: float = 5.0
    ) -> List[Tuple[float, float]]:
        """Per-window utilization percentages.

        Returns ``[(window_end_time, percent), ...]`` covering [0, t_end),
        mirroring the paper's every-5-seconds sampling of user CPU time.
        """
        out: List[Tuple[float, float]] = []
        t = 0.0
        while t < t_end:
            hi = min(t + window, t_end)
            span = hi - t
            pct = 100.0 * self.busy_in_window(account, t, hi) / span if span > 0 else 0.0
            out.append((hi, pct))
            t += window
        return out


class CPU:
    """A single core that serializes and accounts simulated compute.

    ``consume(seconds, account)`` returns a generator suitable for
    ``yield from`` inside a process: it queues for the core (FIFO),
    holds it for ``seconds`` of virtual time, and logs the busy interval.

    A ``speed`` factor scales all durations — a host twice as fast
    executes the same work in half the virtual time — which is how the
    calibration layer expresses different machine classes without
    touching call sites.
    """

    def __init__(self, sim: Simulator, name: str = "cpu", speed: float = 1.0):
        if speed <= 0:
            raise SimError("CPU speed must be positive")
        self.sim = sim
        self.name = name
        self.speed = speed
        self.ledger = CpuLedger()
        self._core = Semaphore(sim, capacity=1, name=f"{name}.core")

    def consume(self, seconds: float, account: str = "other"):
        """Generator: occupy the core for ``seconds / speed`` virtual time."""
        if seconds < 0:
            raise SimError(f"negative CPU time: {seconds}")
        scaled = seconds / self.speed
        yield self._core.acquire()
        start = self.sim.now
        try:
            yield self.sim.timeout(scaled)
            self.ledger.record(account, start, self.sim.now)
        finally:
            self._core.release()

    def busy_total(self, account: str) -> float:
        return self.ledger.total(account)
