"""Inter-process synchronization primitives.

These are the building blocks the network and RPC layers are made of:

- :class:`Channel` — an unbounded FIFO of messages with blocking ``get``;
  the basic mailbox between simulated processes.
- :class:`Store` — a bounded buffer with blocking ``put`` and ``get``
  (used to model bounded socket buffers / flow control).
- :class:`Semaphore` — counted resource with FIFO queuing (CPU cores,
  connection limits, request-concurrency caps).
- :class:`RwLock` — shared/exclusive lock with strict arrival-order
  queuing (the NFS server's per-inode serialization under concurrent
  multi-client fleets).
- :class:`Gate` — a level-triggered condition processes can wait on.

All waiters are served strictly FIFO to keep runs deterministic.

Contention telemetry: :class:`Semaphore` and :class:`RwLock` count the
acquisitions that had to queue (``wait_count``) and, when the simulator
carries a live metrics registry, export those counts plus wait-time
histograms under the ``sync`` component (``sem_waits`` / ``sem_wait`` /
``rwlock_waits`` / ``rwlock_wait``, labelled by the lock's digit-collapsed
name so per-fileid lock instances aggregate into one series).  The
uncontended fast paths are untouched — the bookkeeping runs only when a
waiter actually queues — and observations never consume virtual time.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Any, Deque, Optional

from repro.sim.core import Event, SimError, Simulator

#: Digit runs collapse to ``*`` so high-cardinality lock populations
#: (per-fileid ``ino42`` RwLocks, per-client ``cpu:c7.core`` semaphores)
#: export as one bounded metric series per lock *family*.
_DIGITS = re.compile(r"\d+")


def lock_group(name: str) -> str:
    """The export label for a lock name: digit runs collapsed to ``*``."""
    return _DIGITS.sub("*", name)


class Channel:
    """Unbounded FIFO message queue.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    next message (immediately if one is already queued).  ``close`` makes
    all current and future gets fail with :class:`ChannelClosed`.
    """

    __slots__ = ("sim", "name", "_get_name", "_items", "_getters", "_closed")

    def __init__(self, sim: Simulator, name: str = "chan"):
        self.sim = sim
        self.name = name
        self._get_name = f"get:{name}"
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> None:
        if self._closed:
            raise ChannelClosed(self.name)
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim, self._get_name)
        if self._items:
            ev.succeed(self._items.popleft())
        elif self._closed:
            ev.fail(ChannelClosed(self.name))
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: (True, item) or (False, None)."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def close(self) -> None:
        """Close the channel; queued items are still deliverable."""
        self._closed = True
        # Waiters can never be satisfied now.
        while self._getters:
            self._getters.popleft().fail(ChannelClosed(self.name))


class ChannelClosed(SimError):
    """Raised by Channel.get when the channel was closed."""


class Store:
    """Bounded buffer with blocking put and get (FIFO fairness)."""

    __slots__ = ("sim", "name", "_get_name", "_put_name", "capacity",
                 "_items", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: int, name: str = "store"):
        if capacity < 1:
            raise SimError("Store capacity must be >= 1")
        self.sim = sim
        self.name = name
        self._get_name = f"get:{name}"
        self._put_name = f"put:{name}"
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        ev = Event(self.sim, self._put_name)
        if self._getters:
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = Event(self.sim, self._get_name)
        if self._items:
            ev.succeed(self._items.popleft())
            self._admit_putter()
        elif self._putters:
            put_ev, item = self._putters.popleft()
            put_ev.succeed()
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def _admit_putter(self) -> None:
        if self._putters and len(self._items) < self.capacity:
            put_ev, item = self._putters.popleft()
            self._items.append(item)
            put_ev.succeed()


class Semaphore:
    """Counted resource with FIFO queuing.

    Usage inside a process::

        yield sem.acquire()
        try:
            ...
        finally:
            sem.release()
    """

    __slots__ = ("sim", "name", "_acq_name", "capacity", "_in_use", "_waiters",
                 "wait_count", "_h_wait")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "sem"):
        if capacity < 1:
            raise SimError("Semaphore capacity must be >= 1")
        self.sim = sim
        self.name = name
        self._acq_name = f"acq:{name}"
        self.capacity = capacity
        self._in_use = 0
        #: FIFO of (event, enqueued_at)
        self._waiters: Deque[tuple[Event, float]] = deque()
        #: total acquisitions that had to queue (contention indicator)
        self.wait_count = 0
        self._h_wait = None  # sync/sem_wait histogram, resolved lazily

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        ev = Event(self.sim, self._acq_name)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self.wait_count += 1
            obs = self.sim.obs
            if obs.enabled:
                if self._h_wait is None:
                    group = lock_group(self.name)
                    self._h_wait = obs.histogram("sync", "sem_wait", lock=group)
                obs.counter("sync", "sem_waits",
                            lock=lock_group(self.name)).inc()
            self._waiters.append((ev, self.sim.now))
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire: take a free slot now, or return False.

        Equivalent to an ``acquire()`` that would succeed immediately,
        minus the event round trip — the network's callback-chained
        delivery uses it on uncontended links.
        """
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimError(f"semaphore {self.name!r} released while free")
        if self._waiters:
            # Hand the slot straight to the next waiter.
            ev, enqueued_at = self._waiters.popleft()
            if self._h_wait is not None:
                self._h_wait.observe(self.sim.now - enqueued_at)
            ev.succeed()
        else:
            self._in_use -= 1


class RwLock:
    """A reader/writer lock with strict arrival-order (FIFO) queuing.

    Any number of readers share the lock; writers are exclusive.
    Fairness is strict FIFO over *arrival order*: a reader that arrives
    after a queued writer waits behind it (no writer starvation, no
    reader barging), and the grant order is therefore a pure function of
    the acquisition order — deterministic across runs.

    The ``try_acquire_*`` fast paths take the lock synchronously when it
    is free, with no event round trip, so an uncontended critical
    section costs **zero virtual time** and schedules no extra events —
    single-client runs are bit-identical with or without locking.

    Usage inside a process::

        if not lock.try_acquire_write():
            yield lock.acquire_write()
        try:
            ...
        finally:
            lock.release_write()
    """

    __slots__ = ("sim", "name", "_acq_name", "_readers", "_writer",
                 "_waiters", "wait_count", "_h_wait")

    def __init__(self, sim: Simulator, name: str = "rwlock"):
        self.sim = sim
        self.name = name
        self._acq_name = f"acq:{name}"
        self._readers = 0
        self._writer = False
        #: FIFO of (event, wants_write, enqueued_at)
        self._waiters: Deque[tuple[Event, bool, float]] = deque()
        #: total acquisitions that had to queue (contention indicator)
        self.wait_count = 0
        self._h_wait = None  # sync/rwlock_wait histogram, resolved lazily

    def _note_queued(self) -> None:
        """Count a queued acquisition and export it to the registry."""
        self.wait_count += 1
        obs = self.sim.obs
        if obs.enabled:
            group = lock_group(self.name)
            if self._h_wait is None:
                self._h_wait = obs.histogram("sync", "rwlock_wait", lock=group)
            obs.counter("sync", "rwlock_waits", lock=group).inc()

    @property
    def readers(self) -> int:
        return self._readers

    @property
    def write_locked(self) -> bool:
        return self._writer

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def try_acquire_read(self) -> bool:
        """Take a shared hold now iff no writer holds or waits."""
        if not self._writer and not self._waiters:
            self._readers += 1
            return True
        return False

    def acquire_read(self) -> Event:
        ev = Event(self.sim, self._acq_name)
        if not self._writer and not self._waiters:
            self._readers += 1
            ev.succeed()
        else:
            self._note_queued()
            self._waiters.append((ev, False, self.sim.now))
        return ev

    def release_read(self) -> None:
        if self._readers <= 0:
            raise SimError(f"rwlock {self.name!r} read-released while free")
        self._readers -= 1
        if self._readers == 0:
            self._grant()

    def try_acquire_write(self) -> bool:
        """Take the exclusive hold now iff the lock is completely free."""
        if not self._writer and self._readers == 0 and not self._waiters:
            self._writer = True
            return True
        return False

    def acquire_write(self) -> Event:
        ev = Event(self.sim, self._acq_name)
        if not self._writer and self._readers == 0 and not self._waiters:
            self._writer = True
            ev.succeed()
        else:
            self._note_queued()
            self._waiters.append((ev, True, self.sim.now))
        return ev

    def release_write(self) -> None:
        if not self._writer:
            raise SimError(f"rwlock {self.name!r} write-released while free")
        self._writer = False
        self._grant()

    def _grant(self) -> None:
        """Wake the head of the queue: one writer, or a run of readers."""
        if not self._waiters:
            return
        if self._waiters[0][1]:  # writer at the head
            if self._readers == 0 and not self._writer:
                ev, _, enqueued_at = self._waiters.popleft()
                self._writer = True
                if self._h_wait is not None:
                    self._h_wait.observe(self.sim.now - enqueued_at)
                ev.succeed()
            return
        # Admit the consecutive readers at the head (arrival order).
        while self._waiters and not self._waiters[0][1]:
            ev, _, enqueued_at = self._waiters.popleft()
            self._readers += 1
            if self._h_wait is not None:
                self._h_wait.observe(self.sim.now - enqueued_at)
            ev.succeed()


class Gate:
    """A level-triggered condition.

    While *open*, waits pass immediately; while *closed*, waiters queue
    until the gate opens.  Useful for pause/resume of forwarding during
    proxy reconfiguration.
    """

    __slots__ = ("sim", "name", "_wait_name", "_open", "_waiters")

    def __init__(self, sim: Simulator, open: bool = True, name: str = "gate"):
        self.sim = sim
        self.name = name
        self._wait_name = f"wait:{name}"
        self._open = open
        self._waiters: Deque[Event] = deque()

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        ev = Event(self.sim, self._wait_name)
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def open(self) -> None:
        self._open = True
        while self._waiters:
            self._waiters.popleft().succeed()

    def close(self) -> None:
        self._open = False
