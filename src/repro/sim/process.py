"""Generator-based cooperative processes.

A process is an ordinary Python generator driven by the simulator.  It
may yield:

- an :class:`~repro.sim.core.Event` (including timeouts) — the process
  resumes when the event fires, receiving its value, or having its
  failure exception raised at the yield point;
- another :class:`Process` — shorthand for yielding its completion event
  (a *join*);
- ``None`` — yield the floor: reschedule immediately, letting other
  events at the current instant run first.

A process's ``completion`` event fires with the generator's return value,
or fails with its uncaught exception.  Uncaught failures with no one
joining are re-raised at the end of :func:`Simulator.run` would be ideal,
but to keep the kernel small we instead surface them the first time
anything joins the process, and :class:`ProcessDied` marks the condition.

Scheduling is allocation-lean: a process is itself a valid queue entry
(``_when``/``_seq``/``_fire``) *and* a valid event callback (it is
callable), so the start kick and every floor-yield put the process
straight on the simulator's zero-delay lane — no intermediate Timeout
event — and waiting on an event stores the process object as the
event's single callback instead of a fresh bound method.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.core import Event, Interrupt, SimError, Simulator, _PENDING


class ProcessDied(SimError):
    """Joining a process that already failed re-raises its error wrapped here."""


class Process:
    """A cooperative process executing a generator on the virtual clock."""

    __slots__ = ("sim", "name", "generator", "completion", "_waiting_on",
                 "_started", "trace_key", "trace_ns", "_when", "_seq")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(f"Process needs a generator, got {type(generator).__name__}")
        self.sim = sim
        #: stable identity stamp for span tracing (set lazily by the
        #: tracer; ``id()`` is unusable because CPython reuses addresses
        #: of collected processes, which would merge unrelated tracks).
        self.trace_key: Optional[int] = None
        #: trace namespace, inherited from the spawning process so an
        #: entire subtree of a fleet client lands on that client's
        #: tracks.  ``sim.current`` is only maintained while tracing, so
        #: outside traced runs this is always None.
        self.trace_ns: Optional[str] = getattr(sim.current, "trace_ns", None)
        self.name = name or getattr(generator, "__name__", "proc")
        self.generator = generator
        self.completion: Event = sim.event(name=f"completion:{self.name}")
        self._waiting_on: Optional[Event] = None
        self._started = False
        # Start the process at the current instant, after pending events.
        # The process is its own queue entry: no kick Timeout needed.
        sim._schedule_now(self)

    # -- status --------------------------------------------------------

    @property
    def alive(self) -> bool:
        return not self.completion.triggered

    # -- control -------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is a no-op (matching simpy).
        """
        if not self.alive:
            return
        target = self._waiting_on
        if target is not None and not target.triggered:
            # Detach from whatever it was waiting for; it resumes now.
            self._waiting_on = None
            ev = self.sim.event(name=f"interrupt:{self.name}")
            ev.add_callback(lambda _e: self._throw(Interrupt(cause)))
            ev.succeed()
        else:
            # Process is about to be resumed by a triggered event (or a
            # queued floor-yield); queue the interrupt right behind it.
            self.sim.call_later(0.0, lambda: self._throw(Interrupt(cause)))

    # -- driving -------------------------------------------------------

    def _fire(self) -> None:
        """Queue-entry hook: a kick or floor-yield reached the front."""
        self._resume(None)

    def __call__(self, event: Event) -> None:
        """Event-callback hook: the awaited event fired."""
        self._resume(event)

    def _resume(self, event: Optional[Event]) -> None:
        """Advance the generator with the event's outcome."""
        if self.completion._value is not _PENDING or self.completion._exc is not None:
            return  # not alive
        # Ignore stale wakeups from events we were detached from (interrupt).
        if event is not None and event is not self._waiting_on and self._started:
            return
        self._waiting_on = None
        self._started = True
        # Mark this process as the executing context while the generator
        # runs: span tracing attributes causality by sim.current, and the
        # wakeup counter feeds the sim-layer metrics.  Only the tracer
        # reads sim.current, so the bookkeeping is skipped when tracing
        # is off — this is the hottest function in the simulator.
        sim = self.sim
        if sim.obs.enabled:
            sim._c_wakeups.inc()
        tracing = sim.tracer.enabled
        if tracing:
            prev, sim.current = sim.current, self
        try:
            if event is None or event._exc is None:
                value = event._value if event is not None else None
                if value is _PENDING:
                    value = None
                target = self.generator.send(value)
            else:
                target = self.generator.throw(event._exc)
        except StopIteration as stop:
            self.completion.succeed(stop.value)
            return
        except BaseException as exc:
            self.completion.fail(exc)
            return
        finally:
            if tracing:
                sim.current = prev
        # Inline _wait_for's common case: most yields are events.
        if isinstance(target, Event):
            self._waiting_on = target
            target.add_callback(self)
        else:
            self._wait_for(target)

    def _throw(self, exc: BaseException) -> None:
        if not self.alive:
            return
        sim = self.sim
        tracing = sim.tracer.enabled
        if tracing:
            prev, sim.current = sim.current, self
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.completion.succeed(stop.value)
            return
        except BaseException as err:
            self.completion.fail(err)
            return
        finally:
            if tracing:
                sim.current = prev
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        if target is None:
            # Floor-yield: reschedule directly, no intermediate event.
            self.sim._schedule_now(self)
            return
        if isinstance(target, Process):
            ev = target.completion
        elif isinstance(target, Event):
            ev = target
        else:
            self._throw(TypeError(f"process {self.name!r} yielded {type(target).__name__}"))
            return
        self._waiting_on = ev
        ev.add_callback(self)

    # -- joining -------------------------------------------------------

    def result(self) -> Any:
        """The process's return value; raises if unfinished or failed."""
        if not self.completion.triggered:
            raise SimError(f"process {self.name!r} still running")
        if self.completion.failed:
            raise ProcessDied(self.name) from self.completion.exception
        return self.completion.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else ("failed" if self.completion.failed else "done")
        return f"<Process {self.name!r} {state}>"


def all_of(sim: Simulator, events: list) -> Event:
    """An event that fires once every listed event/process has fired.

    Its value is the list of individual values, in input order.  The
    first failure fails the aggregate immediately.
    """
    done = sim.event(name="all_of")
    pending = [e.completion if isinstance(e, Process) else e for e in events]
    remaining = len(pending)
    values: list[Any] = [None] * len(pending)
    if remaining == 0:
        return done.succeed([])

    def make_cb(i: int):
        def cb(ev: Event) -> None:
            nonlocal remaining
            if done.triggered:
                return
            if ev.failed:
                done.fail(ev.exception)  # type: ignore[arg-type]
                return
            values[i] = ev.value
            remaining -= 1
            if remaining == 0:
                done.succeed(values)

        return cb

    for i, ev in enumerate(pending):
        ev.add_callback(make_cb(i))
    return done


def any_of(sim: Simulator, events: list) -> Event:
    """An event that fires with (index, value) of the first event to fire."""
    done = sim.event(name="any_of")
    pending = [e.completion if isinstance(e, Process) else e for e in events]
    if not pending:
        raise SimError("any_of() needs at least one event")

    def make_cb(i: int):
        def cb(ev: Event) -> None:
            if done.triggered:
                return
            if ev.failed:
                done.fail(ev.exception)  # type: ignore[arg-type]
            else:
                done.succeed((i, ev.value))

        return cb

    for i, ev in enumerate(pending):
        ev.add_callback(make_cb(i))
    return done
