"""Event loop and virtual clock.

The design follows the classic calendar-queue pattern: a binary heap of
``(time, seq, Event)`` entries, where ``seq`` is a monotonically
increasing insertion counter that makes simultaneous events fire in a
deterministic (FIFO) order.  Events are one-shot: they move from *pending*
to either *succeeded* or *failed*, and callbacks registered on them run
inline when they fire.

This module knows nothing about processes; :mod:`repro.sim.process` builds
generator-based coroutines on top of the primitives here.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimError(Exception):
    """Base class for simulation kernel errors."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    schedules it to fire immediately (at the current simulation time,
    after already-queued events for that instant).  When it fires, all
    registered callbacks run with the event as their argument.

    Events are also the unit a process may ``yield`` on: the process
    resumes when the event fires, receiving ``event.value`` (or having
    the failure exception raised inside it).
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_scheduled", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self._scheduled = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not _PENDING or self._exc is not None

    @property
    def ok(self) -> bool:
        """True if the event fired successfully."""
        return self._value is not _PENDING and self._exc is None

    @property
    def failed(self) -> bool:
        return self._exc is not None

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimError(f"event {self.name!r} has no value yet")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimError(f"event {self.name!r} already triggered")
        self._value = value
        self.sim._schedule(0.0, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise SimError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._exc = exc
        self._value = None
        self.sim._schedule(0.0, self)
        return self

    # -- callbacks -----------------------------------------------------

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires.

        If the event has already been *processed* the callback runs
        immediately; this removes a whole class of registration races.
        """
        if self._scheduled and self.triggered:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _fire(self) -> None:
        self._scheduled = True
        callbacks, self.callbacks = self.callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "failed" if self.failed else "ok"
        return f"<Event {self.name!r} {state} @{self.sim.now:.6f}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout: {delay}")
        super().__init__(sim, name=f"timeout({delay:g})")
        self.delay = delay
        self._value = value
        sim._schedule(delay, self)


class Simulator:
    """The virtual clock and event queue.

    Typical use::

        sim = Simulator()
        sim.spawn(my_generator_fn(sim))
        sim.run()          # until no events remain
        sim.run(until=10)  # or until a deadline

    The simulator is single-threaded and deterministic; two runs with the
    same inputs produce identical traces.

    ``obs``/``tracer`` carry the telemetry subsystem (:mod:`repro.obs`)
    to every layer built on the simulator: components grab them at
    construction time, so one ``Simulator(obs=..., tracer=...)`` enables
    instrumentation stack-wide.  Both default to the shared null
    implementations, whose ``enabled`` attribute is False — hot paths
    guard on that one attribute check and otherwise pay nothing.
    """

    def __init__(self, obs=None, tracer=None) -> None:
        from repro.obs import NULL_REGISTRY, NULL_TRACER

        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._running = False
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: the Process currently executing (span causality tracks)
        self.current = None
        self._c_events = self.obs.counter("sim", "events_dispatched")
        self._c_wakeups = self.obs.counter("sim", "process_wakeups")

    # -- scheduling ----------------------------------------------------

    def _schedule(self, delay: float, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` virtual seconds from now."""
        return Timeout(self, delay, value)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute virtual time ``when``."""
        if when < self.now:
            raise SimError(f"call_at({when}) is in the past (now={self.now})")
        ev = self.timeout(when - self.now)
        ev.add_callback(lambda _e: fn())
        return ev

    def call_later(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` virtual seconds."""
        ev = self.timeout(delay)
        ev.add_callback(lambda _e: fn())
        return ev

    def spawn(self, generator, name: str = "") -> "Any":
        """Start a new process from a generator (see repro.sim.process)."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # -- execution -----------------------------------------------------

    def step(self) -> None:
        """Process exactly one event."""
        when, _seq, event = heapq.heappop(self._heap)
        self.now = when
        if self.obs.enabled:
            self._c_events.inc()
        event._fire()

    def peek(self) -> float:
        """Time of the next event, or +inf if the queue is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains or the deadline passes.

        Returns the final simulation time.  ``max_events`` is a runaway
        guard — a healthy experiment in this repository is well under it.
        """
        if self._running:
            raise SimError("run() is not reentrant")
        self._running = True
        try:
            n = 0
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    self.now = until
                    break
                self.step()
                n += 1
                if n >= max_events:
                    raise SimError(f"exceeded max_events={max_events}; runaway simulation?")
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def run_until_complete(self, proc) -> Any:
        """Run until the given process finishes; return its value.

        Raises the process's exception if it failed.
        """
        self.run_until_event(proc.completion)
        if proc.completion.failed:
            raise proc.completion.exception
        return proc.completion.value

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` has fired."""
        while not event._scheduled:
            if not self._heap:
                raise SimError("event queue drained before target event fired (deadlock?)")
            self.step()
        if event.failed:
            raise event.exception  # type: ignore[misc]
        return event.value
