"""Event loop and virtual clock.

The scheduler has two lanes that together behave exactly like one
calendar queue ordered by ``(time, seq)``:

- a binary heap of ``(time, seq, entry)`` tuples for entries with a
  positive delay, and
- a zero-delay FIFO deque for entries firing "now" — ``succeed()`` /
  ``fail()``, zero-delay timeouts, and process kicks.  Because the
  clock never goes backwards and ``seq`` is a global monotonically
  increasing insertion counter, the deque is sorted by ``(time, seq)``
  by construction and costs O(1) per operation instead of O(log n).

Most events in a run fire at the instant they are scheduled (an RPC
reply succeeding a waiter, a semaphore handing over a slot, a channel
put meeting a getter), so the zero-delay lane carries the bulk of the
traffic and the heap shrinks to genuine future work — transmission and
propagation delays, disk access times, CPU busy intervals.

``step()`` dispatches the globally smallest ``(time, seq)`` entry across
both lanes, so event ordering is bit-identical to the single-heap
implementation this replaced; the determinism guarantees (FIFO
tie-breaking, replayable traces) are unchanged.

Queue entries are any object with ``_when`` / ``_seq`` slots and a
``_fire()`` method.  Events are their own queue entry — the zero-delay
lane stores the event object directly, with no per-entry tuple — and
:class:`repro.sim.process.Process` schedules itself the same way for
process kicks and floor-yields, so neither allocates intermediate
objects on the hot path.

Events are one-shot: they move from *pending* to either *succeeded* or
*failed*, and callbacks registered on them run inline when they fire.
The callback store is lazy: ``None`` until the first registration, the
bare callable for the (overwhelmingly common) single-callback case, and
a list only when a second callback arrives.

This module knows nothing about processes; :mod:`repro.sim.process`
builds generator-based coroutines on top of the primitives here.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional


class SimError(Exception):
    """Base class for simulation kernel errors."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    schedules it to fire immediately (at the current simulation time,
    after already-queued events for that instant).  When it fires, all
    registered callbacks run with the event as their argument.

    Events are also the unit a process may ``yield`` on: the process
    resumes when the event fires, receiving ``event.value`` (or having
    the failure exception raised inside it).
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_scheduled", "name",
                 "_when", "_seq")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        #: None | a single callable | a list of callables (lazy upgrade)
        self.callbacks: Any = None
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self._scheduled = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not _PENDING or self._exc is not None

    @property
    def ok(self) -> bool:
        """True if the event fired successfully."""
        return self._value is not _PENDING and self._exc is None

    @property
    def failed(self) -> bool:
        return self._exc is not None

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimError(f"event {self.name!r} has no value yet")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        if self._value is not _PENDING or self._exc is not None:
            raise SimError(f"event {self.name!r} already triggered")
        self._value = value
        self.sim._schedule_now(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._value is not _PENDING or self._exc is not None:
            raise SimError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._exc = exc
        self._value = None
        self.sim._schedule_now(self)
        return self

    # -- callbacks -----------------------------------------------------

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires.

        If the event has already been *processed* the callback runs
        immediately; this removes a whole class of registration races.
        """
        if self._scheduled and self.triggered:
            fn(self)
            return
        cbs = self.callbacks
        if cbs is None:
            self.callbacks = fn
        elif type(cbs) is list:
            cbs.append(fn)
        else:
            self.callbacks = [cbs, fn]

    def _fire(self) -> None:
        self._scheduled = True
        cbs = self.callbacks
        if cbs is None:
            return
        self.callbacks = None
        if type(cbs) is list:
            for fn in cbs:
                fn(self)
        else:
            cbs(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "failed" if self.failed else "ok"
        return f"<Event {self.name!r} {state} @{self.sim.now:.6f}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout: {delay}")
        super().__init__(sim, name="timeout")
        self.delay = delay
        self._value = value
        sim._schedule(delay, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout {self.delay:g} @{self.sim.now:.6f}>"


class Simulator:
    """The virtual clock and event queue.

    Typical use::

        sim = Simulator()
        sim.spawn(my_generator_fn(sim))
        sim.run()          # until no events remain
        sim.run(until=10)  # or until a deadline

    The simulator is single-threaded and deterministic; two runs with the
    same inputs produce identical traces.

    ``obs``/``tracer`` carry the telemetry subsystem (:mod:`repro.obs`)
    to every layer built on the simulator: components grab them at
    construction time, so one ``Simulator(obs=..., tracer=...)`` enables
    instrumentation stack-wide.  Both default to the shared null
    implementations, whose ``enabled`` attribute is False — hot paths
    guard on that one attribute check and otherwise pay nothing.

    ``heap_pushes`` counts entries that actually hit the binary heap
    (the wall-clock-expensive path); the perf harness reports it next to
    ``events_dispatched`` to quantify how much traffic the zero-delay
    lane absorbs.
    """

    def __init__(self, obs=None, tracer=None) -> None:
        from repro.obs import NULL_REGISTRY, NULL_TRACER

        self.now: float = 0.0
        self._heap: list = []
        self._fifo: deque = deque()
        self._seq = 0
        self._running = False
        self.heap_pushes = 0
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: profiling mode: layers that keep extra timelines (link
        #: occupancy ledgers, RPC queue-depth samples) check this flag
        #: so ordinary telemetry runs don't pay for them.
        self.profile = False
        #: the Process currently executing (span causality tracks)
        self.current = None
        self._c_events = self.obs.counter("sim", "events_dispatched")
        self._c_wakeups = self.obs.counter("sim", "process_wakeups")
        if self.obs.enabled:
            self.obs.add_collector(
                "sim", lambda: {"heap_pushes": self.heap_pushes}
            )

    # -- scheduling ----------------------------------------------------

    def _schedule(self, delay: float, entry) -> None:
        """Queue ``entry`` to fire ``delay`` seconds from now."""
        if delay == 0.0:
            self._seq += 1
            entry._when = self.now
            entry._seq = self._seq
            self._fifo.append(entry)
        else:
            self._seq += 1
            self.heap_pushes += 1
            heapq.heappush(self._heap, (self.now + delay, self._seq, entry))

    def _schedule_now(self, entry) -> None:
        """Zero-delay lane: fire ``entry`` at the current instant, after
        everything already queued for it.  O(1), no heap, no tuple."""
        self._seq += 1
        entry._when = self.now
        entry._seq = self._seq
        self._fifo.append(entry)

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` virtual seconds from now."""
        return Timeout(self, delay, value)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute virtual time ``when``."""
        if when < self.now:
            raise SimError(f"call_at({when}) is in the past (now={self.now})")
        ev = self.timeout(when - self.now)
        ev.add_callback(lambda _e: fn())
        return ev

    def call_later(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` virtual seconds."""
        ev = self.timeout(delay)
        ev.add_callback(lambda _e: fn())
        return ev

    def spawn(self, generator, name: str = "") -> "Any":
        """Start a new process from a generator (see repro.sim.process)."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # -- execution -----------------------------------------------------

    def step(self) -> None:
        """Process exactly one entry — the smallest ``(time, seq)``
        across the zero-delay lane and the heap."""
        fifo = self._fifo
        heap = self._heap
        if fifo:
            entry = fifo[0]
            # The deque is sorted by construction, so its head is its
            # minimum; fire whichever lane holds the global minimum.
            if heap and (heap[0][0] < entry._when
                         or (heap[0][0] == entry._when and heap[0][1] < entry._seq)):
                self.now, _seq, entry = heapq.heappop(heap)
            else:
                fifo.popleft()
                self.now = entry._when
        else:
            self.now, _seq, entry = heapq.heappop(heap)
        if self.obs.enabled:
            self._c_events.inc()
        entry._fire()

    def peek(self) -> float:
        """Time of the next event, or +inf if the queue is empty.

        Zero-delay entries always precede heap entries scheduled for a
        later time, so the head of whichever lane holds the minimum wins.
        """
        t = self._fifo[0]._when if self._fifo else float("inf")
        if self._heap and self._heap[0][0] < t:
            t = self._heap[0][0]
        return t

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains or the deadline passes.

        Returns the final simulation time.  ``max_events`` is a runaway
        guard — a healthy experiment in this repository is well under it.
        """
        if self._running:
            raise SimError("run() is not reentrant")
        self._running = True
        fifo, heap = self._fifo, self._heap
        try:
            n = 0
            while fifo or heap:
                if until is not None and self.peek() > until:
                    self.now = until
                    break
                self.step()
                n += 1
                if n >= max_events:
                    raise SimError(f"exceeded max_events={max_events}; runaway simulation?")
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def run_until_complete(self, proc) -> Any:
        """Run until the given process finishes; return its value.

        Raises the process's exception if it failed.
        """
        self.run_until_event(proc.completion)
        if proc.completion.failed:
            raise proc.completion.exception
        return proc.completion.value

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` has fired."""
        while not event._scheduled:
            if not (self._fifo or self._heap):
                raise SimError("event queue drained before target event fired (deadlock?)")
            self.step()
        if event.failed:
            raise event.exception  # type: ignore[misc]
        return event.value
