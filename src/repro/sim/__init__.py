"""Discrete-event simulation kernel.

Everything in this reproduction — the network, the RPC stacks, the NFS
client and server, the SGFS proxies and the workloads — executes as
cooperating processes on a single deterministic virtual clock provided by
this package.  The kernel is deliberately small and dependency-free:

- :class:`~repro.sim.core.Simulator` — the event loop and virtual clock.
- :class:`~repro.sim.process.Process` — generator-based cooperative
  processes (``yield sim.timeout(dt)``, ``yield event``, ``yield proc``).
- :mod:`repro.sim.sync` — channels, stores and semaphores for
  inter-process communication.
- :mod:`repro.sim.cpu` — a CPU resource that both serializes compute and
  accounts busy time per named activity, which is how the paper's
  CPU-utilization figures (Figs. 5/6) are reproduced.

Determinism: the event queue breaks ties by insertion sequence number, and
no wall-clock or OS entropy is consulted anywhere, so a simulation run is
a pure function of its inputs.
"""

from repro.sim.core import Event, Simulator, SimError, Interrupt
from repro.sim.process import Process, ProcessDied
from repro.sim.sync import Channel, Store, Semaphore, RwLock, Gate
from repro.sim.cpu import CPU, CpuLedger

__all__ = [
    "Event",
    "Simulator",
    "SimError",
    "Interrupt",
    "Process",
    "ProcessDied",
    "Channel",
    "Store",
    "Semaphore",
    "RwLock",
    "Gate",
    "CPU",
    "CpuLedger",
]
