"""SSH-style secure tunneling — the *gfs-ssh* baseline (paper §2.2, [45]).

The prior system secured GFS by running each session's NFS traffic
through a per-session SSH tunnel, with session-key authentication
between the proxies.  Its cost signature — the one the paper measures
and then eliminates — is **double user-level forwarding**: every RPC
crosses two extra user-level processes (the tunnel endpoints), each
paying kernel/user transitions, copies, and bulk crypto.

:class:`~repro.sshtun.tunnel.SshTunnelClient` listens on the client's
loopback and forwards byte streams over an encrypted connection to
:class:`~repro.sshtun.tunnel.SshTunnelServer`, which connects onward to
the server-side proxy.  Authentication uses a pre-shared session key
(the middleware-distributed key of the prior system), confirmed by a
nonce/HMAC exchange.
"""

from repro.sshtun.tunnel import SshTunnelClient, SshTunnelServer, TunnelError

__all__ = ["SshTunnelClient", "SshTunnelServer", "TunnelError"]
