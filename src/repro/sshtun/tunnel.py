"""Encrypted TCP port forwarding with a pre-shared session key.

Wire protocol: after a nonce/HMAC key-confirmation handshake, each
direction carries length-framed encrypted chunks (cipher + HMAC from a
derived key block, AES-256-CBC + SHA1 by default — the paper's gfs-ssh
configuration).  The tunnel is byte-transparent: whatever stream the
inner protocol (RPC record marking) produces is reproduced at the far
end.

Every forwarded chunk charges the forwarding host's CPU both the
user-level copy cost and the bulk-crypto cost — twice per side of the
connection (once entering the tunnel process, once leaving), which is
exactly the double-forwarding penalty of §6.2.1.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.hmac import constant_time_equal, hmac_sha256
from repro.crypto.suites import CipherSuite, SUITE_AES_SHA, derive_key_block
from repro.rpc.costs import CostProfile, FREE_PROFILE, charge_profile
from repro.rpc.record import RecordReader, RecordWriter
from repro.sim.core import Simulator
from repro.tls.channel import CPU_HZ, CRYPTO_CPU_FRACTION

#: CPU seconds for the tunnel handshake (key confirmation only — no
#: public-key operations with a pre-shared key).
TUNNEL_HANDSHAKE_CPU = 0.0005


class TunnelError(Exception):
    """Tunnel handshake or framing failure."""


class _TunnelCrypto:
    """Per-connection cipher/MAC state for both directions."""

    def __init__(self, key: bytes, suite: CipherSuite, is_client: bool, fast: bool):
        block = derive_key_block(key, "ssh-tunnel", suite.key_material_len)
        half = len(block) // 2
        c2s, s2c = block[:half], block[half:]
        mine, theirs = (c2s, s2c) if is_client else (s2c, c2s)

        def make(material: bytes):
            mac_key = material[: suite.mac.key_len]
            ck = material[suite.mac.key_len : suite.mac.key_len + suite.cipher.key_len]
            iv = material[
                suite.mac.key_len + suite.cipher.key_len :
                suite.mac.key_len + suite.cipher.key_len + suite.cipher.iv_len
            ]
            return suite.cipher.new_state(ck, iv, fast), mac_key

        self.suite = suite
        self.enc_state, self.enc_mac = make(mine)
        self.dec_state, self.dec_mac = make(theirs)
        self.enc_seq = 0
        self.dec_seq = 0

    def seal(self, data: bytes) -> bytes:
        mac = self.suite.mac.compute(
            self.enc_mac, self.enc_seq.to_bytes(8, "big") + data
        )
        self.enc_seq += 1
        return self.enc_state.encrypt(data + mac)

    def open(self, blob: bytes) -> bytes:
        plain = self.dec_state.decrypt(blob)
        n = self.suite.mac.digest_len
        if len(plain) < n:
            raise TunnelError("short tunnel frame")
        data, mac = plain[:-n], plain[-n:]
        expect = self.suite.mac.compute(
            self.dec_mac, self.dec_seq.to_bytes(8, "big") + data
        )
        if not constant_time_equal(mac, expect):
            raise TunnelError("tunnel MAC failure")
        self.dec_seq += 1
        return data


class _TunnelEndpoint:
    """Shared pumping machinery for both ends."""

    def __init__(self, sim: Simulator, host, key: bytes, suite: CipherSuite,
                 cost: CostProfile, account: str, fast_ciphers: bool):
        self.sim = sim
        self.host = host
        self.key = key
        self.suite = suite
        self.cost = cost
        self.account = account
        self.fast_ciphers = fast_ciphers
        self.chunks_forwarded = 0
        self.bytes_forwarded = 0

    def _charge(self, nbytes: int):
        yield from charge_profile(self.sim, self.host.cpu, self.cost, nbytes, self.account)
        crypto = self.suite.cycles_per_byte * nbytes / CPU_HZ
        if crypto > 0:
            # Cipher work in a sub-account; copy cost stays on the parent.
            yield from self.host.cpu.consume(
                crypto * CRYPTO_CPU_FRACTION,
                f"{self.account}/crypto:{self.suite.name}",
            )
            yield self.sim.timeout(crypto * (1.0 - CRYPTO_CPU_FRACTION))

    def _pump_plain_to_tunnel(self, plain_sock, crypto: _TunnelCrypto, tunnel_writer):
        """Read raw bytes locally, encrypt, frame into the tunnel."""
        while True:
            try:
                chunk = yield from plain_sock.recv()
            except Exception:
                return
            if chunk == b"":
                return
            yield from self._charge(len(chunk))
            self.chunks_forwarded += 1
            self.bytes_forwarded += len(chunk)
            try:
                tunnel_writer.write(crypto.seal(chunk))
            except Exception:
                return

    def _pump_tunnel_to_plain(self, tunnel_sock, tunnel_reader: RecordReader,
                              crypto: _TunnelCrypto, plain_sock):
        """Read framed encrypted chunks, decrypt, write raw bytes locally."""
        while True:
            frame = tunnel_reader.next_record()
            if frame is None:
                try:
                    data = yield from tunnel_sock.recv()
                except Exception:
                    return
                if data == b"":
                    return
                tunnel_reader.feed(data)
                continue
            try:
                chunk = crypto.open(frame)
            except TunnelError:
                return
            yield from self._charge(len(chunk))
            self.chunks_forwarded += 1
            self.bytes_forwarded += len(chunk)
            try:
                plain_sock.send(chunk)
            except Exception:
                return


class SshTunnelServer(_TunnelEndpoint):
    """WAN-facing endpoint: decrypts and forwards to a local port."""

    def __init__(self, sim: Simulator, host, listen_port: int, target_port: int,
                 key: bytes, suite: CipherSuite = SUITE_AES_SHA,
                 cost: CostProfile = FREE_PROFILE, account: str = "sshd",
                 fast_ciphers: bool = True):
        super().__init__(sim, host, key, suite, cost, account, fast_ciphers)
        self.listen_port = listen_port
        self.target_port = target_port

    def start(self) -> None:
        listener = self.host.listen(self.listen_port)

        def accept_loop():
            while True:
                try:
                    sock = yield listener.accept()
                except Exception:
                    return
                self.sim.spawn(self._session(sock), name="sshd-session")

        self.sim.spawn(accept_loop(), name=f"sshd:{self.listen_port}")

    def _session(self, tunnel_sock):
        reader = RecordReader()
        writer = RecordWriter(tunnel_sock)
        # --- handshake: nonce exchange, key confirmation -------------------
        nonce_c = yield from self._read_frame(tunnel_sock, reader)
        if nonce_c is None:
            return
        yield from self.host.cpu.consume(TUNNEL_HANDSHAKE_CPU, f"{self.account}/handshake")
        nonce_s = hmac_sha256(self.key, b"server-nonce" + nonce_c)[:16]
        proof = hmac_sha256(self.key, b"confirm" + nonce_c + nonce_s)
        writer.write(nonce_s + proof)
        crypto = _TunnelCrypto(
            self.key + nonce_c + nonce_s, self.suite, is_client=False,
            fast=self.fast_ciphers,
        )
        # --- connect to the local target ------------------------------------
        try:
            plain_sock = yield from self.host.connect(self.host.name, self.target_port)
        except Exception:
            tunnel_sock.close()
            return
        self.sim.spawn(
            self._pump_plain_to_tunnel(plain_sock, crypto, writer), name="sshd-up"
        )
        yield from self._pump_tunnel_to_plain(tunnel_sock, reader, crypto, plain_sock)
        plain_sock.close()
        tunnel_sock.close()

    @staticmethod
    def _read_frame(sock, reader: RecordReader):
        while True:
            frame = reader.next_record()
            if frame is not None:
                return frame
            data = yield from sock.recv()
            if data == b"":
                return None
            reader.feed(data)


class SshTunnelClient(_TunnelEndpoint):
    """Loopback-facing endpoint: encrypts local streams into the tunnel."""

    def __init__(self, sim: Simulator, host, listen_port: int,
                 server_host: str, server_port: int, key: bytes,
                 suite: CipherSuite = SUITE_AES_SHA,
                 cost: CostProfile = FREE_PROFILE, account: str = "ssh",
                 fast_ciphers: bool = True):
        super().__init__(sim, host, key, suite, cost, account, fast_ciphers)
        self.listen_port = listen_port
        self.server_host = server_host
        self.server_port = server_port

    def start(self) -> None:
        listener = self.host.listen(self.listen_port)

        def accept_loop():
            while True:
                try:
                    sock = yield listener.accept()
                except Exception:
                    return
                self.sim.spawn(self._session(sock), name="ssh-session")

        self.sim.spawn(accept_loop(), name=f"ssh:{self.listen_port}")

    def _session(self, plain_sock):
        try:
            tunnel_sock = yield from self.host.connect(self.server_host, self.server_port)
        except Exception:
            plain_sock.close()
            return
        reader = RecordReader()
        writer = RecordWriter(tunnel_sock)
        yield from self.host.cpu.consume(TUNNEL_HANDSHAKE_CPU, f"{self.account}/handshake")
        nonce_c = hmac_sha256(self.key, b"client-nonce")[:16]
        writer.write(nonce_c)
        frame = yield from SshTunnelServer._read_frame(tunnel_sock, reader)
        if frame is None or len(frame) < 48:
            plain_sock.close()
            tunnel_sock.close()
            return
        nonce_s, proof = frame[:16], frame[16:48]
        expect = hmac_sha256(self.key, b"confirm" + nonce_c + nonce_s)
        if not constant_time_equal(proof, expect):
            plain_sock.close()
            tunnel_sock.abort()
            return
        crypto = _TunnelCrypto(
            self.key + nonce_c + nonce_s, self.suite, is_client=True,
            fast=self.fast_ciphers,
        )
        self.sim.spawn(
            self._pump_plain_to_tunnel(plain_sock, crypto, writer), name="ssh-up"
        )
        yield from self._pump_tunnel_to_plain(tunnel_sock, reader, crypto, plain_sock)
        plain_sock.close()
        tunnel_sock.close()
