"""RSA: key generation, signatures and key transport.

Used by the GSI layer (certificate signing/verification), the TLS-like
handshake (server-authenticated key exchange), and the WS-Security
message signatures.  Keys are generated deterministically from a
:class:`~repro.crypto.drbg.Drbg` so whole experiments replay bit-exactly.

Padding follows PKCS#1 v1.5 in structure (EMSA for signatures, EME type
2 for encryption) over SHA-256 digests.  Key sizes in tests/simulations
default to 1024 bits — generation is seconds-fast in pure Python and the
security level is irrelevant to the reproduction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

from repro.crypto.drbg import Drbg


class CryptoError(Exception):
    """Signature verification failure, malformed padding, etc."""


# -- primality ------------------------------------------------------------

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
]


def is_probable_prime(n: int, rng: Drbg, rounds: int = 24) -> bool:
    """Miller–Rabin with deterministic witnesses drawn from ``rng``."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: Drbg) -> int:
    """A random prime with the top two bits set (so p*q has full length)."""
    if bits < 16:
        raise CryptoError("prime too small")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


def _egcd(a: int, b: int) -> Tuple[int, int, int]:
    if b == 0:
        return a, 1, 0
    g, x, y = _egcd(b, a % b)
    return g, y, x - (a // b) * y


def _modinv(a: int, m: int) -> int:
    g, x, _ = _egcd(a % m, m)
    if g != 1:
        raise CryptoError("no modular inverse")
    return x % m


# -- keys ----------------------------------------------------------------


@dataclass(frozen=True)
class RsaPublicKey:
    n: int
    e: int

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self) -> bytes:
        """SHA-256 over the canonical encoding — SFS's HostID uses this."""
        return hashlib.sha256(self.to_bytes()).digest()

    def to_bytes(self) -> bytes:
        nb = self.n.to_bytes(self.size_bytes, "big")
        eb = self.e.to_bytes(4, "big")
        return len(nb).to_bytes(4, "big") + nb + eb

    @classmethod
    def from_bytes(cls, data: bytes) -> "RsaPublicKey":
        if len(data) < 8:
            raise CryptoError("truncated public key")
        nlen = int.from_bytes(data[:4], "big")
        if len(data) != 4 + nlen + 4:
            raise CryptoError("malformed public key encoding")
        n = int.from_bytes(data[4 : 4 + nlen], "big")
        e = int.from_bytes(data[4 + nlen :], "big")
        return cls(n, e)

    # -- verification / encryption (public operations) --------------------

    def verify(self, message: bytes, signature: bytes) -> bool:
        try:
            expected = _emsa_encode(message, self.size_bytes)
        except CryptoError:
            return False
        if len(signature) != self.size_bytes:
            return False
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            return False
        m = pow(s, self.e, self.n)
        return m.to_bytes(self.size_bytes, "big") == expected

    def encrypt(self, plaintext: bytes, rng: Drbg) -> bytes:
        k = self.size_bytes
        if len(plaintext) > k - 11:
            raise CryptoError(f"plaintext too long for RSA-{k * 8}")
        ps = bytearray()
        while len(ps) < k - 3 - len(plaintext):
            b = rng.randbytes(1)
            if b != b"\x00":
                ps += b
        em = b"\x00\x02" + bytes(ps) + b"\x00" + plaintext
        m = int.from_bytes(em, "big")
        return pow(m, self.e, self.n).to_bytes(k, "big")


@dataclass(frozen=True)
class RsaKeyPair:
    public: RsaPublicKey
    d: int
    p: int
    q: int

    # -- private operations ------------------------------------------------

    def sign(self, message: bytes) -> bytes:
        em = _emsa_encode(message, self.public.size_bytes)
        m = int.from_bytes(em, "big")
        s = self._private_op(m)
        return s.to_bytes(self.public.size_bytes, "big")

    def decrypt(self, ciphertext: bytes) -> bytes:
        k = self.public.size_bytes
        if len(ciphertext) != k:
            raise CryptoError("ciphertext length mismatch")
        c = int.from_bytes(ciphertext, "big")
        if c >= self.public.n:
            raise CryptoError("ciphertext out of range")
        em = self._private_op(c).to_bytes(k, "big")
        if em[:2] != b"\x00\x02":
            raise CryptoError("bad EME padding")
        try:
            sep = em.index(b"\x00", 2)
        except ValueError:
            raise CryptoError("bad EME padding") from None
        if sep < 10:
            raise CryptoError("EME padding string too short")
        return em[sep + 1 :]

    def _private_op(self, m: int) -> int:
        # CRT speedup: ~4x over plain pow(m, d, n).
        n = self.public.n
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        qinv = _modinv(self.q, self.p)
        m1 = pow(m % self.p, dp, self.p)
        m2 = pow(m % self.q, dq, self.q)
        h = (qinv * (m1 - m2)) % self.p
        return (m2 + h * self.q) % n


# -- EMSA-PKCS1-v1_5-style signature encoding over SHA-256 -----------------

#: Stand-in for the ASN.1 DigestInfo prefix (we use our own tag; the
#: encoding just has to be fixed and unambiguous).
_DIGEST_TAG = b"repro:sha256:"


def _emsa_encode(message: bytes, k: int) -> bytes:
    digest = hashlib.sha256(message).digest()
    t = _DIGEST_TAG + digest
    if k < len(t) + 11:
        raise CryptoError("RSA modulus too small for signature encoding")
    return b"\x00\x01" + b"\xff" * (k - len(t) - 3) + b"\x00" + t


def generate_keypair(bits: int = 1024, rng: Drbg | None = None, e: int = 65537) -> RsaKeyPair:
    """Generate an RSA keypair deterministically from ``rng``."""
    rng = rng or Drbg("default-rsa-seed")
    if bits < 256:
        raise CryptoError("modulus below 256 bits is unusable even for tests")
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits - bits // 2, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = _modinv(e, phi)
        return RsaKeyPair(RsaPublicKey(n, e), d, p, q)
