"""AES (FIPS-197) with CBC mode, implemented from first principles.

Supports 128/192/256-bit keys.  The implementation favors clarity over
speed — the S-box is generated from the GF(2^8) definition at import
time, and rounds operate on a 16-byte state list.  Verified against the
FIPS-197 appendix vectors and NIST CBC vectors in the test suite.

This is the *reference* cipher: the benchmark path uses the fast engines
in :mod:`repro.crypto.suites` and charges AES's calibrated per-byte CPU
cost instead of executing this code over gigabytes.
"""

from __future__ import annotations

from typing import List


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    p = 0
    while b:
        if b & 1:
            p ^= a
        a = _xtime(a)
        b >>= 1
    return p


def _build_sbox() -> tuple[bytes, bytes]:
    # Multiplicative inverses in GF(2^8) via exp/log tables on generator 3.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gmul(x, 3)
    exp[255] = exp[0]

    def inv(a: int) -> int:
        return 0 if a == 0 else exp[255 - log[a]]

    sbox = bytearray(256)
    for a in range(256):
        q = inv(a)
        # affine transform
        s = q
        for _ in range(4):
            q = ((q << 1) | (q >> 7)) & 0xFF
            s ^= q
        sbox[a] = s ^ 0x63
    inv_sbox = bytearray(256)
    for i, v in enumerate(sbox):
        inv_sbox[v] = i
    return bytes(sbox), bytes(inv_sbox)


SBOX, INV_SBOX = _build_sbox()
RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]


class AES:
    """AES block cipher plus CBC helpers.

    ``AES(key)`` expands the key once; :meth:`encrypt_block` /
    :meth:`decrypt_block` process 16-byte blocks; the CBC helpers chain
    them with an IV (no padding — callers pad with PKCS#7).
    """

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key_len = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    # -- key schedule ----------------------------------------------------

    def _expand_key(self, key: bytes) -> List[List[int]]:
        nk = len(key) // 4
        nr = self.rounds
        words: List[List[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (nr + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [SBOX[b] for b in temp]  # SubWord
                temp[0] ^= RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        # Group into 16-byte round keys (column-major state layout).
        return [
            [b for w in words[4 * r : 4 * r + 4] for b in w] for r in range(nr + 1)
        ]

    # -- round operations (state is a flat 16-list, column-major) ---------

    @staticmethod
    def _add_round_key(state: List[int], rk: List[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: List[int], box: bytes) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> List[int]:
        # state[c*4 + r]; row r shifts left by r
        s = state
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> List[int]:
        s = state
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for c in range(4):
            i = 4 * c
            a0, a1, a2, a3 = state[i], state[i + 1], state[i + 2], state[i + 3]
            state[i] = _gmul(a0, 2) ^ _gmul(a1, 3) ^ a2 ^ a3
            state[i + 1] = a0 ^ _gmul(a1, 2) ^ _gmul(a2, 3) ^ a3
            state[i + 2] = a0 ^ a1 ^ _gmul(a2, 2) ^ _gmul(a3, 3)
            state[i + 3] = _gmul(a0, 3) ^ a1 ^ a2 ^ _gmul(a3, 2)

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for c in range(4):
            i = 4 * c
            a0, a1, a2, a3 = state[i], state[i + 1], state[i + 2], state[i + 3]
            state[i] = _gmul(a0, 14) ^ _gmul(a1, 11) ^ _gmul(a2, 13) ^ _gmul(a3, 9)
            state[i + 1] = _gmul(a0, 9) ^ _gmul(a1, 14) ^ _gmul(a2, 11) ^ _gmul(a3, 13)
            state[i + 2] = _gmul(a0, 13) ^ _gmul(a1, 9) ^ _gmul(a2, 14) ^ _gmul(a3, 11)
            state[i + 3] = _gmul(a0, 11) ^ _gmul(a1, 13) ^ _gmul(a2, 9) ^ _gmul(a3, 14)

    # -- block API ---------------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for r in range(1, self.rounds):
            self._sub_bytes(state, SBOX)
            state = self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[r])
        self._sub_bytes(state, SBOX)
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        for r in range(self.rounds - 1, 0, -1):
            state = self._inv_shift_rows(state)
            self._sub_bytes(state, INV_SBOX)
            self._add_round_key(state, self._round_keys[r])
            self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        self._sub_bytes(state, INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)

    # -- CBC mode ------------------------------------------------------------

    def cbc_encrypt(self, iv: bytes, plaintext: bytes) -> bytes:
        if len(iv) != 16:
            raise ValueError("IV must be 16 bytes")
        if len(plaintext) % 16:
            raise ValueError("CBC plaintext must be block-aligned (pad first)")
        out = bytearray()
        prev = iv
        for i in range(0, len(plaintext), 16):
            block = bytes(x ^ y for x, y in zip(plaintext[i : i + 16], prev))
            prev = self.encrypt_block(block)
            out.extend(prev)
        return bytes(out)

    def cbc_decrypt(self, iv: bytes, ciphertext: bytes) -> bytes:
        if len(iv) != 16:
            raise ValueError("IV must be 16 bytes")
        if len(ciphertext) % 16:
            raise ValueError("CBC ciphertext must be block-aligned")
        out = bytearray()
        prev = iv
        for i in range(0, len(ciphertext), 16):
            block = ciphertext[i : i + 16]
            out.extend(x ^ y for x, y in zip(self.decrypt_block(block), prev))
            prev = block
        return bytes(out)
