"""Hybrid public-key encryption for small blobs.

Used by the management services to move delegated credentials over the
(signed but not otherwise encrypted) SOAP channel: RSA-wrap a fresh
content key to the recipient's public key, then encrypt-and-MAC the
payload with it (SHA-256 counter keystream + HMAC-SHA256, an
encrypt-then-MAC construction).
"""

from __future__ import annotations

import hashlib
import struct

from repro.crypto.drbg import Drbg
from repro.crypto.hmac import constant_time_equal, hmac_sha256
from repro.crypto.rsa import CryptoError, RsaKeyPair, RsaPublicKey


def _keystream(key: bytes, n: int) -> bytes:
    out = b""
    counter = 0
    while len(out) < n:
        out += hashlib.sha256(key + b"ks" + struct.pack(">Q", counter)).digest()
        counter += 1
    return out[:n]


def seal(plaintext: bytes, recipient: RsaPublicKey, rng: Drbg) -> bytes:
    """Encrypt ``plaintext`` so only ``recipient`` can read it."""
    content_key = rng.randbytes(32)
    wrapped = recipient.encrypt(content_key, rng)
    ks = _keystream(content_key, len(plaintext))
    ct = bytes(a ^ b for a, b in zip(plaintext, ks))
    mac = hmac_sha256(content_key, b"hybrid" + ct)
    return (
        len(wrapped).to_bytes(4, "big") + wrapped
        + len(ct).to_bytes(4, "big") + ct
        + mac
    )


def open_sealed(blob: bytes, recipient_key: RsaKeyPair) -> bytes:
    """Decrypt a blob produced by :func:`seal`; raises on tampering."""
    if len(blob) < 8:
        raise CryptoError("truncated sealed blob")
    wlen = int.from_bytes(blob[:4], "big")
    wrapped = blob[4 : 4 + wlen]
    rest = blob[4 + wlen :]
    if len(rest) < 4:
        raise CryptoError("truncated sealed blob")
    clen = int.from_bytes(rest[:4], "big")
    ct = rest[4 : 4 + clen]
    mac = rest[4 + clen :]
    if len(ct) != clen or len(mac) != 32:
        raise CryptoError("malformed sealed blob")
    content_key = recipient_key.decrypt(wrapped)
    expect = hmac_sha256(content_key, b"hybrid" + ct)
    if not constant_time_equal(mac, expect):
        raise CryptoError("sealed blob failed integrity check")
    ks = _keystream(content_key, len(ct))
    return bytes(a ^ b for a, b in zip(ct, ks))
