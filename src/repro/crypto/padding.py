"""PKCS#7 block padding (RFC 5652 §6.3) for the CBC cipher suites."""

from __future__ import annotations


class PaddingError(Exception):
    """Invalid padding on decrypt — treated as a MAC-equivalent failure."""


def pkcs7_pad(data: bytes, block_size: int = 16) -> bytes:
    if not 1 <= block_size <= 255:
        raise ValueError("block size must be 1..255")
    n = block_size - (len(data) % block_size)
    return data + bytes([n]) * n


def pkcs7_unpad(data: bytes, block_size: int = 16) -> bytes:
    if not data or len(data) % block_size:
        raise PaddingError("padded data must be a whole number of blocks")
    n = data[-1]
    if n < 1 or n > block_size:
        raise PaddingError(f"bad pad byte {n}")
    if data[-n:] != bytes([n]) * n:
        raise PaddingError("inconsistent padding bytes")
    return data[:-n]
