"""Cipher suites: bulk cipher + MAC pairings used by the secure channel.

Each suite names a bulk cipher spec and a MAC spec.  A spec carries:

- the *real* implementation (bit-exact AES/RC4 from this package), and
- a nominal cost in CPU cycles/byte, which the secure channel charges to
  the host's virtual CPU.  The cycles/byte figures are 2007-era software
  numbers (no AES-NI), and are what make the paper's measured security
  overheads (+9 % HMAC-only, +15 % RC4, +50 % AES-256) emerge rather
  than being hard-coded.

``fast=True`` states substitute the bulk transform with a keyed XOR pad
(numpy-accelerated) while keeping the *real* SHA1-HMAC and the *named*
algorithm's CPU cost: pure-Python AES moves ~50 KB/s, which cannot carry
the gigabyte-scale IOzone experiment.  Integration tests run the real
ciphers end-to-end; benchmarks run fast states.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.crypto.aes import AES
from repro.crypto.rc4 import RC4
from repro.crypto.hmac import hmac_digest
from repro.crypto.padding import pkcs7_pad, pkcs7_unpad


class CipherStateBase:
    """Per-direction bulk cipher state."""

    def encrypt(self, data: bytes) -> bytes:  # pragma: no cover - interface
        raise NotImplementedError

    def decrypt(self, data: bytes) -> bytes:  # pragma: no cover - interface
        raise NotImplementedError


class NullCipherState(CipherStateBase):
    """Integrity-only configurations carry plaintext."""

    def encrypt(self, data: bytes) -> bytes:
        return data

    def decrypt(self, data: bytes) -> bytes:
        return data


class Rc4State(CipherStateBase):
    """Real RC4 with independent send/recv streams handled by the caller."""

    def __init__(self, key: bytes):
        self._enc = RC4(key)
        self._dec = RC4(key)
        self._enc.skip(768)
        self._dec.skip(768)

    def encrypt(self, data: bytes) -> bytes:
        return self._enc.process(data)

    def decrypt(self, data: bytes) -> bytes:
        return self._dec.process(data)


class AesCbcState(CipherStateBase):
    """Real AES-CBC with PKCS#7 padding and chained IVs (TLS-1.0 style)."""

    def __init__(self, key: bytes, iv: bytes):
        self._aes = AES(key)
        self._enc_iv = iv
        self._dec_iv = iv

    def encrypt(self, data: bytes) -> bytes:
        ct = self._aes.cbc_encrypt(self._enc_iv, pkcs7_pad(data, 16))
        self._enc_iv = ct[-16:]
        return ct

    def decrypt(self, data: bytes) -> bytes:
        pt = pkcs7_unpad(self._aes.cbc_decrypt(self._dec_iv, data), 16)
        self._dec_iv = data[-16:]
        return pt


class FastXorState(CipherStateBase):
    """Keyed XOR pad stand-in for bulk benchmark traffic.

    Deterministic per key/iv, round-trips exactly, garbles plaintext —
    but is NOT cryptographically secure and exists purely so gigabyte
    experiments do not execute pure-Python AES.  The virtual CPU is
    still charged the named algorithm's cost by the record layer.
    """

    PAD_LEN = 1 << 16

    def __init__(self, key: bytes, iv: bytes):
        seed = int.from_bytes(hashlib.sha256(key + iv).digest()[:8], "big")
        rng = np.random.Generator(np.random.PCG64(seed))
        self._pad = rng.integers(0, 256, size=self.PAD_LEN, dtype=np.uint8)
        self._enc_off = 0
        self._dec_off = 0

    def _xor(self, data: bytes, off: int) -> tuple[bytes, int]:
        n = len(data)
        start = off % self.PAD_LEN
        reps = (start + n + self.PAD_LEN - 1) // self.PAD_LEN
        keystream = np.tile(self._pad, reps)[start : start + n]
        out = np.bitwise_xor(np.frombuffer(data, dtype=np.uint8), keystream)
        return out.tobytes(), off + n

    def encrypt(self, data: bytes) -> bytes:
        out, self._enc_off = self._xor(data, self._enc_off)
        return out

    def decrypt(self, data: bytes) -> bytes:
        out, self._dec_off = self._xor(data, self._dec_off)
        return out


@dataclass(frozen=True)
class CipherSpec:
    """Names a bulk cipher and its cost/keying parameters.

    ``setup_cycles`` is the fixed per-record cost of starting one seal
    or open with this cipher (IV handling, padding, block pipeline
    warm-up) — amortized away when records are coalesced into one
    batched seal; see :func:`repro.rpc.costs.batched_seal_cycles`.
    """

    name: str
    key_len: int
    iv_len: int
    cycles_per_byte: float
    setup_cycles: float = 0.0

    def new_state(self, key: bytes, iv: bytes, fast: bool) -> CipherStateBase:
        if len(key) != self.key_len:
            raise ValueError(f"{self.name}: key must be {self.key_len} bytes")
        if self.name == "null":
            return NullCipherState()
        if fast:
            return FastXorState(key, iv or b"\x00")
        if self.name == "rc4-128":
            return Rc4State(key)
        if self.name == "aes-256-cbc":
            return AesCbcState(key, iv)
        raise ValueError(f"unknown cipher {self.name}")


@dataclass(frozen=True)
class MacSpec:
    #: ``setup_cycles``: per-record HMAC overhead (ipad/opad compression
    #: rounds + finalization) independent of payload length.
    name: str
    key_len: int
    digest_len: int
    cycles_per_byte: float
    setup_cycles: float = 0.0

    def compute(self, key: bytes, message: bytes) -> bytes:
        if self.name == "none":
            return b""
        algo = self.name.split("-", 1)[1]  # "hmac-sha1" -> "sha1"
        return hmac_digest(key, message, algo)


# Per-record setup costs are 2007-class software numbers: HMAC pays two
# extra compression-function rounds (~64 bytes each) plus buffer
# handling; CBC pays IV chaining and padding; RC4 keeps its stream
# running between records and pays almost nothing.
NULL_CIPHER = CipherSpec("null", 0, 0, 0.0, setup_cycles=0.0)
RC4_128 = CipherSpec("rc4-128", 16, 0, 7.0, setup_cycles=120.0)
AES_256_CBC = CipherSpec("aes-256-cbc", 32, 16, 46.0, setup_cycles=320.0)

NO_MAC = MacSpec("none", 0, 0, 0.0, setup_cycles=0.0)
HMAC_SHA1 = MacSpec("hmac-sha1", 20, 20, 8.0, setup_cycles=1800.0)
HMAC_SHA256 = MacSpec("hmac-sha256", 32, 32, 14.0, setup_cycles=2400.0)


@dataclass(frozen=True)
class CipherSuite:
    """A named (cipher, MAC) pairing selectable per SGFS session."""

    name: str
    cipher: CipherSpec
    mac: MacSpec

    @property
    def cycles_per_byte(self) -> float:
        return self.cipher.cycles_per_byte + self.mac.cycles_per_byte

    @property
    def record_setup_cycles(self) -> float:
        """Fixed cycles to start one record's seal/open (MAC + cipher
        setup) — the term batched sealing amortizes across a batch."""
        return self.cipher.setup_cycles + self.mac.setup_cycles

    @property
    def key_material_len(self) -> int:
        # two directions each need cipher key + iv + mac key
        return 2 * (self.cipher.key_len + self.cipher.iv_len + self.mac.key_len)


#: The suite menu of the evaluation (§6.2.1).
SUITE_NULL_SHA = CipherSuite("null-sha1", NULL_CIPHER, HMAC_SHA1)       # sgfs-sha
SUITE_RC4_SHA = CipherSuite("rc4-128-sha1", RC4_128, HMAC_SHA1)         # sgfs-rc
SUITE_AES_SHA = CipherSuite("aes-256-cbc-sha1", AES_256_CBC, HMAC_SHA1)  # sgfs-aes
SUITE_PLAIN = CipherSuite("plaintext", NULL_CIPHER, NO_MAC)             # handshake bootstrap

SUITES = {
    s.name: s
    for s in (SUITE_NULL_SHA, SUITE_RC4_SHA, SUITE_AES_SHA, SUITE_PLAIN)
}


def derive_key_block(master_secret: bytes, label: str, n: int) -> bytes:
    """TLS-PRF-like expansion: HMAC-SHA256 counter mode over the secret."""
    out = b""
    counter = 0
    seed = label.encode("utf-8")
    while len(out) < n:
        out += hmac_digest(
            master_secret, seed + counter.to_bytes(4, "big"), "sha256"
        )
        counter += 1
    return out[:n]
