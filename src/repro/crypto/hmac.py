"""HMAC per FIPS PUB 198 / RFC 2104, built directly on hashlib digests.

Implemented from the definition (ipad/opad construction) rather than via
``import hmac`` so the construction itself is under test — the paper's
integrity guarantee for every SGFS configuration rests on SHA1-HMAC.

The constructor for each hash algorithm is resolved once and cached:
``hashlib.new(name)`` re-resolves the algorithm by string on every call,
and a small run makes 12k+ ``hmac_digest`` calls (two to three digests
each), so the lookup was pure per-message overhead.  The ipad/opad keys
use ``bytes.translate`` over precomputed 256-byte tables instead of a
per-byte Python loop.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Tuple

#: XOR-by-constant translation tables for the padded key (RFC 2104).
_IPAD_TABLE = bytes(b ^ 0x36 for b in range(256))
_OPAD_TABLE = bytes(b ^ 0x5C for b in range(256))

#: hash_name -> (constructor, block_size), resolved once per algorithm.
_DIGESTS: Dict[str, Tuple[Callable, int]] = {}


def _digest(hash_name: str) -> Tuple[Callable, int]:
    entry = _DIGESTS.get(hash_name)
    if entry is None:
        # Prefer the direct hashlib constructor (e.g. hashlib.sha1);
        # fall back to hashlib.new for OpenSSL-only algorithms.
        ctor = getattr(hashlib, hash_name, None)
        if ctor is None:
            def ctor(data=b"", _name=hash_name):
                return hashlib.new(_name, data)
        entry = _DIGESTS[hash_name] = (ctor, ctor().block_size)
    return entry


def hmac_digest(key: bytes, message: bytes, hash_name: str = "sha1") -> bytes:
    """HMAC(key, message) with the named hashlib algorithm."""
    h, block_size = _digest(hash_name)
    if len(key) > block_size:
        key = h(key).digest()
    key = key.ljust(block_size, b"\x00")
    inner = h(key.translate(_IPAD_TABLE) + message).digest()
    return h(key.translate(_OPAD_TABLE) + inner).digest()


def hmac_sha1(key: bytes, message: bytes) -> bytes:
    """SHA1-HMAC — the integrity algorithm of every SGFS configuration."""
    return hmac_digest(key, message, "sha1")


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    return hmac_digest(key, message, "sha256")


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Length-then-accumulate comparison without early exit."""
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
