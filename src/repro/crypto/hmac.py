"""HMAC per FIPS PUB 198 / RFC 2104, built directly on hashlib digests.

Implemented from the definition (ipad/opad construction) rather than via
``import hmac`` so the construction itself is under test — the paper's
integrity guarantee for every SGFS configuration rests on SHA1-HMAC.
"""

from __future__ import annotations

import hashlib
from typing import Callable


def hmac_digest(key: bytes, message: bytes, hash_name: str = "sha1") -> bytes:
    """HMAC(key, message) with the named hashlib algorithm."""
    h: Callable = lambda data=b"": hashlib.new(hash_name, data)
    block_size = h().block_size
    if len(key) > block_size:
        key = h(key).digest()
    key = key.ljust(block_size, b"\x00")
    ipad = bytes(b ^ 0x36 for b in key)
    opad = bytes(b ^ 0x5C for b in key)
    inner = h(ipad + message).digest()
    return h(opad + inner).digest()


def hmac_sha1(key: bytes, message: bytes) -> bytes:
    """SHA1-HMAC — the integrity algorithm of every SGFS configuration."""
    return hmac_digest(key, message, "sha1")


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    return hmac_digest(key, message, "sha256")


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Length-then-accumulate comparison without early exit."""
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
