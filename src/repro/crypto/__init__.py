"""Cryptographic primitives.

Everything the secure channel, GSI layer and management services need,
implemented from scratch (no OpenSSL available in this environment):

- :mod:`repro.crypto.aes` — FIPS-197 AES with CBC mode,
- :mod:`repro.crypto.rc4` — the ARCFOUR stream cipher,
- :mod:`repro.crypto.hmac` — FIPS-198 HMAC over hashlib digests,
- :mod:`repro.crypto.padding` — PKCS#7,
- :mod:`repro.crypto.rsa` — RSA keygen / sign / verify / key transport,
- :mod:`repro.crypto.drbg` — a deterministic byte generator, so entire
  simulations (including handshakes) are replayable,
- :mod:`repro.crypto.suites` — cipher-suite objects pairing a bulk
  cipher with a MAC, in two grades: *real* (bit-exact AES/RC4, used by
  unit/integration tests) and *fast* (a cheap keyed XOR transform that
  still round-trips and garbles, used for bulk benchmark traffic while
  the virtual-CPU cost of the *named* algorithm is charged — pure-Python
  AES at ~50 KB/s cannot carry gigabyte experiments).
"""

from repro.crypto.aes import AES
from repro.crypto.rc4 import RC4
from repro.crypto.hmac import hmac_digest, hmac_sha1, hmac_sha256
from repro.crypto.padding import pkcs7_pad, pkcs7_unpad, PaddingError
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair, CryptoError
from repro.crypto.drbg import Drbg

__all__ = [
    "AES",
    "RC4",
    "hmac_digest",
    "hmac_sha1",
    "hmac_sha256",
    "pkcs7_pad",
    "pkcs7_unpad",
    "PaddingError",
    "RsaKeyPair",
    "RsaPublicKey",
    "generate_keypair",
    "CryptoError",
    "Drbg",
]
