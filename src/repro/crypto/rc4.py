"""RC4 (ARCFOUR) stream cipher.

The "medium-strength" cipher of the paper's ``sgfs-rc`` configuration
and the cipher SFS's channel approximates.  Stateful: one instance per
direction of a connection, like any stream cipher.
"""

from __future__ import annotations


class RC4:
    """Stateful RC4 keystream; ``process`` both encrypts and decrypts."""

    def __init__(self, key: bytes):
        if not 1 <= len(key) <= 256:
            raise ValueError("RC4 key must be 1..256 bytes")
        S = list(range(256))
        j = 0
        for i in range(256):
            j = (j + S[i] + key[i % len(key)]) & 0xFF
            S[i], S[j] = S[j], S[i]
        self._S = S
        self._i = 0
        self._j = 0

    def process(self, data: bytes) -> bytes:
        S = self._S
        i, j = self._i, self._j
        out = bytearray(len(data))
        for k, byte in enumerate(data):
            i = (i + 1) & 0xFF
            j = (j + S[i]) & 0xFF
            S[i], S[j] = S[j], S[i]
            out[k] = byte ^ S[(S[i] + S[j]) & 0xFF]
        self._i, self._j = i, j
        return bytes(out)

    def skip(self, n: int) -> None:
        """Discard n keystream bytes (RC4-drop, mitigates key-schedule bias)."""
        self.process(b"\x00" * n)
