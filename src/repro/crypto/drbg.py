"""Deterministic random byte generator.

The whole reproduction must be replayable, so nothing may consult OS
entropy.  :class:`Drbg` is a hash-counter generator (SHA-256 over
``seed || counter``) in the spirit of NIST SP 800-90A Hash_DRBG — not a
certified DRBG, but uniformly distributed, cheap, and deterministic.
Every handshake, key generation and nonce in the stack draws from a
Drbg seeded from the experiment configuration.
"""

from __future__ import annotations

import hashlib
import struct


class Drbg:
    """SHA-256 counter-mode deterministic byte stream."""

    def __init__(self, seed: bytes | str | int):
        if isinstance(seed, int):
            seed = seed.to_bytes((seed.bit_length() + 7) // 8 or 1, "big")
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        self._key = hashlib.sha256(b"repro-drbg:" + seed).digest()
        self._counter = 0
        self._pool = b""

    def fork(self, label: str) -> "Drbg":
        """An independent stream derived from this one (stable per label)."""
        return Drbg(self._key + b"/" + label.encode("utf-8"))

    def randbytes(self, n: int) -> bytes:
        while len(self._pool) < n:
            block = hashlib.sha256(
                self._key + struct.pack(">Q", self._counter)
            ).digest()
            self._counter += 1
            self._pool += block
        out, self._pool = self._pool[:n], self._pool[n:]
        return out

    def getrandbits(self, k: int) -> int:
        if k <= 0:
            raise ValueError("k must be positive")
        nbytes = (k + 7) // 8
        value = int.from_bytes(self.randbytes(nbytes), "big")
        return value >> (8 * nbytes - k)

    def randrange(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi) via rejection sampling."""
        if hi <= lo:
            raise ValueError("empty range")
        span = hi - lo
        k = span.bit_length()
        while True:
            v = self.getrandbits(k)
            if v < span:
                return lo + v

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] (inclusive, random.randint-style)."""
        return self.randrange(lo, hi + 1)

    def choice(self, seq):
        if not seq:
            raise IndexError("choice from empty sequence")
        return seq[self.randrange(0, len(seq))]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher–Yates."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randrange(0, i + 1)
            seq[i], seq[j] = seq[j], seq[i]

    def random(self) -> float:
        """Uniform float in [0, 1) with 53 bits of precision."""
        return self.getrandbits(53) / (1 << 53)

    def expovariate(self, rate: float) -> float:
        import math

        if rate <= 0:
            raise ValueError("rate must be positive")
        u = self.random()
        return -math.log(1.0 - u) / rate
