"""Striped-file placement math.

A striped file is split into fixed-size **grid blocks** (default 4 MB,
following the griddfs NameNode design); block ``b`` of file ``fileid``
has a deterministic **primary** backend and ``replicas - 1`` further
owners on the following backends (mod ``width``):

    primary(b)  = (fileid + b) % width
    owners(b)   = [(primary + r) % width  for r in range(replicas)]

Placement depends only on ``(fileid, block, width, replicas)`` — never
on which backends are currently alive — so every client computes the
same owner list forever; failures only change which owner in the list
is *used* (readers try owners in order, writers write all live owners).
That is the determinism rule that makes same-seed reruns bit-identical
even under crash schedules.

All sizes are bytes; all functions are pure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: default grid block size (the griddfs NameNode's 4 MB unit)
DEFAULT_BLOCK_SIZE = 4 * 1024 * 1024


@dataclass(frozen=True)
class GridLayout:
    """Placement parameters of one striped namespace."""

    width: int  #: number of backend servers
    replicas: int = 1  #: copies of every block (1 = no replication)
    block_size: int = DEFAULT_BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("grid width must be >= 1")
        if not 1 <= self.replicas <= self.width:
            raise ValueError(
                f"replicas must be in [1, width]; got {self.replicas} "
                f"with width {self.width}"
            )
        if self.block_size < 1:
            raise ValueError("block_size must be positive")

    def primary(self, fileid: int, block: int) -> int:
        """The first owner of ``block`` of ``fileid``."""
        return (fileid + block) % self.width

    def owners(self, fileid: int, block: int) -> List[int]:
        """All owners of the block, primary first, in failover order."""
        first = self.primary(fileid, block)
        return [(first + r) % self.width for r in range(self.replicas)]

    def spans(self, offset: int, count: int) -> List[Tuple[int, int, int]]:
        """Split a byte range into per-block spans.

        Returns ``[(block, block_offset, length), ...]`` in ascending
        block order, where ``block_offset`` is the span's absolute file
        offset (backends store stripes at their true offsets, so no
        per-backend offset translation is needed).
        """
        out: List[Tuple[int, int, int]] = []
        pos = offset
        end = offset + count
        while pos < end:
            block = pos // self.block_size
            boundary = (block + 1) * self.block_size
            take = min(boundary, end) - pos
            out.append((block, pos, take))
            pos += take
        return out
