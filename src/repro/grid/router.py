"""Client-side striping router: fan block I/O out across backends.

The :class:`GridRouter` plugs into
:class:`repro.proxy.client_proxy.SgfsClientProxy` (its ``grid=``
argument) and takes over upstream forwarding:

- **namespace operations** (LOOKUP, GETATTR, ACCESS, READDIR, …) go to
  the *home* server (backend 0) — the single namespace authority;
- **CREATE** goes home, then registers the new file with the metadata
  service, making it striped; directories (MKDIR) are mirrored eagerly
  onto every backend so stripe files always have a parent to live in;
- **READ/WRITE** of striped files are split into grid-block spans
  (:meth:`repro.grid.layout.GridLayout.spans`) and fanned out to the
  owning backends in parallel; unstriped (out-of-band) files pass
  through to home untouched;
- **COMMIT** fans out to every backend the session dirtied, then
  pushes the tracked file size to the home server (SETATTR) so future
  sessions see the correct length in home GETATTRs.

Determinism rules (same-seed reruns are bit-identical, also under
crash schedules):

- fan-out processes are spawned in ascending (span, replica) order and
  **joined in spawn order** — completion order never influences
  results;
- replica placement depends only on (fileid, block, width, replicas),
  never on liveness; a read tries its owner list strictly in placement
  order, skipping backends known dead;
- a backend that fails a data call is marked dead locally at once and
  reported to the metadata service *after* the fan-out join, in
  backend order; dead backends stay dead for the whole run.

Correctness details worth knowing:

- backend fileids are allocated by each backend's own VFS and may
  collide with unrelated home fileids, so replies assembled from
  backend data **never carry post-op attributes** (the kernel client
  tolerates missing attrs and keeps its own bookkeeping);
- the router tracks the session-authoritative size of every striped
  file it writes and patches home GETATTR/LOOKUP replies with it — the
  single-writer-session relaxation the SGFS proxy cache already relies
  on.

Multi-stream legs: the router itself is stream-agnostic — each
:class:`~repro.proxy.client_proxy.UpstreamSession` leg may be built
with ``streams=N`` and round-robins the bulk calls the router forwards
across its own sub-channels; determinism is preserved because the
router joins fan-outs in spawn order regardless of which sub-channel
carried each call.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.nfs import protocol as pr
from repro.nfs.protocol import Fattr3, FileHandle, NfsStatus, Proc, Sattr3
from repro.rpc.errors import RpcError
from repro.rpc.messages import CallMessage, ReplyMessage
from repro.sim.process import all_of

#: WRITE/COMMIT verifier of grid-assembled replies
GRID_VERF = b"gridplne"


class GridRouter:
    """Striped data plane of one client session."""

    def __init__(self, sim, legs: List[object], meta, width: int,
                 replicas: int = 1, block_size: int = 4 * 1024 * 1024,
                 obs=None):
        from repro.grid.layout import GridLayout

        if len(legs) != width:
            raise ValueError(f"need one leg per backend: {len(legs)} != {width}")
        self.sim = sim
        #: per-backend :class:`repro.proxy.client_proxy.UpstreamSession`;
        #: leg 0 is the home (namespace) leg
        self.legs = legs
        self.meta = meta
        self.layout = GridLayout(width, replicas, block_size)
        #: layout epoch last seen from the metadata service; any reply
        #: carrying a newer one flushes the striped/unstriped cache
        self._epoch = 0
        #: fileid -> is-striped (False = out-of-band home-only file)
        self._layouts: Dict[int, bool] = {}
        #: locally-known dead backends (superset of the server's view
        #: until the post-join mark_dead report lands)
        self._dead: Set[int] = set()
        #: (backend, home_fileid) -> backend file handle
        self._shadows: Dict[Tuple[int, int], FileHandle] = {}
        #: home_fileid -> (home_dir_fileid, name), for lazy per-backend
        #: path resolution; roots are seeded by :meth:`add_root`
        self._parents: Dict[int, Tuple[int, str]] = {}
        #: (home_dir_fileid, name) -> home fileid (rename/remove upkeep)
        self._names: Dict[Tuple[int, str], int] = {}
        self._is_dir: Set[int] = set()
        #: session-authoritative sizes of striped files we wrote
        self._sizes: Dict[int, int] = {}
        #: sizes the home server is known to have (COMMIT pushes ours)
        self._home_sizes: Dict[int, int] = {}
        #: striped fileid -> backends holding unflushed stripe writes
        self._dirty: Dict[int, Set[int]] = {}
        #: failures detected mid-fan-out, reported to the metadata
        #: service after the join (in backend order)
        self._pending_dead: Set[int] = set()
        self._cred = None
        self.stats = {
            "striped_reads": 0,
            "striped_writes": 0,
            "spans_read": 0,
            "spans_written": 0,
            "replica_writes": 0,
            "read_failovers": 0,
            "degraded_writes": 0,
            "dead_marks": 0,
            "hole_spans": 0,
            "layout_lookups": 0,
            "layout_invalidations": 0,
            "mirrored_ops": 0,
            "size_pushes": 0,
        }
        if obs is not None and getattr(obs, "enabled", False):
            obs.add_collector("grid", self._export_stats)

    def _export_stats(self) -> dict:
        out = dict(self.stats)
        # level-style gauges (merged by max across fleet collectors)
        out["layout_cache_entries"] = len(self._layouts)
        out["shadow_handles"] = len(self._shadows)
        return out

    # -- wiring ------------------------------------------------------------

    def add_root(self, home_fileid: int, handles: Dict[int, FileHandle]) -> None:
        """Seed the per-backend handles of one shared directory (the
        client's mount root): backend index -> that backend's handle."""
        for b, fh in handles.items():
            self._shadows[(b, home_fileid)] = fh
        self._is_dir.add(home_fileid)

    def connect(self):
        """Process generator: dial every backend leg (in index order)
        and the metadata service."""
        for leg in self.legs:
            yield from leg.connect()
        yield from self.meta.connect()
        return self

    # -- layout cache -------------------------------------------------------

    def _note_view(self, view) -> None:
        if view.epoch > self._epoch:
            if self._epoch:
                self.stats["layout_invalidations"] += 1
                self._layouts.clear()
            self._epoch = view.epoch
        for b in view.dead:
            self._dead.add(b)

    def _is_striped(self, fileid: int):
        cached = self._layouts.get(fileid)
        if cached is not None:
            return cached
        self.stats["layout_lookups"] += 1
        view = yield from self.meta.get_layout(fileid)
        self._note_view(view)
        self._layouts[fileid] = view.striped
        return view.striped

    # -- helpers ------------------------------------------------------------

    def _call(self, proc: int, args: bytes, template: CallMessage) -> CallMessage:
        return CallMessage(
            0, pr.NFS_PROGRAM, pr.NFS_V3, int(proc),
            template.cred, template.verf, args,
        )

    def _fail_backend(self, b: int) -> None:
        if b not in self._dead:
            self._dead.add(b)
            self.stats["dead_marks"] += 1
            self._pending_dead.add(b)

    def _report_dead(self):
        """Push locally-detected failures to the metadata service (after
        the fan-out join, in backend order — determinism rule)."""
        for b in sorted(self._pending_dead):
            try:
                view = yield from self.meta.mark_dead(b)
                self._note_view(view)
            except RpcError:
                pass
        self._pending_dead.clear()

    def _shadow(self, b: int, fileid: int, template: CallMessage,
                create: bool = False):
        """Process generator: resolve (and optionally create) the
        backend-``b`` twin of home file ``fileid``.  Returns the backend
        handle, or None when the path doesn't exist there."""
        fh = self._shadows.get((b, fileid))
        if fh is not None:
            return fh
        parent = self._parents.get(fileid)
        if parent is None:
            return None
        dir_fid, name = parent
        dir_fh = yield from self._shadow(b, dir_fid, template, create=create)
        if dir_fh is None:
            return None
        leg = self.legs[b]
        reply = yield from leg.forward(self._call(
            Proc.LOOKUP, pr.pack_lookup_args(dir_fh, name), template))
        status, fh, _attr, _dattr = pr.unpack_lookup_res(reply.results)
        if status == NfsStatus.OK and fh is not None:
            self._shadows[(b, fileid)] = fh
            return fh
        if not create:
            return None
        if fileid in self._is_dir:
            args = pr.pack_mkdir_args(dir_fh, name, Sattr3(mode=0o755))
            reply = yield from leg.forward(
                self._call(Proc.MKDIR, args, template))
        else:
            args = pr.pack_create_args(dir_fh, name, Sattr3(mode=0o644))
            reply = yield from leg.forward(
                self._call(Proc.CREATE, args, template))
        status, fh, _attr, _dir_after = pr.unpack_create_res(reply.results)
        if status == NfsStatus.OK and fh is not None:
            self._shadows[(b, fileid)] = fh
            return fh
        return None

    def _record_child(self, dir_fid: int, name: str, fileid: int,
                      is_dir: bool) -> None:
        self._parents[fileid] = (dir_fid, name)
        self._names[(dir_fid, name)] = fileid
        if is_dir:
            self._is_dir.add(fileid)

    def _forget_child(self, dir_fid: int, name: str) -> None:
        fileid = self._names.pop((dir_fid, name), None)
        if fileid is None:
            return
        self._parents.pop(fileid, None)
        self._is_dir.discard(fileid)
        self._sizes.pop(fileid, None)
        self._home_sizes.pop(fileid, None)
        self._dirty.pop(fileid, None)
        self._layouts.pop(fileid, None)
        for key in [k for k in self._shadows if k[1] == fileid]:
            del self._shadows[key]

    def _note_home_attr(self, attr: Optional[Fattr3]) -> None:
        if attr is None:
            return
        self._home_sizes[attr.fileid] = attr.size
        if attr.size > self._sizes.get(attr.fileid, -1) and \
                attr.fileid in self._sizes:
            self._sizes[attr.fileid] = attr.size

    def _patched_attr(self, attr: Optional[Fattr3]) -> Optional[Fattr3]:
        """Raise home-reported size to the session-tracked one."""
        if attr is None:
            return None
        tracked = self._sizes.get(attr.fileid)
        if tracked is None or tracked <= attr.size:
            return attr
        return Fattr3(
            ftype=attr.ftype, mode=attr.mode, nlink=attr.nlink,
            uid=attr.uid, gid=attr.gid, size=tracked,
            used=max(attr.used, tracked), fsid=attr.fsid,
            fileid=attr.fileid, atime=attr.atime, mtime=attr.mtime,
            ctime=attr.ctime,
        )

    def _size_of(self, fileid: int) -> int:
        return max(self._sizes.get(fileid, 0), self._home_sizes.get(fileid, 0))

    def _fan_out(self, gens_with_labels):
        """Spawn workers in order; join in spawn order (never completion
        order).  Workers must catch their own per-replica failures; an
        escaped exception fails the whole aggregate."""
        procs = [
            self.sim.spawn(gen, name=f"grid-fan:{label}")
            for label, gen in gens_with_labels
        ]
        results = yield all_of(self.sim, procs)
        return results

    # -- dispatch ------------------------------------------------------------

    def forward(self, call: CallMessage):
        """Process generator: route one upstream call; returns the reply."""
        if call.prog != pr.NFS_PROGRAM:
            return (yield from self.legs[0].forward(call))
        if call.cred is not None and getattr(call.cred, "flavor", 0) != 0:
            self._cred = call.cred
        proc = call.proc
        if proc == int(Proc.READ):
            return (yield from self._h_read(call))
        if proc == int(Proc.WRITE):
            return (yield from self._h_write(call))
        if proc == int(Proc.COMMIT):
            return (yield from self._h_commit(call))
        if proc == int(Proc.CREATE):
            return (yield from self._h_create(call))
        if proc == int(Proc.MKDIR):
            return (yield from self._h_mkdir(call))
        if proc in (int(Proc.REMOVE), int(Proc.RMDIR)):
            return (yield from self._h_remove(call))
        if proc == int(Proc.RENAME):
            return (yield from self._h_rename(call))
        if proc == int(Proc.SETATTR):
            return (yield from self._h_setattr(call))
        if proc == int(Proc.GETATTR):
            return (yield from self._h_getattr(call))
        if proc == int(Proc.LOOKUP):
            return (yield from self._h_lookup(call))
        return (yield from self.legs[0].forward(call))

    # -- namespace procedures -------------------------------------------------

    def _h_getattr(self, call: CallMessage):
        reply = yield from self.legs[0].forward(call)
        try:
            status, attr = pr.unpack_getattr_res(reply.results)
            if status == NfsStatus.OK:
                self._note_home_attr(attr)
                patched = self._patched_attr(attr)
                if patched is not attr:
                    reply.results = pr.pack_getattr_res(status, patched)
        except Exception:
            pass
        return reply

    def _h_lookup(self, call: CallMessage):
        dir_fh, name = pr.unpack_lookup_args(call.args)
        reply = yield from self.legs[0].forward(call)
        try:
            status, fh, attr, dir_attr = pr.unpack_lookup_res(reply.results)
            if status == NfsStatus.OK and fh is not None and attr is not None:
                self._record_child(dir_fh.fileid, name, attr.fileid,
                                  attr.is_dir)
                self._note_home_attr(attr)
                patched = self._patched_attr(attr)
                if patched is not attr:
                    reply.results = pr.pack_lookup_res(
                        status, fh, patched, dir_attr)
        except Exception:
            pass
        return reply

    def _h_create(self, call: CallMessage):
        dir_fh, name = pr.unpack_diropargs_prefix(call.args)
        reply = yield from self.legs[0].forward(call)
        try:
            status, fh, attr, _dir_after = pr.unpack_create_res(reply.results)
        except Exception:
            return reply
        if status == NfsStatus.OK and fh is not None and attr is not None:
            self._record_child(dir_fh.fileid, name, attr.fileid, False)
            self._shadows[(0, attr.fileid)] = fh
            # new files created through a grid session are striped
            view = yield from self.meta.register(attr.fileid)
            self._note_view(view)
            self._layouts[attr.fileid] = True
            self._sizes[attr.fileid] = attr.size
            self._home_sizes[attr.fileid] = attr.size
        return reply

    def _h_mkdir(self, call: CallMessage):
        dir_fh, name, _sattr = pr.unpack_mkdir_args(call.args)
        reply = yield from self.legs[0].forward(call)
        try:
            status, fh, attr, _dir_after = pr.unpack_create_res(reply.results)
        except Exception:
            return reply
        if status == NfsStatus.OK and fh is not None and attr is not None:
            self._record_child(dir_fh.fileid, name, attr.fileid, True)
            self._shadows[(0, attr.fileid)] = fh
            # eager mirror: stripe files need a parent on every backend
            for b in range(1, self.layout.width):
                if b in self._dead:
                    continue
                try:
                    yield from self._shadow(b, attr.fileid, call, create=True)
                    self.stats["mirrored_ops"] += 1
                except RpcError:
                    self._fail_backend(b)
            yield from self._report_dead()
        return reply

    def _h_remove(self, call: CallMessage):
        dir_fh, name = pr.unpack_remove_args(call.args)
        fileid = self._names.get((dir_fh.fileid, name))
        striped = False
        if fileid is not None:
            striped = yield from self._is_striped(fileid)
        reply = yield from self.legs[0].forward(call)
        try:
            status, _dir_after = pr.unpack_remove_res(reply.results)
        except Exception:
            return reply
        if status != NfsStatus.OK:
            return reply
        if striped or call.proc == int(Proc.RMDIR):
            # mirror by (backend dir, name); NOENT is fine — the file
            # may never have materialized there
            for b in range(1, self.layout.width):
                if b in self._dead:
                    continue
                try:
                    bdir = yield from self._shadow(b, dir_fh.fileid, call)
                    if bdir is None:
                        continue
                    yield from self.legs[b].forward(self._call(
                        call.proc, pr.pack_remove_args(bdir, name), call))
                    self.stats["mirrored_ops"] += 1
                except RpcError:
                    self._fail_backend(b)
            yield from self._report_dead()
        if fileid is not None and striped:
            view = yield from self.meta.forget(fileid)
            self._note_view(view)
        self._forget_child(dir_fh.fileid, name)
        return reply

    def _h_rename(self, call: CallMessage):
        f_dir, f_name, t_dir, t_name = pr.unpack_rename_args(call.args)
        fileid = self._names.get((f_dir.fileid, f_name))
        striped = False
        if fileid is not None:
            striped = yield from self._is_striped(fileid)
        reply = yield from self.legs[0].forward(call)
        try:
            status, _f_after, _t_after = pr.unpack_rename_res(reply.results)
        except Exception:
            return reply
        if status != NfsStatus.OK:
            return reply
        if striped:
            for b in range(1, self.layout.width):
                if b in self._dead:
                    continue
                try:
                    f_b = yield from self._shadow(b, f_dir.fileid, call)
                    t_b = yield from self._shadow(b, t_dir.fileid, call,
                                                  create=True)
                    if f_b is None or t_b is None:
                        continue
                    yield from self.legs[b].forward(self._call(
                        Proc.RENAME,
                        pr.pack_rename_args(f_b, f_name, t_b, t_name), call))
                    self.stats["mirrored_ops"] += 1
                except RpcError:
                    self._fail_backend(b)
            yield from self._report_dead()
        # rewire local naming state
        self._forget_child(t_dir.fileid, t_name)
        if fileid is not None:
            self._names.pop((f_dir.fileid, f_name), None)
            self._record_child(t_dir.fileid, t_name, fileid,
                              fileid in self._is_dir)
        return reply

    def _h_setattr(self, call: CallMessage):
        fh, sattr = pr.unpack_setattr_args(call.args)
        striped = yield from self._is_striped(fh.fileid)
        reply = yield from self.legs[0].forward(call)
        if not striped:
            return reply
        if sattr.size is not None:
            self._sizes[fh.fileid] = sattr.size
            self._home_sizes[fh.fileid] = sattr.size
            # truncate the stripes too (where the file exists)
            for b in range(1, self.layout.width):
                if b in self._dead:
                    continue
                try:
                    bfh = yield from self._shadow(b, fh.fileid, call)
                    if bfh is None:
                        continue
                    yield from self.legs[b].forward(self._call(
                        Proc.SETATTR,
                        pr.pack_setattr_args(bfh, Sattr3(size=sattr.size)),
                        call))
                    self.stats["mirrored_ops"] += 1
                except RpcError:
                    self._fail_backend(b)
            yield from self._report_dead()
        return reply

    # -- data procedures -------------------------------------------------------

    def _live_owners(self, fileid: int, block: int) -> List[int]:
        return [b for b in self.layout.owners(fileid, block)
                if b not in self._dead]

    def _read_span(self, call: CallMessage, fileid: int, block: int,
                   abs_off: int, length: int):
        """Worker: read one span, failing over along the owner list.

        Returns the span bytes (zero-padded to ``length``); a span whose
        file legitimately doesn't exist on any live replica reads as a
        hole of zeros; ``None`` means every replica is dead or errored —
        genuine data loss the caller surfaces as an IO reply.  Workers
        never raise: the joiner consumes results in span order and
        decides, so a failure can't abort the fan-out early and leave
        stragglers racing."""
        saw_absent = False
        for idx, b in enumerate(self.layout.owners(fileid, block)):
            if b in self._dead:
                continue
            if idx > 0:
                self.stats["read_failovers"] += 1
            try:
                fh = yield from self._shadow(b, fileid, call)
                if fh is None:
                    saw_absent = True
                    continue
                reply = yield from self.legs[b].forward(self._call(
                    Proc.READ, pr.pack_read_args(fh, abs_off, length), call))
                status, _attr, data, _eof = pr.unpack_read_res(reply.results)
            except RpcError:
                self._fail_backend(b)
                continue
            if status == NfsStatus.OK:
                if len(data) < length:
                    data = data + b"\x00" * (length - len(data))
                return data[:length]
            if status == NfsStatus.NOENT:
                saw_absent = True
                continue
            return None
        if saw_absent:
            # a live replica answered "no such data": the span was never
            # written there — a hole, which reads as zeros
            self.stats["hole_spans"] += 1
            return b"\x00" * length
        return None

    def _h_read(self, call: CallMessage):
        fh, offset, count = pr.unpack_read_args(call.args)
        striped = yield from self._is_striped(fh.fileid)
        if not striped:
            return (yield from self.legs[0].forward(call))
        self.stats["striped_reads"] += 1
        size = self._size_of(fh.fileid)
        count = max(0, min(count, size - offset))
        if count == 0:
            return ReplyMessage(xid=call.xid, results=pr.pack_read_res(
                NfsStatus.OK, None, b"", True))
        spans = self.layout.spans(offset, count)
        self.stats["spans_read"] += len(spans)
        if len(spans) == 1:
            block, abs_off, length = spans[0]
            chunks = [
                (yield from self._read_span(call, fh.fileid, block,
                                            abs_off, length))
            ]
        else:
            chunks = yield from self._fan_out([
                (f"r{block}",
                 self._read_span(call, fh.fileid, block, abs_off, length))
                for block, abs_off, length in spans
            ])
        yield from self._report_dead()
        if any(c is None for c in chunks):
            # a span with no live replica: surface the loss loudly
            return ReplyMessage(xid=call.xid,
                                results=pr.pack_read_res(NfsStatus.IO, None))
        data = b"".join(chunks)
        eof = offset + len(data) >= size
        return ReplyMessage(xid=call.xid, results=pr.pack_read_res(
            NfsStatus.OK, None, data, eof))

    def _write_replica(self, call: CallMessage, b: int, bfh: FileHandle,
                       abs_off: int, payload: bytes, stable: int):
        """Worker: write one span copy to one backend.  Returns the
        backend index on success, None on failure (caller decides
        whether the span is degraded or lost).  Never raises."""
        try:
            reply = yield from self.legs[b].forward(self._call(
                Proc.WRITE, pr.pack_write_args(bfh, abs_off, payload, stable),
                call))
            status, _after, count, _cm, _v = pr.unpack_write_res(reply.results)
        except RpcError:
            self._fail_backend(b)
            return None
        if status == NfsStatus.OK and count == len(payload):
            return b
        return None

    def _h_write(self, call: CallMessage):
        fh, offset, stable, payload = pr.unpack_write_args(call.args)
        striped = yield from self._is_striped(fh.fileid)
        if not striped:
            return (yield from self.legs[0].forward(call))
        self.stats["striped_writes"] += 1
        spans = self.layout.spans(offset, len(payload))
        self.stats["spans_written"] += len(spans)
        # resolve (creating on demand) every target's backend handle
        # *sequentially before* the fan-out: two concurrent spans on the
        # same backend must not race duplicate CREATEs
        jobs = []
        plan = []  # (span_index, backend) per job, in spawn order
        for si, (block, abs_off, length) in enumerate(spans):
            rel = abs_off - offset
            chunk = payload[rel:rel + length]
            for b in self._live_owners(fh.fileid, block):
                try:
                    bfh = yield from self._shadow(b, fh.fileid, call,
                                                  create=True)
                except RpcError:
                    self._fail_backend(b)
                    continue
                if bfh is None:
                    continue
                plan.append((si, b))
                jobs.append((
                    f"w{block}.{b}",
                    self._write_replica(call, b, bfh, abs_off, chunk, stable),
                ))
        outcomes = yield from self._fan_out(jobs)
        yield from self._report_dead()
        landed = [0] * len(spans)
        dirtied = self._dirty.setdefault(fh.fileid, set())
        for (si, _b), ok in zip(plan, outcomes):
            if ok is not None:
                landed[si] += 1
                dirtied.add(ok)
                self.stats["replica_writes"] += 1
        if any(n == 0 for n in landed):
            # a span with no surviving copy is a hard failure
            return ReplyMessage(xid=call.xid, results=pr.pack_write_res(
                NfsStatus.IO, None, 0, stable, GRID_VERF))
        if any(n < self.layout.replicas for n in landed):
            self.stats["degraded_writes"] += 1
        end = offset + len(payload)
        if end > self._sizes.get(fh.fileid, 0):
            self._sizes[fh.fileid] = end
        return ReplyMessage(xid=call.xid, results=pr.pack_write_res(
            NfsStatus.OK, None, len(payload), stable, GRID_VERF))

    def _h_commit(self, call: CallMessage):
        fh, _off, _cnt = pr.unpack_commit_args(call.args)
        striped = yield from self._is_striped(fh.fileid)
        if not striped:
            return (yield from self.legs[0].forward(call))
        dirty = sorted(self._dirty.get(fh.fileid, ()))
        jobs = []
        for b in dirty:
            if b in self._dead:
                continue
            bfh = yield from self._shadow(b, fh.fileid, call)
            if bfh is None:
                continue
            jobs.append((
                f"c{b}",
                self._commit_backend(call, b, bfh),
            ))
        if jobs:
            yield from self._fan_out(jobs)
        yield from self._report_dead()
        self._dirty.pop(fh.fileid, None)
        # make the home server the size authority for future sessions
        tracked = self._sizes.get(fh.fileid, 0)
        if tracked > self._home_sizes.get(fh.fileid, 0):
            self.stats["size_pushes"] += 1
            reply = yield from self.legs[0].forward(self._call(
                Proc.SETATTR,
                pr.pack_setattr_args(fh, Sattr3(size=tracked)), call))
            try:
                status, after = pr.unpack_setattr_res(reply.results)
                if status == NfsStatus.OK:
                    self._note_home_attr(after)
            except Exception:
                pass
        reply = yield from self.legs[0].forward(call)
        try:
            status, after, verf = pr.unpack_commit_res(reply.results)
            if status == NfsStatus.OK:
                self._note_home_attr(after)
                patched = self._patched_attr(after)
                if patched is not after:
                    reply.results = pr.pack_commit_res(status, patched, verf)
        except Exception:
            pass
        return reply

    def _commit_backend(self, call: CallMessage, b: int, bfh: FileHandle):
        try:
            yield from self.legs[b].forward(self._call(
                Proc.COMMIT, pr.pack_commit_args(bfh), call))
        except RpcError:
            self._fail_backend(b)
        return b
