"""Sharded multi-server data plane (GridFS/HDFS-style striping).

One metadata service (the NameNode role) maps each striped file's
fixed-size block ranges round-robin onto N backend NFS servers, with
optional K-way replication; the client proxy consults (and caches, with
epoch-based invalidation) the layout and fans block I/O out to the
backends in parallel, failing over deterministically to the next
replica when a backend dies.

- :mod:`repro.grid.layout` — pure placement math (blocks, spans,
  replica owners);
- :mod:`repro.grid.metadata` — the metadata RPC program + client
  (registration catalog, dead set, epoch);
- :mod:`repro.grid.router` — the client-side fan-out router plugged
  into :class:`repro.proxy.client_proxy.SgfsClientProxy`.
"""

from repro.grid.layout import GridLayout
from repro.grid.metadata import (
    GRID_META_PROGRAM,
    GridMetadataClient,
    GridMetadataProgram,
    GridMetadataService,
)
from repro.grid.router import GridRouter

__all__ = [
    "GRID_META_PROGRAM",
    "GridLayout",
    "GridMetadataClient",
    "GridMetadataProgram",
    "GridMetadataService",
    "GridRouter",
]
