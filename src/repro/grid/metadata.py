"""The grid metadata service — the NameNode role.

One :class:`GridMetadataService` runs on the home server, exported over
its own RPC program/port (the server-side SGFS proxy only admits the
NFS program, so layout traffic gets a dedicated listener).  It holds:

- the static placement config (``width`` / ``replicas`` /
  ``block_size`` — see :class:`repro.grid.layout.GridLayout`),
- the **registration catalog**: which home fileids are striped.  Files
  created through a grid session register here; files materialized out
  of band (workload ``prepare`` hooks writing straight into the home
  VFS) are unknown and therefore routed home-only, unstriped,
- the **dead set**: backends reported crashed by a client.  A backend,
  once dead, stays dead for the run (no re-join protocol — restarts
  serve future sessions, not this one), which keeps failover decisions
  monotone and deterministic,
- the **epoch**, bumped on every layout-affecting change.  Every reply
  carries it; a client seeing a newer epoch than it cached flushes its
  layout cache — the invalidation-on-layout-change protocol.

All state changes are plain dict/set mutations (no virtual time); the
RPC round trips are what cost simulated time.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.grid.layout import DEFAULT_BLOCK_SIZE, GridLayout
from repro.rpc.server import RpcProgram
from repro.xdr import Packer, Unpacker

#: program number of the grid metadata service (outside any IANA range,
#: like the simulation's other private programs)
GRID_META_PROGRAM = 400100
GRID_META_VERSION = 1

NULLPROC = 0
GET_LAYOUT = 1
REGISTER = 2
FORGET = 3
MARK_DEAD = 4


class LayoutView:
    """One metadata reply: the placement config + catalog answer."""

    __slots__ = ("epoch", "striped", "width", "replicas", "block_size", "dead")

    def __init__(self, epoch: int, striped: bool, width: int, replicas: int,
                 block_size: int, dead: Tuple[int, ...]):
        self.epoch = epoch
        self.striped = striped
        self.width = width
        self.replicas = replicas
        self.block_size = block_size
        self.dead = dead

    def pack(self) -> bytes:
        p = Packer()
        p.pack_uint(self.epoch)
        p.pack_bool(self.striped)
        p.pack_uint(self.width)
        p.pack_uint(self.replicas)
        p.pack_uint(self.block_size)
        p.pack_array(sorted(self.dead), p.pack_uint)
        return p.get_bytes()

    @classmethod
    def unpack(cls, data: bytes) -> "LayoutView":
        u = Unpacker(data)
        epoch = u.unpack_uint()
        striped = u.unpack_bool()
        width = u.unpack_uint()
        replicas = u.unpack_uint()
        block_size = u.unpack_uint()
        dead = tuple(u.unpack_array(u.unpack_uint))
        u.assert_done()
        return cls(epoch, striped, width, replicas, block_size, dead)

    def layout(self) -> GridLayout:
        return GridLayout(self.width, self.replicas, self.block_size)


class GridMetadataService:
    """NameNode state: catalog + dead set + epoch."""

    def __init__(self, width: int, replicas: int = 1,
                 block_size: int = DEFAULT_BLOCK_SIZE, obs=None):
        # validates width/replicas/block_size
        self.layout = GridLayout(width, replicas, block_size)
        self.files: Set[int] = set()
        self.dead: Set[int] = set()
        self.epoch = 1
        self.stats = {
            "lookups": 0,
            "registrations": 0,
            "forgets": 0,
            "dead_marks": 0,
            "epoch_bumps": 0,
        }
        if obs is not None and getattr(obs, "enabled", False):
            obs.add_collector("grid.meta", lambda: dict(self.stats))

    def _view(self, striped: bool) -> LayoutView:
        return LayoutView(
            self.epoch, striped, self.layout.width, self.layout.replicas,
            self.layout.block_size, tuple(self.dead),
        )

    def get_layout(self, fileid: int) -> LayoutView:
        self.stats["lookups"] += 1
        return self._view(fileid in self.files)

    def register(self, fileid: int) -> LayoutView:
        if fileid not in self.files:
            self.files.add(fileid)
            self.stats["registrations"] += 1
        return self._view(True)

    def forget(self, fileid: int) -> LayoutView:
        if fileid in self.files:
            self.files.discard(fileid)
            self.stats["forgets"] += 1
        return self._view(False)

    def mark_dead(self, backend: int) -> LayoutView:
        """A client reports a crashed backend; bumps the epoch so every
        other client's cached layouts invalidate on their next call."""
        if 0 <= backend < self.layout.width and backend not in self.dead:
            self.dead.add(backend)
            self.epoch += 1
            self.stats["dead_marks"] += 1
            self.stats["epoch_bumps"] += 1
        return self._view(False)


class GridMetadataProgram(RpcProgram):
    """RPC surface of :class:`GridMetadataService`."""

    prog = GRID_META_PROGRAM
    vers = GRID_META_VERSION
    #: registration/forget must not re-execute on duplicate requests
    non_idempotent = frozenset((REGISTER, FORGET))

    def __init__(self, service: GridMetadataService):
        self.service = service

    def handle(self, proc: int, args: bytes, call, ctx):
        if proc == NULLPROC:
            return b""
        u = Unpacker(args)
        if proc == GET_LAYOUT:
            view = self.service.get_layout(u.unpack_uhyper())
        elif proc == REGISTER:
            view = self.service.register(u.unpack_uhyper())
        elif proc == FORGET:
            view = self.service.forget(u.unpack_uhyper())
        elif proc == MARK_DEAD:
            view = self.service.mark_dead(u.unpack_uint())
        else:
            from repro.rpc.server import ProcUnavailable

            raise ProcUnavailable(proc)
        u.assert_done()
        return view.pack()
        yield  # pragma: no cover — generator protocol, no virtual time


class GridMetadataClient:
    """Client-side stub: one RPC connection to the metadata listener."""

    def __init__(self, sim, host, server_host: str, port: int,
                 cost=None, account: str = "grid-meta"):
        self.sim = sim
        self.host = host
        self.server_host = server_host
        self.port = port
        self.cost = cost
        self.account = account
        self._rpc = None

    def connect(self):
        """Process generator: dial the metadata service."""
        from repro.rpc.client import RpcClient
        from repro.rpc.transport import StreamTransport

        sock = yield from self.host.connect(self.server_host, self.port)
        kwargs = {"cpu": self.host.cpu, "account": self.account}
        if self.cost is not None:
            kwargs["cost"] = self.cost
        self._rpc = RpcClient(
            self.sim, StreamTransport(sock),
            GRID_META_PROGRAM, GRID_META_VERSION, **kwargs,
        )
        return self

    def _call(self, proc: int, args: bytes):
        res = yield from self._rpc.call(proc, args)
        return LayoutView.unpack(res)

    @staticmethod
    def _fileid_args(fileid: int) -> bytes:
        p = Packer()
        p.pack_uhyper(fileid)
        return p.get_bytes()

    def get_layout(self, fileid: int):
        return self._call(GET_LAYOUT, self._fileid_args(fileid))

    def register(self, fileid: int):
        return self._call(REGISTER, self._fileid_args(fileid))

    def forget(self, fileid: int):
        return self._call(FORGET, self._fileid_args(fileid))

    def mark_dead(self, backend: int):
        p = Packer()
        p.pack_uint(backend)
        return self._call(MARK_DEAD, p.get_bytes())
