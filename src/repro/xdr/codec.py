"""XDR packer/unpacker per RFC 4506.

All quantities are big-endian and padded to 4-byte boundaries.  The
implementation is strict on decode: short buffers, nonzero padding, and
out-of-range discriminants raise :class:`XdrError` rather than being
silently tolerated — the server-side proxy depends on malformed input
being rejected cleanly.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


class XdrError(Exception):
    """Malformed XDR data or out-of-range value."""


_U32 = struct.Struct(">I")
_I32 = struct.Struct(">i")
_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")
_F32 = struct.Struct(">f")
_F64 = struct.Struct(">d")


def _pad(n: int) -> int:
    return (4 - (n & 3)) & 3


class Packer:
    """Accumulates XDR-encoded bytes."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def get_bytes(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(p) for p in self._parts)

    # -- integers --------------------------------------------------------

    def pack_uint(self, v: int) -> None:
        if not 0 <= v <= 0xFFFFFFFF:
            raise XdrError(f"uint32 out of range: {v}")
        self._parts.append(_U32.pack(v))

    def pack_int(self, v: int) -> None:
        if not -0x80000000 <= v <= 0x7FFFFFFF:
            raise XdrError(f"int32 out of range: {v}")
        self._parts.append(_I32.pack(v))

    def pack_uhyper(self, v: int) -> None:
        if not 0 <= v <= 0xFFFFFFFFFFFFFFFF:
            raise XdrError(f"uint64 out of range: {v}")
        self._parts.append(_U64.pack(v))

    def pack_hyper(self, v: int) -> None:
        if not -(2**63) <= v <= 2**63 - 1:
            raise XdrError(f"int64 out of range: {v}")
        self._parts.append(_I64.pack(v))

    def pack_bool(self, v: bool) -> None:
        self.pack_uint(1 if v else 0)

    def pack_enum(self, v: int) -> None:
        self.pack_int(v)

    def pack_float(self, v: float) -> None:
        self._parts.append(_F32.pack(v))

    def pack_double(self, v: float) -> None:
        self._parts.append(_F64.pack(v))

    # -- opaques and strings ----------------------------------------------

    def pack_fopaque(self, n: int, data: bytes) -> None:
        """Fixed-length opaque: exactly n bytes plus padding."""
        if len(data) != n:
            raise XdrError(f"fixed opaque wants {n} bytes, got {len(data)}")
        self._parts.append(bytes(data) + b"\x00" * _pad(n))

    def pack_opaque(self, data: bytes) -> None:
        """Variable-length opaque: length word, bytes, padding."""
        self.pack_uint(len(data))
        self._parts.append(bytes(data) + b"\x00" * _pad(len(data)))

    def pack_string(self, s: str) -> None:
        self.pack_opaque(s.encode("utf-8"))

    # -- composites --------------------------------------------------------

    def pack_array(self, items: Sequence[T], pack_item: Callable[[T], None]) -> None:
        """Variable-length array: counted, then each element."""
        self.pack_uint(len(items))
        for item in items:
            pack_item(item)

    def pack_optional(self, value: Optional[T], pack_item: Callable[[T], None]) -> None:
        """XDR optional (``*`` pointer syntax): bool then value-if-present."""
        if value is None:
            self.pack_bool(False)
        else:
            self.pack_bool(True)
            pack_item(value)

    def pack_list(self, items: Sequence[T], pack_item: Callable[[T], None]) -> None:
        """XDR linked list: (TRUE item)* FALSE — used by READDIR replies."""
        for item in items:
            self.pack_bool(True)
            pack_item(item)
        self.pack_bool(False)


class Unpacker:
    """Consumes XDR-encoded bytes."""

    def __init__(self, data: bytes):
        self._data = memoryview(bytes(data))
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def done(self) -> bool:
        return self._pos >= len(self._data)

    def assert_done(self) -> None:
        if not self.done():
            raise XdrError(f"{self.remaining()} trailing bytes after decode")

    def _take(self, n: int) -> memoryview:
        if self._pos + n > len(self._data):
            raise XdrError(
                f"buffer underrun: need {n} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    # -- integers --------------------------------------------------------

    def unpack_uint(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def unpack_int(self) -> int:
        return _I32.unpack(self._take(4))[0]

    def unpack_uhyper(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def unpack_hyper(self) -> int:
        return _I64.unpack(self._take(8))[0]

    def unpack_bool(self) -> bool:
        v = self.unpack_uint()
        if v not in (0, 1):
            raise XdrError(f"bool must be 0 or 1, got {v}")
        return bool(v)

    def unpack_enum(self) -> int:
        return self.unpack_int()

    def unpack_float(self) -> float:
        return _F32.unpack(self._take(4))[0]

    def unpack_double(self) -> float:
        return _F64.unpack(self._take(8))[0]

    # -- opaques and strings -----------------------------------------------

    def unpack_fopaque(self, n: int) -> bytes:
        data = bytes(self._take(n))
        pad = bytes(self._take(_pad(n)))
        if pad.strip(b"\x00"):
            raise XdrError("nonzero padding bytes")
        return data

    def unpack_opaque(self, max_len: Optional[int] = None) -> bytes:
        n = self.unpack_uint()
        if max_len is not None and n > max_len:
            raise XdrError(f"opaque length {n} exceeds limit {max_len}")
        return self.unpack_fopaque(n)

    def unpack_string(self, max_len: Optional[int] = None) -> str:
        raw = self.unpack_opaque(max_len)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise XdrError(f"invalid UTF-8 in string: {exc}") from None

    # -- composites --------------------------------------------------------

    def unpack_array(self, unpack_item: Callable[[], T], max_len: Optional[int] = None) -> List[T]:
        n = self.unpack_uint()
        if max_len is not None and n > max_len:
            raise XdrError(f"array length {n} exceeds limit {max_len}")
        return [unpack_item() for _ in range(n)]

    def unpack_optional(self, unpack_item: Callable[[], T]) -> Optional[T]:
        return unpack_item() if self.unpack_bool() else None

    def unpack_list(self, unpack_item: Callable[[], T], max_len: int = 1_000_000) -> List[T]:
        out: List[T] = []
        while self.unpack_bool():
            out.append(unpack_item())
            if len(out) > max_len:
                raise XdrError("XDR list exceeds sanity limit")
        return out
