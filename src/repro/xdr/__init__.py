"""XDR: External Data Representation (RFC 4506).

The ONC RPC and NFS wire formats are defined in XDR.  This package
implements the encoder/decoder the whole stack serializes with: 4-byte
alignment, big-endian integers, variable/fixed opaques, strings, arrays
and optional data.
"""

from repro.xdr.codec import Packer, Unpacker, XdrError

__all__ = ["Packer", "Unpacker", "XdrError"]
