"""SGFS: a user-level secure grid file system — full reproduction.

Reproduces Zhao & Figueiredo, "A User-level Secure Grid File System"
(SC'07) as a self-contained Python library over a deterministic
discrete-event simulation.  Start at :mod:`repro.core` (testbeds and the
eight evaluation setups), :mod:`repro.harness` (experiment runner), or
``python -m repro`` (CLI).  DESIGN.md maps the paper onto the packages;
EXPERIMENTS.md records paper-vs-measured for every figure.
"""

__version__ = "1.0.0"
