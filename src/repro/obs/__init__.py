"""``repro.obs`` — unified telemetry: metrics registry + span tracing.

Two pillars (see DESIGN.md "Observability"):

- :class:`Registry` — named counters, gauges and streaming histograms
  with ``component/name`` keys and labels; ``snapshot()`` exports a
  nested dict.  :data:`NULL_REGISTRY` is the zero-cost disabled variant.
- :class:`SpanTracer` — virtual-clock spans with per-process causal
  nesting, ring-buffered, exportable as Chrome-trace/Perfetto JSON.
  :data:`NULL_TRACER` is the disabled variant.

Both are wired through explicit hook points: the simulator carries the
active registry/tracer (``sim.obs`` / ``sim.tracer``), and each layer
picks them up at construction time.  Enable per-testbed via
``Testbed.build(telemetry=True, tracing=True)`` or the ``stats`` /
``trace`` CLI commands.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BOUNDS,
    NULL_REGISTRY,
    NullRegistry,
    Registry,
    GAUGE_METRICS,
    merge_metric,
    percentile,
)
from repro.obs.benchdiff import (
    DiffEntry,
    bench_diff,
    diff_json,
    flatten,
    format_diff,
    has_regression,
)
from repro.obs.profile import (
    build_report,
    collapsed_stacks,
    critical_path,
    format_report,
    report_json,
    self_segments,
)
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, NullTracer, Span, SpanTracer

__all__ = [
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDS",
    "NULL_REGISTRY",
    "GAUGE_METRICS",
    "merge_metric",
    "NullRegistry",
    "Registry",
    "percentile",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanTracer",
    "DiffEntry",
    "bench_diff",
    "diff_json",
    "flatten",
    "format_diff",
    "has_regression",
    "build_report",
    "collapsed_stacks",
    "critical_path",
    "format_report",
    "report_json",
    "self_segments",
]
