"""Bottleneck attribution: critical path, utilization timelines, flames.

Where did the makespan go?  This module turns the raw telemetry the
stack already records — completed span trees (:mod:`repro.obs.tracing`),
per-account CPU busy intervals (:mod:`repro.sim.cpu`), per-direction
link occupancy (:mod:`repro.net.network`), lock-wait histograms
(:mod:`repro.sim.sync`), and RPC worker-queue depth samples
(:mod:`repro.rpc.server`) — into one attribution report:

- **critical path**: a backward sweep over span *self-segments* (the
  parts of each span not covered by its children) from the end of the
  run picks, at every instant, the latest-starting active segment; the
  resulting chain partitions the makespan into named contributors plus
  explicit ``(idle)`` gaps.
- **CPU attribution**: per host, total busy time and the exact
  per-account breakdown — hierarchical crypto sub-accounts
  (``proxy/seal:aes-256-cbc-sha1``) make "70% of the server proxy's CPU
  is cipher work" a computed fact.
- **utilization timelines**: time-bucketed busy percentages for every
  CPU and every directed link, the same windowed series as the paper's
  Figs. 5–6 but for any resource.
- **flame graph**: collapsed-stack export (``a;b;c <weight>`` lines,
  the flamegraph.pl / speedscope input format) weighted by span
  self-time in integer nanoseconds.

Everything is deterministic: inputs come from the virtual clock and
FIFO queues, ties break on span ids, and reports serialize with sorted
keys — two same-seed runs produce byte-identical output.
"""

from __future__ import annotations

import heapq
import json
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

#: Substrings of a hierarchical CPU-account key that mark crypto work.
#: (The crypto layers charge ``<parent>/seal:<suite>``, ``/open:``,
#: ``/crypto:`` and ``/handshake`` sub-accounts.)
CRYPTO_MARKERS = ("/seal:", "/open:", "/crypto:", "/handshake")


def is_crypto_account(account: str) -> bool:
    """True if a ledger key records cipher/MAC/handshake CPU time."""
    return any(m in account for m in CRYPTO_MARKERS)


# ---------------------------------------------------------------------------
# span geometry
# ---------------------------------------------------------------------------


def self_segments(spans) -> List[Tuple[float, float, Any]]:
    """The self-time intervals of every closed span.

    A span's *self-segments* are the parts of its ``[start, end]``
    interval not covered by its children — the time the span itself was
    the innermost active region of its track.  Stack discipline
    guarantees children nest inside the parent and do not overlap each
    other, so a single forward walk suffices.
    """
    closed = [s for s in spans if s.end is not None]
    children: Dict[int, List[Any]] = defaultdict(list)
    for s in closed:
        if s.parent_id is not None:
            children[s.parent_id].append(s)
    out: List[Tuple[float, float, Any]] = []
    for s in closed:
        cur = s.start
        for kid in sorted(children.get(s.span_id, ()),
                          key=lambda k: (k.start, k.span_id)):
            if kid.start > cur:
                out.append((cur, kid.start, s))
            if kid.end > cur:
                cur = kid.end
        if s.end > cur:
            out.append((cur, s.end, s))
    return out


def critical_path(tracer, t0: float, t_end: float):
    """Attribute ``[t0, t_end]`` to span self-segments by backward sweep.

    From ``t_end`` backwards, the *active* segment at time ``t`` is the
    self-segment covering ``t`` with the latest start (tie: largest
    ``span_id`` — the most recently opened span).  The sweep jumps to
    that segment's start and repeats; instants covered by no segment are
    charged to ``(idle)``.  Returns ``(contributors, idle_seconds)``
    where contributors maps ``(cat, name) -> [seconds, steps]``.
    """
    segs = self_segments(tracer.spans)
    segs = [(a, b, s) for a, b, s in segs if b > t0 and a < t_end]
    # Sorted by end descending so the sweep can admit candidates lazily.
    segs.sort(key=lambda seg: (-seg[1], -seg[0], -seg[2].span_id))
    contributors: Dict[Tuple[str, str], List[float]] = defaultdict(lambda: [0.0, 0])
    idle = 0.0
    active: List[Tuple[float, int, Any]] = []  # max-heap by (start, span_id)
    j = 0
    t = t_end
    while t > t0:
        while j < len(segs) and segs[j][1] >= t:
            a, _b, s = segs[j]
            heapq.heappush(active, (-a, -s.span_id, s))
            j += 1
        # Entries starting at/after t lie in the already-swept region.
        while active and -active[0][0] >= t:
            heapq.heappop(active)
        if active:
            start = -active[0][0]
            s = heapq.heappop(active)[2]
            lo = max(start, t0)
            entry = contributors[(s.cat or "span", s.name)]
            entry[0] += t - lo
            entry[1] += 1
            t = lo
        elif j < len(segs):
            # Gap: nothing covers t; idle back to the next segment end.
            lo = max(min(segs[j][1], t), t0)
            idle += t - lo
            t = lo
        else:
            idle += t - t0
            t = t0
    return contributors, idle


def self_time_by_name(tracer) -> Dict[Tuple[str, str], List[float]]:
    """Aggregate span self-time as ``(cat, name) -> [seconds, count]``."""
    out: Dict[Tuple[str, str], List[float]] = defaultdict(lambda: [0.0, 0])
    seen = set()
    for a, b, s in self_segments(tracer.spans):
        entry = out[(s.cat or "span", s.name)]
        entry[0] += b - a
        if s.span_id not in seen:
            seen.add(s.span_id)
            entry[1] += 1
    return out


def self_time_by_namespace(tracer) -> Dict[str, float]:
    """Span self-time per fleet-client namespace (None → "(shared)")."""
    ns_of = tracer.track_namespaces()
    out: Dict[str, float] = defaultdict(float)
    for a, b, s in self_segments(tracer.spans):
        out[ns_of.get(s.tid) or "(shared)"] += b - a
    return dict(out)


# ---------------------------------------------------------------------------
# flame graph
# ---------------------------------------------------------------------------


def collapsed_stacks(tracer) -> str:
    """The run as collapsed stacks (flamegraph.pl / speedscope input).

    One line per unique stack, ``track;ancestor;...;leaf <weight>``,
    weighted by self-time in integer nanoseconds and sorted
    lexicographically — byte-identical across same-seed runs.
    """
    names = tracer.track_names()
    by_id = {s.span_id: s for s in tracer.spans}
    weights: Dict[str, int] = defaultdict(int)
    for a, b, s in self_segments(tracer.spans):
        frames = []
        node = s
        while node is not None:
            frames.append(node.name)
            node = by_id.get(node.parent_id) if node.parent_id is not None else None
        frames.append(names.get(s.tid, f"track{s.tid}"))
        frames.reverse()
        ns = round((b - a) * 1e9)
        if ns > 0:
            weights[";".join(frames)] += ns
    return "\n".join(f"{stack} {w}" for stack, w in sorted(weights.items()))


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------


def _pct(part: float, whole: float) -> float:
    return 100.0 * part / whole if whole > 0 else 0.0


def _rounded(obj, digits: int = 9):
    """Round every float in a nested structure (readability only — the
    inputs are already deterministic)."""
    if isinstance(obj, float):
        return round(obj, digits)
    if isinstance(obj, dict):
        return {k: _rounded(v, digits) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_rounded(v, digits) for v in obj]
    return obj


def build_report(
    tb,
    t0: float = 0.0,
    t_end: Optional[float] = None,
    window: Optional[float] = None,
    top: int = 10,
) -> Dict[str, Any]:
    """Build the attribution report for a finished (profiled) run.

    ``tb`` is a :class:`~repro.core.topology.Testbed` (or anything with
    ``sim``, ``net``, ``obs``, ``tracer`` and ``nfs_rpc_server``); the
    run should have been built with ``profile=True`` so link occupancy
    and queue timelines were recorded.  ``window`` sizes the utilization
    buckets (default: makespan / 20).
    """
    sim = tb.sim
    if t_end is None:
        t_end = sim.now
    makespan = t_end - t0
    if window is None:
        window = max(makespan / 20.0, 1e-9)
    report: Dict[str, Any] = {
        "meta": {
            "t0": t0, "t_end": t_end, "makespan": makespan, "window": window,
        },
    }

    # -- CPU attribution ----------------------------------------------------
    cpu_section: Dict[str, Any] = {}
    for name in sorted(tb.net.nodes):
        cpu = getattr(tb.net.nodes[name], "cpu", None)
        if cpu is None:
            continue
        ledger = cpu.ledger
        totals = ledger.totals()
        if not totals:
            continue
        busy = sum(totals.values())
        crypto = sum(v for k, v in totals.items() if is_crypto_account(k))
        accounts = {
            k: {
                "seconds": v,
                "pct_of_makespan": _pct(v, makespan),
                "pct_of_busy": _pct(v, busy),
            }
            for k, v in totals.items()
        }
        ncores = getattr(cpu, "cores", 1)
        series = []
        t = t0
        while t < t_end:
            hi = min(t + window, t_end)
            # With N cores the window capacity is N * (hi - t); the
            # timeline stays 0–100% whatever the core count.
            series.append(
                [hi, _pct(ledger.busy_all_in_window(t, hi), (hi - t) * ncores)]
            )
            t += window
        entry = {
            "busy_seconds": busy,
            "busy_pct_of_makespan": _pct(busy, makespan),
            "crypto_seconds": crypto,
            "crypto_pct_of_makespan": _pct(crypto, makespan),
            "crypto_pct_of_busy": _pct(crypto, busy),
            "accounts": accounts,
            "timeline": series,
        }
        if ncores > 1:
            per_core = ledger.busy_by_core(t0, t_end)
            entry["cores"] = ncores
            entry["per_core"] = {
                str(core): {
                    "busy_seconds": per_core.get(core, 0.0),
                    "utilization_pct": _pct(per_core.get(core, 0.0), makespan),
                }
                for core in range(ncores)
            }
        cpu_section[name] = entry
    report["cpu"] = cpu_section

    # -- link occupancy -----------------------------------------------------
    links: Dict[str, Any] = {}
    link_ledger = getattr(tb.net, "link_ledger", None)
    if link_ledger is not None:
        for key, busy in link_ledger.totals().items():
            series = []
            t = t0
            while t < t_end:
                hi = min(t + window, t_end)
                series.append(
                    [hi, _pct(link_ledger.busy_in_window(key, t, hi), hi - t)]
                )
                t += window
            links[key] = {
                "busy_seconds": busy,
                "utilization_pct": _pct(busy, makespan),
                "timeline": series,
            }
    report["links"] = links

    # -- lock waits and RPC queueing (straight from the registry) ----------
    snap = tb.obs.snapshot() if tb.obs.enabled else {}
    report["locks"] = snap.get("sync", {})
    rpc_q: Dict[str, Any] = {}
    rpc_meta = snap.get("rpc.server", {})

    def _queue_entry(server) -> Dict[str, Any]:
        timeline = getattr(server, "queue_timeline", [])
        entry: Dict[str, Any] = {
            "samples": len(timeline),
            "max_depth": max((d for _t, d in timeline), default=0),
            "mean_depth": (
                sum(d for _t, d in timeline) / len(timeline) if timeline else 0.0
            ),
        }
        # queue metrics are labeled per RPC server; keep each backend's
        # own rows so a sharded run shows per-backend utilization
        label = f"{{server={server.name}}}"
        for key, value in rpc_meta.items():
            if (key.startswith("queue_wait") or key.startswith("queue_depth")) \
                    and key.endswith(label):
                entry[key] = value
        return entry

    rpc_servers = [b.rpc_server for b in getattr(tb, "backends", None) or []]
    if not rpc_servers:
        home = getattr(tb, "nfs_rpc_server", None)
        rpc_servers = [home] if home is not None else []
    for server in rpc_servers:
        rpc_q[server.name] = _queue_entry(server)
    report["rpc_queue"] = rpc_q

    # -- WAN transfer engine: per-sub-channel traffic -----------------------
    # The client proxy labels per-channel bulk traffic as
    # ``stream_calls{leg=...,ch=...}`` / ``stream_bytes{...}`` in its
    # stats collector; surface one row per (leg, channel).
    streams: Dict[str, Any] = {}
    for key, value in snap.get("proxy.client", {}).items():
        if not key.startswith(("stream_calls{", "stream_bytes{")):
            continue
        metric, label = key.split("{", 1)
        label = label.rstrip("}")
        row = streams.setdefault(label, {"calls": 0, "bytes": 0})
        row["calls" if metric == "stream_calls" else "bytes"] = value
    if streams:
        report["streams"] = streams

    # -- critical path and span self-time -----------------------------------
    tracer = tb.tracer
    if tracer is not None and tracer.enabled:
        contributors, idle = critical_path(tracer, t0, t_end)
        ranked = sorted(
            contributors.items(), key=lambda kv: (-kv[1][0], kv[0])
        )
        report["critical_path"] = {
            "idle_seconds": idle,
            "idle_pct": _pct(idle, makespan),
            "contributors": [
                {
                    "cat": cat, "name": name, "seconds": secs,
                    "pct_of_makespan": _pct(secs, makespan), "steps": steps,
                }
                for (cat, name), (secs, steps) in ranked[:top]
            ],
        }
        by_name = sorted(
            self_time_by_name(tracer).items(), key=lambda kv: (-kv[1][0], kv[0])
        )
        report["top_spans"] = [
            {
                "cat": cat, "name": name, "self_seconds": secs,
                "count": count, "pct_of_makespan": _pct(secs, makespan),
            }
            for (cat, name), (secs, count) in by_name[:top]
        ]
        by_ns = self_time_by_namespace(tracer)
        if len(by_ns) > 1:
            report["clients"] = {
                ns: {"self_seconds": secs, "pct_of_makespan": _pct(secs, makespan)}
                for ns, secs in sorted(by_ns.items())
            }
    return _rounded(report)


def report_json(report: Dict[str, Any], indent: Optional[int] = 2) -> str:
    return json.dumps(report, sort_keys=True, indent=indent)


def format_report(report: Dict[str, Any], width: int = 72) -> str:
    """Human-readable rendering of :func:`build_report` output."""
    lines: List[str] = []
    meta = report["meta"]
    lines.append(
        f"makespan {meta['makespan']:.6f}s  "
        f"(t0={meta['t0']:.6f}, t_end={meta['t_end']:.6f}, "
        f"window={meta['window']:.6f}s)"
    )
    for host, c in report.get("cpu", {}).items():
        lines.append("")
        lines.append(
            f"cpu {host}: busy {c['busy_seconds']:.6f}s "
            f"({c['busy_pct_of_makespan']:.1f}% of makespan), "
            f"crypto {c['crypto_seconds']:.6f}s "
            f"({c['crypto_pct_of_busy']:.1f}% of busy, "
            f"{c['crypto_pct_of_makespan']:.1f}% of makespan)"
        )
        if c.get("per_core"):
            lines.append(f"  cores: {c.get('cores', len(c['per_core']))}")
            for core, v in sorted(
                c["per_core"].items(), key=lambda kv: int(kv[0])
            ):
                lines.append(
                    f"    core {core:<2} busy {v['busy_seconds']:>10.6f}s "
                    f"({v['utilization_pct']:.1f}% of makespan)"
                )
        ranked = sorted(
            c["accounts"].items(), key=lambda kv: (-kv[1]["seconds"], kv[0])
        )
        for account, v in ranked:
            lines.append(
                f"  {account:<40} {v['seconds']:>10.6f}s "
                f"{v['pct_of_makespan']:>6.1f}%"
            )
    if report.get("links"):
        lines.append("")
        lines.append("links:")
        for key, v in sorted(report["links"].items()):
            lines.append(
                f"  {key:<24} busy {v['busy_seconds']:.6f}s "
                f"({v['utilization_pct']:.1f}%)"
            )
    if report.get("locks"):
        lines.append("")
        lines.append("lock contention:")
        for key, v in sorted(report["locks"].items()):
            if isinstance(v, dict):
                lines.append(
                    f"  {key:<44} n={v.get('count', 0)} "
                    f"sum={v.get('sum', 0.0):.6f}s"
                )
            else:
                lines.append(f"  {key:<44} {v}")
    for name, v in report.get("rpc_queue", {}).items():
        lines.append("")
        lines.append(
            f"rpc queue {name}: samples={v['samples']} "
            f"max_depth={v['max_depth']} mean_depth={v['mean_depth']:.2f}"
        )
    if report.get("streams"):
        lines.append("")
        lines.append("wan streams (bulk calls per sub-channel):")
        for label, v in sorted(report["streams"].items()):
            lines.append(
                f"  {label:<28} calls={v['calls']:<8} bytes={v['bytes']}"
            )
    cp = report.get("critical_path")
    if cp:
        lines.append("")
        lines.append(
            f"critical path (idle {cp['idle_seconds']:.6f}s, "
            f"{cp['idle_pct']:.1f}%):"
        )
        for c in cp["contributors"]:
            lines.append(
                f"  {c['cat'] + ':' + c['name']:<36} {c['seconds']:>10.6f}s "
                f"{c['pct_of_makespan']:>6.1f}%  ({c['steps']} steps)"
            )
    if report.get("top_spans"):
        lines.append("")
        lines.append("top spans by self time:")
        for c in report["top_spans"]:
            lines.append(
                f"  {c['cat'] + ':' + c['name']:<36} "
                f"{c['self_seconds']:>10.6f}s {c['pct_of_makespan']:>6.1f}%  "
                f"(n={c['count']})"
            )
    if report.get("clients"):
        lines.append("")
        lines.append("per-client span self time:")
        for ns, v in report["clients"].items():
            lines.append(
                f"  {ns:<12} {v['self_seconds']:>10.6f}s "
                f"{v['pct_of_makespan']:>6.1f}%"
            )
    return "\n".join(lines)
