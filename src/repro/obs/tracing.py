"""Causal span tracing on the virtual clock, with Chrome-trace export.

A *span* is a named interval of virtual time attributed to one layer of
the stack (``cat``: rpc, tls, proxy, nfs-cache, disk, ...).  Spans are
opened with ``with tracer.span("rpc.call", cat="rpc", proc="READ"):``
around the interesting region — including regions that suspend on
simulation events, since ``with`` works inside process generators.

Causality: the simulator tracks which :class:`~repro.sim.process.Process`
is currently executing, and the tracer keeps one span stack *per
process*.  A span's parent is the innermost open span of the same
process, which is exactly the call-structure causality a developer
expects (an ``nfs.fill`` span contains its ``rpc.call`` spans; spans of
concurrently executing processes land on separate tracks instead of
corrupting each other's nesting).

Finished spans go into a bounded ring buffer (oldest dropped first) and
export as Chrome-trace / Perfetto ``trace_events`` JSON: complete
(``"ph": "X"``) events with microsecond timestamps, one ``tid`` per
simulation process, plus ``M`` metadata records naming the tracks.
Load the file at https://ui.perfetto.dev or chrome://tracing.

Everything is deterministic: timestamps come from the virtual clock,
track ids are assigned in first-use order, and identical runs produce
byte-identical exports.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from typing import Any, Dict, List, Optional

#: Stable track identities.  ``id(owner)`` is unusable — CPython reuses
#: the addresses of collected process objects, which would merge
#: unrelated tracks (and nondeterministically, since reuse depends on
#: allocator behavior).  Instead each owner is stamped with a serial
#: from this counter the first time it opens a span.  The counter is
#: shared by all tracers so stamps stay unique even across testbeds;
#: exports remain deterministic because tids are assigned in first-use
#: order per tracer, never from the stamp value itself.
_TRACK_KEYS = itertools.count(1)


class Span:
    """One closed (or still-open) interval on the virtual timeline."""

    __slots__ = ("span_id", "parent_id", "name", "cat", "tid", "start", "end", "args")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        cat: str,
        tid: int,
        start: float,
        args: Dict[str, Any],
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.tid = tid
        self.start = start
        self.end: Optional[float] = None
        self.args = args

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


class _SpanContext:
    """Context manager returned by :meth:`SpanTracer.span`."""

    __slots__ = ("tracer", "span", "stack")

    def __init__(self, tracer: "SpanTracer", span: Span, stack: list):
        self.tracer = tracer
        self.span = span
        self.stack = stack

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer._close(self.span, self.stack)


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()

#: Shared no-op context for hot call sites that guard span creation
#: themselves: ``with tracer.span(...) if tracer.enabled else NULL_SPAN:``
#: skips the keyword packing a call into ``NullTracer.span`` would pay.
NULL_SPAN = _NULL_SPAN_CONTEXT


class SpanTracer:
    """Collects spans from an instrumented simulation.

    ``clock`` is a zero-argument callable returning the current virtual
    time (``lambda: sim.now``); ``current_track`` returns a hashable
    identity + printable name for the executing context (the simulator's
    running process).  ``capacity`` bounds the ring buffer.
    """

    enabled = True

    def __init__(self, clock, current_track=None, capacity: int = 1_000_000):
        self.clock = clock
        self.current_track = current_track or (lambda: None)
        self.spans: "deque[Span]" = deque(maxlen=capacity)
        self.dropped = 0
        self._next_id = 1
        self._stacks: Dict[int, list] = {}
        self._tids: Dict[int, int] = {}
        self._tid_names: Dict[int, str] = {}
        self._tid_ns: Dict[int, Optional[str]] = {}

    # -- recording -----------------------------------------------------

    def _track(self) -> tuple:
        owner = self.current_track()
        if owner is None:
            key, label, ns = 0, "main", None
        else:
            key = getattr(owner, "trace_key", None)
            if key is None:
                key = next(_TRACK_KEYS)
                try:
                    owner.trace_key = key
                except (AttributeError, TypeError):
                    key = id(owner)  # unstampable owner: best effort
            label = getattr(owner, "name", "proc") or "proc"
            # Fleet runs stamp client subtrees with a trace namespace so
            # N clients' identically-named processes export as distinct
            # "c0:proc" / "c1:proc" tracks instead of colliding.
            ns = getattr(owner, "trace_ns", None)
            if ns:
                label = f"{ns}:{label}"
        tid = self._tids.get(key)
        if tid is None:
            tid = self._tids[key] = len(self._tids) + 1
            self._tid_names[tid] = label
            self._tid_ns[tid] = ns
        stack = self._stacks.get(key)
        if stack is None:
            stack = self._stacks[key] = []
        return tid, stack

    def span(self, name: str, cat: str = "", **args) -> _SpanContext:
        """Open a span; close it by exiting the returned context."""
        tid, stack = self._track()
        parent = stack[-1].span_id if stack else None
        s = Span(self._next_id, parent, name, cat, tid, self.clock(), args)
        self._next_id += 1
        stack.append(s)
        return _SpanContext(self, s, stack)

    def instant(self, name: str, cat: str = "", **args) -> None:
        """Record a zero-duration marker (cache hit, ACL denial, ...)."""
        with self.span(name, cat=cat, **args):
            pass

    def _close(self, span: Span, stack: list) -> None:
        span.end = self.clock()
        # Tolerate out-of-order closes from exception unwinding.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if len(self.spans) == self.spans.maxlen:
            self.dropped += 1
        self.spans.append(span)

    # -- export --------------------------------------------------------

    def chrome_trace(self, pid: int = 1) -> Dict[str, Any]:
        """The run as a Chrome-trace ``trace_events`` JSON object."""
        events: List[Dict[str, Any]] = []
        for tid in sorted(self._tid_names):
            events.append({
                "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                "args": {"name": self._tid_names[tid]},
            })
        for s in sorted(self.spans, key=lambda s: (s.start, s.span_id)):
            if s.end is None:
                continue
            ev: Dict[str, Any] = {
                "ph": "X",
                "name": s.name,
                "cat": s.cat or "span",
                "ts": round(s.start * 1e6, 3),
                "dur": round((s.end - s.start) * 1e6, 3),
                "pid": pid,
                "tid": s.tid,
            }
            args = dict(s.args)
            args["span_id"] = s.span_id
            if s.parent_id is not None:
                args["parent_id"] = s.parent_id
            ev["args"] = args
            events.append(ev)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_json(self, pid: int = 1, indent: Optional[int] = None) -> str:
        return json.dumps(self.chrome_trace(pid=pid), sort_keys=True, indent=indent)

    def categories(self) -> set:
        return {s.cat for s in self.spans if s.end is not None}

    def track_names(self) -> Dict[int, str]:
        """tid → display label (namespace-prefixed for fleet clients)."""
        return dict(self._tid_names)

    def track_namespaces(self) -> Dict[int, Optional[str]]:
        """tid → fleet-client namespace, or None for shared tracks."""
        return dict(self._tid_ns)


class NullTracer(SpanTracer):
    """No-op tracer; ``enabled`` is False for one-check guards."""

    enabled = False

    def __init__(self) -> None:
        self.spans = deque()
        self.dropped = 0

    def span(self, name: str, cat: str = "", **args):
        return _NULL_SPAN_CONTEXT

    def instant(self, name: str, cat: str = "", **args) -> None:
        pass

    def chrome_trace(self, pid: int = 1) -> Dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def categories(self) -> set:
        return set()

    def track_names(self) -> Dict[int, str]:
        return {}

    def track_namespaces(self) -> Dict[int, Optional[str]]:
        return {}


NULL_TRACER = NullTracer()
