"""Metrics registry: counters, gauges, streaming histograms.

The registry is the cross-layer ledger behind every number in the
paper's evaluation: per-procedure RPC latency (Fig. 4), per-cipher bytes
encrypted (Figs. 4-6), proxy cache hit rates (Fig. 8), disk and link
byte counts.  Design rules:

- **Deterministic.**  Instruments never read the wall clock or any other
  ambient state; histograms summarize through *fixed* bucket boundaries,
  so two identical simulation runs snapshot byte-identically.
- **Zero-cost when disabled.**  :data:`NULL_REGISTRY` exposes the same
  surface but every instrument it hands out is a shared no-op; hot call
  sites additionally guard on ``registry.enabled`` (a single attribute
  check) so the disabled path does no dictionary lookups at all.
- **Nested snapshot.**  :meth:`Registry.snapshot` exports everything as
  a nested ``{component: {metric_key: value}}`` dict, sorted, ready for
  ``json.dumps``.

Keys are ``component/name`` plus optional labels, rendered as
``name{label=value,...}`` in snapshots (Prometheus-flavored, but with no
wire protocol — this is a simulation, we just want the numbers).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (``0 <= q <= 1``) of ``values`` by linear
    interpolation between closest ranks.

    This is the one percentile definition used everywhere in the
    repository (the RPC tracer and the histogram snapshots), replacing
    the ad-hoc ``int(len * q)`` indexing that over-indexed toward the
    maximum for small samples and picked the upper of the two middle
    elements for even-length medians.

    ``values`` may be unsorted; an internal sorted copy is used.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile out of range: {q}")
    if not values:
        raise ValueError("percentile of empty sequence")
    data = sorted(values)
    rank = q * (len(data) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return data[lo]
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


class Counter:
    """A monotonically increasing count (events, bytes, hits)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def export(self):
        return self.value


class Gauge:
    """A value that can go up and down (queue depth, bytes cached)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def add(self, v: float) -> None:
        self.value += v

    def export(self):
        return self.value


#: Default histogram boundaries: log-spaced virtual-time latencies from
#: 1 us to 100 s — wide enough for a loopback hop and an 80 ms-RTT WAN
#: COMMIT alike.  Fixed boundaries keep summaries deterministic.
LATENCY_BOUNDS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
    1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0, 100.0,
)


class Histogram:
    """A streaming histogram over fixed bucket boundaries.

    ``bounds`` are the *upper* edges of the finite buckets; one implicit
    overflow bucket catches everything beyond the last edge.  Exact
    count/sum/min/max are tracked alongside, so means are exact and the
    interpolated quantiles are clamped to the observed range.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = LATENCY_BOUNDS):
        b = tuple(bounds)
        if not b or any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = b
        self.counts = [0] * (len(b) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bucket whose upper edge admits v
            mid = (lo + hi) // 2
            if v <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating inside the
        bucket containing the target rank (same fractional-rank
        convention as :func:`percentile`)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if self.count == 0:
            return 0.0
        target = q * (self.count - 1)  # fractional rank, 0-based
        seen = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if target < seen + n:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                lower = max(lower, self.min)
                upper = min(max(upper, lower), self.max)
                frac = (target - seen + 0.5) / n
                return lower + (upper - lower) * min(max(frac, 0.0), 1.0)
            seen += n
        return self.max  # pragma: no cover - unreachable

    def export(self) -> dict:
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class _NullInstrument:
    """Absorbs every instrument method; shared singleton."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def add(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass

    value = 0

    def export(self):
        return 0


NULL_INSTRUMENT = _NullInstrument()


#: Base metric names (label suffixes stripped) with **gauge** semantics:
#: they report a *level*, not an accumulated count, so summing colliding
#: reports is wrong — ``queue_depth`` 3 and 5 across two sessions is a
#: worst case of 5, not a fleet-wide depth of 8.  Colliding gauges merge
#: by max, which is order-independent and therefore deterministic no
#: matter which collector registered first.
GAUGE_METRICS = frozenset(
    {
        "queue_depth",
        "sessions_queued",
        "layout_cache_entries",
        "shadow_handles",
        "dirty_bytes",
    }
)


def _base_name(name: str) -> str:
    brace = name.find("{")
    return name if brace < 0 else name[:brace]


def merge_metric(old, new, name: str = ""):
    """Combine two exported metric values reported under one name.

    With a fleet of N clients, every session's caches and proxies report
    through the same component/metric names; :meth:`Registry.snapshot`
    used to keep whichever collector ran last (last-writer-wins), which
    silently under-reported every per-session counter.  Merging rules:

    - two numbers **sum** when the name has counter semantics (the
      overwhelming case), but merge by **max** when ``name`` (labels
      stripped) is in :data:`GAUGE_METRICS` — gauges report levels, and
      summing levels across sessions fabricates a depth no queue ever
      had,
    - two dicts merge recursively key-by-key (cache-stats triples),
      passing each key down as the name for the gauge check,
    - anything else keeps the newer value (non-summable payloads).

    Booleans are deliberately *not* summed: ``True + True == 2`` would
    corrupt flag-like exports, so flags also keep the newer value.
    """
    if isinstance(old, bool) or isinstance(new, bool):
        return new
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        if _base_name(name) in GAUGE_METRICS:
            return max(old, new)
        return old + new
    if isinstance(old, dict) and isinstance(new, dict):
        merged = dict(old)
        for k, v in new.items():
            merged[k] = merge_metric(merged[k], v, name=k) if k in merged else v
        return merged
    return new


def _key(name: str, labels: Dict[str, object]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Registry:
    """Named instruments grouped by component, plus pull collectors.

    Instruments are get-or-create: the first ``counter("rpc.client",
    "bytes_out")`` creates it, later calls return the same object, so
    call sites never need to pre-declare anything.

    Components that already keep their own counters (the proxy ``stats``
    dict, :class:`~repro.obs.metrics.Histogram`-free caches) register a
    *collector* — a callable returning a flat ``{name: value}`` dict —
    and are polled only at snapshot time.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, str], object] = {}
        self._collectors: List[Tuple[str, Callable[[], Dict[str, object]]]] = []

    # -- instruments ---------------------------------------------------

    def _get(self, factory, component: str, name: str, labels: Dict[str, object]):
        key = (component, _key(name, labels))
        inst = self._metrics.get(key)
        if inst is None:
            inst = self._metrics[key] = factory()
        return inst

    def counter(self, component: str, name: str, **labels) -> Counter:
        return self._get(Counter, component, name, labels)

    def gauge(self, component: str, name: str, **labels) -> Gauge:
        return self._get(Gauge, component, name, labels)

    def histogram(
        self,
        component: str,
        name: str,
        bounds: Sequence[float] = LATENCY_BOUNDS,
        **labels,
    ) -> Histogram:
        return self._get(lambda: Histogram(bounds), component, name, labels)

    def add_collector(self, component: str, fn: Callable[[], Dict[str, object]]) -> None:
        self._collectors.append((component, fn))

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Nested ``{component: {metric: value}}`` view of everything.

        Collector outputs that collide on ``component/name`` — e.g. the
        per-session cache stats of an N-client fleet — are **merged**
        via :func:`merge_metric` (numbers sum, dicts merge recursively)
        instead of last-writer-wins.
        """
        out: Dict[str, Dict[str, object]] = {}
        for (component, key), inst in self._metrics.items():
            out.setdefault(component, {})[key] = inst.export()
        for component, fn in self._collectors:
            bucket = out.setdefault(component, {})
            for name, value in fn().items():
                if name in bucket:
                    bucket[name] = merge_metric(bucket[name], value, name=name)
                else:
                    bucket[name] = value
        return {c: dict(sorted(m.items())) for c, m in sorted(out.items())}


class NullRegistry(Registry):
    """Every instrument is the shared no-op; ``enabled`` is False so hot
    paths can skip their bookkeeping with one attribute check."""

    enabled = False

    def __init__(self) -> None:
        pass

    def _get(self, factory, component, name, labels):
        return NULL_INSTRUMENT

    def add_collector(self, component, fn) -> None:
        pass

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {}


NULL_REGISTRY = NullRegistry()
