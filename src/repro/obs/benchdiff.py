"""Compare two stats/perf JSON snapshots and emit regression verdicts.

Works on any nested JSON the harness produces — ``BENCH_PERF.json``
from :mod:`benchmarks.perf_wallclock`, a ``stats`` export from the CLI,
or a profile report.  Both documents are flattened to dotted paths
(dict keys joined with ``.``, list indices as ``[i]``) and compared
metric by metric:

- numeric pairs get a relative delta and a verdict — ``ok`` within
  tolerance, ``improved`` / ``regressed`` when the metric's direction
  is known (latency-like names want to go down, throughput-like names
  up), ``changed`` when the direction is unknown;
- paths present on only one side report ``added`` / ``removed``;
- non-numeric mismatches report ``changed``.

The comparison is pure and deterministic; the CLI's ``bench-diff``
subcommand exits non-zero only if something ``regressed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Any, Dict, List, Optional, Sequence

#: Path substrings whose metrics improve *downward* (time, queueing).
LOWER_IS_BETTER = (
    "wall_seconds", "virtual_seconds", "seconds", "makespan", "wait",
    "depth", "latency", "p50", "p95", "p99", "mean", "max", "min",
    "heap_pushes", "events_dispatched", "process_wakeups", "dropped",
    "retransmit", "denied", "misses", "evictions",
)

#: Path substrings whose metrics improve *upward* (rates, hits).
HIGHER_IS_BETTER = (
    "events_per_sec", "per_sec", "throughput", "bytes_per_sec", "hits",
    "granted",
)


def direction_of(path: str) -> int:
    """-1 if lower is better, +1 if higher is better, 0 if unknown.

    Higher-is-better markers win ties because they are the more
    specific names (``events_per_sec`` also contains ``events``).
    """
    lower = path.lower()
    if any(m in lower for m in HIGHER_IS_BETTER):
        return 1
    if any(m in lower for m in LOWER_IS_BETTER):
        return -1
    return 0


def flatten(doc: Any, prefix: str = "") -> Dict[str, Any]:
    """Nested dict/list → ``{"a.b[0].c": leaf}`` with sorted traversal."""
    out: Dict[str, Any] = {}
    if isinstance(doc, dict):
        for key in sorted(doc, key=str):
            sub = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(doc[key], sub))
    elif isinstance(doc, (list, tuple)):
        for i, item in enumerate(doc):
            out.update(flatten(item, f"{prefix}[{i}]"))
    else:
        out[prefix] = doc
    return out


@dataclass
class DiffEntry:
    """One compared metric path."""

    path: str
    verdict: str  # ok | improved | regressed | changed | added | removed
    baseline: Any = None
    current: Any = None
    delta_pct: Optional[float] = None


def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def bench_diff(
    baseline: Any,
    current: Any,
    tolerance: float = 0.05,
    only: Sequence[str] = (),
    ignore: Sequence[str] = (),
) -> List[DiffEntry]:
    """Compare two JSON documents; return entries sorted by path.

    ``tolerance`` is the relative change treated as noise (0.05 = 5%).
    ``only`` / ``ignore`` are fnmatch globs over dotted paths; ``only``
    (when non-empty) selects the paths to compare, then ``ignore``
    removes from that set.
    """
    base = flatten(baseline)
    cur = flatten(current)
    paths = sorted(set(base) | set(cur))
    if only:
        paths = [p for p in paths if any(fnmatch(p, g) for g in only)]
    if ignore:
        paths = [p for p in paths if not any(fnmatch(p, g) for g in ignore)]
    out: List[DiffEntry] = []
    for path in paths:
        if path not in base:
            out.append(DiffEntry(path, "added", current=cur[path]))
            continue
        if path not in cur:
            out.append(DiffEntry(path, "removed", baseline=base[path]))
            continue
        b, c = base[path], cur[path]
        if _is_number(b) and _is_number(c):
            if b == c:
                out.append(DiffEntry(path, "ok", b, c, 0.0))
                continue
            denom = abs(b) if b != 0 else 1.0
            delta = (c - b) / denom
            if abs(delta) <= tolerance:
                verdict = "ok"
            else:
                d = direction_of(path)
                if d == 0:
                    verdict = "changed"
                elif (delta > 0) == (d > 0):
                    verdict = "improved"
                else:
                    verdict = "regressed"
            out.append(DiffEntry(path, verdict, b, c, 100.0 * delta))
        elif b != c:
            out.append(DiffEntry(path, "changed", b, c))
        else:
            out.append(DiffEntry(path, "ok", b, c))
    return out


def has_regression(entries: Sequence[DiffEntry]) -> bool:
    return any(e.verdict == "regressed" for e in entries)


def format_diff(
    entries: Sequence[DiffEntry], show_ok: bool = False
) -> str:
    """Render the diff, one line per non-ok entry (all with show_ok)."""
    counts: Dict[str, int] = {}
    lines: List[str] = []
    for e in entries:
        counts[e.verdict] = counts.get(e.verdict, 0) + 1
        if e.verdict == "ok" and not show_ok:
            continue
        if e.verdict == "added":
            lines.append(f"  added     {e.path} = {e.current!r}")
        elif e.verdict == "removed":
            lines.append(f"  removed   {e.path} (was {e.baseline!r})")
        elif e.delta_pct is not None:
            lines.append(
                f"  {e.verdict:<9} {e.path}: {e.baseline!r} -> {e.current!r} "
                f"({e.delta_pct:+.1f}%)"
            )
        else:
            lines.append(
                f"  {e.verdict:<9} {e.path}: {e.baseline!r} -> {e.current!r}"
            )
    summary = ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
    header = f"bench-diff: {len(entries)} metrics compared ({summary or 'none'})"
    return "\n".join([header] + lines)


def diff_json(entries: Sequence[DiffEntry]) -> List[Dict[str, Any]]:
    """The diff as JSON-ready dicts (for --json output)."""
    return [
        {
            "path": e.path,
            "verdict": e.verdict,
            "baseline": e.baseline,
            "current": e.current,
            "delta_pct": e.delta_pct,
        }
        for e in entries
    ]
