"""A thin NFSv4 flavor.

The paper evaluates nfs-v4 alongside nfs-v3 and finds "no performance
advantage ... in the version of NFS-V4 used in the experiments" (§6.2.2)
— v4's potential edge, delegation, "is not yet widely supported".

We model exactly that situation: the v4 program serves the same
operations over the same VFS, with a small extra per-operation cost for
COMPOUND assembly/decomposition and slightly larger messages, and **no
delegation**.  Implementing the full COMPOUND grammar would change no
measured behaviour (every benchmark op maps to one compound), so each v3
procedure stands in for its single-op compound; DESIGN.md records the
substitution.
"""

from __future__ import annotations

from typing import Optional

from repro.nfs.protocol import NFS_PROGRAM
from repro.nfs.server import NfsServerProgram
from repro.sim.core import Simulator
from repro.vfs.disk import DiskModel
from repro.vfs.fs import VirtualFS

NFS_V4 = 4


class NfsV4ServerProgram(NfsServerProgram):
    """NFSv4 (modeled): v3 semantics + COMPOUND processing overhead."""

    prog = NFS_PROGRAM
    vers = NFS_V4

    #: default per-op COMPOUND assembly/parsing cost (seconds); the
    #: testbed passes its calibrated value.
    DEFAULT_COMPOUND_OVERHEAD = 3.0e-5

    def __init__(
        self,
        sim: Simulator,
        fs: VirtualFS,
        disk: Optional[DiskModel] = None,
        compound_overhead: float = DEFAULT_COMPOUND_OVERHEAD,
    ):
        super().__init__(sim, fs, disk)
        self.compound_overhead = compound_overhead

    def handle(self, proc, args, call, ctx):
        # COMPOUND wrapping: PUTFH + <op> + GETATTR parsing/assembly.
        if ctx.server.cpu is not None:
            yield from ctx.server.cpu.consume(self.compound_overhead, "kernel-nfs")
        result = yield from super().handle(proc, args, call, ctx)
        return result
