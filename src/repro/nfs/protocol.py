"""NFSv3 wire types and per-procedure codecs (RFC 1813).

Both endpoints and the SGFS proxies share these codecs.  The proxies
decode just enough of a message to authorize and rewrite it (procedure
number, directory handles, credentials) — the ability to do that on real
encoded messages is the essence of NFS virtualization.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.vfs.fs import Ftype, Status
from repro.xdr import Packer, Unpacker, XdrError

NFS_PROGRAM = 100003
NFS_V3 = 3

FHSIZE3 = 64


class Proc(enum.IntEnum):
    NULL = 0
    GETATTR = 1
    SETATTR = 2
    LOOKUP = 3
    ACCESS = 4
    READLINK = 5
    READ = 6
    WRITE = 7
    CREATE = 8
    MKDIR = 9
    SYMLINK = 10
    MKNOD = 11
    REMOVE = 12
    RMDIR = 13
    RENAME = 14
    LINK = 15
    READDIR = 16
    READDIRPLUS = 17
    FSSTAT = 18
    FSINFO = 19
    PATHCONF = 20
    COMMIT = 21


#: nfsstat3 is the VFS status enum verbatim.
NfsStatus = Status

#: Procedures whose effects are not idempotent: a blind retransmission
#: that re-executes returns spurious NOENT/EXIST or double-applies the
#: mutation, so servers must answer duplicates from a reply cache
#: (repro.rpc.drc).  WRITE/COMMIT are idempotent by offset; SETATTR is
#: included because size/time updates can be guarded (ctime check).
NON_IDEMPOTENT_PROCS = frozenset(
    {
        Proc.SETATTR,
        Proc.CREATE,
        Proc.MKDIR,
        Proc.SYMLINK,
        Proc.MKNOD,
        Proc.REMOVE,
        Proc.RMDIR,
        Proc.RENAME,
        Proc.LINK,
    }
)

# ACCESS bits (RFC 1813 §3.3.4)
ACCESS_READ = 0x0001
ACCESS_LOOKUP = 0x0002
ACCESS_MODIFY = 0x0004
ACCESS_EXTEND = 0x0008
ACCESS_DELETE = 0x0010
ACCESS_EXECUTE = 0x0020
ACCESS_ALL = 0x003F

# WRITE stable_how
UNSTABLE = 0
DATA_SYNC = 1
FILE_SYNC = 2

# CREATE mode
UNCHECKED = 0
GUARDED = 1
EXCLUSIVE = 2


@dataclass(frozen=True)
class FileHandle:
    """Opaque nfs_fh3: (fsid, fileid, generation) in 16 bytes."""

    fsid: int
    fileid: int
    generation: int

    _STRUCT = struct.Struct(">IQI")

    def to_bytes(self) -> bytes:
        return self._STRUCT.pack(self.fsid, self.fileid, self.generation)

    @classmethod
    def from_bytes(cls, data: bytes) -> "FileHandle":
        if len(data) != cls._STRUCT.size:
            raise XdrError(f"bad filehandle length {len(data)}")
        return cls(*cls._STRUCT.unpack(data))

    def pack(self, p: Packer) -> None:
        p.pack_opaque(self.to_bytes())

    @classmethod
    def unpack(cls, u: Unpacker) -> "FileHandle":
        return cls.from_bytes(u.unpack_opaque(max_len=FHSIZE3))


def _pack_time(p: Packer, t: float) -> None:
    sec = int(t)
    nsec = int(round((t - sec) * 1e9))
    if nsec >= 1_000_000_000:
        sec += 1
        nsec -= 1_000_000_000
    p.pack_uint(sec & 0xFFFFFFFF)
    p.pack_uint(nsec)


def _unpack_time(u: Unpacker) -> float:
    sec = u.unpack_uint()
    nsec = u.unpack_uint()
    return sec + nsec / 1e9


@dataclass
class Fattr3:
    """File attributes as returned by GETATTR and post-op attrs."""

    ftype: int
    mode: int
    nlink: int
    uid: int
    gid: int
    size: int
    used: int
    fsid: int
    fileid: int
    atime: float
    mtime: float
    ctime: float

    def pack(self, p: Packer) -> None:
        p.pack_enum(self.ftype)
        p.pack_uint(self.mode)
        p.pack_uint(self.nlink)
        p.pack_uint(self.uid)
        p.pack_uint(self.gid)
        p.pack_uhyper(self.size)
        p.pack_uhyper(self.used)
        p.pack_uint(0)  # rdev major
        p.pack_uint(0)  # rdev minor
        p.pack_uhyper(self.fsid)
        p.pack_uhyper(self.fileid)
        _pack_time(p, self.atime)
        _pack_time(p, self.mtime)
        _pack_time(p, self.ctime)

    @classmethod
    def unpack(cls, u: Unpacker) -> "Fattr3":
        ftype = u.unpack_enum()
        mode = u.unpack_uint()
        nlink = u.unpack_uint()
        uid = u.unpack_uint()
        gid = u.unpack_uint()
        size = u.unpack_uhyper()
        used = u.unpack_uhyper()
        u.unpack_uint()
        u.unpack_uint()
        fsid = u.unpack_uhyper()
        fileid = u.unpack_uhyper()
        atime = _unpack_time(u)
        mtime = _unpack_time(u)
        ctime = _unpack_time(u)
        return cls(ftype, mode, nlink, uid, gid, size, used, fsid, fileid, atime, mtime, ctime)

    @property
    def is_dir(self) -> bool:
        return self.ftype == Ftype.DIR

    @property
    def is_reg(self) -> bool:
        return self.ftype == Ftype.REG


@dataclass
class Sattr3:
    """Settable attributes (each field optional)."""

    mode: Optional[int] = None
    uid: Optional[int] = None
    gid: Optional[int] = None
    size: Optional[int] = None
    atime: Optional[float] = None
    mtime: Optional[float] = None

    def pack(self, p: Packer) -> None:
        p.pack_optional(self.mode, p.pack_uint)
        p.pack_optional(self.uid, p.pack_uint)
        p.pack_optional(self.gid, p.pack_uint)
        p.pack_optional(self.size, p.pack_uhyper)
        # set_atime/set_mtime: 0 = don't change, 2 = set to client time
        if self.atime is None:
            p.pack_enum(0)
        else:
            p.pack_enum(2)
            _pack_time(p, self.atime)
        if self.mtime is None:
            p.pack_enum(0)
        else:
            p.pack_enum(2)
            _pack_time(p, self.mtime)

    @classmethod
    def unpack(cls, u: Unpacker) -> "Sattr3":
        mode = u.unpack_optional(u.unpack_uint)
        uid = u.unpack_optional(u.unpack_uint)
        gid = u.unpack_optional(u.unpack_uint)
        size = u.unpack_optional(u.unpack_uhyper)
        atime = _unpack_time(u) if u.unpack_enum() == 2 else None
        mtime = _unpack_time(u) if u.unpack_enum() == 2 else None
        return cls(mode, uid, gid, size, atime, mtime)


def pack_post_op_attr(p: Packer, attr: Optional[Fattr3]) -> None:
    p.pack_optional(attr, lambda a: a.pack(p))


def unpack_post_op_attr(u: Unpacker) -> Optional[Fattr3]:
    return u.unpack_optional(lambda: Fattr3.unpack(u))


def pack_wcc_data(p: Packer, after: Optional[Fattr3]) -> None:
    """wcc_data with empty pre-op attrs (we never supply them)."""
    p.pack_bool(False)  # pre_op_attr absent
    pack_post_op_attr(p, after)


def unpack_wcc_data(u: Unpacker) -> Optional[Fattr3]:
    if u.unpack_bool():  # pre_op_attr present: size, mtime, ctime
        u.unpack_uhyper()
        _unpack_time(u)
        _unpack_time(u)
    return unpack_post_op_attr(u)


@dataclass
class DirEntry:
    fileid: int
    name: str
    cookie: int
    attr: Optional[Fattr3] = None
    handle: Optional[FileHandle] = None


# ---------------------------------------------------------------------------
# Argument/result codecs.  Names follow <PROC>_args / <PROC>_res.
# Results decode into (status, payload...) tuples.
# ---------------------------------------------------------------------------


def pack_diropargs(p: Packer, dir_fh: FileHandle, name: str) -> None:
    dir_fh.pack(p)
    p.pack_string(name)


def unpack_diropargs(u: Unpacker) -> Tuple[FileHandle, str]:
    return FileHandle.unpack(u), u.unpack_string(max_len=255)


def unpack_diropargs_prefix(data: bytes) -> Tuple[FileHandle, str]:
    """The (dir handle, name) prefix shared by CREATE/MKDIR/SYMLINK args.

    Proxies use this to learn names without decoding the full argument
    structure of every create-family procedure.
    """
    u = Unpacker(data)
    return unpack_diropargs(u)


# GETATTR ------------------------------------------------------------------

def pack_getattr_args(fh: FileHandle) -> bytes:
    p = Packer()
    fh.pack(p)
    return p.get_bytes()


def unpack_getattr_args(data: bytes) -> FileHandle:
    u = Unpacker(data)
    fh = FileHandle.unpack(u)
    u.assert_done()
    return fh


def pack_getattr_res(status: int, attr: Optional[Fattr3]) -> bytes:
    p = Packer()
    p.pack_enum(status)
    if status == NfsStatus.OK:
        assert attr is not None
        attr.pack(p)
    return p.get_bytes()


def unpack_getattr_res(data: bytes) -> Tuple[int, Optional[Fattr3]]:
    u = Unpacker(data)
    status = u.unpack_enum()
    attr = Fattr3.unpack(u) if status == NfsStatus.OK else None
    return status, attr


# SETATTR --------------------------------------------------------------------

def pack_setattr_args(fh: FileHandle, sattr: Sattr3) -> bytes:
    p = Packer()
    fh.pack(p)
    sattr.pack(p)
    p.pack_bool(False)  # guard: no ctime check
    return p.get_bytes()


def unpack_setattr_args(data: bytes) -> Tuple[FileHandle, Sattr3]:
    u = Unpacker(data)
    fh = FileHandle.unpack(u)
    sattr = Sattr3.unpack(u)
    if u.unpack_bool():
        _unpack_time(u)
    u.assert_done()
    return fh, sattr


def pack_setattr_res(status: int, after: Optional[Fattr3]) -> bytes:
    p = Packer()
    p.pack_enum(status)
    pack_wcc_data(p, after)
    return p.get_bytes()


def unpack_setattr_res(data: bytes) -> Tuple[int, Optional[Fattr3]]:
    u = Unpacker(data)
    status = u.unpack_enum()
    return status, unpack_wcc_data(u)


# LOOKUP --------------------------------------------------------------------

def pack_lookup_args(dir_fh: FileHandle, name: str) -> bytes:
    p = Packer()
    pack_diropargs(p, dir_fh, name)
    return p.get_bytes()


def unpack_lookup_args(data: bytes) -> Tuple[FileHandle, str]:
    u = Unpacker(data)
    out = unpack_diropargs(u)
    u.assert_done()
    return out


def pack_lookup_res(
    status: int, fh: Optional[FileHandle], attr: Optional[Fattr3],
    dir_attr: Optional[Fattr3],
) -> bytes:
    p = Packer()
    p.pack_enum(status)
    if status == NfsStatus.OK:
        assert fh is not None
        fh.pack(p)
        pack_post_op_attr(p, attr)
        pack_post_op_attr(p, dir_attr)
    else:
        pack_post_op_attr(p, dir_attr)
    return p.get_bytes()


def unpack_lookup_res(
    data: bytes,
) -> Tuple[int, Optional[FileHandle], Optional[Fattr3], Optional[Fattr3]]:
    u = Unpacker(data)
    status = u.unpack_enum()
    if status == NfsStatus.OK:
        fh = FileHandle.unpack(u)
        attr = unpack_post_op_attr(u)
        dir_attr = unpack_post_op_attr(u)
        return status, fh, attr, dir_attr
    return status, None, None, unpack_post_op_attr(u)


# ACCESS --------------------------------------------------------------------

def pack_access_args(fh: FileHandle, access: int) -> bytes:
    p = Packer()
    fh.pack(p)
    p.pack_uint(access)
    return p.get_bytes()


def unpack_access_args(data: bytes) -> Tuple[FileHandle, int]:
    u = Unpacker(data)
    fh = FileHandle.unpack(u)
    access = u.unpack_uint()
    u.assert_done()
    return fh, access


def pack_access_res(status: int, attr: Optional[Fattr3], access: int) -> bytes:
    p = Packer()
    p.pack_enum(status)
    pack_post_op_attr(p, attr)
    if status == NfsStatus.OK:
        p.pack_uint(access)
    return p.get_bytes()


def unpack_access_res(data: bytes) -> Tuple[int, Optional[Fattr3], int]:
    u = Unpacker(data)
    status = u.unpack_enum()
    attr = unpack_post_op_attr(u)
    access = u.unpack_uint() if status == NfsStatus.OK else 0
    return status, attr, access


# READLINK ------------------------------------------------------------------

def pack_readlink_args(fh: FileHandle) -> bytes:
    return pack_getattr_args(fh)


def unpack_readlink_args(data: bytes) -> FileHandle:
    return unpack_getattr_args(data)


def pack_readlink_res(status: int, attr: Optional[Fattr3], target: str) -> bytes:
    p = Packer()
    p.pack_enum(status)
    pack_post_op_attr(p, attr)
    if status == NfsStatus.OK:
        p.pack_string(target)
    return p.get_bytes()


def unpack_readlink_res(data: bytes) -> Tuple[int, Optional[Fattr3], str]:
    u = Unpacker(data)
    status = u.unpack_enum()
    attr = unpack_post_op_attr(u)
    target = u.unpack_string() if status == NfsStatus.OK else ""
    return status, attr, target


# READ ----------------------------------------------------------------------

def pack_read_args(fh: FileHandle, offset: int, count: int) -> bytes:
    p = Packer()
    fh.pack(p)
    p.pack_uhyper(offset)
    p.pack_uint(count)
    return p.get_bytes()


def unpack_read_args(data: bytes) -> Tuple[FileHandle, int, int]:
    u = Unpacker(data)
    fh = FileHandle.unpack(u)
    offset = u.unpack_uhyper()
    count = u.unpack_uint()
    u.assert_done()
    return fh, offset, count


def pack_read_res(
    status: int, attr: Optional[Fattr3], data: bytes = b"", eof: bool = False
) -> bytes:
    p = Packer()
    p.pack_enum(status)
    pack_post_op_attr(p, attr)
    if status == NfsStatus.OK:
        p.pack_uint(len(data))
        p.pack_bool(eof)
        p.pack_opaque(data)
    return p.get_bytes()


def unpack_read_res(data: bytes) -> Tuple[int, Optional[Fattr3], bytes, bool]:
    u = Unpacker(data)
    status = u.unpack_enum()
    attr = unpack_post_op_attr(u)
    if status != NfsStatus.OK:
        return status, attr, b"", False
    count = u.unpack_uint()
    eof = u.unpack_bool()
    payload = u.unpack_opaque()
    if len(payload) != count:
        raise XdrError("READ reply count mismatch")
    return status, attr, payload, eof


# WRITE ---------------------------------------------------------------------

def pack_write_args(
    fh: FileHandle, offset: int, data: bytes, stable: int = FILE_SYNC
) -> bytes:
    p = Packer()
    fh.pack(p)
    p.pack_uhyper(offset)
    p.pack_uint(len(data))
    p.pack_enum(stable)
    p.pack_opaque(data)
    return p.get_bytes()


def unpack_write_args(data: bytes) -> Tuple[FileHandle, int, int, bytes]:
    u = Unpacker(data)
    fh = FileHandle.unpack(u)
    offset = u.unpack_uhyper()
    count = u.unpack_uint()
    stable = u.unpack_enum()
    payload = u.unpack_opaque()
    if len(payload) != count:
        raise XdrError("WRITE args count mismatch")
    u.assert_done()
    return fh, offset, stable, payload


def pack_write_res(
    status: int, after: Optional[Fattr3], count: int = 0,
    committed: int = FILE_SYNC, verf: bytes = b"\x00" * 8,
) -> bytes:
    p = Packer()
    p.pack_enum(status)
    pack_wcc_data(p, after)
    if status == NfsStatus.OK:
        p.pack_uint(count)
        p.pack_enum(committed)
        p.pack_fopaque(8, verf)
    return p.get_bytes()


def unpack_write_res(data: bytes) -> Tuple[int, Optional[Fattr3], int, int, bytes]:
    u = Unpacker(data)
    status = u.unpack_enum()
    after = unpack_wcc_data(u)
    if status != NfsStatus.OK:
        return status, after, 0, 0, b""
    count = u.unpack_uint()
    committed = u.unpack_enum()
    verf = u.unpack_fopaque(8)
    return status, after, count, committed, verf


# CREATE / MKDIR ----------------------------------------------------------------

def pack_create_args(
    dir_fh: FileHandle, name: str, sattr: Sattr3, mode: int = UNCHECKED
) -> bytes:
    p = Packer()
    pack_diropargs(p, dir_fh, name)
    p.pack_enum(mode)
    if mode in (UNCHECKED, GUARDED):
        sattr.pack(p)
    else:
        p.pack_fopaque(8, b"\x00" * 8)  # exclusive createverf
    return p.get_bytes()


def unpack_create_args(data: bytes) -> Tuple[FileHandle, str, int, Sattr3]:
    u = Unpacker(data)
    dir_fh, name = unpack_diropargs(u)
    mode = u.unpack_enum()
    if mode in (UNCHECKED, GUARDED):
        sattr = Sattr3.unpack(u)
    else:
        u.unpack_fopaque(8)
        sattr = Sattr3()
    u.assert_done()
    return dir_fh, name, mode, sattr


def pack_mkdir_args(dir_fh: FileHandle, name: str, sattr: Sattr3) -> bytes:
    p = Packer()
    pack_diropargs(p, dir_fh, name)
    sattr.pack(p)
    return p.get_bytes()


def unpack_mkdir_args(data: bytes) -> Tuple[FileHandle, str, Sattr3]:
    u = Unpacker(data)
    dir_fh, name = unpack_diropargs(u)
    sattr = Sattr3.unpack(u)
    u.assert_done()
    return dir_fh, name, sattr


def pack_create_res(
    status: int, fh: Optional[FileHandle], attr: Optional[Fattr3],
    dir_after: Optional[Fattr3],
) -> bytes:
    """Shared by CREATE, MKDIR, SYMLINK."""
    p = Packer()
    p.pack_enum(status)
    if status == NfsStatus.OK:
        p.pack_optional(fh, lambda f: f.pack(p))
        pack_post_op_attr(p, attr)
    pack_wcc_data(p, dir_after)
    return p.get_bytes()


def unpack_create_res(
    data: bytes,
) -> Tuple[int, Optional[FileHandle], Optional[Fattr3], Optional[Fattr3]]:
    u = Unpacker(data)
    status = u.unpack_enum()
    if status == NfsStatus.OK:
        fh = u.unpack_optional(lambda: FileHandle.unpack(u))
        attr = unpack_post_op_attr(u)
        dir_after = unpack_wcc_data(u)
        return status, fh, attr, dir_after
    return status, None, None, unpack_wcc_data(u)


# SYMLINK ----------------------------------------------------------------------

def pack_symlink_args(dir_fh: FileHandle, name: str, target: str, sattr: Sattr3) -> bytes:
    p = Packer()
    pack_diropargs(p, dir_fh, name)
    sattr.pack(p)
    p.pack_string(target)
    return p.get_bytes()


def unpack_symlink_args(data: bytes) -> Tuple[FileHandle, str, Sattr3, str]:
    u = Unpacker(data)
    dir_fh, name = unpack_diropargs(u)
    sattr = Sattr3.unpack(u)
    target = u.unpack_string()
    u.assert_done()
    return dir_fh, name, sattr, target


# REMOVE / RMDIR --------------------------------------------------------------

def pack_remove_args(dir_fh: FileHandle, name: str) -> bytes:
    return pack_lookup_args(dir_fh, name)


def unpack_remove_args(data: bytes) -> Tuple[FileHandle, str]:
    return unpack_lookup_args(data)


def pack_remove_res(status: int, dir_after: Optional[Fattr3]) -> bytes:
    p = Packer()
    p.pack_enum(status)
    pack_wcc_data(p, dir_after)
    return p.get_bytes()


def unpack_remove_res(data: bytes) -> Tuple[int, Optional[Fattr3]]:
    u = Unpacker(data)
    status = u.unpack_enum()
    return status, unpack_wcc_data(u)


# RENAME -----------------------------------------------------------------------

def pack_rename_args(
    from_dir: FileHandle, from_name: str, to_dir: FileHandle, to_name: str
) -> bytes:
    p = Packer()
    pack_diropargs(p, from_dir, from_name)
    pack_diropargs(p, to_dir, to_name)
    return p.get_bytes()


def unpack_rename_args(data: bytes) -> Tuple[FileHandle, str, FileHandle, str]:
    u = Unpacker(data)
    from_dir, from_name = unpack_diropargs(u)
    to_dir, to_name = unpack_diropargs(u)
    u.assert_done()
    return from_dir, from_name, to_dir, to_name


def pack_rename_res(
    status: int, from_after: Optional[Fattr3], to_after: Optional[Fattr3]
) -> bytes:
    p = Packer()
    p.pack_enum(status)
    pack_wcc_data(p, from_after)
    pack_wcc_data(p, to_after)
    return p.get_bytes()


def unpack_rename_res(data: bytes) -> Tuple[int, Optional[Fattr3], Optional[Fattr3]]:
    u = Unpacker(data)
    status = u.unpack_enum()
    return status, unpack_wcc_data(u), unpack_wcc_data(u)


# LINK -------------------------------------------------------------------------

def pack_link_args(fh: FileHandle, dir_fh: FileHandle, name: str) -> bytes:
    p = Packer()
    fh.pack(p)
    pack_diropargs(p, dir_fh, name)
    return p.get_bytes()


def unpack_link_args(data: bytes) -> Tuple[FileHandle, FileHandle, str]:
    u = Unpacker(data)
    fh = FileHandle.unpack(u)
    dir_fh, name = unpack_diropargs(u)
    u.assert_done()
    return fh, dir_fh, name


def pack_link_res(
    status: int, attr: Optional[Fattr3], dir_after: Optional[Fattr3]
) -> bytes:
    p = Packer()
    p.pack_enum(status)
    pack_post_op_attr(p, attr)
    pack_wcc_data(p, dir_after)
    return p.get_bytes()


def unpack_link_res(data: bytes) -> Tuple[int, Optional[Fattr3], Optional[Fattr3]]:
    u = Unpacker(data)
    status = u.unpack_enum()
    return status, unpack_post_op_attr(u), unpack_wcc_data(u)


# READDIR ----------------------------------------------------------------------

def pack_readdir_args(
    dir_fh: FileHandle, cookie: int = 0, cookieverf: bytes = b"\x00" * 8,
    count: int = 8192, plus: bool = False, maxcount: int = 32768,
) -> bytes:
    p = Packer()
    dir_fh.pack(p)
    p.pack_uhyper(cookie)
    p.pack_fopaque(8, cookieverf)
    if plus:
        p.pack_uint(count)
        p.pack_uint(maxcount)
    else:
        p.pack_uint(count)
    return p.get_bytes()


def unpack_readdir_args(data: bytes, plus: bool = False) -> Tuple[FileHandle, int, bytes, int]:
    u = Unpacker(data)
    fh = FileHandle.unpack(u)
    cookie = u.unpack_uhyper()
    verf = u.unpack_fopaque(8)
    count = u.unpack_uint()
    if plus:
        u.unpack_uint()
    u.assert_done()
    return fh, cookie, verf, count


def pack_readdir_res(
    status: int, dir_attr: Optional[Fattr3], entries: List[DirEntry],
    eof: bool, plus: bool = False, cookieverf: bytes = b"\x00" * 8,
) -> bytes:
    p = Packer()
    p.pack_enum(status)
    pack_post_op_attr(p, dir_attr)
    if status != NfsStatus.OK:
        return p.get_bytes()
    p.pack_fopaque(8, cookieverf)

    def pack_entry(e: DirEntry) -> None:
        p.pack_uhyper(e.fileid)
        p.pack_string(e.name)
        p.pack_uhyper(e.cookie)
        if plus:
            pack_post_op_attr(p, e.attr)
            p.pack_optional(e.handle, lambda f: f.pack(p))

    p.pack_list(entries, pack_entry)
    p.pack_bool(eof)
    return p.get_bytes()


def unpack_readdir_res(
    data: bytes, plus: bool = False
) -> Tuple[int, Optional[Fattr3], List[DirEntry], bool]:
    u = Unpacker(data)
    status = u.unpack_enum()
    dir_attr = unpack_post_op_attr(u)
    if status != NfsStatus.OK:
        return status, dir_attr, [], True
    u.unpack_fopaque(8)

    def unpack_entry() -> DirEntry:
        fileid = u.unpack_uhyper()
        name = u.unpack_string(max_len=255)
        cookie = u.unpack_uhyper()
        attr = None
        handle = None
        if plus:
            attr = unpack_post_op_attr(u)
            handle = u.unpack_optional(lambda: FileHandle.unpack(u))
        return DirEntry(fileid, name, cookie, attr, handle)

    entries = u.unpack_list(unpack_entry, max_len=100_000)
    eof = u.unpack_bool()
    return status, dir_attr, entries, eof


# FSSTAT / FSINFO / PATHCONF / COMMIT --------------------------------------------

def pack_fsstat_res(
    status: int, attr: Optional[Fattr3], tbytes: int, fbytes: int, files: int
) -> bytes:
    p = Packer()
    p.pack_enum(status)
    pack_post_op_attr(p, attr)
    if status == NfsStatus.OK:
        p.pack_uhyper(tbytes)
        p.pack_uhyper(fbytes)
        p.pack_uhyper(fbytes)  # abytes == fbytes (no reservation)
        p.pack_uhyper(files)
        p.pack_uhyper(files)
        p.pack_uhyper(files)
        p.pack_uint(0)  # invarsec
    return p.get_bytes()


def unpack_fsstat_res(data: bytes) -> Tuple[int, int, int, int]:
    u = Unpacker(data)
    status = u.unpack_enum()
    unpack_post_op_attr(u)
    if status != NfsStatus.OK:
        return status, 0, 0, 0
    tbytes = u.unpack_uhyper()
    fbytes = u.unpack_uhyper()
    u.unpack_uhyper()
    files = u.unpack_uhyper()
    return status, tbytes, fbytes, files


def pack_fsinfo_res(status: int, attr: Optional[Fattr3], rtmax: int, wtmax: int) -> bytes:
    p = Packer()
    p.pack_enum(status)
    pack_post_op_attr(p, attr)
    if status == NfsStatus.OK:
        p.pack_uint(rtmax)
        p.pack_uint(rtmax)
        p.pack_uint(4096)
        p.pack_uint(wtmax)
        p.pack_uint(wtmax)
        p.pack_uint(4096)
        p.pack_uint(rtmax)  # dtpref
        p.pack_uhyper(2**63 - 1)  # maxfilesize
        _pack_time(p, 0.001)  # time_delta
        p.pack_uint(0x1B)  # properties: LINK|SYMLINK|HOMOGENEOUS|CANSETTIME
    return p.get_bytes()


def unpack_fsinfo_res(data: bytes) -> Tuple[int, int, int]:
    u = Unpacker(data)
    status = u.unpack_enum()
    unpack_post_op_attr(u)
    if status != NfsStatus.OK:
        return status, 0, 0
    rtmax = u.unpack_uint()
    u.unpack_uint()
    u.unpack_uint()
    wtmax = u.unpack_uint()
    return status, rtmax, wtmax


def pack_commit_args(fh: FileHandle, offset: int = 0, count: int = 0) -> bytes:
    p = Packer()
    fh.pack(p)
    p.pack_uhyper(offset)
    p.pack_uint(count)
    return p.get_bytes()


def unpack_commit_args(data: bytes) -> Tuple[FileHandle, int, int]:
    u = Unpacker(data)
    fh = FileHandle.unpack(u)
    offset = u.unpack_uhyper()
    count = u.unpack_uint()
    u.assert_done()
    return fh, offset, count


def pack_commit_res(status: int, after: Optional[Fattr3], verf: bytes = b"\x00" * 8) -> bytes:
    p = Packer()
    p.pack_enum(status)
    pack_wcc_data(p, after)
    if status == NfsStatus.OK:
        p.pack_fopaque(8, verf)
    return p.get_bytes()


def unpack_commit_res(data: bytes) -> Tuple[int, Optional[Fattr3], bytes]:
    u = Unpacker(data)
    status = u.unpack_enum()
    after = unpack_wcc_data(u)
    verf = u.unpack_fopaque(8) if status == NfsStatus.OK else b""
    return status, after, verf
