"""Client-side memory caches: attributes, names, access bits, pages.

These model the Linux kernel NFS client's caching machinery the paper's
baselines rely on:

- an attribute cache with adaptive timeouts (acregmin..acregmax style:
  the timeout doubles while the file is observed unchanged),
- a dentry (name lookup) cache,
- an ACCESS-result cache,
- a bounded LRU page cache holding clean and dirty file blocks; the
  paper's IOzone setup is sized so the *sequential* read of a file
  twice the cache size defeats LRU exactly as it does in the kernel.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.nfs.protocol import Fattr3, FileHandle


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting shared by every client-side cache.

    Replaces the three copies of the bare ``hits``/``misses`` int idiom
    these caches used to carry.  Registers with a :mod:`repro.obs`
    registry as a pull collector, so enabling telemetry costs the caches
    nothing on their hot paths — the registry reads the ints at snapshot
    time.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def hit(self) -> None:
        self.hits += 1

    def miss(self) -> None:
        self.misses += 1

    def evict(self) -> None:
        self.evictions += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        n = self.lookups
        return self.hits / n if n else 0.0

    def export(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}

    def register(self, registry, component: str, name: str) -> None:
        """Surface this cache under ``component/name`` in snapshots."""
        registry.add_collector(component, lambda: {name: self.export()})


class _StatsMixin:
    """Back-compat attribute views over :class:`CacheStats`."""

    stats: CacheStats

    @property
    def hits(self) -> int:
        return self.stats.hits

    @property
    def misses(self) -> int:
        return self.stats.misses

    @property
    def evictions(self) -> int:
        return self.stats.evictions


@dataclass
class AttrEntry:
    attr: Fattr3
    fetched_at: float
    timeout: float


class AttrCache(_StatsMixin):
    """fileid -> attributes with kernel-style adaptive timeouts."""

    def __init__(
        self,
        clock,
        ac_reg_min: float = 3.0,
        ac_reg_max: float = 60.0,
        ac_dir_min: float = 30.0,
        ac_dir_max: float = 60.0,
    ):
        self.clock = clock
        self.ac_reg_min = ac_reg_min
        self.ac_reg_max = ac_reg_max
        self.ac_dir_min = ac_dir_min
        self.ac_dir_max = ac_dir_max
        self._entries: Dict[int, AttrEntry] = {}
        self.stats = CacheStats()

    def _bounds(self, attr: Fattr3) -> Tuple[float, float]:
        if attr.is_dir:
            return self.ac_dir_min, self.ac_dir_max
        return self.ac_reg_min, self.ac_reg_max

    def get(self, fileid: int) -> Optional[Fattr3]:
        e = self._entries.get(fileid)
        if e is None or self.clock() - e.fetched_at > e.timeout:
            self.stats.miss()
            return None
        self.stats.hit()
        return e.attr

    def put(self, attr: Fattr3) -> None:
        lo, hi = self._bounds(attr)
        old = self._entries.get(attr.fileid)
        if old is not None and old.attr.mtime == attr.mtime:
            timeout = min(old.timeout * 2, hi)  # stable file: back off
        else:
            timeout = lo
        self._entries[attr.fileid] = AttrEntry(attr, self.clock(), timeout)

    def peek(self, fileid: int) -> Optional[Fattr3]:
        """Attributes regardless of freshness (for change detection)."""
        e = self._entries.get(fileid)
        return e.attr if e else None

    def invalidate(self, fileid: int) -> None:
        self._entries.pop(fileid, None)

    def clear(self) -> None:
        self._entries.clear()


class NameCache(_StatsMixin):
    """(dir_fileid, name) -> (FileHandle, fileid); invalidated on mutation."""

    def __init__(self, capacity: int = 65536):
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, str], Tuple[FileHandle, int]]" = OrderedDict()
        self.stats = CacheStats()

    def get(self, dir_fileid: int, name: str) -> Optional[Tuple[FileHandle, int]]:
        key = (dir_fileid, name)
        hit = self._entries.get(key)
        if hit is None:
            self.stats.miss()
            return None
        self._entries.move_to_end(key)
        self.stats.hit()
        return hit

    def put(self, dir_fileid: int, name: str, fh: FileHandle, fileid: int) -> None:
        key = (dir_fileid, name)
        self._entries[key] = (fh, fileid)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evict()

    def invalidate(self, dir_fileid: int, name: str) -> None:
        self._entries.pop((dir_fileid, name), None)

    def invalidate_dir(self, dir_fileid: int) -> None:
        stale = [k for k in self._entries if k[0] == dir_fileid]
        for k in stale:
            del self._entries[k]

    def clear(self) -> None:
        self._entries.clear()


class AccessCache(_StatsMixin):
    """(fileid, uid) -> granted-bits, valid as long as the attrs are."""

    def __init__(self, clock, timeout: float = 30.0):
        self.clock = clock
        self.timeout = timeout
        self._entries: Dict[Tuple[int, int], Tuple[int, float]] = {}
        self.stats = CacheStats()

    def get(self, fileid: int, uid: int) -> Optional[int]:
        hit = self._entries.get((fileid, uid))
        if hit is None or self.clock() - hit[1] > self.timeout:
            self.stats.miss()
            return None
        self.stats.hit()
        return hit[0]

    def put(self, fileid: int, uid: int, bits: int) -> None:
        self._entries[(fileid, uid)] = (bits, self.clock())

    def invalidate(self, fileid: int) -> None:
        stale = [k for k in self._entries if k[0] == fileid]
        for k in stale:
            del self._entries[k]

    def clear(self) -> None:
        self._entries.clear()


@dataclass
class Page:
    data: bytes
    dirty: bool = False


class PageCache(_StatsMixin):
    """Bounded LRU of (fileid, block) -> Page.

    Eviction returns dirty victims to the caller (which must write them
    back); clean pages are simply dropped — exactly the split a kernel
    page cache makes.
    """

    def __init__(self, capacity_bytes: int, block_size: int):
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self._pages: "OrderedDict[Tuple[int, int], Page]" = OrderedDict()
        self._bytes = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def get(self, fileid: int, block: int) -> Optional[Page]:
        key = (fileid, block)
        page = self._pages.get(key)
        if page is None:
            self.stats.miss()
            return None
        self._pages.move_to_end(key)
        self.stats.hit()
        return page

    def peek(self, fileid: int, block: int) -> Optional[Page]:
        return self._pages.get((fileid, block))

    def put(self, fileid: int, block: int, page: Page) -> list[Tuple[int, int, Page]]:
        """Insert; returns a list of evicted *dirty* (fileid, block, page)."""
        key = (fileid, block)
        old = self._pages.pop(key, None)
        if old is not None:
            self._bytes -= len(old.data)
        self._pages[key] = page
        self._bytes += len(page.data)
        victims: list[Tuple[int, int, Page]] = []
        while self._bytes > self.capacity_bytes and len(self._pages) > 1:
            vkey, vpage = self._pages.popitem(last=False)
            if vkey == key:  # never evict what we just inserted
                self._pages[vkey] = vpage
                self._pages.move_to_end(vkey, last=False)
                break
            self._bytes -= len(vpage.data)
            self.stats.evict()
            if vpage.dirty:
                victims.append((vkey[0], vkey[1], vpage))
        return victims

    def dirty_pages(self, fileid: Optional[int] = None):
        for (fid, block), page in list(self._pages.items()):
            if page.dirty and (fileid is None or fid == fileid):
                yield fid, block, page

    def drop_file(self, fileid: int) -> None:
        stale = [k for k in self._pages if k[0] == fileid]
        for k in stale:
            self._bytes -= len(self._pages[k].data)
            del self._pages[k]

    def clear(self) -> None:
        self._pages.clear()
        self._bytes = 0
