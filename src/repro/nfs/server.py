"""NFSv3 server: an RPC program exporting a VirtualFS.

Semantics modeled on a kernel nfsd with ``sync`` exports (the paper's
server-side configuration): metadata-changing procedures and FILE_SYNC
writes pay the disk before replying; UNSTABLE writes land in the page
cache and are made durable by COMMIT.  Reads hit the page cache
(``preload`` marks the dataset resident, as the IOzone setup does).

Authentication here is plain AUTH_SYS — by design.  In an SGFS
deployment the kernel server only accepts calls from the local
server-side proxy, which has already authenticated the grid user and
rewritten the credentials (the export-to-localhost-only pattern of
Figure 1).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.nfs import protocol as pr
from repro.nfs.protocol import FileHandle, Fattr3, NfsStatus, Proc
from repro.rpc.auth import AUTH_SYS, AuthSys
from repro.rpc.messages import CallMessage
from repro.rpc.server import CallContext, RpcProgram
from repro.sim.core import Simulator
from repro.sim.sync import RwLock
from repro.vfs.disk import DiskModel
from repro.vfs.fs import Credentials, Ftype, Inode, Status, VfsError, VirtualFS
from repro.xdr import Packer, Unpacker, XdrError

#: Preferred/maximum transfer sizes (the paper uses 32 KB blocks).
RTMAX = 32768
WTMAX = 32768


class NfsServerProgram(RpcProgram):
    """The NFS program (100003, v3) over a VirtualFS + DiskModel."""

    prog = pr.NFS_PROGRAM
    vers = pr.NFS_V3
    non_idempotent = frozenset(int(p) for p in pr.NON_IDEMPOTENT_PROCS)

    def __init__(
        self,
        sim: Simulator,
        fs: VirtualFS,
        disk: Optional[DiskModel] = None,
        write_verf: bytes = b"reprosrv",
        locking: bool = False,
    ):
        """``locking=True`` turns on per-fileid reader/writer locking:
        reads take a shared hold, mutations an exclusive one, so
        concurrent fleet clients hitting the same inode serialize in
        deterministic FIFO order.  The default (``False``) preserves the
        single-client fast path — no locks are even allocated — and an
        *uncontended* acquisition costs zero virtual time either way
        (see :class:`repro.sim.sync.RwLock`), so single-client runs are
        bit-identical with locking on or off."""
        self.sim = sim
        self.fs = fs
        self.disk = disk
        self.write_verf = write_verf
        self.locking = locking
        self.ops = {p: 0 for p in Proc}
        #: fileids with uncommitted (UNSTABLE) data awaiting COMMIT.
        self._dirty: dict[int, int] = {}
        #: fileids whose data is resident in the page cache.
        self._resident: set[int] = set()
        #: per-fileid reader/writer locks (allocated lazily, locking mode)
        self._locks: Dict[int, RwLock] = {}
        if locking:
            self._c_lock_waits = sim.obs.counter("nfs.server", "lock_waits")

    # -- helpers -----------------------------------------------------------

    def preload(self, fileid: int) -> None:
        """Mark a file's data memory-resident (IOzone §6.2.1 preloads)."""
        self._resident.add(fileid)

    def root_handle(self) -> FileHandle:
        return self._handle(self.fs.root)

    def _handle(self, node: Inode) -> FileHandle:
        return FileHandle(self.fs.fsid, node.fileid, node.generation)

    def _resolve(self, fh: FileHandle) -> Inode:
        if fh.fsid != self.fs.fsid:
            raise VfsError(Status.BADHANDLE, f"foreign fsid {fh.fsid}")
        node = self.fs.inode(fh.fileid)  # raises STALE if gone
        if node.generation != fh.generation:
            raise VfsError(Status.STALE, "generation mismatch")
        return node

    def _attr(self, node: Inode) -> Fattr3:
        return Fattr3(
            ftype=int(node.ftype),
            mode=node.mode,
            nlink=node.nlink,
            uid=node.uid,
            gid=node.gid,
            size=node.size,
            used=node.used_bytes(),
            fsid=self.fs.fsid,
            fileid=node.fileid,
            atime=node.atime,
            mtime=node.mtime,
            ctime=node.ctime,
        )

    @staticmethod
    def _cred(call: CallMessage) -> Credentials:
        if call.cred.flavor == AUTH_SYS:
            a = AuthSys.from_opaque(call.cred)
            return Credentials(a.uid, a.gid, tuple(a.gids))
        return Credentials(65534, 65534)  # nobody

    def _acquire(self, fileid: int, write: bool):
        """Take the per-fileid lock (shared or exclusive); returns the
        lock held, or ``None`` when locking is off.  Uncontended
        acquisitions use the synchronous fast path (zero virtual time);
        contended ones queue FIFO and report their wait through
        ``nfs.server/lock_waits`` and the ``lock_wait`` histogram."""
        if not self.locking:
            return None
        lock = self._locks.get(fileid)
        if lock is None:
            lock = self._locks[fileid] = RwLock(self.sim, name=f"ino{fileid}")
        free = lock.try_acquire_write() if write else lock.try_acquire_read()
        if not free:
            t0 = self.sim.now
            if self.sim.obs.enabled:
                self._c_lock_waits.inc()
            yield lock.acquire_write() if write else lock.acquire_read()
            if self.sim.obs.enabled:
                self.sim.obs.histogram("nfs.server", "lock_wait").observe(
                    self.sim.now - t0
                )
        return lock

    @staticmethod
    def _release(lock: Optional[RwLock], write: bool) -> None:
        if lock is None:
            return
        if write:
            lock.release_write()
        else:
            lock.release_read()

    def _disk_write(self, nbytes: int, sync: bool):
        if self.disk is not None:
            yield from self.disk.write(nbytes, sync=sync)
        return
        yield  # pragma: no cover

    def _disk_read(self, fileid: int, nbytes: int):
        if self.disk is not None:
            yield from self.disk.read(nbytes, cached=fileid in self._resident)
            self._resident.add(fileid)  # first read faults it in
        return
        yield  # pragma: no cover

    # -- dispatch -----------------------------------------------------------

    def handle(self, proc: int, args: bytes, call: CallMessage, ctx: CallContext):
        try:
            proc = Proc(proc)
        except ValueError:
            from repro.rpc.server import ProcUnavailable

            raise ProcUnavailable(f"NFSv3 has no procedure {proc}")
        self.ops[proc] += 1
        cred = self._cred(call)
        method = getattr(self, f"_op_{proc.name.lower()}")
        try:
            result = yield from method(args, cred)
        except VfsError as exc:
            result = self._error_result(proc, exc.status)
        except XdrError:
            raise  # GARBAGE_ARGS at the RPC layer
        return result

    @staticmethod
    def _error_result(proc: Proc, status: Status) -> bytes:
        """Minimal well-formed error encodings per procedure family."""
        if proc in (Proc.GETATTR,):
            return pr.pack_getattr_res(status, None)
        if proc in (Proc.SETATTR,):
            return pr.pack_setattr_res(status, None)
        if proc in (Proc.LOOKUP,):
            return pr.pack_lookup_res(status, None, None, None)
        if proc in (Proc.ACCESS,):
            return pr.pack_access_res(status, None, 0)
        if proc in (Proc.READLINK,):
            return pr.pack_readlink_res(status, None, "")
        if proc in (Proc.READ,):
            return pr.pack_read_res(status, None)
        if proc in (Proc.WRITE,):
            return pr.pack_write_res(status, None)
        if proc in (Proc.CREATE, Proc.MKDIR, Proc.SYMLINK, Proc.MKNOD):
            return pr.pack_create_res(status, None, None, None)
        if proc in (Proc.REMOVE, Proc.RMDIR):
            return pr.pack_remove_res(status, None)
        if proc in (Proc.RENAME,):
            return pr.pack_rename_res(status, None, None)
        if proc in (Proc.LINK,):
            return pr.pack_link_res(status, None, None)
        if proc in (Proc.READDIR, Proc.READDIRPLUS):
            return pr.pack_readdir_res(status, None, [], True)
        if proc in (Proc.COMMIT,):
            return pr.pack_commit_res(status, None)
        p = Packer()
        p.pack_enum(status)
        return p.get_bytes()

    # -- procedures ------------------------------------------------------------

    def _op_null(self, args: bytes, cred: Credentials):
        return b""
        yield  # pragma: no cover

    def _op_getattr(self, args: bytes, cred: Credentials):
        fh = pr.unpack_getattr_args(args)
        node = self._resolve(fh)
        return pr.pack_getattr_res(NfsStatus.OK, self._attr(node))
        yield  # pragma: no cover

    def _op_setattr(self, args: bytes, cred: Credentials):
        fh, sattr = pr.unpack_setattr_args(args)
        node = self._resolve(fh)
        lk = yield from self._acquire(node.fileid, write=True)
        try:
            self.fs.setattr(
                node.fileid, cred,
                mode=sattr.mode, uid=sattr.uid, gid=sattr.gid,
                size=sattr.size, atime=sattr.atime, mtime=sattr.mtime,
            )
            yield from self._disk_write(256, sync=True)  # inode update
            return pr.pack_setattr_res(NfsStatus.OK, self._attr(node))
        finally:
            self._release(lk, write=True)

    def _op_lookup(self, args: bytes, cred: Credentials):
        dir_fh, name = pr.unpack_lookup_args(args)
        d = self._resolve(dir_fh)
        node = self.fs.lookup(d.fileid, name, cred)
        return pr.pack_lookup_res(
            NfsStatus.OK, self._handle(node), self._attr(node), self._attr(d)
        )
        yield  # pragma: no cover

    def _op_access(self, args: bytes, cred: Credentials):
        fh, want = pr.unpack_access_args(args)
        node = self._resolve(fh)
        granted = 0
        if self.fs.check_access(node, cred, 4):
            granted |= pr.ACCESS_READ
        if self.fs.check_access(node, cred, 2):
            granted |= pr.ACCESS_MODIFY | pr.ACCESS_EXTEND
            if node.is_dir:
                granted |= pr.ACCESS_DELETE
        if self.fs.check_access(node, cred, 1):
            granted |= pr.ACCESS_LOOKUP if node.is_dir else pr.ACCESS_EXECUTE
        return pr.pack_access_res(NfsStatus.OK, self._attr(node), granted & want)
        yield  # pragma: no cover

    def _op_readlink(self, args: bytes, cred: Credentials):
        fh = pr.unpack_readlink_args(args)
        node = self._resolve(fh)
        target = self.fs.readlink(node.fileid)
        return pr.pack_readlink_res(NfsStatus.OK, self._attr(node), target)
        yield  # pragma: no cover

    def _op_read(self, args: bytes, cred: Credentials):
        fh, offset, count = pr.unpack_read_args(args)
        node = self._resolve(fh)
        lk = yield from self._acquire(node.fileid, write=False)
        try:
            count = min(count, RTMAX)
            data, eof = self.fs.read(node.fileid, offset, count, cred)
            yield from self._disk_read(node.fileid, len(data))
            return pr.pack_read_res(NfsStatus.OK, self._attr(node), data, eof)
        finally:
            self._release(lk, write=False)

    def _op_write(self, args: bytes, cred: Credentials):
        fh, offset, stable, payload = pr.unpack_write_args(args)
        node = self._resolve(fh)
        lk = yield from self._acquire(node.fileid, write=True)
        try:
            if len(payload) > WTMAX:
                payload = payload[:WTMAX]
            count = self.fs.write(node.fileid, offset, payload, cred)
            self._resident.add(node.fileid)
            if stable == pr.UNSTABLE:
                self._dirty[node.fileid] = self._dirty.get(node.fileid, 0) + count
                committed = pr.UNSTABLE
            else:
                yield from self._disk_write(count, sync=(stable == pr.FILE_SYNC))
                committed = stable
            return pr.pack_write_res(
                NfsStatus.OK, self._attr(node), count, committed, self.write_verf
            )
        finally:
            self._release(lk, write=True)

    def _op_create(self, args: bytes, cred: Credentials):
        dir_fh, name, mode, sattr = pr.unpack_create_args(args)
        d = self._resolve(dir_fh)
        lk = yield from self._acquire(d.fileid, write=True)
        try:
            node = self.fs.create(
                d.fileid, name, cred,
                mode=sattr.mode if sattr.mode is not None else 0o644,
                exclusive=(mode in (pr.GUARDED, pr.EXCLUSIVE)),
            )
            if sattr.size is not None:
                self.fs.setattr(node.fileid, cred, size=sattr.size)
            yield from self._disk_write(512, sync=True)  # dirent + inode
            return pr.pack_create_res(
                NfsStatus.OK, self._handle(node), self._attr(node), self._attr(d)
            )
        finally:
            self._release(lk, write=True)

    def _op_mkdir(self, args: bytes, cred: Credentials):
        dir_fh, name, sattr = pr.unpack_mkdir_args(args)
        d = self._resolve(dir_fh)
        lk = yield from self._acquire(d.fileid, write=True)
        try:
            node = self.fs.mkdir(
                d.fileid, name, cred,
                mode=sattr.mode if sattr.mode is not None else 0o755,
            )
            yield from self._disk_write(512, sync=True)
            return pr.pack_create_res(
                NfsStatus.OK, self._handle(node), self._attr(node), self._attr(d)
            )
        finally:
            self._release(lk, write=True)

    def _op_symlink(self, args: bytes, cred: Credentials):
        dir_fh, name, sattr, target = pr.unpack_symlink_args(args)
        d = self._resolve(dir_fh)
        lk = yield from self._acquire(d.fileid, write=True)
        try:
            node = self.fs.symlink(d.fileid, name, target, cred)
            yield from self._disk_write(512, sync=True)
            return pr.pack_create_res(
                NfsStatus.OK, self._handle(node), self._attr(node), self._attr(d)
            )
        finally:
            self._release(lk, write=True)

    def _op_mknod(self, args: bytes, cred: Credentials):
        raise VfsError(Status.NOTSUPP, "MKNOD not supported")
        yield  # pragma: no cover

    def _op_remove(self, args: bytes, cred: Credentials):
        dir_fh, name = pr.unpack_remove_args(args)
        d = self._resolve(dir_fh)
        lk = yield from self._acquire(d.fileid, write=True)
        try:
            self.fs.remove(d.fileid, name, cred)
            yield from self._disk_write(512, sync=True)
            return pr.pack_remove_res(NfsStatus.OK, self._attr(d))
        finally:
            self._release(lk, write=True)

    def _op_rmdir(self, args: bytes, cred: Credentials):
        dir_fh, name = pr.unpack_remove_args(args)
        d = self._resolve(dir_fh)
        lk = yield from self._acquire(d.fileid, write=True)
        try:
            self.fs.rmdir(d.fileid, name, cred)
            yield from self._disk_write(512, sync=True)
            return pr.pack_remove_res(NfsStatus.OK, self._attr(d))
        finally:
            self._release(lk, write=True)

    def _op_rename(self, args: bytes, cred: Credentials):
        from_fh, from_name, to_fh, to_name = pr.unpack_rename_args(args)
        fd = self._resolve(from_fh)
        td = self._resolve(to_fh)
        # Both directories exclusively, in fileid order (deadlock-free).
        dirs = sorted({fd.fileid, td.fileid})
        lk1 = yield from self._acquire(dirs[0], write=True)
        lk2 = (yield from self._acquire(dirs[1], write=True)) if len(dirs) > 1 else None
        try:
            self.fs.rename(fd.fileid, from_name, td.fileid, to_name, cred)
            yield from self._disk_write(512, sync=True)
            return pr.pack_rename_res(NfsStatus.OK, self._attr(fd), self._attr(td))
        finally:
            self._release(lk2, write=True)
            self._release(lk1, write=True)

    def _op_link(self, args: bytes, cred: Credentials):
        fh, dir_fh, name = pr.unpack_link_args(args)
        node = self._resolve(fh)
        d = self._resolve(dir_fh)
        lk = yield from self._acquire(d.fileid, write=True)
        try:
            self.fs.link(node.fileid, d.fileid, name, cred)
            yield from self._disk_write(512, sync=True)
            return pr.pack_link_res(NfsStatus.OK, self._attr(node), self._attr(d))
        finally:
            self._release(lk, write=True)

    def _readdir_common(self, args: bytes, cred: Credentials, plus: bool):
        dir_fh, cookie, _verf, count = pr.unpack_readdir_args(args, plus=plus)
        d = self._resolve(dir_fh)
        lk = yield from self._acquire(d.fileid, write=False)
        try:
            listing = self.fs.readdir(d.fileid, cred)
            yield from self._disk_read(d.fileid, 32 * len(listing))
        finally:
            self._release(lk, write=False)
        entries = []
        budget = max(count, 512)
        used = 0
        i = int(cookie)
        while i < len(listing):
            name, fid = listing[i]
            entry_size = 24 + len(name) + (96 if plus else 0)
            if used + entry_size > budget and entries:
                break
            child = self.fs.inode(fid)
            entries.append(
                pr.DirEntry(
                    fileid=fid,
                    name=name,
                    cookie=i + 1,
                    attr=self._attr(child) if plus else None,
                    handle=self._handle(child) if plus else None,
                )
            )
            used += entry_size
            i += 1
        eof = i >= len(listing)
        return pr.pack_readdir_res(
            NfsStatus.OK, self._attr(d), entries, eof, plus=plus
        )

    def _op_readdir(self, args: bytes, cred: Credentials):
        return (yield from self._readdir_common(args, cred, plus=False))

    def _op_readdirplus(self, args: bytes, cred: Credentials):
        return (yield from self._readdir_common(args, cred, plus=True))

    def _op_fsstat(self, args: bytes, cred: Credentials):
        fh = pr.unpack_getattr_args(args)
        node = self._resolve(fh)
        used = self.fs.used_bytes()
        return pr.pack_fsstat_res(
            NfsStatus.OK, self._attr(node),
            self.fs.capacity_bytes, self.fs.capacity_bytes - used,
            1_000_000,
        )
        yield  # pragma: no cover

    def _op_fsinfo(self, args: bytes, cred: Credentials):
        fh = pr.unpack_getattr_args(args)
        node = self._resolve(fh)
        return pr.pack_fsinfo_res(NfsStatus.OK, self._attr(node), RTMAX, WTMAX)
        yield  # pragma: no cover

    def _op_pathconf(self, args: bytes, cred: Credentials):
        fh = pr.unpack_getattr_args(args)
        node = self._resolve(fh)
        p = Packer()
        p.pack_enum(NfsStatus.OK)
        pr.pack_post_op_attr(p, self._attr(node))
        p.pack_uint(32)  # linkmax
        p.pack_uint(255)  # name_max
        p.pack_bool(True)  # no_trunc
        p.pack_bool(False)  # chown_restricted
        p.pack_bool(False)  # case_insensitive
        p.pack_bool(True)  # case_preserving
        return p.get_bytes()
        yield  # pragma: no cover

    def _op_commit(self, args: bytes, cred: Credentials):
        fh, _offset, _count = pr.unpack_commit_args(args)
        node = self._resolve(fh)
        lk = yield from self._acquire(node.fileid, write=True)
        try:
            pending = self._dirty.pop(node.fileid, 0)
            if pending:
                yield from self._disk_write(pending, sync=False)
            return pr.pack_commit_res(NfsStatus.OK, self._attr(node), self.write_verf)
        finally:
            self._release(lk, write=True)
