"""NFSv3 client with kernel-like caching semantics.

Reproduces the behaviors of a 2007-era Linux kernel NFS client that the
paper's evaluation leans on:

- **attribute cache** with adaptive timeouts; data is revalidated when a
  file is reopened or its attributes time out (§6.1 "Kernel NFS
  implementations use only memory for caching and revalidate the cached
  data when the file is reopened or its attributes have timed out"),
- **page cache** bounded by the client's memory, LRU replacement — sized
  correctly, a sequential read of a file larger than the cache gets no
  reuse, which is the IOzone worst case,
- **read-ahead** on sequential access,
- **write-behind**: dirty pages accumulate and flush asynchronously as
  UNSTABLE writes, made durable with COMMIT at close (close-to-open
  consistency).

All public operations are process generators (``yield from``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.nfs import protocol as pr
from repro.nfs.cache import AccessCache, AttrCache, NameCache, Page, PageCache
from repro.nfs.protocol import Fattr3, FileHandle, NfsStatus, Proc, Sattr3
from repro.obs import NULL_SPAN
from repro.rpc.auth import AuthSys
from repro.rpc.client import RpcClient
from repro.rpc.errors import RpcTransportError
from repro.sim.core import Simulator
from repro.sim.process import all_of
from repro.sim.sync import Semaphore
from repro.vfs.fs import Ftype, Status


class NfsClientError(Exception):
    """An NFS operation returned a non-OK status."""

    def __init__(self, status: int, detail: str = ""):
        try:
            name = Status(status).name
        except ValueError:
            name = str(status)
        super().__init__(f"NFS error {name}{': ' + detail if detail else ''}")
        self.status = status


def _check(status: int, detail: str = "") -> None:
    if status != NfsStatus.OK:
        raise NfsClientError(status, detail)


@dataclass
class OpenFile:
    """An open file description."""

    fh: FileHandle
    fileid: int
    path: str
    size: int
    seq: int = field(default_factory=itertools.count(1).__next__)
    closed: bool = False
    #: last block read, for sequential-access detection; -1 makes the
    #: very first read at offset 0 count as sequential (kernel behavior)
    last_block: int = -1
    #: blocks UNSTABLE-written since the last COMMIT
    uncommitted: int = 0


class NfsClient:
    """The mountpoint object workloads drive."""

    def __init__(
        self,
        sim: Simulator,
        rpc: RpcClient,
        root_fh: FileHandle,
        cred: AuthSys,
        block_size: int = 32768,
        cache_bytes: int = 64 * 1024 * 1024,
        read_ahead_blocks: int = 2,
        write_behind: bool = True,
        max_async_io: int = 8,
        dirty_flush_threshold: Optional[int] = None,
        ac_reg_min: float = 3.0,
        ac_reg_max: float = 60.0,
        cache_hit_cost_per_byte: float = 6e-10,
        reconnect=None,
        retrans_max: int = 5,
        retrans_backoff: float = 1.1,
        retrans_base: float = 1.0,
        retrans_cap: float = 30.0,
        timeo: Optional[float] = None,
        timeo_retrans: int = 3,
    ):
        """``reconnect`` (optional) is a process generator returning a
        fresh RpcClient; when set, transport failures are retried after
        reconnecting — NFS *hard mount* semantics.  Without it, a dead
        connection fails the operation (soft mount).

        ``timeo`` (optional) is a reply timeout in virtual seconds: when
        set, an in-flight request is retransmitted with the same xid up
        to ``timeo_retrans`` times on a doubling timer before the
        transport is declared dead — the defence against silent packet
        loss, where the connection never visibly breaks."""
        self.sim = sim
        self.rpc = rpc
        self.reconnect = reconnect
        self.retrans_max = retrans_max
        self.retrans_backoff = retrans_backoff
        self.retrans_base = retrans_base
        self.retrans_cap = retrans_cap
        self.timeo = timeo
        self.timeo_retrans = timeo_retrans
        self.retransmissions = 0
        self.obs = sim.obs
        self.tracer = sim.tracer
        #: per-operation listeners, called as fn(proc_name, start, latency,
        #: args_bytes, result_bytes) after every successful RPC.  Living on
        #: the client (not the RpcClient) they survive reconnects, which
        #: replace ``self.rpc`` wholesale.  RpcTracer rides this hook.
        self.rpc_listeners: List = []
        self.root_fh = root_fh
        self.cred = cred
        self.block_size = block_size
        self.read_ahead_blocks = read_ahead_blocks
        self.write_behind = write_behind
        self.attrs = AttrCache(
            lambda: sim.now, ac_reg_min=ac_reg_min, ac_reg_max=ac_reg_max
        )
        self.names = NameCache()
        self.access_cache = AccessCache(lambda: sim.now)
        self.pages = PageCache(cache_bytes, block_size)
        self._io_slots = Semaphore(sim, max_async_io, name="biod")
        self._handles: Dict[int, FileHandle] = {1: root_fh}
        self.dirty_flush_threshold = (
            dirty_flush_threshold
            if dirty_flush_threshold is not None
            else max(cache_bytes // 4, block_size * 8)
        )
        self._dirty_bytes = 0
        self._flushers: List = []
        #: copy cost for page-cache hits (memcpy-class, ~1.6 GB/s)
        self.cache_hit_cost_per_byte = cache_hit_cost_per_byte
        #: (fileid, block) -> Event for fetches in flight (page lock)
        self._inflight: Dict[Tuple[int, int], object] = {}
        #: directory listing cache: dir fileid -> (mtime, entries)
        self._dir_cache: Dict[int, Tuple[float, List[pr.DirEntry]]] = {}
        if self.obs.enabled:
            self.attrs.stats.register(self.obs, "nfs.cache", "attr")
            self.names.stats.register(self.obs, "nfs.cache", "name")
            self.access_cache.stats.register(self.obs, "nfs.cache", "access")
            self.pages.stats.register(self.obs, "nfs.cache", "page")

    # ------------------------------------------------------------------
    # low-level call helper
    # ------------------------------------------------------------------

    def _call(self, proc: Proc, args: bytes):
        attempt = 0
        start = self.sim.now
        name = proc.name if isinstance(proc, Proc) else str(proc)
        # One xid for the whole operation, across retransmissions and
        # reconnects: the server's duplicate-request cache (repro.rpc.drc)
        # keys on it, so a retransmitted non-idempotent procedure
        # (REMOVE/RENAME/MKDIR/exclusive CREATE) replays the original
        # reply instead of re-executing.
        xid = RpcClient.next_xid()
        while True:
            try:
                res = yield from self.rpc.call(
                    int(proc),
                    args,
                    self.cred.to_opaque(),
                    xid=xid,
                    timeout=self.timeo,
                    retrans=self.timeo_retrans,
                )
                break
            except RpcTransportError as exc:
                if self.reconnect is None:
                    # Soft mount: surface a filesystem-level error naming
                    # the procedure, like errno=EIO from a kernel mount.
                    raise NfsClientError(
                        Status.IO, f"{name} failed on soft mount: {exc}"
                    ) from exc
                if attempt >= self.retrans_max:
                    raise
                attempt += 1
                self.retransmissions += 1
                if self.obs.enabled:
                    self.obs.counter("nfs.client", "retransmissions").inc()
                yield self.sim.timeout(
                    min(
                        self.retrans_cap,
                        self.retrans_base * self.retrans_backoff ** attempt,
                    )
                )
                try:
                    self.rpc = yield from self.reconnect()
                except Exception:
                    # Server still down (connection refused): the next
                    # call on the dead client fails fast and we retry
                    # within the same attempt budget.
                    continue
        if self.obs.enabled or self.rpc_listeners:
            latency = self.sim.now - start
            if self.obs.enabled:
                self.obs.histogram("nfs.client", "latency", proc=name).observe(latency)
            for listener in self.rpc_listeners:
                listener(name, start, latency, len(args), len(res))
        return res

    def _remember(self, fh: FileHandle, attr: Optional[Fattr3]) -> None:
        if attr is not None:
            self._note_change(attr)
            self.attrs.put(attr)
            self._handles[attr.fileid] = fh

    def _note_change(self, attr: Fattr3) -> None:
        """Close-to-open revalidation: drop stale cached data on change."""
        old = self.attrs.peek(attr.fileid)
        if old is not None and (old.mtime != attr.mtime or old.size != attr.size):
            self.pages.drop_file(attr.fileid)
            self._dir_cache.pop(attr.fileid, None)
            if attr.is_dir:
                self.names.invalidate_dir(attr.fileid)

    # ------------------------------------------------------------------
    # attributes & lookup
    # ------------------------------------------------------------------

    def getattr_fh(self, fh: FileHandle, force: bool = False):
        """Attributes for a handle, honoring the attribute cache."""
        if not force:
            cached = self.attrs.get(fh.fileid)
            if cached is not None:
                return cached
        res = yield from self._call(Proc.GETATTR, pr.pack_getattr_args(fh))
        status, attr = pr.unpack_getattr_res(res)
        _check(status, "GETATTR")
        assert attr is not None
        self._remember(fh, attr)
        return attr

    def lookup(self, dir_fh: FileHandle, name: str):
        """One component lookup; returns (fh, attr)."""
        hit = self.names.get(dir_fh.fileid, name)
        if hit is not None:
            fh, fileid = hit
            attr = self.attrs.get(fileid)
            if attr is not None:
                return fh, attr
        res = yield from self._call(Proc.LOOKUP, pr.pack_lookup_args(dir_fh, name))
        status, fh, attr, dir_attr = pr.unpack_lookup_res(res)
        if dir_attr is not None:
            self._remember(dir_fh, dir_attr)
        _check(status, f"LOOKUP {name}")
        assert fh is not None
        if attr is None:
            attr = yield from self.getattr_fh(fh, force=True)
        self._remember(fh, attr)
        self.names.put(dir_fh.fileid, name, fh, attr.fileid)
        return fh, attr

    @staticmethod
    def _components(path: str) -> List[str]:
        return [p for p in path.split("/") if p]

    def resolve(self, path: str):
        """Walk a path from the root; returns (fh, attr)."""
        fh = self.root_fh
        attr = yield from self.getattr_fh(fh)
        for name in self._components(path):
            if not attr.is_dir:
                raise NfsClientError(Status.NOTDIR, path)
            fh, attr = yield from self.lookup(fh, name)
        return fh, attr

    def resolve_parent(self, path: str):
        """Returns (dir_fh, dir_attr, leaf_name)."""
        comps = self._components(path)
        if not comps:
            raise NfsClientError(Status.INVAL, "path has no leaf")
        fh = self.root_fh
        attr = yield from self.getattr_fh(fh)
        for name in comps[:-1]:
            fh, attr = yield from self.lookup(fh, name)
            if not attr.is_dir:
                raise NfsClientError(Status.NOTDIR, path)
        return fh, attr, comps[-1]

    def stat(self, path: str):
        _fh, attr = yield from self.resolve(path)
        return attr

    def exists(self, path: str):
        try:
            yield from self.resolve(path)
            return True
        except NfsClientError as exc:
            if exc.status in (Status.NOENT, Status.NOTDIR):
                return False
            raise

    def access(self, path: str, want: int):
        """ACCESS with result caching (what makes SFS-style caching pay)."""
        fh, _attr = yield from self.resolve(path)
        cached = self.access_cache.get(fh.fileid, self.cred.uid)
        if cached is not None:
            return cached & want
        res = yield from self._call(Proc.ACCESS, pr.pack_access_args(fh, pr.ACCESS_ALL))
        status, attr, granted = pr.unpack_access_res(res)
        if attr is not None:
            self._remember(fh, attr)
        _check(status, "ACCESS")
        self.access_cache.put(fh.fileid, self.cred.uid, granted)
        return granted & want

    def setattr(self, path: str, sattr: Sattr3):
        fh, _attr = yield from self.resolve(path)
        res = yield from self._call(Proc.SETATTR, pr.pack_setattr_args(fh, sattr))
        status, after = pr.unpack_setattr_res(res)
        _check(status, "SETATTR")
        if sattr.size is not None:
            self.pages.drop_file(fh.fileid)
        self._remember(fh, after)
        return after

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------

    def mkdir(self, path: str, mode: int = 0o755):
        dir_fh, _da, name = yield from self.resolve_parent(path)
        res = yield from self._call(
            Proc.MKDIR, pr.pack_mkdir_args(dir_fh, name, Sattr3(mode=mode))
        )
        status, fh, attr, dir_after = pr.unpack_create_res(res)
        self._mutated_dir(dir_fh, dir_after)
        _check(status, f"MKDIR {path}")
        assert fh is not None
        self._remember(fh, attr)
        self.names.put(dir_fh.fileid, name, fh, attr.fileid if attr else 0)
        return fh

    def create(self, path: str, mode: int = 0o644, exclusive: bool = False):
        dir_fh, _da, name = yield from self.resolve_parent(path)
        res = yield from self._call(
            Proc.CREATE,
            pr.pack_create_args(
                dir_fh, name, Sattr3(mode=mode),
                mode=pr.GUARDED if exclusive else pr.UNCHECKED,
            ),
        )
        status, fh, attr, dir_after = pr.unpack_create_res(res)
        self._mutated_dir(dir_fh, dir_after)
        _check(status, f"CREATE {path}")
        assert fh is not None and attr is not None
        self._remember(fh, attr)
        self.names.put(dir_fh.fileid, name, fh, attr.fileid)
        return OpenFile(fh=fh, fileid=attr.fileid, path=path, size=attr.size)

    def symlink(self, path: str, target: str):
        dir_fh, _da, name = yield from self.resolve_parent(path)
        res = yield from self._call(
            Proc.SYMLINK, pr.pack_symlink_args(dir_fh, name, target, Sattr3())
        )
        status, fh, attr, dir_after = pr.unpack_create_res(res)
        self._mutated_dir(dir_fh, dir_after)
        _check(status, f"SYMLINK {path}")
        self._remember(fh, attr)
        return fh

    def readlink(self, path: str):
        fh, attr = yield from self.resolve(path)
        if attr.ftype != Ftype.LNK:
            raise NfsClientError(Status.INVAL, "not a symlink")
        res = yield from self._call(Proc.READLINK, pr.pack_readlink_args(fh))
        status, attr2, target = pr.unpack_readlink_res(res)
        if attr2 is not None:
            self._remember(fh, attr2)
        _check(status, "READLINK")
        return target

    def unlink(self, path: str):
        dir_fh, _da, name = yield from self.resolve_parent(path)
        hit = self.names.get(dir_fh.fileid, name)
        res = yield from self._call(Proc.REMOVE, pr.pack_remove_args(dir_fh, name))
        status, dir_after = pr.unpack_remove_res(res)
        self._mutated_dir(dir_fh, dir_after)
        self.names.invalidate(dir_fh.fileid, name)
        if hit is not None:
            self.pages.drop_file(hit[1])
            self.attrs.invalidate(hit[1])
        _check(status, f"REMOVE {path}")

    def rmdir(self, path: str):
        dir_fh, _da, name = yield from self.resolve_parent(path)
        res = yield from self._call(Proc.RMDIR, pr.pack_remove_args(dir_fh, name))
        status, dir_after = pr.unpack_remove_res(res)
        self._mutated_dir(dir_fh, dir_after)
        self.names.invalidate(dir_fh.fileid, name)
        _check(status, f"RMDIR {path}")

    def rename(self, from_path: str, to_path: str):
        from_fh, _fa, from_name = yield from self.resolve_parent(from_path)
        to_fh, _ta, to_name = yield from self.resolve_parent(to_path)
        res = yield from self._call(
            Proc.RENAME, pr.pack_rename_args(from_fh, from_name, to_fh, to_name)
        )
        status, from_after, to_after = pr.unpack_rename_res(res)
        self._mutated_dir(from_fh, from_after)
        self._mutated_dir(to_fh, to_after)
        self.names.invalidate(from_fh.fileid, from_name)
        self.names.invalidate(to_fh.fileid, to_name)
        _check(status, f"RENAME {from_path} -> {to_path}")

    def link(self, existing: str, new_path: str):
        fh, _attr = yield from self.resolve(existing)
        dir_fh, _da, name = yield from self.resolve_parent(new_path)
        res = yield from self._call(Proc.LINK, pr.pack_link_args(fh, dir_fh, name))
        status, attr, dir_after = pr.unpack_link_res(res)
        self._mutated_dir(dir_fh, dir_after)
        if attr is not None:
            self._remember(fh, attr)
        _check(status, f"LINK {new_path}")

    def _mutated_dir(self, dir_fh: FileHandle, dir_after: Optional[Fattr3]) -> None:
        self._dir_cache.pop(dir_fh.fileid, None)
        if dir_after is not None:
            self._remember(dir_fh, dir_after)
        else:
            self.attrs.invalidate(dir_fh.fileid)

    def readdir(self, path: str, plus: bool = False):
        """Full listing of a directory (list of DirEntry)."""
        fh, attr = yield from self.resolve(path)
        if not attr.is_dir:
            raise NfsClientError(Status.NOTDIR, path)
        cached = self._dir_cache.get(fh.fileid)
        if cached is not None and cached[0] == attr.mtime:
            return cached[1]
        entries: List[pr.DirEntry] = []
        cookie = 0
        proc = Proc.READDIRPLUS if plus else Proc.READDIR
        while True:
            res = yield from self._call(
                proc, pr.pack_readdir_args(fh, cookie=cookie, plus=plus)
            )
            status, dir_attr, batch, eof = pr.unpack_readdir_res(res, plus=plus)
            if dir_attr is not None:
                self._remember(fh, dir_attr)
            _check(status, f"READDIR {path}")
            entries.extend(batch)
            if plus:
                for e in batch:
                    if e.handle is not None and e.attr is not None:
                        self._remember(e.handle, e.attr)
                        self.names.put(fh.fileid, e.name, e.handle, e.fileid)
            if eof or not batch:
                break
            cookie = batch[-1].cookie
        entries = [e for e in entries if e.name not in (".", "..")]
        self._dir_cache[fh.fileid] = (attr.mtime, entries)
        return entries

    # ------------------------------------------------------------------
    # file data
    # ------------------------------------------------------------------

    def open(self, path: str, create: bool = False, truncate: bool = False,
             mode: int = 0o644):
        """Open with close-to-open semantics: revalidate on every open."""
        try:
            fh, attr = yield from self.resolve(path)
        except NfsClientError as exc:
            if exc.status == Status.NOENT and create:
                f = yield from self.create(path, mode=mode)
                return f
            raise
        if attr.is_dir:
            raise NfsClientError(Status.ISDIR, path)
        # Close-to-open: force a fresh GETATTR, dropping stale pages.
        attr = yield from self.getattr_fh(fh, force=True)
        # Kernel open() also permission-checks via ACCESS (cached).
        if self.access_cache.get(fh.fileid, self.cred.uid) is None:
            res = yield from self._call(
                Proc.ACCESS, pr.pack_access_args(fh, pr.ACCESS_ALL)
            )
            status, a_attr, granted = pr.unpack_access_res(res)
            if status == NfsStatus.OK:
                if a_attr is not None:
                    self.attrs.put(a_attr)
                self.access_cache.put(fh.fileid, self.cred.uid, granted)
        if truncate and attr.size:
            res = yield from self._call(
                Proc.SETATTR, pr.pack_setattr_args(fh, Sattr3(size=0))
            )
            status, after = pr.unpack_setattr_res(res)
            _check(status, f"O_TRUNC {path}")
            self.pages.drop_file(attr.fileid)
            self._remember(fh, after)
            attr = after if after is not None else attr
        return OpenFile(fh=fh, fileid=attr.fileid, path=path, size=attr.size)

    def _fetch_block(self, f: OpenFile, block: int):
        """READ one block from the server into the cache.

        Concurrent fetches of the same block (foreground read racing
        read-ahead) coalesce onto one RPC, like the kernel's page lock.
        """
        key = (f.fileid, block)
        pending = self._inflight.get(key)
        if pending is not None:
            data = yield pending
            return data
        ev = self.sim.event(name=f"fetch:{key}")
        self._inflight[key] = ev
        try:
            offset = block * self.block_size
            with self.tracer.span("nfs.cache.fill", cat="nfs-cache",
                                  fileid=f.fileid,
                                  block=block) if self.tracer.enabled else NULL_SPAN:
                res = yield from self._call(
                    Proc.READ, pr.pack_read_args(f.fh, offset, self.block_size)
                )
            status, attr, data, _eof = pr.unpack_read_res(res)
            if attr is not None:
                self.attrs.put(attr)
                f.size = attr.size
            _check(status, f"READ {f.path}@{offset}")
            self._insert_page(f, block, Page(data=data, dirty=False))
        except BaseException as exc:
            self._inflight.pop(key, None)
            ev.fail(exc)
            raise
        self._inflight.pop(key, None)
        ev.succeed(data)
        return data

    def _insert_page(self, f: OpenFile, block: int, page: Page) -> None:
        if page.dirty:
            self._dirty_bytes += len(page.data)
        victims = self.pages.put(f.fileid, block, page)
        for vfid, vblock, vpage in victims:
            # Dirty eviction: write back asynchronously (fire and track).
            self._dirty_bytes -= len(vpage.data)
            self._spawn_flush(self._handles.get(vfid, f.fh), vfid, vblock, vpage.data)

    def _spawn_flush(self, fh: FileHandle, fileid: int, block: int, data: bytes) -> None:
        def flusher():
            yield self._io_slots.acquire()
            try:
                with self.tracer.span("nfs.cache.flush", cat="nfs-cache",
                                      fileid=fileid,
                                      block=block) if self.tracer.enabled else NULL_SPAN:
                    res = yield from self._call(
                        Proc.WRITE,
                        pr.pack_write_args(fh, block * self.block_size, data,
                                           pr.UNSTABLE),
                    )
                status, _after, _count, _committed, _verf = pr.unpack_write_res(res)
                _check(status, f"async WRITE block {block}")
            finally:
                self._io_slots.release()

        proc = self.sim.spawn(flusher(), name=f"flush:{fileid}:{block}")
        self._flushers.append(proc)

    def read(self, f: OpenFile, offset: int, count: int):
        """Read bytes, serving from cache, with sequential read-ahead."""
        if f.closed:
            raise NfsClientError(Status.INVAL, "read on closed file")
        out = bytearray()
        end = min(offset + count, f.size) if f.size is not None else offset + count
        pos = offset
        while pos < end:
            block = pos // self.block_size
            page = self.pages.get(f.fileid, block)
            if page is None:
                data = yield from self._fetch_block(f, block)
                # Sequential? kick off read-ahead for the following blocks.
                if block == f.last_block + 1 and self.read_ahead_blocks > 0:
                    yield from self._read_ahead(f, block + 1)
                page = self.pages.peek(f.fileid, block)
                if page is None:  # evicted immediately (tiny cache)
                    page = Page(data=data)
            f.last_block = block
            inner = pos - block * self.block_size
            take = min(end - pos, len(page.data) - inner)
            if take <= 0:
                break  # short block: EOF
            out.extend(page.data[inner : inner + take])
            pos += take
        # the copy out of the page cache is not free, just cheap
        if self.rpc.cpu is not None and out:
            yield from self.rpc.cpu.consume(
                len(out) * self.cache_hit_cost_per_byte, self.rpc.account
            )
        return bytes(out)

    def _read_ahead(self, f: OpenFile, first_block: int):
        last = (max(f.size - 1, 0)) // self.block_size
        procs = []
        for b in range(first_block, min(first_block + self.read_ahead_blocks, last + 1)):
            if self.pages.peek(f.fileid, b) is not None:
                continue

            def fetch(b=b):
                yield self._io_slots.acquire()
                try:
                    if self.pages.peek(f.fileid, b) is None:
                        yield from self._fetch_block(f, b)
                except NfsClientError:
                    pass  # read-ahead failures are silent
                finally:
                    self._io_slots.release()

            procs.append(self.sim.spawn(fetch(), name=f"ra:{f.fileid}:{b}"))
        # Read-ahead is asynchronous: we do not wait for completion.
        self._flushers.extend(procs)
        return
        yield  # pragma: no cover

    def write(self, f: OpenFile, offset: int, data: bytes):
        """Write through the page cache (write-behind if enabled)."""
        if f.closed:
            raise NfsClientError(Status.INVAL, "write on closed file")
        if not self.write_behind:
            written = 0
            while written < len(data):
                chunk = data[written : written + self.block_size]
                res = yield from self._call(
                    Proc.WRITE,
                    pr.pack_write_args(f.fh, offset + written, chunk, pr.FILE_SYNC),
                )
                status, after, count, _committed, _verf = pr.unpack_write_res(res)
                _check(status, f"WRITE {f.path}@{offset + written}")
                if after is not None:
                    self.attrs.put(after)
                    f.size = after.size
                written += count
            return written

        pos = offset
        remaining = memoryview(bytes(data))
        while remaining.nbytes > 0:
            block = pos // self.block_size
            inner = pos - block * self.block_size
            take = min(self.block_size - inner, remaining.nbytes)
            page = self.pages.get(f.fileid, block)
            if page is None:
                block_start = block * self.block_size
                if inner == 0 and take == self.block_size:
                    page = Page(data=b"", dirty=False)  # fully overwritten
                elif block_start < f.size:
                    yield from self._fetch_block(f, block)  # read-modify-write
                    page = self.pages.peek(f.fileid, block) or Page(data=b"")
                else:
                    page = Page(data=b"", dirty=False)
            buf = bytearray(page.data)
            if len(buf) < inner + take:
                buf.extend(b"\x00" * (inner + take - len(buf)))
            buf[inner : inner + take] = remaining[:take].tobytes()
            was_dirty = page.dirty
            new_page = Page(data=bytes(buf), dirty=True)
            if was_dirty:
                self._dirty_bytes -= len(page.data)
            self._insert_page(f, block, new_page)
            pos += take
            remaining = remaining[take:]
        f.size = max(f.size, offset + len(data))
        f.uncommitted += 1
        if self._dirty_bytes > self.dirty_flush_threshold:
            yield from self._flush_file(f, sync=False)
        return len(data)

    def _flush_file(self, f: OpenFile, sync: bool):
        """Write back dirty pages of f (UNSTABLE); optionally wait."""
        procs = []
        for fid, block, page in self.pages.dirty_pages(f.fileid):
            data = page.data
            self._dirty_bytes -= len(data)
            page.dirty = False

            def do_write(block=block, data=data):
                yield self._io_slots.acquire()
                try:
                    res = yield from self._call(
                        Proc.WRITE,
                        pr.pack_write_args(
                            f.fh, block * self.block_size, data, pr.UNSTABLE
                        ),
                    )
                    status, after, _c, _cm, _v = pr.unpack_write_res(res)
                    _check(status, f"WRITE {f.path} block {block}")
                    if after is not None:
                        self.attrs.put(after)


                finally:
                    self._io_slots.release()

            procs.append(self.sim.spawn(do_write(), name=f"wb:{f.fileid}:{block}"))
        if sync and procs:
            yield all_of(self.sim, procs)
        else:
            self._flushers.extend(procs)
        return
        yield  # pragma: no cover

    def fsync(self, f: OpenFile):
        """Flush dirty pages and COMMIT."""
        yield from self._flush_file(f, sync=True)
        if f.uncommitted:
            res = yield from self._call(Proc.COMMIT, pr.pack_commit_args(f.fh))
            status, after, _verf = pr.unpack_commit_res(res)
            _check(status, f"COMMIT {f.path}")
            if after is not None:
                self.attrs.put(after)
            f.uncommitted = 0

    def close(self, f: OpenFile):
        """Close-to-open: everything dirty reaches the server on close."""
        if f.closed:
            return
        yield from self.fsync(f)
        f.closed = True

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def read_file(self, path: str):
        """Open/read-to-EOF/close."""
        f = yield from self.open(path)
        data = yield from self.read(f, 0, f.size)
        yield from self.close(f)
        return data

    def write_file(self, path: str, data: bytes):
        """Create-or-truncate and write everything, then close."""
        f = yield from self.open(path, create=True, truncate=True)
        yield from self.write(f, 0, data)
        yield from self.close(f)
        return f

    def drain(self):
        """Wait for all background I/O (read-ahead, write-behind)."""
        pending = [p for p in self._flushers if p.alive]
        self._flushers = []
        if pending:
            yield all_of(self.sim, pending)

    def cache_stats(self) -> dict:
        """All client caches under one consistent naming scheme.

        Each cache exports the same ``hits``/``misses``/``evictions``
        triple (from its :class:`~repro.nfs.cache.CacheStats`), keyed by
        the cache's short name — matching the ``nfs.cache`` component in
        :meth:`repro.obs.Registry.snapshot`.
        """
        return {
            "attr": self.attrs.stats.export(),
            "name": self.names.stats.export(),
            "access": self.access_cache.stats.export(),
            "page": self.pages.stats.export(),
            "rpc_calls": self.rpc.calls_sent,
            "retransmissions": self.retransmissions,
        }
