"""NFS version 3 (RFC 1813) — protocol, server, and caching client.

The stack the paper virtualizes.  The server
(:class:`~repro.nfs.server.NfsServerProgram`) exports a
:class:`~repro.vfs.VirtualFS` through real XDR-encoded RPC; the client
(:class:`~repro.nfs.client.NfsClient`) reproduces the kernel client
behaviors the evaluation depends on: attribute caching with adaptive
timeouts, an LRU page cache, read-ahead, write-behind with COMMIT, and
close-to-open consistency.  A thin NFSv4-flavored variant lives in
:mod:`repro.nfs.v4`.
"""

from repro.nfs.protocol import (
    NFS_PROGRAM,
    NFS_V3,
    Proc,
    NfsStatus,
    FileHandle,
    Fattr3,
    Sattr3,
    ACCESS_READ,
    ACCESS_LOOKUP,
    ACCESS_MODIFY,
    ACCESS_EXTEND,
    ACCESS_DELETE,
    ACCESS_EXECUTE,
)
from repro.nfs.server import NfsServerProgram
from repro.nfs.client import NfsClient, NfsClientError, OpenFile

__all__ = [
    "NFS_PROGRAM",
    "NFS_V3",
    "Proc",
    "NfsStatus",
    "FileHandle",
    "Fattr3",
    "Sattr3",
    "NfsServerProgram",
    "NfsClient",
    "NfsClientError",
    "OpenFile",
    "ACCESS_READ",
    "ACCESS_LOOKUP",
    "ACCESS_MODIFY",
    "ACCESS_EXTEND",
    "ACCESS_DELETE",
    "ACCESS_EXECUTE",
]
