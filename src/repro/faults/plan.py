"""Deterministic packet-level fault injection.

A :class:`FaultPlan` is the network's adversary: installed on a
:class:`repro.net.network.Network`, it is consulted once per packet and
rules it dropped, corrupted, duplicated, delayed, or passed.  All
randomness comes from :class:`repro.crypto.drbg.Drbg` streams forked
from one seed, and draws happen in virtual-time event order, so the
same ``(topology, workload, seed)`` triple always produces the same
drop schedule — faulty runs replay bit-for-bit.

Determinism rules:

- exactly **one** uniform draw per packet when any probabilistic fault
  is enabled (the draw is partitioned into drop/corrupt/duplicate/delay
  bands); zero draws when all rates are 0, so flap-only or crash-only
  plans perturb nothing else;
- link **flaps** are pure virtual-time window checks (no entropy);
- **crash/restart** events fire at fixed virtual times via the plan's
  scheduler;
- corruption bytes and delay jitter come from independently forked
  streams so enabling one fault class never shifts another's sequence.

Loopback traffic (single-node paths) is exempt: faults model the WAN,
not the host's own kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.crypto.drbg import Drbg


@dataclass(frozen=True)
class LinkFlap:
    """A window of total loss on every path, [start, start + duration)."""

    start: float
    duration: float


@dataclass(frozen=True)
class CrashEvent:
    """Take ``target`` down at virtual time ``at`` for ``down_for`` seconds.

    ``target`` names a crash/restart handler pair registered with
    :meth:`FaultPlan.schedule` — e.g. ``"server"`` or ``"server-proxy"``.
    """

    at: float
    target: str
    down_for: float


@dataclass(frozen=True)
class FaultSpec:
    """The static description of an adversarial network."""

    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    #: extra one-way delay drawn uniformly from [delay_min, delay_max)
    delay_min: float = 0.005
    delay_max: float = 0.05
    #: modeled sender RTO for lost reliable-transport segments
    rto_base: float = 0.2
    rto_max: float = 2.0
    #: explicit loss windows, plus an optional periodic generator
    flaps: Tuple[LinkFlap, ...] = ()
    flap_period: float = 0.0
    flap_duration: float = 0.0
    flap_count: int = 0
    #: scheduled process crash/restart events
    crashes: Tuple[CrashEvent, ...] = ()
    #: reply timeouts the harness applies to the NFS client and the
    #: client proxy's upstream forwarding when this spec is active
    client_timeo: Optional[float] = None
    proxy_timeo: Optional[float] = None

    def all_flaps(self) -> Tuple[LinkFlap, ...]:
        flaps = list(self.flaps)
        for i in range(self.flap_count):
            flaps.append(
                LinkFlap(start=(i + 1) * self.flap_period, duration=self.flap_duration)
            )
        return tuple(sorted(flaps, key=lambda f: f.start))

    @property
    def total_rate(self) -> float:
        return (
            self.drop_rate + self.corrupt_rate + self.duplicate_rate + self.delay_rate
        )


class FaultPlan:
    """A seeded, installable instance of a :class:`FaultSpec`."""

    def __init__(self, sim, spec: FaultSpec, seed="faults"):
        if spec.total_rate >= 1.0:
            raise ValueError("fault rates must sum to < 1")
        self.sim = sim
        self.spec = spec
        root = Drbg(seed) if not isinstance(seed, Drbg) else seed
        self._rng = root.fork("packets")
        self._corrupt_rng = root.fork("corrupt")
        self._flaps = spec.all_flaps()
        self._net = None
        self.stats: Dict[str, int] = {
            "packets": 0,
            "dropped": 0,
            "corrupted": 0,
            "duplicated": 0,
            "delayed": 0,
            "retransmits": 0,
            "flap_drops": 0,
            "crashes": 0,
        }
        self._counters: Dict[str, object] = {}

    # -- lifecycle -------------------------------------------------------

    def install(self, net) -> "FaultPlan":
        net.fault_plan = self
        self._net = net
        return self

    def uninstall(self) -> None:
        if self._net is not None and self._net.fault_plan is self:
            self._net.fault_plan = None
        self._net = None

    def schedule(self, handlers: Dict[str, Tuple]) -> None:
        """Spawn crash/restart processes for this plan's CrashEvents.

        ``handlers`` maps target name -> ``(crash_fn, restart_fn)``;
        events naming an unregistered target are skipped.
        """
        for ev in self.spec.crashes:
            pair = handlers.get(ev.target)
            if pair is None:
                continue
            crash_fn, restart_fn = pair
            self.sim.spawn(
                self._crash_proc(ev, crash_fn, restart_fn),
                name=f"fault-crash:{ev.target}",
            )

    def _crash_proc(self, ev: CrashEvent, crash_fn, restart_fn):
        yield self.sim.timeout(ev.at)
        self._count("crashes")
        crash_fn()
        yield self.sim.timeout(ev.down_for)
        restart_fn()

    # -- per-packet decision ---------------------------------------------

    def verdict(self, path, nbytes: int, kind: str) -> Tuple[str, float]:
        """Classify one packet: (verdict, extra_delay).

        Verdicts: ``"pass"``, ``"drop"``, ``"corrupt"``, ``"duplicate"``,
        ``"delay"`` (extra_delay > 0 only for delay).
        """
        self.stats["packets"] += 1
        now = self.sim.now
        for flap in self._flaps:
            if flap.start <= now < flap.start + flap.duration:
                self._count("flap_drops")
                return ("drop", 0.0)
            if now < flap.start:
                break
        spec = self.spec
        if spec.total_rate == 0.0:
            return ("pass", 0.0)
        u = self._rng.random()
        edge = spec.drop_rate
        if u < edge:
            self._count("dropped")
            return ("drop", 0.0)
        edge += spec.corrupt_rate
        if u < edge:
            self._count("corrupted")
            return ("corrupt", 0.0)
        edge += spec.duplicate_rate
        if u < edge:
            self._count("duplicated")
            return ("duplicate", 0.0)
        edge += spec.delay_rate
        if u < edge:
            self._count("delayed")
            extra = spec.delay_min + self._rng.random() * (
                spec.delay_max - spec.delay_min
            )
            return ("delay", extra)
        return ("pass", 0.0)

    def rto(self, attempt: int) -> float:
        """Modeled sender retransmission timeout, doubling per attempt."""
        return min(self.spec.rto_max, self.spec.rto_base * (2.0 ** attempt))

    def note_retransmit(self) -> None:
        self._count("retransmits")

    def corrupt_payload(self, payload: bytes) -> bytes:
        """Flip one byte at a deterministic position."""
        if not payload:
            return payload
        pos = self._corrupt_rng.randrange(0, len(payload))
        flip = self._corrupt_rng.randrange(1, 256)
        out = bytearray(payload)
        out[pos] ^= flip
        return bytes(out)

    # -- accounting ------------------------------------------------------

    def _count(self, name: str) -> None:
        self.stats[name] += 1
        obs = self.sim.obs
        if obs.enabled:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = obs.counter("faults", name)
            c.inc()
