"""Deterministic fault injection for the simulated network.

See :mod:`repro.faults.plan` for the packet-level adversary and
:mod:`repro.faults.presets` for the named scenarios the harness/CLI
expose as ``--faults``.
"""

from repro.faults.plan import CrashEvent, FaultPlan, FaultSpec, LinkFlap
from repro.faults.presets import FAULT_PRESETS, resolve_fault_preset

__all__ = [
    "CrashEvent",
    "FaultPlan",
    "FaultSpec",
    "LinkFlap",
    "FAULT_PRESETS",
    "resolve_fault_preset",
]
