"""Named adversarial-network presets for the harness and CLI.

Each preset is a :class:`~repro.faults.plan.FaultSpec`.  The rates are
per-packet.  The timer values are the classic ones: ``client_timeo`` /
``proxy_timeo`` of 0.7 s is the traditional NFS ``timeo`` default, and
``rto_base`` of 1.0 s is the RFC 6298 initial sender RTO.  Because the
reply timer is *shorter* than the stream RTO, a dropped request triggers
a same-xid retransmission before the modeled TCP redelivery brings the
original copy in — the server then sees the call twice and the
duplicate-request cache must absorb the second copy (park while the
first executes, replay after), which is exactly the correctness property
these presets exist to exercise.
"""

from __future__ import annotations

from typing import Union

from repro.faults.plan import CrashEvent, FaultSpec, LinkFlap

FAULT_PRESETS = {
    # 5% loss: the acceptance scenario — lossy but live WAN.
    "lossy-wan": FaultSpec(
        drop_rate=0.05,
        client_timeo=0.7,
        proxy_timeo=0.7,
        rto_base=1.0,
        rto_max=4.0,
    ),
    # heavy reordering pressure: delays + a little duplication
    "jittery-wan": FaultSpec(
        delay_rate=0.20,
        delay_min=0.005,
        delay_max=0.08,
        duplicate_rate=0.02,
        client_timeo=0.7,
        proxy_timeo=0.7,
        rto_base=1.0,
        rto_max=4.0,
    ),
    # duplication-dominant: exercises DRC replay and stream dedup
    "dup-wan": FaultSpec(
        duplicate_rate=0.10,
        drop_rate=0.01,
        client_timeo=0.7,
        proxy_timeo=0.7,
        rto_base=1.0,
        rto_max=4.0,
    ),
    # periodic total-loss windows (route flaps)
    "flaky-wan": FaultSpec(
        drop_rate=0.01,
        flap_period=5.0,
        flap_duration=0.5,
        flap_count=20,
        client_timeo=0.7,
        proxy_timeo=0.7,
        rto_base=1.0,
        rto_max=4.0,
    ),
    # everything at once, plus corruption
    "chaos-wan": FaultSpec(
        drop_rate=0.03,
        corrupt_rate=0.01,
        duplicate_rate=0.02,
        delay_rate=0.05,
        flaps=(LinkFlap(start=10.0, duration=0.5),),
        client_timeo=0.7,
        proxy_timeo=0.7,
        rto_base=1.0,
        rto_max=4.0,
    ),
    # clean network, but the SGFS server proxy dies and comes back
    "proxy-restart": FaultSpec(
        crashes=(CrashEvent(at=5.0, target="server-proxy", down_for=2.0),),
        client_timeo=0.7,
        proxy_timeo=0.7,
        rto_base=1.0,
        rto_max=4.0,
    ),
    # clean network, but the NFS server itself restarts
    "server-restart": FaultSpec(
        crashes=(CrashEvent(at=5.0, target="server", down_for=2.0),),
        client_timeo=0.7,
        proxy_timeo=0.7,
        rto_base=1.0,
        rto_max=4.0,
    ),
}


def resolve_fault_preset(spec: Union[str, FaultSpec, None]):
    """Accept a preset name, a FaultSpec, or None (pass through)."""
    if spec is None or isinstance(spec, FaultSpec):
        return spec
    try:
        return FAULT_PRESETS[spec]
    except KeyError:
        raise KeyError(
            f"unknown fault preset {spec!r} (have: {', '.join(sorted(FAULT_PRESETS))})"
        ) from None
