"""In-memory UNIX-like filesystem — the NFS server's backing store.

Implements inodes (regular files, directories, symlinks), POSIX
permission checks against (uid, gid, groups) credentials, hard links,
rename semantics, and the error taxonomy NFSv3 reports.  A
:class:`~repro.vfs.disk.DiskModel` attaches I/O timing so the simulated
server pays realistic seek/transfer costs for synchronous updates.
"""

from repro.vfs.fs import VirtualFS, VfsError, Ftype, Inode, Credentials, Status
from repro.vfs.disk import DiskModel

__all__ = [
    "VirtualFS",
    "VfsError",
    "Ftype",
    "Inode",
    "Credentials",
    "Status",
    "DiskModel",
]
