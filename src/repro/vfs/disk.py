"""Disk timing model.

Charges virtual time for storage I/O.  Used in two places:

- the NFS **server** pays for synchronous updates (the paper exports
  with ``sync`` — metadata-changing operations and stable writes hit
  the platter before the reply goes out), and
- the SGFS **client proxy's disk cache** pays for cache reads/writes,
  which is why the paper's LAN runs keep disk caching *off* (§6.3.2:
  "phase 2 in fact runs faster [in WAN] because disk caching is not
  enabled in LAN").

The model is a single-spindle queue: operations serialize, each costing
a fixed access latency plus size/throughput.  A warm buffer pays only a
(cheaper) cache cost for reads that hit memory — the IOzone experiment
preloads the file server-side precisely to eliminate disk reads.
"""

from __future__ import annotations

from repro.obs import NULL_SPAN
from repro.sim.core import SimError, Simulator
from repro.sim.sync import Semaphore


class DiskModel:
    """Timing for one disk (2007-era 7200rpm SATA-ish defaults)."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "disk",
        access_latency: float = 0.004,
        read_bandwidth: float = 70e6,
        write_bandwidth: float = 55e6,
        write_delay_window: float = 0.030,
    ):
        self.sim = sim
        self.name = name
        self.access_latency = access_latency
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = write_bandwidth
        #: "wdelay"-style coalescing: back-to-back writes inside this
        #: window share one access latency.
        self.write_delay_window = write_delay_window
        self._spindle = Semaphore(sim, 1, name=f"{name}.spindle")
        self._last_write_done = -1e18
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.tracer = sim.tracer
        if sim.obs.enabled:
            sim.obs.add_collector(
                "disk",
                lambda: {
                    self.name: {
                        "reads": self.reads,
                        "writes": self.writes,
                        "bytes_read": self.bytes_read,
                        "bytes_written": self.bytes_written,
                    }
                },
            )

    def read(self, nbytes: int, cached: bool = True):
        """Process generator: one read of nbytes (cached=in page cache)."""
        if nbytes < 0:
            raise SimError("negative read")
        self.reads += 1
        self.bytes_read += nbytes
        if cached:
            return  # memory hit: negligible against everything else modeled
            yield  # pragma: no cover
        with self.tracer.span("disk.read", cat="disk", disk=self.name,
                              bytes=nbytes) if self.tracer.enabled else NULL_SPAN:
            yield self._spindle.acquire()
            try:
                yield self.sim.timeout(
                    self.access_latency + nbytes / self.read_bandwidth
                )
            finally:
                self._spindle.release()

    def write(self, nbytes: int, sync: bool = True):
        """Process generator: one write; sync pays latency, async coalesces."""
        if nbytes < 0:
            raise SimError("negative write")
        self.writes += 1
        self.bytes_written += nbytes
        with self.tracer.span("disk.write", cat="disk", disk=self.name,
                              bytes=nbytes, sync=sync) if self.tracer.enabled else NULL_SPAN:
            yield self._spindle.acquire()
            try:
                latency = self.access_latency
                if not sync and self.sim.now - self._last_write_done < self.write_delay_window:
                    latency = 0.0  # coalesced into the in-flight stripe
                yield self.sim.timeout(latency + nbytes / self.write_bandwidth)
                self._last_write_done = self.sim.now
            finally:
                self._spindle.release()
