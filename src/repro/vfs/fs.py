"""The virtual filesystem: inodes, directories, permissions, operations.

Status codes deliberately mirror NFSv3's so the server maps them 1:1.
All operations take explicit :class:`Credentials` and enforce POSIX
permission bits — the SGFS identity-mapping story depends on the backing
filesystem genuinely discriminating by uid/gid.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


class Status(enum.IntEnum):
    """NFSv3-aligned error codes (RFC 1813 §2.6)."""

    OK = 0
    PERM = 1
    NOENT = 2
    IO = 5
    ACCES = 13
    EXIST = 17
    XDEV = 18
    NODEV = 19
    NOTDIR = 20
    ISDIR = 21
    INVAL = 22
    FBIG = 27
    NOSPC = 28
    ROFS = 30
    NAMETOOLONG = 63
    NOTEMPTY = 66
    DQUOT = 69
    STALE = 70
    BADHANDLE = 10001
    NOT_SYNC = 10002
    BAD_COOKIE = 10003
    NOTSUPP = 10004
    TOOSMALL = 10005
    SERVERFAULT = 10006
    BADTYPE = 10007
    JUKEBOX = 10008


class VfsError(Exception):
    """Operation failure carrying an NFS-style status code."""

    def __init__(self, status: Status, detail: str = ""):
        super().__init__(f"{status.name}{': ' + detail if detail else ''}")
        self.status = status


class Ftype(enum.IntEnum):
    """File types (matches NFSv3 ftype3 values)."""

    REG = 1
    DIR = 2
    BLK = 3
    CHR = 4
    LNK = 5
    SOCK = 6
    FIFO = 7


@dataclass(frozen=True)
class Credentials:
    """Caller identity for permission checks."""

    uid: int
    gid: int
    groups: Tuple[int, ...] = ()

    @property
    def is_superuser(self) -> bool:
        return self.uid == 0

    def in_group(self, gid: int) -> bool:
        return gid == self.gid or gid in self.groups


ROOT_CRED = Credentials(0, 0)

NAME_MAX = 255


@dataclass
class Inode:
    """One filesystem object."""

    fileid: int
    ftype: Ftype
    mode: int
    uid: int
    gid: int
    nlink: int = 1
    size: int = 0
    atime: float = 0.0
    mtime: float = 0.0
    ctime: float = 0.0
    generation: int = 0
    data: bytearray = field(default_factory=bytearray)
    entries: Dict[str, int] = field(default_factory=dict)  # dirs only
    symlink_target: str = ""

    @property
    def is_dir(self) -> bool:
        return self.ftype == Ftype.DIR

    @property
    def is_reg(self) -> bool:
        return self.ftype == Ftype.REG

    def used_bytes(self) -> int:
        if self.is_reg:
            return len(self.data)
        if self.is_dir:
            return 512 + 32 * len(self.entries)
        return 64


class VirtualFS:
    """An in-memory filesystem with POSIX-ish semantics.

    ``clock`` is a zero-argument callable returning the current time for
    timestamps — experiments pass ``lambda: sim.now``.
    """

    def __init__(
        self,
        fsid: int = 1,
        clock=None,
        capacity_bytes: int = 1 << 40,
        root_mode: int = 0o755,
        root_uid: int = 0,
        root_gid: int = 0,
    ):
        self.fsid = fsid
        self.clock = clock or (lambda: 0.0)
        self.capacity_bytes = capacity_bytes
        self._ids = itertools.count(2)
        self._inodes: Dict[int, Inode] = {}
        self._generation = itertools.count(1)
        now = self.clock()
        root = Inode(
            fileid=1, ftype=Ftype.DIR, mode=root_mode, uid=root_uid, gid=root_gid,
            nlink=2, atime=now, mtime=now, ctime=now, generation=next(self._generation),
        )
        self._inodes[1] = root
        self.root = root
        self.write_ops = 0
        self.read_ops = 0

    # -- helpers -----------------------------------------------------------

    def inode(self, fileid: int) -> Inode:
        node = self._inodes.get(fileid)
        if node is None:
            raise VfsError(Status.STALE, f"fileid {fileid}")
        return node

    def used_bytes(self) -> int:
        return sum(n.used_bytes() for n in self._inodes.values())

    def inode_count(self) -> int:
        return len(self._inodes)

    def _check_name(self, name: str) -> None:
        if not name or name in (".", ".."):
            raise VfsError(Status.INVAL, f"bad name {name!r}")
        if "/" in name or "\x00" in name:
            raise VfsError(Status.INVAL, f"bad name {name!r}")
        if len(name) > NAME_MAX:
            raise VfsError(Status.NAMETOOLONG, name[:32] + "...")

    def check_access(self, node: Inode, cred: Credentials, want: int) -> bool:
        """POSIX bit check: ``want`` is a bitmask of 4=r, 2=w, 1=x."""
        if cred.is_superuser:
            return True
        if cred.uid == node.uid:
            bits = (node.mode >> 6) & 7
        elif cred.in_group(node.gid):
            bits = (node.mode >> 3) & 7
        else:
            bits = node.mode & 7
        return (bits & want) == want

    def _require(self, node: Inode, cred: Credentials, want: int) -> None:
        if not self.check_access(node, cred, want):
            raise VfsError(Status.ACCES, f"mode {node.mode:o}, uid {cred.uid}")

    def _require_dir(self, node: Inode) -> None:
        if not node.is_dir:
            raise VfsError(Status.NOTDIR)

    def _touch(self, node: Inode, a=False, m=False, c=False) -> None:
        now = self.clock()
        if a:
            node.atime = now
        if m:
            node.mtime = now
        if c:
            node.ctime = now

    # -- lookup & attributes ---------------------------------------------------

    def lookup(self, dir_id: int, name: str, cred: Credentials) -> Inode:
        d = self.inode(dir_id)
        self._require_dir(d)
        self._require(d, cred, 1)  # execute = search
        if name == ".":
            return d
        if name == "..":
            parent = self._find_parent(dir_id)
            return self.inode(parent)
        child = d.entries.get(name)
        if child is None:
            raise VfsError(Status.NOENT, name)
        return self.inode(child)

    def _find_parent(self, dir_id: int) -> int:
        # Linear scan — fine at simulation scales; parents are only
        # needed for ".." lookups, which the NFS clients rarely issue.
        for fid, node in self._inodes.items():
            if node.is_dir and dir_id in node.entries.values():
                return fid
        return 1

    def getattr(self, fileid: int) -> Inode:
        return self.inode(fileid)

    def setattr(
        self,
        fileid: int,
        cred: Credentials,
        mode: Optional[int] = None,
        uid: Optional[int] = None,
        gid: Optional[int] = None,
        size: Optional[int] = None,
        atime: Optional[float] = None,
        mtime: Optional[float] = None,
    ) -> Inode:
        node = self.inode(fileid)
        owner = cred.is_superuser or cred.uid == node.uid
        if mode is not None:
            if not owner:
                raise VfsError(Status.PERM, "chmod by non-owner")
            node.mode = mode & 0o7777
        if uid is not None and uid != node.uid:
            if not cred.is_superuser:
                raise VfsError(Status.PERM, "chown by non-root")
            node.uid = uid
        if gid is not None and gid != node.gid:
            if not (cred.is_superuser or (owner and cred.in_group(gid))):
                raise VfsError(Status.PERM, "chgrp to foreign group")
            node.gid = gid
        if size is not None:
            if not node.is_reg:
                raise VfsError(Status.ISDIR if node.is_dir else Status.INVAL)
            if not owner:
                self._require(node, cred, 2)
            self._resize(node, size)
            self._touch(node, m=True)
        if atime is not None:
            node.atime = atime
        if mtime is not None:
            node.mtime = mtime
        self._touch(node, c=True)
        return node

    def _resize(self, node: Inode, size: int) -> None:
        if size < 0:
            raise VfsError(Status.INVAL, "negative size")
        if size > len(node.data):
            grow = size - len(node.data)
            if self.used_bytes() + grow > self.capacity_bytes:
                raise VfsError(Status.NOSPC)
            node.data.extend(b"\x00" * grow)
        else:
            del node.data[size:]
        node.size = size

    # -- creation -------------------------------------------------------------

    def _new_inode(self, ftype: Ftype, mode: int, cred: Credentials) -> Inode:
        now = self.clock()
        node = Inode(
            fileid=next(self._ids), ftype=ftype, mode=mode & 0o7777,
            uid=cred.uid, gid=cred.gid,
            atime=now, mtime=now, ctime=now,
            generation=next(self._generation),
        )
        self._inodes[node.fileid] = node
        return node

    def create(
        self, dir_id: int, name: str, cred: Credentials, mode: int = 0o644,
        exclusive: bool = False,
    ) -> Inode:
        self._check_name(name)
        d = self.inode(dir_id)
        self._require_dir(d)
        existing = d.entries.get(name)
        if existing is not None:
            if exclusive:
                raise VfsError(Status.EXIST, name)
            node = self.inode(existing)
            if node.is_dir:
                raise VfsError(Status.ISDIR, name)
            self._require(node, cred, 2)
            return node
        self._require(d, cred, 3)  # write + search
        node = self._new_inode(Ftype.REG, mode, cred)
        d.entries[name] = node.fileid
        self._touch(d, m=True, c=True)
        self.write_ops += 1
        return node

    def mkdir(self, dir_id: int, name: str, cred: Credentials, mode: int = 0o755) -> Inode:
        self._check_name(name)
        d = self.inode(dir_id)
        self._require_dir(d)
        if name in d.entries:
            raise VfsError(Status.EXIST, name)
        self._require(d, cred, 3)
        node = self._new_inode(Ftype.DIR, mode, cred)
        node.nlink = 2
        d.entries[name] = node.fileid
        d.nlink += 1
        self._touch(d, m=True, c=True)
        self.write_ops += 1
        return node

    def symlink(self, dir_id: int, name: str, target: str, cred: Credentials) -> Inode:
        self._check_name(name)
        d = self.inode(dir_id)
        self._require_dir(d)
        if name in d.entries:
            raise VfsError(Status.EXIST, name)
        self._require(d, cred, 3)
        node = self._new_inode(Ftype.LNK, 0o777, cred)
        node.symlink_target = target
        node.size = len(target)
        d.entries[name] = node.fileid
        self._touch(d, m=True, c=True)
        self.write_ops += 1
        return node

    def readlink(self, fileid: int) -> str:
        node = self.inode(fileid)
        if node.ftype != Ftype.LNK:
            raise VfsError(Status.INVAL, "not a symlink")
        return node.symlink_target

    def link(self, fileid: int, dir_id: int, name: str, cred: Credentials) -> Inode:
        self._check_name(name)
        node = self.inode(fileid)
        if node.is_dir:
            raise VfsError(Status.ISDIR, "hard link to directory")
        d = self.inode(dir_id)
        self._require_dir(d)
        if name in d.entries:
            raise VfsError(Status.EXIST, name)
        self._require(d, cred, 3)
        d.entries[name] = node.fileid
        node.nlink += 1
        self._touch(node, c=True)
        self._touch(d, m=True, c=True)
        self.write_ops += 1
        return node

    # -- removal ---------------------------------------------------------------

    def remove(self, dir_id: int, name: str, cred: Credentials) -> None:
        self._check_name(name)
        d = self.inode(dir_id)
        self._require_dir(d)
        self._require(d, cred, 3)
        child_id = d.entries.get(name)
        if child_id is None:
            raise VfsError(Status.NOENT, name)
        child = self.inode(child_id)
        if child.is_dir:
            raise VfsError(Status.ISDIR, name)
        del d.entries[name]
        child.nlink -= 1
        if child.nlink <= 0:
            del self._inodes[child_id]
        else:
            self._touch(child, c=True)
        self._touch(d, m=True, c=True)
        self.write_ops += 1

    def rmdir(self, dir_id: int, name: str, cred: Credentials) -> None:
        self._check_name(name)
        d = self.inode(dir_id)
        self._require_dir(d)
        self._require(d, cred, 3)
        child_id = d.entries.get(name)
        if child_id is None:
            raise VfsError(Status.NOENT, name)
        child = self.inode(child_id)
        if not child.is_dir:
            raise VfsError(Status.NOTDIR, name)
        if child.entries:
            raise VfsError(Status.NOTEMPTY, name)
        del d.entries[name]
        del self._inodes[child_id]
        d.nlink -= 1
        self._touch(d, m=True, c=True)
        self.write_ops += 1

    def rename(
        self, from_dir: int, from_name: str, to_dir: int, to_name: str,
        cred: Credentials,
    ) -> None:
        self._check_name(from_name)
        self._check_name(to_name)
        src = self.inode(from_dir)
        dst = self.inode(to_dir)
        self._require_dir(src)
        self._require_dir(dst)
        self._require(src, cred, 3)
        if dst is not src:
            self._require(dst, cred, 3)
        moving_id = src.entries.get(from_name)
        if moving_id is None:
            raise VfsError(Status.NOENT, from_name)
        moving = self.inode(moving_id)
        existing_id = dst.entries.get(to_name)
        if existing_id is not None:
            if existing_id == moving_id:
                return  # rename onto itself: no-op
            existing = self.inode(existing_id)
            if existing.is_dir:
                if not moving.is_dir:
                    raise VfsError(Status.ISDIR, to_name)
                if existing.entries:
                    raise VfsError(Status.NOTEMPTY, to_name)
                del self._inodes[existing_id]
                dst.nlink -= 1
            else:
                if moving.is_dir:
                    raise VfsError(Status.NOTDIR, to_name)
                existing.nlink -= 1
                if existing.nlink <= 0:
                    del self._inodes[existing_id]
        del src.entries[from_name]
        dst.entries[to_name] = moving_id
        if moving.is_dir and src is not dst:
            src.nlink -= 1
            dst.nlink += 1
        self._touch(src, m=True, c=True)
        if dst is not src:
            self._touch(dst, m=True, c=True)
        self._touch(moving, c=True)
        self.write_ops += 1

    # -- data ---------------------------------------------------------------------

    def read(self, fileid: int, offset: int, count: int, cred: Credentials) -> Tuple[bytes, bool]:
        """Returns (data, eof)."""
        node = self.inode(fileid)
        if node.is_dir:
            raise VfsError(Status.ISDIR)
        if not node.is_reg:
            raise VfsError(Status.INVAL)
        self._require(node, cred, 4)
        if offset < 0 or count < 0:
            raise VfsError(Status.INVAL)
        data = bytes(node.data[offset : offset + count])
        eof = offset + len(data) >= node.size
        self._touch(node, a=True)
        self.read_ops += 1
        return data, eof

    def write(self, fileid: int, offset: int, data: bytes, cred: Credentials) -> int:
        node = self.inode(fileid)
        if node.is_dir:
            raise VfsError(Status.ISDIR)
        if not node.is_reg:
            raise VfsError(Status.INVAL)
        self._require(node, cred, 2)
        if offset < 0:
            raise VfsError(Status.INVAL)
        end = offset + len(data)
        if end > len(node.data):
            grow = end - len(node.data)
            if self.used_bytes() + grow > self.capacity_bytes:
                raise VfsError(Status.NOSPC)
            node.data.extend(b"\x00" * (end - len(node.data)))
        node.data[offset:end] = data
        node.size = len(node.data)
        self._touch(node, m=True, c=True)
        self.write_ops += 1
        return len(data)

    # -- directory listing --------------------------------------------------------

    def readdir(self, dir_id: int, cred: Credentials) -> List[Tuple[str, int]]:
        d = self.inode(dir_id)
        self._require_dir(d)
        self._require(d, cred, 4)
        self._touch(d, a=True)
        self.read_ops += 1
        out = [(".", d.fileid), ("..", self._find_parent(dir_id))]
        out.extend(sorted(d.entries.items()))
        return out

    # -- path convenience (tests/examples; NFS clients walk components) -----------

    def resolve(self, path: str, cred: Credentials = ROOT_CRED) -> Inode:
        node = self.root
        for part in [p for p in path.split("/") if p]:
            node = self.lookup(node.fileid, part, cred)
        return node

    def walk(self) -> Iterator[Tuple[str, Inode]]:
        """Yield (path, inode) for every object, root first."""
        stack = [("/", self.root)]
        while stack:
            path, node = stack.pop()
            yield path, node
            if node.is_dir:
                for name, fid in sorted(node.entries.items(), reverse=True):
                    child = self._inodes.get(fid)
                    if child is not None:
                        stack.append((path.rstrip("/") + "/" + name, child))
