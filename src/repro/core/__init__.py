"""Core API: testbeds, calibration, and the eight file-system setups.

This package is the public face of the library.  A typical experiment::

    from repro.core import Testbed, setup_sgfs

    tb = Testbed.build(rtt=0.040)          # 40 ms emulated WAN
    mount = setup_sgfs(tb, suite="aes-256-cbc-sha1", disk_cache=True)

    def job():
        yield from mount.client.write_file("/data/out.bin", payload)
        ...

    tb.run(job())
    mount.finish()                          # drain + write-back

Setups mirror §6.1 of the paper: ``nfs-v3``, ``nfs-v4``, ``gfs``,
``gfs-ssh``, ``sfs``, and ``sgfs`` with per-session cipher-suite choice.
"""

from repro.core.calibration import Calibration, DEFAULT_CALIBRATION
from repro.core.topology import Testbed
from repro.core.setups import (
    Mount,
    setup_nfs_v3,
    setup_nfs_v4,
    setup_gfs,
    setup_gfs_ssh,
    setup_sfs,
    setup_sgfs,
    SETUP_BUILDERS,
)

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "Testbed",
    "Mount",
    "setup_nfs_v3",
    "setup_nfs_v4",
    "setup_gfs",
    "setup_gfs_ssh",
    "setup_sfs",
    "setup_sgfs",
    "SETUP_BUILDERS",
]
