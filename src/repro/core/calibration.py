"""Calibration: every timing constant of the virtual testbed, in one place.

The paper's testbed is a pair of 1-vCPU VMware VMs on dual 3.2 GHz Xeon
hosts, Gigabit Ethernet, and a NIST Net router.  The constants below
were tuned so that the **LAN baselines land near the paper's reported
magnitudes** — kernel NFS bulk throughput (~38 MB/s end to end, the
VMware-era virtual-NIC ceiling rather than wire speed), the >2×
user-level slowdown, the +9/+15/+50 % cipher ladder, the ≥6× gfs-ssh
penalty, and SFS's >30 % daemon CPU — after which every WAN result is
*prediction*, not fitting: nothing here encodes a WAN number.

Two cost shapes appear:

- :class:`~repro.rpc.costs.EndpointCost` — CPU seconds per message for
  kernel endpoints (charged on the host core),
- :class:`~repro.rpc.costs.CostProfile` — user-level processes split
  their overhead into *wall latency* (kernel crossings, copies,
  scheduling — invisible to per-process user-CPU sampling, which is why
  the paper's proxies run at 0.6 % CPU while doubling runtimes) and a
  small *user CPU* part that the utilization figures do see.

Crypto costs come from the cycles/byte in :mod:`repro.crypto.suites`
(SHA1-HMAC 8 c/B, RC4 7 c/B, AES-256-CBC 46 c/B — 2007-class software
numbers) divided by ``cpu_hz``, half charged as user CPU and half as
latency (see ``repro.tls.channel.CRYPTO_CPU_FRACTION``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rpc.costs import CostProfile, EndpointCost


@dataclass(frozen=True)
class Calibration:
    """The knobs of a virtual testbed."""

    # -- hardware -----------------------------------------------------------
    cpu_hz: float = 3.2e9
    #: one-way latency per LAN link (client—router and router—server);
    #: base RTT ≈ 0.3 ms, matching §6.2.2's measured LAN RTT.
    lan_link_latency: float = 0.000075
    #: effective end-to-end payload bandwidth of the virtualized NIC
    #: path (VMware-era, not wire-speed Gigabit).
    lan_bandwidth: float = 40e6

    # -- kernel endpoints (asymmetric: VM client path vs nfsd) -----------------
    kernel_client_cost: EndpointCost = EndpointCost(per_msg=5.0e-5, per_byte=7.0e-9)
    kernel_server_cost: EndpointCost = EndpointCost(per_msg=4.0e-5, per_byte=2.5e-9)
    #: extra per-op processing of NFSv4 COMPOUND assembly/parsing
    v4_compound_overhead: float = 3.0e-5

    # -- user-level processes ----------------------------------------------------
    #: GFS/SGFS proxy per-record forwarding: latency-dominated (two
    #: kernel/user crossings + copies), tiny user-CPU footprint.
    proxy_cost: CostProfile = CostProfile(
        latency=EndpointCost(per_msg=8.0e-5, per_byte=7.0e-9),
        cpu=EndpointCost(per_msg=4.0e-6, per_byte=3.0e-10),
    )
    #: SSH tunnel endpoint, per forwarded chunk, charged at BOTH
    #: endpoints in BOTH directions — the double-forwarding penalty.
    ssh_cost: CostProfile = CostProfile(
        latency=EndpointCost(per_msg=3.0e-5, per_byte=1.55e-7),
        cpu=EndpointCost(per_msg=8.0e-6, per_byte=1.0e-8),
    )
    #: SFS daemons: heavier user-mode machinery (the >30 % CPU story).
    sfs_cost: CostProfile = CostProfile(
        latency=EndpointCost(per_msg=1.0e-4, per_byte=8.0e-9),
        cpu=EndpointCost(per_msg=1.0e-4, per_byte=2.0e-8),
    )

    # -- client memory (kernel page cache) ----------------------------------------
    #: the paper's client VM has 256 MB; experiments scale this together
    #: with file sizes, keeping the paper's file = 2 × cache ratio.
    client_cache_bytes: int = 8 * 1024 * 1024

    # -- disks ----------------------------------------------------------------------
    server_disk_access: float = 0.0028
    server_disk_read_bw: float = 70e6
    server_disk_write_bw: float = 55e6
    #: the proxy cache disk: the paper notes disk caching *adds* latency
    #: in LAN (§6.3.2), so cache hits must cost real (but < WAN RTT) time;
    #: block-cache access is mostly short-seek on a dedicated spindle.
    cache_disk_access: float = 0.0012
    cache_disk_read_bw: float = 80e6
    cache_disk_write_bw: float = 60e6

    # -- NFS client behavior ------------------------------------------------------
    block_size: int = 32768
    read_ahead_blocks: int = 3
    max_async_io: int = 8
    ac_reg_min: float = 3.0
    ac_reg_max: float = 60.0


DEFAULT_CALIBRATION = Calibration()
