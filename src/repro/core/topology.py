"""Testbed: the client / router / server topology of §6.1.

``Testbed.build(rtt=...)`` assembles the simulator, the three network
nodes (compute client, NIST-Net-style delay router, file server), the
exported VirtualFS with its disk, the kernel NFS server, and the account
databases — everything the eight setups build on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.core.calibration import Calibration, DEFAULT_CALIBRATION
from repro.net import DelayRouter, Host, Network
from repro.nfs.server import NfsServerProgram
from repro.obs import NULL_REGISTRY, NULL_TRACER, Registry, SpanTracer
from repro.proxy.accounts import Account, AccountsDb
from repro.rpc.server import RpcServer
from repro.sim import Simulator
from repro.vfs import DiskModel, VirtualFS

#: Well-known ports on the simulated hosts.
NFS_PORT = 2049
SERVER_PROXY_PORT = 4444
CLIENT_PROXY_PORT = 4445
SSH_TUNNEL_PORT = 4422
SSH_LOCAL_PORT = 4423
SFS_PORT = 4446
GRID_META_PORT = 4447


@dataclass
class Backend:
    """One data-plane NFS server of a sharded (``servers > 1``) testbed.

    Backend 0 aliases the home server — the same host/fs/program the
    single-server topology builds — so ``servers=1`` runs are untouched;
    backends 1..N-1 are additional hosts hanging off the same router.
    """

    index: int
    name: str
    host: Host
    fs: VirtualFS
    disk: DiskModel
    nfs_program: NfsServerProgram
    rpc_server: RpcServer
    listener: object = None


@dataclass
class Testbed:
    """A built testbed ready for setups and workloads."""

    __test__ = False  # not a pytest class, despite the name

    sim: Simulator
    net: Network
    client: Host
    server: Host
    router: DelayRouter
    fs: VirtualFS
    server_disk: DiskModel
    nfs_program: NfsServerProgram
    nfs_rpc_server: RpcServer
    server_accounts: AccountsDb
    client_accounts: AccountsDb
    cal: Calibration
    #: telemetry (repro.obs): the registry/tracer every layer hooks into.
    #: The null singletons when the testbed was built without telemetry.
    obs: "Registry" = NULL_REGISTRY
    tracer: "SpanTracer" = NULL_TRACER
    #: the kernel NFS server's listener, kept so crash injection can close it
    nfs_listener: object = None
    #: data-plane servers of a sharded testbed; entry 0 aliases the home
    #: server, so ``len(backends)`` is the grid width (1 = unsharded)
    backends: list = field(default_factory=list)
    _port_alloc: "itertools.count" = field(default_factory=lambda: itertools.count(20000))

    @classmethod
    def build(
        cls,
        rtt: float = 0.0,
        cal: Calibration = DEFAULT_CALIBRATION,
        export_owner: str = "ming",
        export_uid: int = 901,
        telemetry: bool = False,
        tracing: bool = False,
        server_workers: Optional[int] = None,
        vfs_locking: bool = False,
        profile: bool = False,
        server_cores: int = 1,
        servers: int = 1,
    ) -> "Testbed":
        """Create the §6.1 topology.

        ``rtt`` is the NIST-Net-emulated round-trip time *added* by the
        router (0 for the LAN runs; the base LAN RTT of ~0.3 ms comes
        from the links themselves), in virtual seconds.

        ``telemetry`` enables the cross-layer metrics registry;
        ``tracing`` additionally records causal spans for Chrome-trace
        export.  Both are off by default and cost one attribute check
        per instrumented call site when off.  Neither consumes virtual
        time, so enabling them never changes simulated results.

        ``server_workers=N`` runs the kernel NFS server in worker-pool
        mode (per-session request queues drained round-robin by N
        workers — the nfsd thread-pool model); the default ``None``
        keeps spawn-per-call dispatch.  ``vfs_locking=True`` turns on
        per-fileid reader/writer locks in the NFS program so concurrent
        fleet clients serialize correctly.  Both knobs are no-ops for
        single-client runs (uncontended acquisitions cost zero virtual
        time), so the eight golden setups are unaffected.

        ``server_cores=N`` gives the server host a deterministic
        N-core CPU (:class:`repro.sim.cpu.CPU`): independent sessions'
        crypto and request processing overlap across cores instead of
        serializing.  The default ``1`` reproduces the paper's 1-vCPU
        server bit-for-bit.

        ``servers=N`` builds a sharded data plane: N-1 extra backend
        hosts ``s1..s{N-1}`` hang off the same router, each with its own
        VirtualFS, disk, and kernel NFS server (the home server is
        backend 0).  The grid layer (:mod:`repro.grid`) stripes file
        blocks across them.  ``servers=1`` (the default) builds exactly
        the single-server topology — bit-identical to before the knob
        existed.

        ``profile=True`` arms the bottleneck-attribution layer
        (:mod:`repro.obs.profile`): it forces telemetry *and* tracing on
        and additionally records per-direction link occupancy intervals
        and RPC worker-queue depth timelines.  Like the other
        observability knobs it consumes no virtual time.
        """
        if profile:
            telemetry = tracing = True
        obs = Registry() if telemetry or tracing else NULL_REGISTRY
        sim = Simulator(obs=obs)
        sim.profile = profile
        if tracing:
            sim.tracer = SpanTracer(
                clock=lambda: sim.now, current_track=lambda: sim.current
            )
        net = Network(sim)
        net.record_occupancy = profile
        client = Host(sim, net, "client")
        server = Host(sim, net, "server", cpu_cores=server_cores)
        router = DelayRouter(sim, net, "router", one_way_delay=rtt / 2.0)
        net.connect("client", "router", latency=cal.lan_link_latency,
                    bandwidth=cal.lan_bandwidth)
        net.connect("router", "server", latency=cal.lan_link_latency,
                    bandwidth=cal.lan_bandwidth)

        # The exported filesystem /GFS, owned by the management account.
        fs = VirtualFS(clock=lambda: sim.now, root_uid=export_uid,
                       root_gid=export_uid, root_mode=0o755)
        server_disk = DiskModel(
            sim, name="server-disk",
            access_latency=cal.server_disk_access,
            read_bandwidth=cal.server_disk_read_bw,
            write_bandwidth=cal.server_disk_write_bw,
        )
        nfs_program = NfsServerProgram(sim, fs, server_disk, locking=vfs_locking)
        nfs_rpc_server = RpcServer(
            sim, cpu=server.cpu, cost=cal.kernel_server_cost, account="kernel-nfs",
            name="nfsd", workers=server_workers,
        )
        nfs_rpc_server.register(nfs_program)
        from repro.nfs.v4 import NfsV4ServerProgram

        nfs_rpc_server.register(
            NfsV4ServerProgram(sim, fs, server_disk,
                               compound_overhead=cal.v4_compound_overhead)
        )
        nfs_listener = server.listen(NFS_PORT)
        nfs_rpc_server.serve_listener(nfs_listener)

        server_accounts = AccountsDb()
        server_accounts.add(Account(export_owner, export_uid, export_uid))
        client_accounts = AccountsDb()

        if servers < 1:
            raise ValueError("servers must be >= 1")
        backends = [
            Backend(
                index=0, name="server", host=server, fs=fs, disk=server_disk,
                nfs_program=nfs_program, rpc_server=nfs_rpc_server,
                listener=nfs_listener,
            )
        ]
        for i in range(1, servers):
            bname = f"s{i}"
            bhost = Host(sim, net, bname, cpu_cores=server_cores)
            net.connect(bname, "router", latency=cal.lan_link_latency,
                        bandwidth=cal.lan_bandwidth)
            bfs = VirtualFS(clock=lambda: sim.now, root_uid=export_uid,
                            root_gid=export_uid, root_mode=0o755)
            bdisk = DiskModel(
                sim, name=f"{bname}-disk",
                access_latency=cal.server_disk_access,
                read_bandwidth=cal.server_disk_read_bw,
                write_bandwidth=cal.server_disk_write_bw,
            )
            bprog = NfsServerProgram(sim, bfs, bdisk, locking=vfs_locking)
            brpc = RpcServer(
                sim, cpu=bhost.cpu, cost=cal.kernel_server_cost,
                account="kernel-nfs", name=f"nfsd-{bname}",
                workers=server_workers,
            )
            brpc.register(bprog)
            blistener = bhost.listen(NFS_PORT)
            brpc.serve_listener(blistener)
            backends.append(Backend(
                index=i, name=bname, host=bhost, fs=bfs, disk=bdisk,
                nfs_program=bprog, rpc_server=brpc, listener=blistener,
            ))

        return cls(
            sim=sim, net=net, client=client, server=server, router=router,
            fs=fs, server_disk=server_disk, nfs_program=nfs_program,
            nfs_rpc_server=nfs_rpc_server,
            server_accounts=server_accounts, client_accounts=client_accounts,
            cal=cal, obs=sim.obs, tracer=sim.tracer, nfs_listener=nfs_listener,
            backends=backends,
        )

    # -- conveniences ------------------------------------------------------------

    def add_client(self, name: str) -> Host:
        """Attach another compute client to the topology.

        The new host hangs off the same delay router as the primary
        ``client`` (a LAN-grade link; the router adds the emulated WAN
        RTT on the way to the server), so every fleet member sees the
        same path characteristics and contends for the shared
        router-to-server link.  Returns the new :class:`Host`; ports on
        it are independent of every other host's."""
        host = Host(self.sim, self.net, name)
        self.net.connect(name, "router", latency=self.cal.lan_link_latency,
                         bandwidth=self.cal.lan_bandwidth)
        return host

    def alloc_port(self) -> int:
        return next(self._port_alloc)

    def set_rtt(self, rtt: float) -> None:
        """Reconfigure the emulated WAN RTT (re-running NIST Net)."""
        self.router.set_rtt(rtt)

    @property
    def measured_rtt(self) -> float:
        return self.net.rtt("client", "server")

    def crash_nfs_server(self) -> None:
        """Crash injection: the kernel NFS server stops listening and
        severs all connections.  Its DRC survives, modeling the stable
        reply cache of a restarting nfsd."""
        if self.nfs_listener is not None:
            self.nfs_listener.close()
            self.nfs_listener = None
        self.nfs_rpc_server.disconnect_all()

    def restart_nfs_server(self) -> None:
        """Come back up after :meth:`crash_nfs_server`."""
        if self.nfs_listener is None:
            self.nfs_listener = self.server.listen(NFS_PORT)
            self.nfs_rpc_server.serve_listener(self.nfs_listener)

    def crash_backend(self, index: int) -> None:
        """Crash one data-plane backend's kernel NFS server (see
        :meth:`crash_nfs_server`; index 0 is the home server)."""
        if index == 0:
            self.crash_nfs_server()
            self.backends[0].listener = None
            return
        backend = self.backends[index]
        if backend.listener is not None:
            backend.listener.close()
            backend.listener = None
        backend.rpc_server.disconnect_all()

    def restart_backend(self, index: int) -> None:
        """Come back up after :meth:`crash_backend`."""
        if index == 0:
            self.restart_nfs_server()
            self.backends[0].listener = self.nfs_listener
            return
        backend = self.backends[index]
        if backend.listener is None:
            backend.listener = backend.host.listen(NFS_PORT)
            backend.rpc_server.serve_listener(backend.listener)

    def run(self, generator, name: str = "workload"):
        """Spawn a process and run the simulation until it completes."""
        proc = self.sim.spawn(generator, name=name)
        return self.sim.run_until_complete(proc)

    def run_all(self) -> float:
        """Drain every pending event; returns the final virtual time."""
        return self.sim.run()
