"""The eight file-system setups of the evaluation (§6.1).

Each ``setup_*`` function assembles one DFS stack on a built
:class:`~repro.core.topology.Testbed` and returns a :class:`Mount`
whose ``client`` is a kernel-like :class:`~repro.nfs.client.NfsClient`
— the mountpoint the (unmodified) workloads drive.  Stack shapes:

====== ==============================================================
nfs-v3  kernel client ── kernel server
nfs-v4  kernel client ── kernel server (COMPOUND shim, no delegation)
gfs     kernel client ─ client proxy ─(plain)─ server proxy ─ kernel server
sgfs    same, with the SSL-like channel between the proxies (suite
        selectable per session: sgfs-sha / sgfs-rc / sgfs-aes)
gfs-ssh gfs, with the proxy-to-proxy leg through an SSH tunnel
        (double user-level forwarding)
sfs     kernel client ─ SFS client daemon ─(RC4ish)─ SFS server
        daemon ─ kernel server, self-certifying pathname
====== ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.calibration import Calibration
from repro.core.topology import (
    CLIENT_PROXY_PORT,
    NFS_PORT,
    SERVER_PROXY_PORT,
    SFS_PORT,
    SSH_LOCAL_PORT,
    SSH_TUNNEL_PORT,
    Testbed,
)
from repro.crypto.drbg import Drbg
from repro.gsi import CertificateAuthority, DistinguishedName, Gridmap
from repro.gsi.gridmap import UnmappedPolicy
from repro.nfs import protocol as pr
from repro.nfs.client import NfsClient
from repro.nfs.v4 import NFS_V4
from repro.proxy.accounts import Account
from repro.proxy.client_proxy import ProxyCacheConfig, SgfsClientProxy
from repro.proxy.server_proxy import SgfsServerProxy
from repro.rpc.auth import AuthSys
from repro.rpc.client import RpcClient
from repro.rpc.transport import StreamTransport
from repro.sfs import SelfCertifyingPath, SfsClientDaemon, SfsServerDaemon
from repro.sshtun import SshTunnelClient, SshTunnelServer
from repro.tls import SecurityConfig
from repro.tls.channel import client_handshake
from repro.vfs import DiskModel

#: The canonical grid identities of the examples and experiments.
USER_DN = DistinguishedName.parse("/C=US/O=UFL/OU=ACIS/CN=Ming Zhao")
SERVER_DN = DistinguishedName.parse("/C=US/O=UFL/OU=ACIS/CN=fileserver.acis.ufl.edu")
CA_DN = DistinguishedName.parse("/C=US/O=GridCA/CN=Certification Authority")

FILE_ACCOUNT = Account("ming", 901, 901)
JOB_ACCOUNT = Account("job7", 5001, 5001)


@dataclass
class Mount:
    """A mounted file system plus the machinery behind it."""

    label: str
    tb: Testbed
    client: NfsClient
    client_proxy: Optional[SgfsClientProxy] = None
    server_proxy: Optional[SgfsServerProxy] = None
    extras: Dict[str, object] = field(default_factory=dict)

    def finish(self):
        """Process generator: drain async I/O and write back dirty data.

        Returns (writeback_seconds, blocks, bytes) — the paper reports
        the end-of-run write-back time separately (Figs. 9–10 captions).
        """
        yield from self.client.drain()
        t0 = self.tb.sim.now
        blocks = nbytes = 0
        if self.client_proxy is not None:
            blocks, nbytes = yield from self.client_proxy.writeback()
        return self.tb.sim.now - t0, blocks, nbytes


def _kernel_client(tb: Testbed, connect_host: str, port: int, cred: AuthSys,
                   cache_bytes: Optional[int], vers: int = pr.NFS_V3,
                   host=None, root_fh=None) -> "object":
    """Process generator: build the kernel-like NFS client.

    ``host`` is the simulated machine the client runs on (defaults to
    the testbed's primary ``client``; fleets pass their own per-client
    hosts).  ``root_fh`` overrides the mount root (defaults to the
    export root; fleets mount per-client subdirectories)."""
    cal = tb.cal
    if host is None:
        host = tb.client
    if root_fh is None:
        root_fh = tb.nfs_program.root_handle()

    def connect_rpc():
        sock = yield from host.connect(connect_host, port)
        return RpcClient(
            tb.sim, StreamTransport(sock), pr.NFS_PROGRAM, vers,
            cpu=host.cpu, cost=cal.kernel_client_cost, account="kernel-nfs",
        )

    rpc = yield from connect_rpc()
    client = NfsClient(
        tb.sim, rpc, root_fh, cred,
        block_size=cal.block_size,
        cache_bytes=cache_bytes if cache_bytes is not None else cal.client_cache_bytes,
        read_ahead_blocks=cal.read_ahead_blocks,
        max_async_io=cal.max_async_io,
        ac_reg_min=cal.ac_reg_min,
        ac_reg_max=cal.ac_reg_max,
        reconnect=connect_rpc,  # hard-mount: survive connection loss
    )
    return client


# ---------------------------------------------------------------------------
# native kernel NFS
# ---------------------------------------------------------------------------


def setup_nfs_v3(tb: Testbed, cache_bytes: Optional[int] = None) -> Mount:
    """Native NFSv3: the kernel client talks straight to the server."""
    cred = AuthSys(uid=FILE_ACCOUNT.uid, gid=FILE_ACCOUNT.gid, machinename="client")

    def build():
        client = yield from _kernel_client(tb, "server", NFS_PORT, cred, cache_bytes)
        return client

    client = tb.run(build(), name="mount-nfs3")
    return Mount("nfs-v3", tb, client)


def setup_nfs_v4(tb: Testbed, cache_bytes: Optional[int] = None) -> Mount:
    """Native NFSv4 (COMPOUND shim; no delegation — §6.2.2)."""
    cred = AuthSys(uid=FILE_ACCOUNT.uid, gid=FILE_ACCOUNT.gid, machinename="client")

    def build():
        client = yield from _kernel_client(
            tb, "server", NFS_PORT, cred, cache_bytes, vers=NFS_V4
        )
        return client

    client = tb.run(build(), name="mount-nfs4")
    return Mount("nfs-v4", tb, client)


# ---------------------------------------------------------------------------
# proxy plumbing shared by gfs / sgfs / gfs-ssh
# ---------------------------------------------------------------------------


def _make_session_pki(tb: Testbed, suite: str, fast_ciphers: bool = True,
                      renegotiate_interval: Optional[float] = None,
                      session_tickets: bool = False):
    """CA + user & server credentials + the two SecurityConfigs."""
    rng = Drbg("sgfs-session")
    ca = CertificateAuthority(CA_DN, rng=rng.fork("ca"), key_bits=1024, now=tb.sim.now)
    user = ca.issue_identity(USER_DN, rng=rng.fork("user"), key_bits=1024, now=tb.sim.now)
    host = ca.issue_identity(SERVER_DN, rng=rng.fork("host"), key_bits=1024, now=tb.sim.now)
    client_cfg = SecurityConfig.for_session(
        user, [ca.certificate], suite, fast_ciphers=fast_ciphers,
        rng=rng.fork("client-tls"), renegotiate_interval=renegotiate_interval,
        session_tickets=session_tickets,
    )
    server_cfg = SecurityConfig.for_session(
        host, [ca.certificate], suite, fast_ciphers=fast_ciphers,
        rng=rng.fork("server-tls"), session_tickets=session_tickets,
    )
    return ca, user, host, client_cfg, server_cfg


def _session_gridmap() -> Gridmap:
    gm = Gridmap(unmapped=UnmappedPolicy.DENY)
    gm.add(USER_DN, FILE_ACCOUNT.name)
    return gm


def _ensure_accounts(tb: Testbed) -> None:
    if FILE_ACCOUNT.name not in tb.server_accounts:
        tb.server_accounts.add(FILE_ACCOUNT)
    if JOB_ACCOUNT.name not in tb.client_accounts:
        tb.client_accounts.add(JOB_ACCOUNT)


def _cache_config(tb: Testbed, disk_cache: bool, write_back: bool = True,
                  cache_capacity: Optional[int] = None) -> ProxyCacheConfig:
    kw = {}
    if cache_capacity is not None:
        kw["capacity_bytes"] = cache_capacity
    return ProxyCacheConfig(
        enabled=disk_cache,
        cache_data=True,
        cache_attrs=True,
        cache_access=True,
        write_back=write_back,
        block_size=tb.cal.block_size,
        **kw,
    )


def _cache_disk(tb: Testbed, disk_cache: bool) -> Optional[DiskModel]:
    if not disk_cache:
        return None
    cal = tb.cal
    return DiskModel(
        tb.sim, name="proxy-cache-disk",
        access_latency=cal.cache_disk_access,
        read_bandwidth=cal.cache_disk_read_bw,
        write_bandwidth=cal.cache_disk_write_bw,
    )


def _proxied_mount(tb: Testbed, label: str, upstream_factory,
                   server_security, disk_cache: bool,
                   cache_bytes: Optional[int], enable_acls: bool = True,
                   blocking: bool = True, write_back: bool = True,
                   acl_cache_enabled: bool = True, cryptor=None,
                   streams: int = 1,
                   pipeline_depth: Optional[int] = None,
                   cache_capacity: Optional[int] = None) -> Mount:
    """Build server proxy + client proxy + kernel client."""
    _ensure_accounts(tb)
    server_proxy = SgfsServerProxy(
        tb.sim, tb.server, SERVER_PROXY_PORT, NFS_PORT,
        accounts=tb.server_accounts, gridmap=_session_gridmap(), fs=tb.fs,
        security=server_security, cost=tb.cal.proxy_cost, account="proxy",
        blocking=blocking, enable_acls=enable_acls,
        session_identity=USER_DN if server_security is None else None,
        acl_cache_enabled=acl_cache_enabled, acl_disk=tb.server_disk,
    )
    server_proxy.start()

    client_proxy = SgfsClientProxy(
        tb.sim, tb.client, CLIENT_PROXY_PORT,
        upstream_factory=upstream_factory,
        cost=tb.cal.proxy_cost, account="proxy",
        cache=_cache_config(tb, disk_cache, write_back=write_back,
                            cache_capacity=cache_capacity),
        disk=_cache_disk(tb, disk_cache),
        blocking=blocking,
        cryptor=cryptor,
        streams=streams,
        pipeline_depth=pipeline_depth,
    )

    cred = AuthSys(uid=JOB_ACCOUNT.uid, gid=JOB_ACCOUNT.gid, machinename="client")

    def build():
        yield from client_proxy.start()
        client = yield from _kernel_client(
            tb, tb.client.name, CLIENT_PROXY_PORT, cred, cache_bytes
        )
        return client

    client = tb.run(build(), name=f"mount-{label}")
    return Mount(label, tb, client, client_proxy=client_proxy,
                 server_proxy=server_proxy)


def setup_gfs(tb: Testbed, disk_cache: bool = False,
              cache_bytes: Optional[int] = None,
              streams: int = 1,
              pipeline_depth: Optional[int] = None,
              cache_capacity: Optional[int] = None) -> Mount:
    """The basic (insecure) grid file system [16]: user-level proxies
    with credential mapping, no channel protection."""

    def upstream_factory():
        sock = yield from tb.client.connect("server", SERVER_PROXY_PORT)
        return StreamTransport(sock)

    return _proxied_mount(tb, "gfs", upstream_factory, server_security=None,
                          disk_cache=disk_cache, cache_bytes=cache_bytes,
                          streams=streams, pipeline_depth=pipeline_depth,
                          cache_capacity=cache_capacity)


def setup_sgfs(tb: Testbed, suite: str = "aes-256-cbc-sha1",
               disk_cache: bool = False, cache_bytes: Optional[int] = None,
               fast_ciphers: bool = True,
               renegotiate_interval: Optional[float] = None,
               blocking: bool = True, write_back: bool = True,
               acl_cache_enabled: bool = True, at_rest: bool = False,
               streams: int = 1, pipeline_depth: Optional[int] = None,
               session_tickets: bool = False,
               cache_capacity: Optional[int] = None) -> Mount:
    """SGFS: the paper's contribution.  ``suite`` picks the per-session
    security configuration — "null-sha1" (sgfs-sha), "rc4-128-sha1"
    (sgfs-rc) or "aes-256-cbc-sha1" (sgfs-aes).

    ``streams > 1`` opens that many parallel proxy-to-proxy
    sub-channels; session tickets are forced on so channels 1..N-1
    resume the keys channel 0 negotiated instead of paying N full RSA
    handshakes."""
    _ca, _user, _host, client_cfg, server_cfg = _make_session_pki(
        tb, suite, fast_ciphers=fast_ciphers,
        renegotiate_interval=renegotiate_interval,
        session_tickets=session_tickets or streams > 1,
    )
    cryptor = None
    if at_rest:
        from repro.proxy.cryptofs import BlockCryptor

        # the at-rest key never leaves the user's session
        cryptor = BlockCryptor(Drbg("sgfs-at-rest-key").randbytes(32))

    def upstream_factory():
        sock = yield from tb.client.connect("server", SERVER_PROXY_PORT)
        channel = yield from client_handshake(
            tb.sim, sock, client_cfg, cpu=tb.client.cpu, account="proxy"
        )
        return channel

    label = {
        "null-sha1": "sgfs-sha",
        "rc4-128-sha1": "sgfs-rc",
        "aes-256-cbc-sha1": "sgfs-aes",
    }.get(suite, f"sgfs-{suite}")
    mount = _proxied_mount(tb, label, upstream_factory,
                           server_security=server_cfg,
                           disk_cache=disk_cache, cache_bytes=cache_bytes,
                           blocking=blocking, write_back=write_back,
                           acl_cache_enabled=acl_cache_enabled,
                           cryptor=cryptor, streams=streams,
                           pipeline_depth=pipeline_depth,
                           cache_capacity=cache_capacity)
    mount.extras["client_security"] = client_cfg
    mount.extras["server_security"] = server_cfg
    if cryptor is not None:
        mount.extras["cryptor"] = cryptor
    return mount


def setup_gfs_ssh(tb: Testbed, disk_cache: bool = False,
                  cache_bytes: Optional[int] = None,
                  fast_ciphers: bool = True) -> Mount:
    """gfs-ssh [45]: plain proxies, but the proxy-to-proxy leg rides an
    SSH tunnel — two extra user-level forwarders on the data path."""
    session_key = Drbg("gfs-ssh-session-key").randbytes(32)
    tunnel_server = SshTunnelServer(
        tb.sim, tb.server, SSH_TUNNEL_PORT, SERVER_PROXY_PORT, session_key,
        cost=tb.cal.ssh_cost, fast_ciphers=fast_ciphers,
    )
    tunnel_server.start()
    tunnel_client = SshTunnelClient(
        tb.sim, tb.client, SSH_LOCAL_PORT, "server", SSH_TUNNEL_PORT, session_key,
        cost=tb.cal.ssh_cost, fast_ciphers=fast_ciphers,
    )
    tunnel_client.start()

    def upstream_factory():
        # The client proxy connects to the local tunnel entrance.
        sock = yield from tb.client.connect(tb.client.name, SSH_LOCAL_PORT)
        return StreamTransport(sock)

    mount = _proxied_mount(tb, "gfs-ssh", upstream_factory, server_security=None,
                           disk_cache=disk_cache, cache_bytes=cache_bytes)
    mount.extras["tunnel_client"] = tunnel_client
    mount.extras["tunnel_server"] = tunnel_server
    return mount


def setup_sfs(tb: Testbed, cache_bytes: Optional[int] = None,
              fast_ciphers: bool = True) -> Mount:
    """SFS [34]: self-certifying pathname, async daemons, metadata caching."""
    _ensure_accounts(tb)
    rng = Drbg("sfs-session")
    from repro.crypto.rsa import generate_keypair

    server_key = generate_keypair(1024, rng.fork("server"))
    user_key = generate_keypair(1024, rng.fork("user"))
    path = SelfCertifyingPath.for_server("server", server_key.public)

    server_daemon = SfsServerDaemon(
        tb.sim, tb.server, SFS_PORT, NFS_PORT,
        server_key=server_key,
        authorized_users={user_key.public.to_bytes()},
        accounts=tb.server_accounts, gridmap=_session_gridmap(), fs=tb.fs,
        cost=tb.cal.sfs_cost, session_identity=USER_DN,
        fast_ciphers=fast_ciphers,
    )
    server_daemon.start()

    client_daemon = SfsClientDaemon(
        tb.sim, tb.client, CLIENT_PROXY_PORT, path, SFS_PORT,
        user_key=user_key, rng=rng.fork("client"), cost=tb.cal.sfs_cost,
        fast_ciphers=fast_ciphers,
    )

    cred = AuthSys(uid=JOB_ACCOUNT.uid, gid=JOB_ACCOUNT.gid, machinename="client")

    def build():
        yield from client_daemon.start()
        client = yield from _kernel_client(
            tb, tb.client.name, CLIENT_PROXY_PORT, cred, cache_bytes
        )
        return client

    client = tb.run(build(), name="mount-sfs")
    mount = Mount("sfs", tb, client, client_proxy=client_daemon,
                  server_proxy=server_daemon)
    mount.extras["path"] = path
    return mount


#: name -> builder, for table-driven harnesses.
SETUP_BUILDERS: Dict[str, Callable[..., Mount]] = {
    "nfs-v3": setup_nfs_v3,
    "nfs-v4": setup_nfs_v4,
    "gfs": setup_gfs,
    "sgfs-sha": lambda tb, **kw: setup_sgfs(tb, suite="null-sha1", **kw),
    "sgfs-rc": lambda tb, **kw: setup_sgfs(tb, suite="rc4-128-sha1", **kw),
    "sgfs-aes": lambda tb, **kw: setup_sgfs(tb, suite="aes-256-cbc-sha1", **kw),
    "sgfs": lambda tb, **kw: setup_sgfs(tb, suite="aes-256-cbc-sha1", **kw),
    "gfs-ssh": setup_gfs_ssh,
    "sfs": setup_sfs,
}
